#include "smr/cluster/node.hpp"

namespace smr::cluster {

ClusterSpec ClusterSpec::paper_testbed(int worker_nodes) {
  SMR_CHECK(worker_nodes >= 1);
  ClusterSpec spec;
  spec.workers.assign(static_cast<std::size_t>(worker_nodes), NodeSpec{});
  spec.network.fabric_bandwidth =
      static_cast<double>(worker_nodes) * spec.workers.front().nic_bandwidth;
  spec.validate();
  return spec;
}

ClusterSpec ClusterSpec::heterogeneous(int fast, int slow, double slow_factor) {
  SMR_CHECK(fast >= 0 && slow >= 0 && fast + slow >= 1);
  SMR_CHECK(slow_factor > 0.0 && slow_factor <= 1.0);
  ClusterSpec spec = paper_testbed(fast + slow);
  for (int i = fast; i < fast + slow; ++i) {
    auto& node = spec.workers[static_cast<std::size_t>(i)];
    node.cpu_speed = slow_factor;
    node.memory /= 2;
    node.os_reserved /= 2;
  }
  spec.validate();
  return spec;
}

}  // namespace smr::cluster
