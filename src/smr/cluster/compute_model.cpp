#include "smr/cluster/compute_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "smr/common/error.hpp"

namespace smr::cluster {

namespace {
// Foreground work never fully starves even under extreme background load.
constexpr double kMinCpuRemnant = 0.05;                                   // cores
constexpr double kMinDiskRemnant = 1.0 * static_cast<double>(kMiB);       // bytes/s
}  // namespace

double ComputeModel::thread_efficiency(const NodeSpec& node, int threads) {
  SMR_CHECK(threads >= 0);
  if (threads <= 1) return 1.0;
  const double extra = static_cast<double>(threads - 1);
  const double beyond_cores = static_cast<double>(std::max(0, threads - node.cores));
  return 1.0 / (1.0 + node.thread_overhead * extra + node.sched_overhead * beyond_cores);
}

double ComputeModel::paging_factor(const NodeSpec& node, Bytes memory_demand) {
  SMR_CHECK(memory_demand >= 0);
  const double available = static_cast<double>(node.available_memory());
  const double demand = static_cast<double>(memory_demand);
  if (demand <= available) return 1.0;
  const double over = demand / available - 1.0;
  return 1.0 / (1.0 + node.paging_penalty * over * over);
}

double ComputeModel::disk_efficiency(const NodeSpec& node, int streams) {
  SMR_CHECK(streams >= 0);
  if (streams <= 1) return 1.0;
  return 1.0 / (1.0 + node.seek_overhead * static_cast<double>(streams - 1));
}

double ComputeModel::effective_cpu(const NodeSpec& node, const Occupancy& occ) {
  return static_cast<double>(node.cores) * node.cpu_speed *
         thread_efficiency(node, occ.threads) * paging_factor(node, occ.memory_demand);
}

double ComputeModel::effective_disk(const NodeSpec& node, const Occupancy& occ) {
  return node.disk_bandwidth * disk_efficiency(node, occ.io_streams) *
         paging_factor(node, occ.memory_demand);
}

void ComputeModel::load_to_flow(const NodeSpec& node, const PhaseLoad& load,
                                FlowDemand& flow) {
  enum : int { kCpu = 0, kDisk = 1 };
  flow.uses.clear();
  // A single thread can use at most `max_cores` cores; that caps the rate
  // of CPU-bearing phases regardless of idle capacity elsewhere.
  double cap = load.rate_cap;
  if (load.cpu_per_byte > 0.0) {
    const double single_thread =
        load.max_cores * node.cpu_speed / load.cpu_per_byte;
    cap = (cap == kNoCap) ? single_thread : std::min(cap, single_thread);
    flow.uses.push_back({kCpu, load.cpu_per_byte});
  }
  if (load.disk_per_byte > 0.0) {
    flow.uses.push_back({kDisk, load.disk_per_byte});
  }
  SMR_CHECK_MSG(cap != kNoCap || !flow.uses.empty(),
                "phase with no resource use and no cap would be unbounded");
  flow.rate_cap = cap;
}

std::array<double, 2> ComputeModel::capacities_for(const NodeSpec& node,
                                                   const Occupancy& occ,
                                                   const BackgroundLoad& background) {
  return {std::max(kMinCpuRemnant, effective_cpu(node, occ) - background.cpu_cores),
          std::max(kMinDiskRemnant, effective_disk(node, occ) - background.disk_rate)};
}

std::vector<double> ComputeModel::solve(const NodeSpec& node, const Occupancy& occ,
                                        const BackgroundLoad& background,
                                        std::span<const PhaseLoad> loads) {
  if (loads.empty()) return {};

  const std::array<double, 2> capacities = capacities_for(node, occ, background);
  std::vector<FlowDemand> flows(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    load_to_flow(node, loads[i], flows[i]);
  }
  return max_min_allocate(capacities, flows);
}

namespace {

bool same_load(const PhaseLoad& a, const PhaseLoad& b) {
  return a.cpu_per_byte == b.cpu_per_byte && a.disk_per_byte == b.disk_per_byte &&
         a.rate_cap == b.rate_cap && a.max_cores == b.max_cores;
}

}  // namespace

const std::vector<double>& ComputeModel::solve_cached(
    const NodeSpec& node, const Occupancy& occ, const BackgroundLoad& background,
    std::span<const PhaseLoad> loads) {
  if (loads.empty()) return empty_;

  // Raw-input memo: the capacities and flows are pure functions of
  // (node, occ, background, loads), and the node spec is fixed per
  // instance, so bit-equal raw inputs are guaranteed to reproduce the
  // previous result without the load -> flow conversion or the solver's
  // own cache comparison.
  if (memo_valid_ && occ.threads == memo_occ_.threads &&
      occ.io_streams == memo_occ_.io_streams &&
      occ.memory_demand == memo_occ_.memory_demand &&
      background.cpu_cores == memo_background_.cpu_cores &&
      background.disk_rate == memo_background_.disk_rate &&
      loads.size() == memo_loads_.size() &&
      std::equal(loads.begin(), loads.end(), memo_loads_.begin(), same_load)) {
    ++memo_hits_;
    return memo_rates_;
  }

  const std::array<double, 2> capacities = capacities_for(node, occ, background);
  flows_scratch_.resize(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    load_to_flow(node, loads[i], flows_scratch_[i]);
  }
  const std::vector<double>& rates = solver_.solve(capacities, flows_scratch_);
  memo_occ_ = occ;
  memo_background_ = background;
  memo_loads_.assign(loads.begin(), loads.end());
  memo_rates_ = rates;
  memo_valid_ = true;
  return memo_rates_;
}

MaxMinSolver::Stats ComputeModel::solver_stats() const {
  MaxMinSolver::Stats stats = solver_.stats();
  stats.calls += memo_hits_;
  stats.cache_hits += memo_hits_;
  return stats;
}

}  // namespace smr::cluster
