// Cluster-wide network allocation for shuffle traffic and remote map-input
// reads.
//
// Resources: one receive port and one transmit port per node plus the
// switch fabric.  Shuffle fetches are "diffuse" flows — a reduce task pulls
// its partition from every node that holds finished map output — so a
// shuffle flow loads its receiver's port with weight 1 and every transmit
// port with weight 1/N.  Remote reads are point-to-point.
//
// Per-receiver incast: when a node hosts many concurrent fetch streams
// (reducers × parallel copier threads) its receive goodput degrades per
// NetworkSpec::incast_efficiency.  This is the mechanism behind the paper's
// repeated caution that "a large number of reduce slots can cause network
// jam" (Sections III-B3, IV-A2, V-C).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "smr/cluster/maxmin.hpp"
#include "smr/cluster/node.hpp"
#include "smr/common/types.hpp"

namespace smr::cluster {

struct NetFlow {
  /// Receiving node (must be valid).
  NodeId dst = kInvalidNode;
  /// Sending node, or kInvalidNode for a diffuse flow (pulls uniformly from
  /// all nodes — the shuffle case).
  NodeId src = kInvalidNode;
  /// Per-flow cap in bytes/s (e.g. the receiver's CPU-side ingest bound),
  /// or kNoCap.
  double rate_cap = kNoCap;
};

class NetworkModel {
 public:
  explicit NetworkModel(const ClusterSpec& spec) : spec_(&spec) {}

  /// Allocate rates for `flows`.  `fetch_streams_per_node[d]` is the number
  /// of concurrent TCP fetch streams terminating at node d (drives the
  /// incast penalty on d's receive port); pass an empty span to disable.
  ///
  /// Stateless reference path ("oracle"); allocate_cached() below is
  /// bit-identical and is what the runtime calls every tick.
  std::vector<double> allocate(std::span<const NetFlow> flows,
                               std::span<const int> fetch_streams_per_node) const;

  /// Same result as allocate(), but through the instance's incremental
  /// MaxMinSolver: unchanged flow sets are answered from the cache, and
  /// shuffle ticks where only the (non-binding, backlog-tracking) rate caps
  /// moved while the network stayed the bottleneck skip the water-filling
  /// pass too.  A raw-input memo short-circuits even earlier: bit-equal
  /// (flows, fetch_streams) skip the problem build entirely — the common
  /// steady-shuffle tick, where every cap is pinned at the fetch cap.
  /// NOT thread-safe; the returned reference is invalidated by the next
  /// call.
  const std::vector<double>& allocate_cached(std::span<const NetFlow> flows,
                                             std::span<const int> fetch_streams_per_node);

  /// Solver counters with raw-input memo hits folded back in as calls +
  /// cache hits (a memo hit is exactly a call the solver would have
  /// answered from its own identical-inputs cache).
  MaxMinSolver::Stats solver_stats() const {
    MaxMinSolver::Stats stats = solver_.stats();
    stats.calls += memo_hits_;
    stats.cache_hits += memo_hits_;
    return stats;
  }

 private:
  /// Build the (capacities, demands) max-min problem into the given
  /// buffers (shared by the oracle and cached paths so the arithmetic is
  /// identical).
  void build_problem(std::span<const NetFlow> flows,
                     std::span<const int> fetch_streams_per_node,
                     std::vector<double>& capacities,
                     std::vector<FlowDemand>& demands) const;

  const ClusterSpec* spec_;
  MaxMinSolver solver_;
  std::vector<double> caps_scratch_;
  std::vector<FlowDemand> demands_scratch_;
  std::vector<double> empty_;
  // Raw-input memo (see allocate_cached).
  bool memo_valid_ = false;
  std::vector<NetFlow> memo_flows_;
  std::vector<int> memo_streams_;
  std::vector<double> memo_rates_;
  std::uint64_t memo_hits_ = 0;
};

}  // namespace smr::cluster
