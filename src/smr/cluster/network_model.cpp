#include "smr/cluster/network_model.hpp"

#include <algorithm>

#include "smr/common/error.hpp"

namespace smr::cluster {

void NetworkModel::build_problem(std::span<const NetFlow> flows,
                                 std::span<const int> fetch_streams_per_node,
                                 std::vector<double>& capacities,
                                 std::vector<FlowDemand>& demands) const {
  const auto& spec = *spec_;
  const int n = spec.worker_count();
  SMR_CHECK(fetch_streams_per_node.empty() ||
            fetch_streams_per_node.size() == static_cast<std::size_t>(n));

  // Resource layout: [0, n) receive ports, [n, 2n) transmit ports, 2n fabric.
  capacities.assign(static_cast<std::size_t>(2 * n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    const auto& node = spec.workers[static_cast<std::size_t>(i)];
    double rx = node.nic_bandwidth;
    if (!fetch_streams_per_node.empty()) {
      rx *= spec.network.incast_efficiency(fetch_streams_per_node[static_cast<std::size_t>(i)]);
    }
    capacities[static_cast<std::size_t>(i)] = rx;
    capacities[static_cast<std::size_t>(n + i)] = node.nic_bandwidth;
  }
  capacities[static_cast<std::size_t>(2 * n)] = spec.network.fabric_bandwidth;

  const double diffuse_weight = 1.0 / static_cast<double>(n);
  demands.resize(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const auto& flow = flows[f];
    SMR_CHECK_MSG(flow.dst >= 0 && flow.dst < n, "flow with invalid dst " << flow.dst);
    FlowDemand& d = demands[f];
    d.rate_cap = flow.rate_cap;
    d.uses.clear();
    d.uses.push_back({flow.dst, 1.0});                       // receive port
    d.uses.push_back({2 * n, 1.0});                          // fabric
    if (flow.src == kInvalidNode) {
      // Diffuse: spread across every transmit port.
      for (int s = 0; s < n; ++s) d.uses.push_back({n + s, diffuse_weight});
    } else {
      SMR_CHECK_MSG(flow.src >= 0 && flow.src < n, "flow with invalid src " << flow.src);
      d.uses.push_back({n + flow.src, 1.0});
    }
  }
}

std::vector<double> NetworkModel::allocate(
    std::span<const NetFlow> flows, std::span<const int> fetch_streams_per_node) const {
  if (flows.empty()) return {};
  std::vector<double> capacities;
  std::vector<FlowDemand> demands;
  build_problem(flows, fetch_streams_per_node, capacities, demands);
  return max_min_allocate(capacities, demands);
}

namespace {

bool same_flow(const NetFlow& a, const NetFlow& b) {
  return a.dst == b.dst && a.src == b.src && a.rate_cap == b.rate_cap;
}

}  // namespace

const std::vector<double>& NetworkModel::allocate_cached(
    std::span<const NetFlow> flows, std::span<const int> fetch_streams_per_node) {
  if (flows.empty()) return empty_;

  // Raw-input memo: capacities and demands are pure functions of (flows,
  // fetch_streams) for the instance's fixed cluster spec, so bit-equal raw
  // inputs are guaranteed to reproduce the previous result without
  // rebuilding the problem or running the solver's own input comparison.
  if (memo_valid_ && flows.size() == memo_flows_.size() &&
      fetch_streams_per_node.size() == memo_streams_.size() &&
      std::equal(flows.begin(), flows.end(), memo_flows_.begin(), same_flow) &&
      std::equal(fetch_streams_per_node.begin(), fetch_streams_per_node.end(),
                 memo_streams_.begin())) {
    ++memo_hits_;
    return memo_rates_;
  }

  build_problem(flows, fetch_streams_per_node, caps_scratch_, demands_scratch_);
  const std::vector<double>& rates = solver_.solve(caps_scratch_, demands_scratch_);
  memo_flows_.assign(flows.begin(), flows.end());
  memo_streams_.assign(fetch_streams_per_node.begin(), fetch_streams_per_node.end());
  memo_rates_ = rates;
  memo_valid_ = true;
  return memo_rates_;
}

}  // namespace smr::cluster
