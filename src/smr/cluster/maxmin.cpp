#include "smr/cluster/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "smr/common/error.hpp"

namespace smr::cluster {

std::vector<double> max_min_allocate(std::span<const double> capacities,
                                     std::span<const FlowDemand> flows) {
  const std::size_t nr = capacities.size();
  const std::size_t nf = flows.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kEps = 1e-9;

  std::vector<double> remaining(capacities.begin(), capacities.end());
  // Saturation must be judged relative to the resource's scale: capacities
  // are bytes/s (~1e8), so absolute epsilons never trigger.
  std::vector<double> saturated_below(nr);
  for (std::size_t r = 0; r < nr; ++r) {
    SMR_CHECK_MSG(remaining[r] >= 0.0, "negative capacity for resource " << r);
    saturated_below[r] = kEps * (remaining[r] + 1.0);
  }
  for (const auto& flow : flows) {
    for (const auto& use : flow.uses) {
      SMR_CHECK_MSG(use.resource >= 0 && static_cast<std::size_t>(use.resource) < nr,
                    "flow uses unknown resource " << use.resource);
      SMR_CHECK(use.weight >= 0.0);
    }
  }

  std::vector<double> rates(nf, 0.0);
  std::vector<bool> frozen(nf, false);

  // A flow with a zero cap, or touching an (effectively) empty resource with
  // positive weight, can never move; freeze it up front.
  auto resource_empty = [&](int r) {
    const auto idx = static_cast<std::size_t>(r);
    return remaining[idx] <= saturated_below[idx];
  };
  std::size_t active = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    const auto& flow = flows[i];
    bool dead = (flow.rate_cap != kNoCap && flow.rate_cap <= 0.0);
    for (const auto& use : flow.uses) {
      if (use.weight > 0.0 && resource_empty(use.resource)) dead = true;
    }
    frozen[i] = dead;
    if (!dead) ++active;
  }

  while (active > 0) {
    // Per-resource total weight over active flows.
    std::vector<double> sumw(nr, 0.0);
    double delta = kInf;
    for (std::size_t i = 0; i < nf; ++i) {
      if (frozen[i]) continue;
      const auto& flow = flows[i];
      if (flow.rate_cap != kNoCap) {
        delta = std::min(delta, flow.rate_cap - rates[i]);
      }
      for (const auto& use : flow.uses) {
        sumw[static_cast<std::size_t>(use.resource)] += use.weight;
      }
    }
    for (std::size_t r = 0; r < nr; ++r) {
      if (sumw[r] > 0.0) delta = std::min(delta, remaining[r] / sumw[r]);
    }
    SMR_CHECK_MSG(std::isfinite(delta),
                  "max_min_allocate: unbounded flow (no cap and no finite resource)");
    delta = std::max(delta, 0.0);

    for (std::size_t i = 0; i < nf; ++i) {
      if (!frozen[i]) rates[i] += delta;
    }
    for (std::size_t r = 0; r < nr; ++r) {
      remaining[r] -= delta * sumw[r];
      if (remaining[r] < 0.0) remaining[r] = 0.0;  // numerical guard
    }

    // Freeze flows that hit their cap or a saturated resource.
    std::size_t still_active = 0;
    for (std::size_t i = 0; i < nf; ++i) {
      if (frozen[i]) continue;
      const auto& flow = flows[i];
      bool freeze = false;
      if (flow.rate_cap != kNoCap && rates[i] >= flow.rate_cap - kEps * (1.0 + flow.rate_cap)) {
        rates[i] = flow.rate_cap;
        freeze = true;
      }
      for (const auto& use : flow.uses) {
        if (use.weight > 0.0 && resource_empty(use.resource)) freeze = true;
      }
      frozen[i] = freeze;
      if (!freeze) ++still_active;
    }
    // Progress guarantee: if nothing froze this round, every active flow
    // must have been capless and untouched by any saturated resource, which
    // contradicts delta being finite unless delta saturated something.
    SMR_CHECK_MSG(still_active < active || delta == 0.0,
                  "max_min_allocate failed to make progress");
    if (still_active == active && delta == 0.0) {
      // Degenerate: all remaining flows blocked at zero headroom.
      for (std::size_t i = 0; i < nf; ++i) frozen[i] = true;
      still_active = 0;
    }
    active = still_active;
  }
  return rates;
}

}  // namespace smr::cluster
