#include "smr/cluster/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "smr/common/error.hpp"

namespace smr::cluster {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

std::vector<double> max_min_allocate(std::span<const double> capacities,
                                     std::span<const FlowDemand> flows) {
  const std::size_t nr = capacities.size();
  const std::size_t nf = flows.size();

  std::vector<double> remaining(capacities.begin(), capacities.end());
  // Saturation must be judged relative to the resource's scale: capacities
  // are bytes/s (~1e8), so absolute epsilons never trigger.
  std::vector<double> saturated_below(nr);
  for (std::size_t r = 0; r < nr; ++r) {
    SMR_CHECK_MSG(remaining[r] >= 0.0, "negative capacity for resource " << r);
    saturated_below[r] = kEps * (remaining[r] + 1.0);
  }
  for (const auto& flow : flows) {
    for (const auto& use : flow.uses) {
      SMR_CHECK_MSG(use.resource >= 0 && static_cast<std::size_t>(use.resource) < nr,
                    "flow uses unknown resource " << use.resource);
      SMR_CHECK(use.weight >= 0.0);
    }
  }

  std::vector<double> rates(nf, 0.0);
  std::vector<bool> frozen(nf, false);

  // A flow with a zero cap, or touching an (effectively) empty resource with
  // positive weight, can never move; freeze it up front.
  auto resource_empty = [&](int r) {
    const auto idx = static_cast<std::size_t>(r);
    return remaining[idx] <= saturated_below[idx];
  };
  std::size_t active = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    const auto& flow = flows[i];
    bool dead = (flow.rate_cap != kNoCap && flow.rate_cap <= 0.0);
    for (const auto& use : flow.uses) {
      if (use.weight > 0.0 && resource_empty(use.resource)) dead = true;
    }
    frozen[i] = dead;
    if (!dead) ++active;
  }

  while (active > 0) {
    // Per-resource total weight over active flows.
    std::vector<double> sumw(nr, 0.0);
    double delta = kInf;
    for (std::size_t i = 0; i < nf; ++i) {
      if (frozen[i]) continue;
      const auto& flow = flows[i];
      if (flow.rate_cap != kNoCap) {
        delta = std::min(delta, flow.rate_cap - rates[i]);
      }
      for (const auto& use : flow.uses) {
        sumw[static_cast<std::size_t>(use.resource)] += use.weight;
      }
    }
    for (std::size_t r = 0; r < nr; ++r) {
      if (sumw[r] > 0.0) delta = std::min(delta, remaining[r] / sumw[r]);
    }
    SMR_CHECK_MSG(std::isfinite(delta),
                  "max_min_allocate: unbounded flow (no cap and no finite resource)");
    delta = std::max(delta, 0.0);

    for (std::size_t i = 0; i < nf; ++i) {
      if (!frozen[i]) rates[i] += delta;
    }
    for (std::size_t r = 0; r < nr; ++r) {
      remaining[r] -= delta * sumw[r];
      if (remaining[r] < 0.0) remaining[r] = 0.0;  // numerical guard
    }

    // Freeze flows that hit their cap or a saturated resource.
    std::size_t still_active = 0;
    for (std::size_t i = 0; i < nf; ++i) {
      if (frozen[i]) continue;
      const auto& flow = flows[i];
      bool freeze = false;
      if (flow.rate_cap != kNoCap && rates[i] >= flow.rate_cap - kEps * (1.0 + flow.rate_cap)) {
        rates[i] = flow.rate_cap;
        freeze = true;
      }
      for (const auto& use : flow.uses) {
        if (use.weight > 0.0 && resource_empty(use.resource)) freeze = true;
      }
      frozen[i] = freeze;
      if (!freeze) ++still_active;
    }
    // Progress guarantee: if nothing froze this round, every active flow
    // must have been capless and untouched by any saturated resource, which
    // contradicts delta being finite unless delta saturated something.
    SMR_CHECK_MSG(still_active < active || delta == 0.0,
                  "max_min_allocate failed to make progress");
    if (still_active == active && delta == 0.0) {
      // Degenerate: all remaining flows blocked at zero headroom.
      for (std::size_t i = 0; i < nf; ++i) frozen[i] = true;
      still_active = 0;
    }
    active = still_active;
  }
  return rates;
}

// ---------------------------------------------------------------------------
// MaxMinSolver — incremental re-solver.
//
// Every path below must stay bit-for-bit identical to max_min_allocate();
// the property suite (tests/cluster/maxmin_property_test.cpp) checks the
// equality over randomized mutation sequences.
// ---------------------------------------------------------------------------

bool MaxMinSolver::cache_usable(std::span<const double> capacities,
                                std::span<const FlowDemand> flows,
                                bool& caps_only) const {
  caps_only = false;
  if (!valid_) return false;
  if (capacities.size() != capacities_.size() || flows.size() != flows_.size()) {
    return false;
  }
  if (!std::equal(capacities.begin(), capacities.end(), capacities_.begin())) {
    return false;
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].uses != flows_[i].uses) return false;
    const double cap = flows[i].rate_cap;
    if (cap == flows_[i].rate_cap) continue;
    // A rate cap moved.  The cached rates are still exact iff the flow was
    // frozen by a saturated resource (not clamped to its cap) and the new
    // cap keeps a strict epsilon margin above the flow's rate: then the cap
    // never wins the per-round delta minimisation and never trips the
    // cap-freeze test, so the whole delta sequence — and hence every rate —
    // is unchanged.  The degenerate all-blocked ending gives no such
    // guarantee, so it disables this path entirely.
    if (degenerate_ || frozen_by_cap_[i]) return false;
    if (cap != kNoCap && !(cap - rates_[i] > kEps * (1.0 + cap))) return false;
    caps_only = true;
  }
  return true;
}

const std::vector<double>& MaxMinSolver::solve(std::span<const double> capacities,
                                               std::span<const FlowDemand> flows) {
  ++stats_.calls;
  bool caps_only = false;
  if (cache_usable(capacities, flows, caps_only)) {
    if (caps_only) {
      ++stats_.cap_fast_hits;
      // Keep the cached problem in sync so the next call compares against
      // the caps the caller actually passed.
      for (std::size_t i = 0; i < flows.size(); ++i) {
        flows_[i].rate_cap = flows[i].rate_cap;
      }
    } else {
      ++stats_.cache_hits;
    }
    return rates_;
  }

  ++stats_.full_solves;
  capacities_.assign(capacities.begin(), capacities.end());
  // Element-wise copy so each cached FlowDemand's `uses` buffer is reused.
  flows_.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows_[i].rate_cap = flows[i].rate_cap;
    flows_[i].uses.assign(flows[i].uses.begin(), flows[i].uses.end());
  }
  waterfill();
  valid_ = true;
  return rates_;
}

void MaxMinSolver::waterfill() {
  const std::size_t nr = capacities_.size();
  const std::size_t nf = flows_.size();

  rates_.assign(nf, 0.0);
  frozen_by_cap_.assign(nf, false);
  degenerate_ = false;

  remaining_.assign(capacities_.begin(), capacities_.end());
  saturated_below_.resize(nr);
  for (std::size_t r = 0; r < nr; ++r) {
    SMR_CHECK_MSG(remaining_[r] >= 0.0, "negative capacity for resource " << r);
    saturated_below_[r] = kEps * (remaining_[r] + 1.0);
  }
  for (const auto& flow : flows_) {
    for (const auto& use : flow.uses) {
      SMR_CHECK_MSG(use.resource >= 0 && static_cast<std::size_t>(use.resource) < nr,
                    "flow uses unknown resource " << use.resource);
      SMR_CHECK(use.weight >= 0.0);
    }
  }

  auto resource_empty = [&](int r) {
    const auto idx = static_cast<std::size_t>(r);
    return remaining_[idx] <= saturated_below_[idx];
  };

  // Active flow indices, ascending — the same visit order as the oracle's
  // skip-the-frozen scans, so every floating-point accumulation happens in
  // the identical sequence.
  active_.clear();
  for (std::size_t i = 0; i < nf; ++i) {
    const auto& flow = flows_[i];
    bool dead = (flow.rate_cap != kNoCap && flow.rate_cap <= 0.0);
    if (dead) frozen_by_cap_[i] = true;
    for (const auto& use : flow.uses) {
      if (use.weight > 0.0 && resource_empty(use.resource)) dead = true;
    }
    if (!dead) active_.push_back(static_cast<std::uint32_t>(i));
  }

  sumw_.resize(nr);
  while (!active_.empty()) {
    std::fill(sumw_.begin(), sumw_.end(), 0.0);
    double delta = kInf;
    for (const std::uint32_t i : active_) {
      const auto& flow = flows_[i];
      if (flow.rate_cap != kNoCap) {
        delta = std::min(delta, flow.rate_cap - rates_[i]);
      }
      for (const auto& use : flow.uses) {
        sumw_[static_cast<std::size_t>(use.resource)] += use.weight;
      }
    }
    for (std::size_t r = 0; r < nr; ++r) {
      if (sumw_[r] > 0.0) delta = std::min(delta, remaining_[r] / sumw_[r]);
    }
    SMR_CHECK_MSG(std::isfinite(delta),
                  "max_min_allocate: unbounded flow (no cap and no finite resource)");
    delta = std::max(delta, 0.0);

    for (const std::uint32_t i : active_) rates_[i] += delta;
    for (std::size_t r = 0; r < nr; ++r) {
      remaining_[r] -= delta * sumw_[r];
      if (remaining_[r] < 0.0) remaining_[r] = 0.0;  // numerical guard
    }

    // Freeze flows that hit their cap or a saturated resource; stable
    // in-place compaction keeps `active_` ascending.
    const std::size_t before = active_.size();
    std::size_t out = 0;
    for (const std::uint32_t i : active_) {
      const auto& flow = flows_[i];
      bool freeze = false;
      if (flow.rate_cap != kNoCap &&
          rates_[i] >= flow.rate_cap - kEps * (1.0 + flow.rate_cap)) {
        rates_[i] = flow.rate_cap;
        frozen_by_cap_[i] = true;
        freeze = true;
      }
      for (const auto& use : flow.uses) {
        if (use.weight > 0.0 && resource_empty(use.resource)) freeze = true;
      }
      if (!freeze) active_[out++] = i;
    }
    SMR_CHECK_MSG(out < before || delta == 0.0,
                  "max_min_allocate failed to make progress");
    if (out == before && delta == 0.0) {
      // Degenerate: all remaining flows blocked at zero headroom.
      degenerate_ = true;
      active_.clear();
    } else {
      active_.resize(out);
    }
  }
}

}  // namespace smr::cluster
