// Per-node contention model: how fast each running task sub-phase
// progresses given everything else on the node.
//
// This is the substrate for the paper's central empirical fact (Section II-B,
// Fig. 1): aggregate task throughput rises with the number of working slots,
// then falls past a *thrashing point*, and the thrashing point differs per
// workload.  Three mechanisms produce the hump:
//
//   1. Core sharing + scheduling overhead: effective CPU capacity is
//      cores * thread_efficiency(threads), which declines slowly per thread
//      and faster once runnable threads exceed the core count.
//   2. Disk contention: concurrent streams share disk bandwidth and pay a
//      seek penalty per extra stream (spinning disks).
//   3. Memory paging: once the summed working sets exceed available memory,
//      a quadratic paging penalty hits both CPU and disk capacity — this is
//      the cliff that makes throughput *fall*, not just flatten.
//
// Workloads with heavy spill traffic and big working sets (reduce-heavy,
// e.g. Terasort) hit mechanisms 2 and 3 at low slot counts; lean map-heavy
// workloads (e.g. Grep) climb much further before thrashing — exactly the
// ordering in the paper's Fig. 1.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "smr/cluster/maxmin.hpp"
#include "smr/cluster/node.hpp"
#include "smr/common/types.hpp"

namespace smr::cluster {

/// One running task sub-phase on a node, expressed as demands per byte of
/// its own progress.
struct PhaseLoad {
  /// CPU-seconds (of a speed-1.0 core) per byte of progress.
  double cpu_per_byte = 0.0;
  /// Disk bytes (read + write combined) per byte of progress.
  double disk_per_byte = 0.0;
  /// External rate cap in bytes/s (e.g. a network grant for remote reads or
  /// shuffle); kNoCap if none.
  double rate_cap = kNoCap;
  /// Maximum cores a single thread can use (1.0 for ordinary tasks).
  double max_cores = 1.0;
};

/// Aggregated background load on a node that is not part of the flows being
/// solved (shuffle merge CPU, shuffle spill disk writes).
struct BackgroundLoad {
  double cpu_cores = 0.0;    // cores consumed
  double disk_rate = 0.0;    // bytes/s of disk bandwidth consumed
};

/// Node-level occupancy used for the efficiency factors.
struct Occupancy {
  int threads = 0;        // runnable threads (all resident task threads)
  int io_streams = 0;     // concurrent disk streams
  Bytes memory_demand = 0;  // summed working sets of resident tasks
};

class ComputeModel {
 public:
  /// Multiplicative CPU efficiency for `threads` runnable threads.
  static double thread_efficiency(const NodeSpec& node, int threads);

  /// Multiplicative slowdown once memory is oversubscribed (1.0 when the
  /// demand fits; < 1 beyond).
  static double paging_factor(const NodeSpec& node, Bytes memory_demand);

  /// Disk efficiency for `streams` concurrent I/O streams.
  static double disk_efficiency(const NodeSpec& node, int streams);

  /// Effective CPU capacity in speed-1.0 core-equivalents.
  static double effective_cpu(const NodeSpec& node, const Occupancy& occ);

  /// Effective disk bandwidth in bytes/s.
  static double effective_disk(const NodeSpec& node, const Occupancy& occ);

  /// Solve for the progress rate (bytes/s) of every sub-phase on one node.
  /// `background` is subtracted from capacity first (floored at a small
  /// positive remnant so foreground work always creeps forward).
  ///
  /// Stateless reference path ("oracle"); the stateful solve_cached() below
  /// is bit-identical and is what the runtime calls every tick.
  static std::vector<double> solve(const NodeSpec& node, const Occupancy& occ,
                                   const BackgroundLoad& background,
                                   std::span<const PhaseLoad> loads);

  /// Same result as solve(), but via a per-instance incremental MaxMinSolver:
  /// when a node's occupancy and loads are unchanged between ticks (the
  /// common steady-execution case) the water-filling pass is skipped
  /// entirely.  A raw-input memo short-circuits even earlier: if occupancy,
  /// background and every PhaseLoad compare bit-equal to the previous call,
  /// the cached rates are returned without converting loads to flows at all
  /// (identical raw inputs provably produce identical capacities and flows,
  /// hence the identical cached result).  Assumes the same NodeSpec on
  /// every call, which holds for the runtime's one-model-per-node layout.
  /// Keep one instance per simulated node; NOT thread-safe.  The returned
  /// reference is invalidated by the next call.
  const std::vector<double>& solve_cached(const NodeSpec& node, const Occupancy& occ,
                                          const BackgroundLoad& background,
                                          std::span<const PhaseLoad> loads);

  /// Solver counters with raw-input memo hits folded back in as calls +
  /// cache hits, so the totals match what the pre-memo path reported (a
  /// memo hit is exactly a call the solver would have answered from its
  /// own identical-inputs cache).
  MaxMinSolver::Stats solver_stats() const;

  /// Count an externally short-circuited call as a memo hit: the caller
  /// proved the raw inputs unchanged (e.g. the runtime's quiescent-node
  /// tick path) without materialising them, so the stats must read as if
  /// solve_cached had been called and hit.
  void count_memo_hit() { ++memo_hits_; }

 private:
  /// Translate one sub-phase load into a max-min flow (shared by the oracle
  /// and cached paths so the arithmetic is identical).
  static void load_to_flow(const NodeSpec& node, const PhaseLoad& load,
                           FlowDemand& flow);
  static std::array<double, 2> capacities_for(const NodeSpec& node,
                                              const Occupancy& occ,
                                              const BackgroundLoad& background);

  MaxMinSolver solver_;
  std::vector<FlowDemand> flows_scratch_;
  std::vector<double> empty_;
  // Raw-input memo (see solve_cached).
  bool memo_valid_ = false;
  Occupancy memo_occ_;
  BackgroundLoad memo_background_;
  std::vector<PhaseLoad> memo_loads_;
  std::vector<double> memo_rates_;
  std::uint64_t memo_hits_ = 0;
};

}  // namespace smr::cluster
