// Generic max-min fair allocation with multi-resource demands
// ("progressive filling" / water-filling).
//
// Each flow i consumes weight w_{i,r} units of resource r per unit of its
// own rate, and may additionally carry a per-flow rate cap.  The allocator
// raises all uncapped, unfrozen flow rates at the same pace; whenever a
// resource saturates, every flow using it freezes at the current level.
// This is the standard fluid model for fair CPU scheduling, disk sharing
// and per-port network sharing, and is used by both the per-node compute
// solver and the cluster-wide shuffle solver.
//
// Two entry points:
//   * max_min_allocate() — the reference ("oracle") implementation.  Kept
//     deliberately simple; the property suite and the incremental solver
//     are both validated against it.
//   * MaxMinSolver — a stateful solver for callers that re-solve the same
//     (slowly changing) problem every simulation tick.  It caches the last
//     solution and skips the water-filling pass entirely when the inputs
//     are unchanged, or when only non-binding rate caps moved (the common
//     shuffle case: caps track task backlogs while the network is the
//     actual bottleneck).  Every path is bit-for-bit identical to the
//     oracle — see docs/PERF.md for the dirtiness rules and why partial
//     per-resource re-solving was rejected.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::cluster {

struct ResourceUse {
  /// Index into the capacities array.
  int resource = 0;
  /// Units of that resource consumed per unit of flow rate.
  double weight = 1.0;

  friend bool operator==(const ResourceUse&, const ResourceUse&) = default;
};

struct FlowDemand {
  /// Upper bound on this flow's rate (use kNoCap for none).
  double rate_cap = 0.0;
  /// Resources this flow consumes, with weights.  Empty means the flow is
  /// only limited by its cap.
  std::vector<ResourceUse> uses;

  friend bool operator==(const FlowDemand&, const FlowDemand&) = default;
};

inline constexpr double kNoCap = -1.0;

/// Compute the max-min fair rates.  `capacities[r]` is the total capacity of
/// resource r (>= 0).  Returns one rate per flow (>= 0).  Weights must be
/// >= 0; zero-capacity resources freeze their users at rate 0.
std::vector<double> max_min_allocate(std::span<const double> capacities,
                                     std::span<const FlowDemand> flows);

/// Stateful incremental re-solver.  One instance per recurring problem
/// (e.g. one per simulated node, one per network model); NOT thread-safe.
class MaxMinSolver {
 public:
  struct Stats {
    /// Total solve() calls.
    std::uint64_t calls = 0;
    /// Calls answered from the cache because nothing changed.
    std::uint64_t cache_hits = 0;
    /// Calls answered from the cache because only provably non-binding
    /// rate caps changed (see solve() for the exact rule).
    std::uint64_t cap_fast_hits = 0;
    /// Calls that ran the full water-filling pass.
    std::uint64_t full_solves = 0;
  };

  /// Solve (or re-use the cached solution of) the max-min problem.  The
  /// returned reference is invalidated by the next solve() call.
  ///
  /// Results are bit-identical to max_min_allocate(capacities, flows) in
  /// every case:
  ///   1. Inputs identical to the previous call — return the cached rates.
  ///   2. Same capacities/uses and only rate caps changed, where every
  ///      changed cap belongs to a resource-frozen flow and keeps a strict
  ///      epsilon margin above that flow's rate — the water-filling delta
  ///      sequence is provably unchanged, so the cached rates are returned.
  ///   3. Anything else — full re-solve (identical arithmetic to the
  ///      oracle, with scratch buffers reused across calls).
  const std::vector<double>& solve(std::span<const double> capacities,
                                   std::span<const FlowDemand> flows);

  const Stats& stats() const { return stats_; }

  /// Drop the cached solution (tests; also useful after mutating shared
  /// state the solver cannot see).
  void invalidate() { valid_ = false; }

 private:
  bool cache_usable(std::span<const double> capacities,
                    std::span<const FlowDemand> flows, bool& caps_only) const;
  void waterfill();

  // Cached problem + solution.
  std::vector<double> capacities_;
  std::vector<FlowDemand> flows_;
  std::vector<double> rates_;
  /// frozen_by_cap_[i]: flow i's final rate equals (was clamped to) its
  /// cap, so any cap change invalidates it.  Resource-frozen flows admit
  /// the cap-slack fast path instead.
  std::vector<bool> frozen_by_cap_;
  /// The last solve hit the degenerate all-blocked branch; be conservative
  /// and never fast-path on top of it.
  bool degenerate_ = false;
  bool valid_ = false;

  // Water-filling scratch (reused across solves to avoid reallocation).
  std::vector<double> remaining_;
  std::vector<double> saturated_below_;
  std::vector<double> sumw_;
  std::vector<std::uint32_t> active_;

  Stats stats_;
};

}  // namespace smr::cluster
