// Generic max-min fair allocation with multi-resource demands
// ("progressive filling" / water-filling).
//
// Each flow i consumes weight w_{i,r} units of resource r per unit of its
// own rate, and may additionally carry a per-flow rate cap.  The allocator
// raises all uncapped, unfrozen flow rates at the same pace; whenever a
// resource saturates, every flow using it freezes at the current level.
// This is the standard fluid model for fair CPU scheduling, disk sharing
// and per-port network sharing, and is used by both the per-node compute
// solver and the cluster-wide shuffle solver.
#pragma once

#include <span>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::cluster {

struct ResourceUse {
  /// Index into the capacities array.
  int resource = 0;
  /// Units of that resource consumed per unit of flow rate.
  double weight = 1.0;
};

struct FlowDemand {
  /// Upper bound on this flow's rate (use kNoCap for none).
  double rate_cap = 0.0;
  /// Resources this flow consumes, with weights.  Empty means the flow is
  /// only limited by its cap.
  std::vector<ResourceUse> uses;
};

inline constexpr double kNoCap = -1.0;

/// Compute the max-min fair rates.  `capacities[r]` is the total capacity of
/// resource r (>= 0).  Returns one rate per flow (>= 0).  Weights must be
/// >= 0; zero-capacity resources freeze their users at rate 0.
std::vector<double> max_min_allocate(std::span<const double> capacities,
                                     std::span<const FlowDemand> flows);

}  // namespace smr::cluster
