// Hardware description of worker nodes and of the whole cluster.
//
// Defaults mirror the paper's testbed (Section V): 16 worker nodes, each
// with 4 quad-core 2.53 GHz CPUs (16 cores) and 32 GB RAM, connected by a
// 16-port GbE switch, HDFS on local disks.  The contention coefficients
// (scheduling overhead, seek penalty, paging penalty, incast behaviour) are
// the simulator's calibration knobs; tests in tests/cluster assert the
// qualitative behaviours the paper relies on (the thrashing hump and its
// per-workload ordering).
#pragma once

#include <string>
#include <vector>

#include "smr/common/error.hpp"
#include "smr/common/types.hpp"

namespace smr::cluster {

struct NodeSpec {
  /// Physical cores available to tasks.
  int cores = 16;

  /// Total RAM.
  Bytes memory = 32 * kGiB;

  /// RAM reserved for the OS, HDFS datanode and tracker daemons; tasks can
  /// use memory - os_reserved before paging sets in.
  Bytes os_reserved = 4 * kGiB;

  /// Aggregate sequential disk bandwidth of the node's local disk array.
  Rate disk_bandwidth = 160.0 * static_cast<double>(kMiB);

  /// NIC bandwidth, each direction (GbE payload after protocol overhead).
  Rate nic_bandwidth = 117.0 * static_cast<double>(kMiB);

  /// Per-runnable-thread efficiency loss (JVM, GC, context switching).
  /// Effective cores = cores / (1 + thread_overhead * (threads - 1)).
  double thread_overhead = 0.010;

  /// Extra penalty per runnable thread beyond the core count.
  double sched_overhead = 0.030;

  /// Disk efficiency loss per extra concurrent I/O stream (seek overhead on
  /// spinning disks): disk_eff = 1 / (1 + seek_overhead * (streams - 1)).
  double seek_overhead = 0.035;

  /// Severity of the paging penalty once task working sets exceed available
  /// memory: factor = 1 / (1 + paging_penalty * over^2) where
  /// over = demand/available - 1.
  double paging_penalty = 14.0;

  /// Relative CPU speed (1.0 = the paper's 2.53 GHz core).  Used by the
  /// heterogeneous-cluster extension.
  double cpu_speed = 1.0;

  Bytes available_memory() const { return memory - os_reserved; }

  void validate() const {
    SMR_CHECK(cores > 0);
    SMR_CHECK(memory > 0 && os_reserved >= 0 && os_reserved < memory);
    SMR_CHECK(disk_bandwidth > 0 && nic_bandwidth > 0);
    SMR_CHECK(thread_overhead >= 0 && sched_overhead >= 0);
    SMR_CHECK(seek_overhead >= 0 && paging_penalty >= 0);
    SMR_CHECK(cpu_speed > 0);
  }
};

struct NetworkSpec {
  /// Bisection bandwidth of the switching fabric.  The paper's single
  /// 16-port GbE switch is non-blocking, so this defaults to
  /// workers * nic_bandwidth; oversubscribed fabrics lower it.
  Rate fabric_bandwidth = 16.0 * 117.0 * static_cast<double>(kMiB);

  /// Concurrent fetch streams per receiving node above which TCP incast
  /// starts to reduce goodput.  The paper tunes RTO_min from 200 ms to 1 ms
  /// to soften incast; the default knee/decay model that regime.
  int incast_knee_streams = 12;

  /// Goodput efficiency loss per stream beyond the knee:
  /// eff = 1 / (1 + incast_overhead * max(0, streams - knee)).
  double incast_overhead = 0.08;

  void validate() const {
    SMR_CHECK(fabric_bandwidth > 0);
    SMR_CHECK(incast_knee_streams >= 1);
    SMR_CHECK(incast_overhead >= 0);
  }

  /// Goodput efficiency for a receiver with `streams` concurrent fetches.
  double incast_efficiency(int streams) const {
    if (streams <= incast_knee_streams) return 1.0;
    return 1.0 / (1.0 + incast_overhead * static_cast<double>(streams - incast_knee_streams));
  }
};

struct ClusterSpec {
  /// Worker (task tracker / node manager) nodes.  The job tracker and HDFS
  /// name node run on dedicated machines and are not modelled as resources.
  std::vector<NodeSpec> workers;

  NetworkSpec network;

  /// HDFS block replication factor.
  int dfs_replication = 3;

  /// HDFS block size; the paper sets 128 MB.
  Bytes dfs_block_size = 128 * kMiB;

  int worker_count() const { return static_cast<int>(workers.size()); }

  void validate() const {
    SMR_CHECK(!workers.empty());
    for (const auto& w : workers) w.validate();
    network.validate();
    SMR_CHECK(dfs_replication >= 1);
    SMR_CHECK(dfs_block_size > 0);
  }

  /// The paper's testbed: 16 homogeneous workers on a non-blocking GbE
  /// switch, 128 MB blocks, 3-way replication.
  static ClusterSpec paper_testbed(int worker_nodes = 16);

  /// Heterogeneous variant for the future-work extension: `fast` nodes at
  /// full speed and `slow` nodes at `slow_factor` CPU speed with half the
  /// memory.
  static ClusterSpec heterogeneous(int fast, int slow, double slow_factor = 0.5);
};

}  // namespace smr::cluster
