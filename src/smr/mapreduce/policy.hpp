// Slot/container allocation policies.
//
// The three systems the paper compares differ only in how many concurrent
// map/reduce tasks each node may run at a given moment:
//   * HadoopV1    — static, user-configured slot counts (StaticSlotPolicy).
//   * YARN        — container accounting with map priority and reduce
//                   ramp-up (smr::yarn::CapacityPolicy).
//   * SMapReduce  — the paper's slot manager (smr::core::SmrSlotPolicy).
// Policies receive heartbeat callbacks (per tracker, every heartbeat
// period) and periodic callbacks (cluster-wide, every policy period) and
// express decisions by setting tracker slot *targets*; the task tracker's
// lazy slot changer turns targets into actual slots.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "smr/common/types.hpp"
#include "smr/mapreduce/tracker.hpp"

namespace smr::obs {
class DecisionLog;
}

namespace smr::mapreduce {

/// Per-tracker statistics carried by heartbeats (Section III-C: "the task
/// trackers also supply statistics of the running tasks to the job
/// tracker"): cumulative byte counters per node, from which the slot
/// manager can window per-node rates.
struct NodeStats {
  NodeId node = kInvalidNode;
  bool alive = true;
  /// Blacklisted trackers take no new assignments and contribute no
  /// capacity to slot-policy targets (running tasks drain lazily).
  bool blacklisted = false;
  int running_maps = 0;
  int running_reduces = 0;
  double cum_map_input = 0.0;    // map input bytes processed on this node
  double cum_map_output = 0.0;   // map output bytes completed on this node
  double cum_shuffled_in = 0.0;  // bytes fetched by reducers on this node
  /// Input bytes of still-pending map tasks with a replica on this node.
  /// Filled only for policies returning wants_placement_stats() — walking
  /// every pending split's replica set is too expensive to do by default.
  double local_pending_input = 0.0;
};

/// Per-job census for multi-tenant allocators (Karma, GameCapacity).
/// Filled only for policies returning wants_job_stats().
struct JobStats {
  JobId job = kInvalidJob;
  std::string tenant;  // JobSpec::tenant ("" = default tenant)
  SimTime submit_time = 0.0;
  /// Absolute deadline (kTimeNever = none) for utility weighting.
  SimTime deadline = kTimeNever;
  int pending_maps = 0;
  int running_maps = 0;
  int pending_reduces = 0;
  int running_reduces = 0;
  /// Outstanding work: tasks not yet finished (pending + running).
  int demand() const {
    return pending_maps + running_maps + pending_reduces + running_reduces;
  }
};

/// Cluster-wide statistics snapshot offered to policies.  Rates are *not*
/// pre-computed: policies that need rates (the slot manager) window the
/// cumulative counters themselves, exactly as the paper's job tracker
/// aggregates heartbeat statistics (Section III-C).
struct ClusterStats {
  SimTime now = 0.0;
  int nodes = 0;

  // Task census over active (submitted, unfinished) jobs.
  int pending_maps = 0;
  int running_maps = 0;
  int finished_maps = 0;
  int total_maps = 0;
  int pending_reduces = 0;
  int running_reduces = 0;
  int total_reduces = 0;

  // Cumulative byte counters (all jobs, since simulation start).
  double cum_map_input = 0.0;    // map input bytes processed
  double cum_map_output = 0.0;   // map output bytes of *completed* maps
  double cum_shuffled = 0.0;     // bytes fetched by reduce tasks

  // Front job (earliest active) information for slow start and the
  // tail-stretch shuffle-size gate.
  double front_job_map_fraction = 1.0;  // fraction of its maps finished
  Bytes front_job_shuffle_volume = 0;   // its total map output volume
  bool has_active_job = false;

  /// Ids of active jobs, in submission order (YARN uses these to account
  /// for ApplicationMaster containers).
  std::vector<JobId> active_jobs;

  /// One entry per worker node, indexed by NodeId.
  std::vector<NodeStats> per_node;

  /// One entry per active job, in submission order.  Filled only for
  /// policies returning wants_job_stats().
  std::vector<JobStats> job_stats;
};

class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once before the simulation starts; trackers carry the
  /// user-configured initial targets at this point.
  virtual void on_start(std::span<TaskTracker> /*trackers*/) {}

  /// Called when `tracker` heartbeats.  May adjust that tracker's targets.
  virtual void on_heartbeat(TaskTracker& /*tracker*/, const ClusterStats& /*stats*/) {}

  /// Whether on_heartbeat() reads its ClusterStats argument.  Defaults to
  /// true (safe for any subclass); policies whose on_heartbeat is the
  /// inherited no-op return false so the runtime can skip the per-heartbeat
  /// cluster snapshot — the dominant control-plane cost on large clusters.
  /// Periodic on_period() snapshots are unaffected.
  virtual bool wants_heartbeat_stats() const { return true; }

  /// Whether the policy reads ClusterStats::job_stats.  Multi-tenant
  /// allocators return true; the default skips the per-job census.
  virtual bool wants_job_stats() const { return false; }

  /// Whether the policy reads NodeStats::local_pending_input (pending-split
  /// replica placement).  Locality-driven allocators return true; the
  /// default skips the replica walk.
  virtual bool wants_placement_stats() const { return false; }

  /// Called every policy period with all trackers (the slot manager thread
  /// in the paper's job tracker, Section IV-A).
  virtual void on_period(std::span<TaskTracker> /*trackers*/, const ClusterStats& /*stats*/) {}

  /// Attach a decision audit log (must outlive the policy).  Every
  /// allocator that takes periodic decisions appends structured records,
  /// which the CLIs export as decisions.csv.
  virtual void set_decision_log(obs::DecisionLog* log) { decision_log_ = log; }

  /// The policy's decision audit log, if one is attached.  The runtime
  /// mirrors new records into the trace as POLICY_DECISION events.
  virtual const obs::DecisionLog* decision_log() const { return decision_log_; }

  /// Optional per-job concurrency caps, indexed by JobId (entries past the
  /// end, or -1, mean unlimited).  The runtime skips assignment to a job
  /// whose in-flight task count has reached its cap — this is how tenant-
  /// level allocators (Karma, GameCapacity) apportion the shared slot pool
  /// without touching tracker targets.  The cap binds each phase
  /// separately (in-flight maps for map assignment, in-flight reduces for
  /// reduce assignment): map and reduce slots are distinct pools, and a
  /// combined count would deadlock once early-launched reduces sitting in
  /// shuffle hold the whole cap against the maps they are waiting for.
  /// Speculative relaunches of already assigned tasks are not capped.
  virtual const std::vector<int>* job_task_caps() const { return nullptr; }

  /// Per-tenant credit balances for credit-based allocators (Karma);
  /// sorted by tenant name.  Empty for every other policy.
  virtual std::vector<std::pair<std::string, double>> credit_balances() const {
    return {};
  }

 protected:
  obs::DecisionLog* decision_log_ = nullptr;
};

/// HadoopV1: the initial slot configuration, never changed at runtime.
class StaticSlotPolicy final : public AllocationPolicy {
 public:
  std::string name() const override { return "HadoopV1"; }
  bool wants_heartbeat_stats() const override { return false; }
};

}  // namespace smr::mapreduce
