// The sharded parallel tick: conservative time-window execution of the
// fluid data plane over node shards (docs/PERF.md §7).
//
// The cluster's worker nodes are partitioned into contiguous shards.  Each
// tick is one conservative window: the fluid step's lookahead is the tick
// itself, which is strictly below the minimum cross-shard interaction
// latency (control-plane effects — assignments, requeues — only happen on
// heartbeats, and data-plane coupling inside the tick is mediated by the
// single global network solve at the window edge).  Within the window every
// shard advances its own nodes on the thread pool; at the barrier the
// cross-shard effects are applied serially in shard order.
//
// Byte-identity with the serial tick is by construction, not by tolerance:
//   * Shards are contiguous node ranges, so concatenating per-shard output
//     in shard order reproduces the serial node order exactly — flows for
//     the network solve, compute entries, trace events.
//   * Job-level floating-point accumulators (bytes_shuffled,
//     map_input_processed, the cluster cum_* totals) are never touched
//     inside the window.  Each shard records one (job, delta) mailbox entry
//     per task touch; the barrier replays the mailboxes in (shard, seq)
//     order, which is the serial accumulation order, so every sum is
//     bit-for-bit the serial sum.
//   * Completions, settles and doomed attempts are merged and sorted by
//     task id before the serial application loop — exactly what the serial
//     path does with its own node-ordered lists.
//   * The per-node solver instances and their memo caches are owned by the
//     node's shard, so solver call/hit counters are identical too.
// None of this depends on the pool size: a 1-thread (inline) pool runs the
// shards serially in shard order with the same merge, so any thread count
// produces the same bytes for a fixed shard count.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "smr/common/thread_pool.hpp"
#include "smr/mapreduce/runtime.hpp"

namespace smr::mapreduce {

namespace {
constexpr double kByteEps = 1.0;  // one byte of slack on fluid comparisons

double per_mib_to_per_byte(double per_mib) {
  return per_mib / static_cast<double>(kMiB);
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void Runtime::setup_shards() {
  const int n = config_.cluster.worker_count();
  const int requested = config_.shard_count;
  const int count = std::min(requested, n);
  if (count <= 1) return;  // serial tick path
  shards_.clear();
  shards_.resize(static_cast<std::size_t>(count));
  shard_stats_.assign(static_cast<std::size_t>(count), ShardStats{});
  node_shard_.assign(static_cast<std::size_t>(n), 0);
  shard_phase_dirty_.assign(static_cast<std::size_t>(count), 1);
  for (int s = 0; s < count; ++s) {
    ShardScratch& shard = shards_[static_cast<std::size_t>(s)];
    shard.index = s;
    shard.node_lo = static_cast<NodeId>(s * n / count);
    shard.node_hi = static_cast<NodeId>((s + 1) * n / count);
    ShardStats& stats = shard_stats_[static_cast<std::size_t>(s)];
    stats.shard = s;
    stats.node_begin = shard.node_lo;
    stats.node_end = shard.node_hi;
    for (NodeId d = shard.node_lo; d < shard.node_hi; ++d) {
      node_shard_[static_cast<std::size_t>(d)] = static_cast<std::uint16_t>(s);
    }
  }
  if (pool_ == nullptr) pool_ = &default_thread_pool();
}

// --- Stage A: per-shard census (the serial resolve pass over one shard) ----

void Runtime::shard_census(ShardScratch& s, bool detect_doom) {
  const auto lo = static_cast<std::size_t>(s.node_lo);
  const auto hi = static_cast<std::size_t>(s.node_hi);
  const std::size_t local_n = hi - lo;
  if (detect_doom) {
    s.doomed_maps.clear();
    s.doomed_reduces.clear();
  }
  std::uint64_t vsum = 0;
  for (std::size_t d = lo; d < hi; ++d) vsum += trackers_[d].version();
  const bool same_membership =
      vsum == s.resolve_version_sum && jobs_.size() == s.resolve_jobs_size;
  const bool dirty = shard_phase_dirty_[static_cast<std::size_t>(s.index)] != 0;
  // Shard-level quiescence, mirroring the serial skip: unchanged running
  // lists, no phase change on any owned node, no doom scan pending — the
  // scratch still holds this shard's previous census, which is identical.
  if (same_membership && !dirty && !detect_doom) return;
  shard_phase_dirty_[static_cast<std::size_t>(s.index)] = 0;
  s.settle_primaries.clear();
  s.settle_shadows.clear();
  s.shuffle_entries.clear();
  s.remote_entries.clear();
  s.occ.assign(local_n, cluster::Occupancy{});
  s.node_has_remote.assign(local_n, 0);
  if (!same_membership) {
    s.resolve_version_sum = vsum;
    s.resolve_jobs_size = jobs_.size();
    s.map_id.clear();
    s.map_task.clear();
    s.map_job.clear();
    s.map_spec.clear();
    s.red_id.clear();
    s.red_task.clear();
    s.red_job.clear();
    s.red_spec.clear();
    s.map_range.clear();
    s.red_range.clear();
    for (std::size_t d = lo; d < hi; ++d) {
      const auto li = d - lo;
      const auto& tracker = trackers_[d];
      auto& o = s.occ[li];
      const auto map_begin = static_cast<std::uint32_t>(s.map_id.size());
      for (TaskId id : tracker.running_map_tasks()) {
        const TaskRef& ref = task_refs_[static_cast<std::size_t>(id)];
        Job* job = &jobs_[static_cast<std::size_t>(ref.job)];
        MapTask* task =
            ref.speculative
                ? &map_shadow_pool_[static_cast<std::size_t>(ref.shadow_slot)]
                : &job->maps[static_cast<std::size_t>(ref.index)];
        const auto entry = static_cast<std::uint32_t>(s.map_id.size());
        s.map_id.push_back(id);
        s.map_task.push_back(task);
        s.map_job.push_back(job);
        s.map_spec.push_back(&job->spec);
        const bool remote_mapping =
            task->phase == MapPhase::kMapping && !task->local;
        o.threads += 1;
        o.io_streams += remote_mapping ? 0 : 1;
        o.memory_demand += job->spec.map_task_memory;
        if (remote_mapping) {
          s.node_has_remote[li] = 1;
          s.remote_entries.push_back(entry);
        }
        if (detect_doom && task->progress() >= task->fail_at_progress) {
          s.doomed_maps.push_back(id);
        }
      }
      s.map_range.emplace_back(map_begin,
                               static_cast<std::uint32_t>(s.map_id.size()));
      const auto red_begin = static_cast<std::uint32_t>(s.red_id.size());
      for (TaskId id : tracker.running_reduce_tasks()) {
        const TaskRef& ref = task_refs_[static_cast<std::size_t>(id)];
        Job* job = &jobs_[static_cast<std::size_t>(ref.job)];
        ReduceTask* task =
            ref.speculative
                ? &reduce_shadow_pool_[static_cast<std::size_t>(ref.shadow_slot)]
                : &job->reduces[static_cast<std::size_t>(ref.index)];
        const auto entry = static_cast<std::uint32_t>(s.red_id.size());
        s.red_id.push_back(id);
        s.red_task.push_back(task);
        s.red_job.push_back(job);
        s.red_spec.push_back(&job->spec);
        const bool shuffling = task->phase == ReducePhase::kShuffling;
        o.threads += shuffling ? 2 : 1;
        o.io_streams += 1;
        o.memory_demand += job->spec.reduce_task_memory;
        if (shuffling) {
          s.shuffle_entries.push_back(entry);
          (ref.speculative ? s.settle_shadows : s.settle_primaries)
              .push_back(id);
        }
        if (detect_doom && task->progress() >= task->fail_at_progress) {
          s.doomed_reduces.push_back(id);
        }
      }
      s.red_range.emplace_back(red_begin,
                               static_cast<std::uint32_t>(s.red_id.size()));
    }
  } else {
    // Membership unchanged: phase-dependent sweep over the cached arrays.
    for (std::size_t d = lo; d < hi; ++d) {
      const auto li = d - lo;
      auto& o = s.occ[li];
      const auto [mb, me] = s.map_range[li];
      for (std::uint32_t i = mb; i < me; ++i) {
        const MapTask* task = s.map_task[i];
        const bool remote_mapping =
            task->phase == MapPhase::kMapping && !task->local;
        o.threads += 1;
        o.io_streams += remote_mapping ? 0 : 1;
        o.memory_demand += s.map_spec[i]->map_task_memory;
        if (remote_mapping) {
          s.node_has_remote[li] = 1;
          s.remote_entries.push_back(i);
        }
        if (detect_doom && task->progress() >= task->fail_at_progress) {
          s.doomed_maps.push_back(s.map_id[i]);
        }
      }
      const auto [rb, re] = s.red_range[li];
      for (std::uint32_t i = rb; i < re; ++i) {
        const ReduceTask* task = s.red_task[i];
        const bool shuffling = task->phase == ReducePhase::kShuffling;
        o.threads += shuffling ? 2 : 1;
        o.io_streams += 1;
        o.memory_demand += s.red_spec[i]->reduce_task_memory;
        if (shuffling) {
          const TaskId id = s.red_id[i];
          s.shuffle_entries.push_back(i);
          (task_refs_[static_cast<std::size_t>(id)].speculative
               ? s.settle_shadows
               : s.settle_primaries)
              .push_back(id);
        }
        if (detect_doom && task->progress() >= task->fail_at_progress) {
          s.doomed_reduces.push_back(s.red_id[i]);
        }
      }
    }
  }
}

// --- Stage B: per-shard flow collection ------------------------------------

void Runtime::shard_collect_flows(ShardScratch& s) {
  const double dt = config_.tick;
  const int n = config_.cluster.worker_count();
  const auto lo = static_cast<std::size_t>(s.node_lo);
  const auto hi = static_cast<std::size_t>(s.node_hi);
  s.flows.clear();
  s.flow_entry.clear();
  s.flow_is_shuffle.clear();
  for (std::size_t d = lo; d < hi; ++d) tick_.fetch_streams[d] = 0;
  std::size_t sp = 0;
  std::size_t rp = 0;
  for (std::size_t d = lo; d < hi; ++d) {
    const auto li = d - lo;
    const NodeId dst = trackers_[d].node();
    const std::uint32_t re = s.red_range[li].second;
    for (; sp < s.shuffle_entries.size() && s.shuffle_entries[sp] < re; ++sp) {
      const std::uint32_t i = s.shuffle_entries[sp];
      const ReduceTask& task = *s.red_task[i];
      if (task.backlog() <= kByteEps) continue;
      tick_.fetch_streams[static_cast<std::size_t>(dst)] +=
          std::min(config_.parallel_copies, n);
      const JobSpec& spec = *s.red_spec[i];
      cluster::NetFlow flow;
      flow.dst = dst;
      flow.src = kInvalidNode;  // diffuse pull from every node
      flow.rate_cap = std::min(task.backlog() / dt, spec.shuffle_fetch_cap);
      s.flows.push_back(flow);
      s.flow_entry.push_back(i);
      s.flow_is_shuffle.push_back(1);
    }
    const std::uint32_t me = s.map_range[li].second;
    for (; rp < s.remote_entries.size() && s.remote_entries[rp] < me; ++rp) {
      const std::uint32_t i = s.remote_entries[rp];
      const MapTask& task = *s.map_task[i];
      const JobSpec& spec = *s.map_spec[i];
      const auto& node_spec = config_.cluster.workers[static_cast<std::size_t>(dst)];
      const double cpu_per_byte =
          per_mib_to_per_byte(spec.map_cpu_per_mib) * task.cost_factor;
      const double cpu_rate = node_spec.cpu_speed / cpu_per_byte;
      cluster::NetFlow flow;
      flow.dst = dst;
      flow.src = task.src_node;
      flow.rate_cap = std::min(task.phase_remaining() / dt, cpu_rate);
      s.flows.push_back(flow);
      s.flow_entry.push_back(i);
      s.flow_is_shuffle.push_back(0);
    }
  }
}

// --- Stage C: per-shard disk cap, background, solves, integration ----------

void Runtime::shard_solve_integrate(ShardScratch& s) {
  const double dt = config_.tick;
  TickScratch& t = tick_;
  const auto lo = static_cast<std::size_t>(s.node_lo);
  const auto hi = static_cast<std::size_t>(s.node_hi);
  const std::size_t local_n = hi - lo;

  // 3. Cap shuffle ingest by each owned receiver's disk share.  Every flow
  // into an owned node was collected by this shard, so the local demand is
  // the full demand.
  s.shuffle_disk_demand.assign(local_n, 0.0);
  for (std::size_t f = 0; f < s.flows.size(); ++f) {
    if (!s.flow_is_shuffle[f]) continue;
    const JobSpec& spec = *s.red_spec[s.flow_entry[f]];
    s.shuffle_disk_demand[static_cast<std::size_t>(s.flows[f].dst) - lo] +=
        t.net_rates[s.flow_base + f] * spec.shuffle_disk_factor;
  }
  s.shuffle_scale.assign(local_n, 1.0);
  for (std::size_t d = lo; d < hi; ++d) {
    const auto li = d - lo;
    const auto& node_spec = config_.cluster.workers[d];
    const double allowed =
        config_.shuffle_disk_share *
        cluster::ComputeModel::effective_disk(node_spec, s.occ[li]);
    const double demand = s.shuffle_disk_demand[li];
    if (demand > allowed && demand > 0.0) {
      s.shuffle_scale[li] = allowed / demand;
    }
  }
  for (std::size_t f = 0; f < s.flows.size(); ++f) {
    if (s.flow_is_shuffle[f]) {
      t.net_rates[s.flow_base + f] *=
          s.shuffle_scale[static_cast<std::size_t>(s.flows[f].dst) - lo];
    }
  }

  // 4. Background load from shuffle ingest on owned nodes.
  s.background.assign(local_n, cluster::BackgroundLoad{});
  for (std::size_t f = 0; f < s.flows.size(); ++f) {
    if (!s.flow_is_shuffle[f]) continue;
    const JobSpec& spec = *s.red_spec[s.flow_entry[f]];
    auto& bg = s.background[static_cast<std::size_t>(s.flows[f].dst) - lo];
    bg.cpu_cores +=
        t.net_rates[s.flow_base + f] * per_mib_to_per_byte(spec.shuffle_cpu_per_mib);
    bg.disk_rate += t.net_rates[s.flow_base + f] * spec.shuffle_disk_factor;
  }

  // 5. Per-node compute solve over owned nodes (the node models, their memo
  // caches and the per-node quiescence state are all owned by this shard).
  s.compute.clear();
  for (std::size_t d = lo; d < hi; ++d) {
    const auto li = d - lo;
    const auto& node_spec = config_.cluster.workers[d];
    const auto& tracker = trackers_[d];
    const cluster::BackgroundLoad& bg = s.background[li];
    const bool quiet = !node_dirty_[d] &&
                       tracker.version() == node_solve_version_[d] &&
                       !s.node_has_remote[li] &&
                       bg.cpu_cores == node_bg_prev_[d].cpu_cores &&
                       bg.disk_rate == node_bg_prev_[d].disk_rate;
    if (quiet) {
      const std::vector<double>& cache = node_rates_cache_[d];
      if (cache.empty()) continue;  // no loads last tick, none now
      std::size_t k = 0;
      const auto [mb, me] = s.map_range[li];
      for (std::uint32_t i = mb; i < me; ++i) {
        s.compute.push_back({i, true, cache[k++]});
      }
      const auto [rb, re] = s.red_range[li];
      for (std::uint32_t i = rb; i < re; ++i) {
        if (s.red_task[i]->phase == ReducePhase::kShuffling) continue;
        s.compute.push_back({i, false, cache[k++]});
      }
      SMR_CHECK(k == cache.size());
      node_models_[d].count_memo_hit();
      continue;
    }
    node_dirty_[d] = 0;
    node_solve_version_[d] = tracker.version();
    node_bg_prev_[d] = bg;
    s.loads.clear();
    s.load_entry.clear();
    s.load_is_map.clear();
    const auto [mb, me] = s.map_range[li];
    for (std::uint32_t i = mb; i < me; ++i) {
      const MapTask& task = *s.map_task[i];
      const JobSpec& spec = *s.map_spec[i];
      cluster::PhaseLoad load;
      if (task.phase == MapPhase::kMapping) {
        load.cpu_per_byte = per_mib_to_per_byte(spec.map_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = task.local ? 1.0 : 0.0;
        if (!task.local) {
          const auto id = static_cast<std::size_t>(s.map_id[i]);
          load.rate_cap = net_grant_epoch_[id] == net_grant_cur_epoch_
                              ? net_grant_rate_[id]
                              : 0.0;
        }
      } else if (task.phase == MapPhase::kCombining) {
        load.cpu_per_byte =
            per_mib_to_per_byte(spec.combine_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = 0.3;
      } else {  // kSpilling: progress in output bytes
        load.cpu_per_byte = per_mib_to_per_byte(spec.spill_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = spec.spill_disk_factor;
      }
      s.loads.push_back(load);
      s.load_entry.push_back(i);
      s.load_is_map.push_back(1);
    }
    const auto [rb, re] = s.red_range[li];
    for (std::uint32_t i = rb; i < re; ++i) {
      const ReduceTask& task = *s.red_task[i];
      const JobSpec& spec = *s.red_spec[i];
      if (task.phase == ReducePhase::kShuffling) continue;  // network-driven
      cluster::PhaseLoad load;
      if (task.phase == ReducePhase::kSorting) {
        load.cpu_per_byte = per_mib_to_per_byte(spec.sort_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = spec.sort_disk_factor;
      } else {  // kReducing
        load.cpu_per_byte = per_mib_to_per_byte(spec.reduce_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = 1.0 + spec.reduce_selectivity * spec.output_disk_factor;
      }
      s.loads.push_back(load);
      s.load_entry.push_back(i);
      s.load_is_map.push_back(0);
    }
    if (s.loads.empty()) {
      node_rates_cache_[d].clear();
      continue;
    }
    const std::vector<double>& rates =
        node_models_[d].solve_cached(node_spec, s.occ[li], bg, s.loads);
    node_rates_cache_[d].assign(rates.begin(), rates.end());
    for (std::size_t i = 0; i < s.loads.size(); ++i) {
      s.compute.push_back({s.load_entry[i], s.load_is_map[i] != 0, rates[i]});
    }
  }

  // 6. Integrate progress on owned tasks; cross-shard (job-level) float
  // accumulation and trace events go to the mailboxes.
  s.shuffle_deltas.clear();
  s.map_input_deltas.clear();
  s.trace_events.clear();
  s.finished_maps.clear();
  s.finished_reduces.clear();
  const bool tracing = trace_ != nullptr;
  auto mark_owned_dirty = [&](NodeId node) {
    s.phase_dirty = true;
    node_dirty_[static_cast<std::size_t>(node)] = 1;
  };
  auto buffer_trace = [&](JobId job, TaskId task, NodeId node, bool is_map,
                          const char* detail) {
    if (tracing) {
      s.trace_events.push_back({metrics::TraceEventKind::kPhaseStarted, job,
                                task, node, is_map, detail});
    }
  };

  for (std::size_t f = 0; f < s.flows.size(); ++f) {
    if (!s.flow_is_shuffle[f]) continue;
    ReduceTask& task = *s.red_task[s.flow_entry[f]];
    Job* job = s.red_job[s.flow_entry[f]];
    const double delta =
        std::min(t.net_rates[s.flow_base + f] * dt, task.backlog());
    if (delta <= 0.0) continue;
    task.fetched += delta;
    node_shuffled_in_[static_cast<std::size_t>(s.flows[f].dst)] += delta;
    s.shuffle_deltas.push_back({job, delta});
  }

  for (const auto& c : s.compute) {
    if (c.is_map) {
      MapTask& task = *s.map_task[c.entry];
      Job* job = s.map_job[c.entry];
      double advance = std::min(c.rate * dt, task.phase_remaining());
      if (task.phase == MapPhase::kMapping) {
        task.phase_done += advance;
        node_map_input_[static_cast<std::size_t>(task.node)] += advance;
        s.map_input_deltas.push_back({job, advance});
        if (task.phase_remaining() <= kByteEps) {
          task.phase_done = task.phase_total();
          if (task.combine_total > 0) {
            task.phase = MapPhase::kCombining;
            task.phase_done = 0.0;
            mark_owned_dirty(task.node);
            buffer_trace(task.job, task.id, task.node, true, "COMBINE");
          } else if (task.output_size > 0) {
            task.phase = MapPhase::kSpilling;
            task.phase_done = 0.0;
            mark_owned_dirty(task.node);
            buffer_trace(task.job, task.id, task.node, true, "SPILL");
          } else {
            s.finished_maps.push_back(s.map_id[c.entry]);
          }
        }
      } else if (task.phase == MapPhase::kCombining) {
        task.phase_done += advance;
        if (task.phase_remaining() <= kByteEps) {
          if (task.output_size > 0) {
            task.phase = MapPhase::kSpilling;
            task.phase_done = 0.0;
            mark_owned_dirty(task.node);
            buffer_trace(task.job, task.id, task.node, true, "SPILL");
          } else {
            s.finished_maps.push_back(s.map_id[c.entry]);
          }
        }
      } else if (task.phase == MapPhase::kSpilling) {
        task.phase_done += advance;
        if (task.phase_remaining() <= kByteEps) {
          s.finished_maps.push_back(s.map_id[c.entry]);
        }
      }
    } else {
      ReduceTask& task = *s.red_task[c.entry];
      double advance = c.rate * dt;
      const double total = static_cast<double>(task.partition_size);
      if (task.phase == ReducePhase::kSorting) {
        task.phase_done = std::min(task.phase_done + advance, total);
        if (total - task.phase_done <= kByteEps) {
          task.phase = ReducePhase::kReducing;
          task.phase_done = 0.0;
          mark_owned_dirty(task.node);
          buffer_trace(task.job, task.id, task.node, false, "REDUCE");
        }
      } else if (task.phase == ReducePhase::kReducing) {
        task.phase_done = std::min(task.phase_done + advance, total);
        if (total - task.phase_done <= kByteEps) {
          s.finished_reduces.push_back(s.red_id[c.entry]);
        }
      }
    }
  }

  // Window-occupancy accounting (deterministic; shard-owned stats row).
  const std::uint64_t entries =
      static_cast<std::uint64_t>(s.map_id.size() + s.red_id.size());
  s.stat_entries += entries;
  ++s.stat_windows;
  ShardStats& stats = shard_stats_[static_cast<std::size_t>(s.index)];
  stats.entries += entries;
  ++stats.windows;
  stats.entries_peak = std::max(stats.entries_peak, entries);
}

// --- The window driver ------------------------------------------------------

void Runtime::on_tick_sharded() {
  const int n = config_.cluster.worker_count();
  TickScratch& t = tick_;

  // Fan a stage out over the shards and account barrier stall: the gap
  // between a shard finishing its work and the slowest shard closing the
  // window.  An inline pool runs the shards serially in shard order, which
  // changes only the stall numbers, never the simulation output.
  TaskGroup group(*pool_);
  auto run_window = [&](const std::function<void(ShardScratch&)>& stage) {
    for (ShardScratch& s : shards_) {
      ShardScratch* sp = &s;
      group.submit([sp, &stage] {
        stage(*sp);
        sp->stage_end = wall_seconds();
      });
    }
    group.wait();
    double window_end = 0.0;
    for (const ShardScratch& s : shards_) {
      window_end = std::max(window_end, s.stage_end);
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shard_stats_[i].barrier_stall_s += window_end - shards_[i].stage_end;
    }
  };

  // --- A. Census windows (re-run after doomed-attempt teardown) ----------
  bool detect_doom = config_.task_fail_rate > 0.0;
  for (;;) {
    run_window([this, detect_doom](ShardScratch& s) {
      shard_census(s, detect_doom);
    });
    if (!detect_doom) break;
    t.doomed_maps.clear();
    t.doomed_reduces.clear();
    for (const ShardScratch& s : shards_) {
      t.doomed_maps.insert(t.doomed_maps.end(), s.doomed_maps.begin(),
                           s.doomed_maps.end());
      t.doomed_reduces.insert(t.doomed_reduces.end(), s.doomed_reduces.begin(),
                              s.doomed_reduces.end());
    }
    if (t.doomed_maps.empty() && t.doomed_reduces.empty()) break;
    detect_doom = false;  // one detection round per tick, as in the serial path
    fail_doomed_attempts();
    if (stopping_) return;  // the last failure may have failed the last job
  }

  // --- B. Flow collection window + the single global network solve -------
  if (t.fetch_streams.size() != static_cast<std::size_t>(n)) {
    t.fetch_streams.assign(static_cast<std::size_t>(n), 0);
  }
  run_window([this](ShardScratch& s) { shard_collect_flows(s); });
  t.flows.clear();
  for (ShardScratch& s : shards_) {
    s.flow_base = t.flows.size();
    t.flows.insert(t.flows.end(), s.flows.begin(), s.flows.end());
  }
  {
    const std::vector<double>& granted =
        network_.allocate_cached(t.flows, t.fetch_streams);
    t.net_rates.assign(granted.begin(), granted.end());
  }
  // Remote-read map grants (epoch-stamped, exactly the serial stage-5
  // prologue; shuffle rescaling never touches non-shuffle rates, so
  // stamping before the disk-cap stage reads identical values).
  ++net_grant_cur_epoch_;
  if (net_grant_rate_.size() < static_cast<std::size_t>(next_task_id_)) {
    net_grant_rate_.resize(static_cast<std::size_t>(next_task_id_), 0.0);
    net_grant_epoch_.resize(static_cast<std::size_t>(next_task_id_), 0);
  }
  for (const ShardScratch& s : shards_) {
    for (std::size_t f = 0; f < s.flows.size(); ++f) {
      if (s.flow_is_shuffle[f]) continue;
      const auto id = static_cast<std::size_t>(s.map_id[s.flow_entry[f]]);
      net_grant_rate_[id] = t.net_rates[s.flow_base + f];
      net_grant_epoch_[id] = net_grant_cur_epoch_;
    }
  }

  // --- C. Solve + integrate window ---------------------------------------
  run_window([this](ShardScratch& s) { shard_solve_integrate(s); });

  // --- D. Barrier: drain the mailboxes in shard order ---------------------
  // (shard, seq) order equals node order equals the serial accumulation
  // order, so the job-level and cluster-level sums are bit-identical.
  for (ShardScratch& s : shards_) {
    for (const ShardScratch::FpDelta& e : s.shuffle_deltas) {
      e.job->bytes_shuffled += e.delta;
      cum_shuffled_ += e.delta;
    }
  }
  for (ShardScratch& s : shards_) {
    for (const ShardScratch::FpDelta& e : s.map_input_deltas) {
      e.job->map_input_processed += e.delta;
      cum_map_input_ += e.delta;
    }
  }
  for (ShardScratch& s : shards_) {
    if (s.phase_dirty) {
      s.phase_dirty = false;
      census_phase_dirty_ = true;
      shard_phase_dirty_[static_cast<std::size_t>(s.index)] = 1;
    }
    for (const ShardScratch::TraceBuf& ev : s.trace_events) {
      trace_event(ev.kind, ev.job, ev.task, ev.node, ev.is_map, ev.detail);
    }
    s.trace_events.clear();
  }

  // Completions: merge, sort by id, apply — the serial tail verbatim.
  t.finished_maps.clear();
  t.finished_reduces.clear();
  for (const ShardScratch& s : shards_) {
    t.finished_maps.insert(t.finished_maps.end(), s.finished_maps.begin(),
                           s.finished_maps.end());
    t.finished_reduces.insert(t.finished_reduces.end(),
                              s.finished_reduces.begin(),
                              s.finished_reduces.end());
  }
  std::sort(t.finished_maps.begin(), t.finished_maps.end());
  std::sort(t.finished_reduces.begin(), t.finished_reduces.end());
  for (TaskId id : t.finished_maps) {
    const TaskRef* ref_it = find_task_ref(id);
    if (ref_it == nullptr) continue;  // shadow retired this tick
    const TaskRef& ref = *ref_it;
    if (ref.speculative) {
      win_speculative(id);
      continue;
    }
    MapTask& task = map_task(id);
    if (task.phase == MapPhase::kDone) continue;  // shadow won this tick
    complete_map(job_of(task.job), task, id);
  }
  for (TaskId id : t.finished_reduces) {
    const TaskRef* ref_it = find_task_ref(id);
    if (ref_it == nullptr) continue;  // shadow retired this tick
    if (ref_it->speculative) {
      win_speculative_reduce(id);
      continue;
    }
    ReduceTask& task = reduce_task(id);
    if (task.phase == ReducePhase::kDone) continue;  // shadow won this tick
    complete_reduce(job_of(task.job), task, id);
  }

  // Settles: merge the shard candidate lists, sort, apply (primaries before
  // shadows, ascending id — the serial order).
  t.settle_primaries.clear();
  t.settle_shadows.clear();
  for (const ShardScratch& s : shards_) {
    t.settle_primaries.insert(t.settle_primaries.end(),
                              s.settle_primaries.begin(),
                              s.settle_primaries.end());
    t.settle_shadows.insert(t.settle_shadows.end(), s.settle_shadows.begin(),
                            s.settle_shadows.end());
  }
  std::sort(t.settle_primaries.begin(), t.settle_primaries.end());
  for (TaskId id : t.settle_primaries) {
    const TaskRef& ref = task_refs_[static_cast<std::size_t>(id)];
    Job& job = jobs_[static_cast<std::size_t>(ref.job)];
    ReduceTask& task = job.reduces[static_cast<std::size_t>(ref.index)];
    if (!task.running() || task.phase != ReducePhase::kShuffling) continue;
    settle_reduce(job, task);
  }
  if (!t.settle_shadows.empty()) {
    std::sort(t.settle_shadows.begin(), t.settle_shadows.end());
    for (TaskId id : t.settle_shadows) {
      const TaskRef* ref = find_task_ref(id);
      if (ref == nullptr) continue;
      ReduceTask& task =
          reduce_shadow_pool_[static_cast<std::size_t>(ref->shadow_slot)];
      if (task.phase != ReducePhase::kShuffling) continue;
      settle_reduce(job_of(task.job), task);
    }
  }

  check_all_done();
}

void write_shard_stats_json(const Runtime& runtime, std::ostream& out) {
  // Fixed-precision decimals throughout (never scientific notation): the
  // consumers are smr_inspect and ad-hoc scripts, neither of which should
  // have to parse "1.4e+06".
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::fixed;
  const auto series = [&out](const std::vector<std::pair<SimTime, double>>& s) {
    out << '[';
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i > 0) out << ',';
      out << '[' << std::setprecision(3) << s[i].first << ','
          << std::setprecision(6) << s[i].second << ']';
    }
    out << ']';
  };
  out << "{\"shard_count\":" << runtime.shard_count() << ",\"shards\":[";
  bool first = true;
  for (const Runtime::ShardStats& s : runtime.shard_stats()) {
    if (!first) out << ',';
    first = false;
    const double mean_occupancy =
        s.windows > 0 ? static_cast<double>(s.entries) /
                            static_cast<double>(s.windows)
                      : 0.0;
    out << "{\"shard\":" << s.shard << ",\"node_begin\":" << s.node_begin
        << ",\"node_end\":" << s.node_end << ",\"windows\":" << s.windows
        << ",\"entries\":" << s.entries
        << ",\"entries_peak\":" << s.entries_peak << ",\"mean_occupancy\":"
        << std::setprecision(6) << mean_occupancy << ",\"barrier_stall_s\":"
        << std::setprecision(6) << s.barrier_stall_s
        << ",\"occupancy_series\":";
    series(s.occupancy_series);
    out << ",\"stall_series\":";
    series(s.stall_series);
    out << '}';
  }
  out << "]}\n";
  out.flags(flags);
  out.precision(precision);
}

}  // namespace smr::mapreduce
