// A submitted MapReduce job and its runtime bookkeeping.
#pragma once

#include <string>
#include <vector>

#include "smr/common/types.hpp"
#include "smr/dfs/block_store.hpp"
#include "smr/mapreduce/job_spec.hpp"
#include "smr/mapreduce/task.hpp"

namespace smr::mapreduce {

struct Job {
  JobId id = kInvalidJob;
  JobSpec spec;
  dfs::FileId input_file = dfs::kInvalidFile;

  std::vector<MapTask> maps;
  std::vector<ReduceTask> reduces;

  SimTime submit_time = kTimeNever;
  SimTime start_time = kTimeNever;      // first task launch
  SimTime maps_done_time = kTimeNever;  // the synchronisation barrier
  SimTime finish_time = kTimeNever;

  /// Absolute completion deadline (submit_time + spec.relative_deadline;
  /// kTimeNever when the spec carries no SLO).  The DeadlineScheduler
  /// orders active jobs by this value.
  SimTime deadline = kTimeNever;

  int maps_assigned = 0;
  int maps_finished = 0;
  int reduces_assigned = 0;
  int reduces_finished = 0;

  /// Set when a task of this job exhausted max_attempts: the job was torn
  /// down (running attempts cancelled, pending tasks never scheduled) and
  /// finish_time records the teardown instant, not a success.
  bool failed = false;
  std::string failure_reason;

  /// Delay-scheduling state: consecutive slot offers this job declined
  /// because the offering node held none of its pending splits.
  int locality_skips = 0;

  // Cumulative data counters feeding the heartbeat statistics (Section III-C:
  // map input processing rate, map output rate, shuffle rate).
  double map_input_processed = 0.0;  // fluid: advances while maps run
  double map_output_produced = 0.0;  // jumps when a map task completes
  double bytes_shuffled = 0.0;       // fluid

  bool started() const { return start_time != kTimeNever; }
  bool maps_all_finished() const {
    return maps_finished == static_cast<int>(maps.size());
  }
  bool finished() const { return finish_time != kTimeNever; }
  int maps_pending() const {
    return static_cast<int>(maps.size()) - maps_assigned;
  }
  int reduces_pending() const {
    return static_cast<int>(reduces.size()) - reduces_assigned;
  }
  double map_completion_fraction() const {
    return maps.empty() ? 1.0
                        : static_cast<double>(maps_finished) /
                              static_cast<double>(maps.size());
  }

  /// Map progress 0..1 (mean task progress, Hadoop-style).
  double map_progress() const;
  /// Reduce progress 0..1.
  double reduce_progress() const;
};

}  // namespace smr::mapreduce
