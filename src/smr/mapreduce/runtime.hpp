// ClusterRuntime: executes MapReduce jobs on the simulated cluster.
//
// The runtime advances a fluid task model on a fixed tick: each tick it
// (1) takes a census of every node's resident tasks (threads, I/O streams,
// memory working sets), (2) allocates the network between shuffle fetches
// and remote map-input reads, (3) caps shuffle ingest by each receiver's
// disk, (4) solves per-node CPU/disk contention for every compute-bearing
// sub-phase, and (5) integrates progress and fires phase transitions, map
// completions (which feed reduce-task backlogs), the map/reduce barrier and
// job completions.
//
// The control plane runs on events: per-tracker heartbeats (staggered,
// every heartbeat_period) on which the allocation policy may adjust slot
// targets and the job tracker assigns tasks (FIFO with node-local
// preference), and a policy period on which cluster-wide policies (the
// paper's slot manager) make decisions.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "smr/cluster/compute_model.hpp"
#include "smr/common/error.hpp"
#include "smr/cluster/network_model.hpp"
#include "smr/cluster/node.hpp"
#include "smr/common/rng.hpp"
#include "smr/common/types.hpp"
#include "smr/dfs/block_store.hpp"
#include "smr/mapreduce/job.hpp"
#include "smr/mapreduce/policy.hpp"
#include "smr/mapreduce/scheduler.hpp"
#include "smr/mapreduce/tracker.hpp"
#include "smr/metrics/job_metrics.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/obs/metrics_registry.hpp"
#include "smr/obs/span_log.hpp"
#include "smr/sim/engine.hpp"

namespace smr {
class ThreadPool;  // common/thread_pool.hpp; only the cpp needs the definition
}

namespace smr::mapreduce {

struct RuntimeConfig {
  cluster::ClusterSpec cluster = cluster::ClusterSpec::paper_testbed();

  /// Initial (HadoopV1-style) slot configuration per task tracker.
  int initial_map_slots = 3;
  int initial_reduce_slots = 2;

  /// Fluid integration step.
  SimTime tick = 0.25;
  /// Sharded parallel tick: the worker nodes are partitioned into this many
  /// contiguous shards and each tick's data plane (census, flow collection,
  /// per-node solves, progress integration) runs shard-parallel on a thread
  /// pool inside a conservative time window (one tick — strictly shorter
  /// than the minimum cross-shard latency, the heartbeat period).
  /// Cross-shard effects (job-level float accumulation, trace events,
  /// completions) are buffered in per-shard mailboxes and drained at the
  /// window barrier in (shard, sequence) order, which equals node order, so
  /// every output is byte-identical to the serial engine for any fixed
  /// shard count and any thread count.  1 = the serial tick path.
  int shard_count = 1;
  /// Task tracker heartbeat period (Hadoop default 3 s), staggered across
  /// trackers.
  SimTime heartbeat_period = 3.0;
  /// Period of AllocationPolicy::on_period (the slot manager thread).
  SimTime policy_period = 6.0;
  /// Progress/slot sampling period for the recorders.
  SimTime sample_period = 2.0;

  /// Fraction of a job's maps that must finish before its reduce tasks may
  /// launch (mapred.reduce.slowstart.completed.maps; default 0.05).
  double reduce_slowstart = 0.05;

  /// Max fraction of a node's effective disk bandwidth the shuffle ingest
  /// may consume (merge segments written behind the fetchers).
  double shuffle_disk_share = 0.6;

  /// Concurrent fetch streams per shuffling reduce task (parallel copies).
  int parallel_copies = 5;

  std::uint64_t seed = 1;

  /// Counterfactual to the paper's lazy slot changer (§III-D): when true,
  /// a tracker whose map target drops below its running count *kills* its
  /// most recently started excess map tasks and requeues them from scratch
  /// (the rescheduling cost the lazy policy exists to avoid).
  bool eager_slot_shrink = false;

  /// Delay scheduling (Zaharia et al., the paper's reference [13]): a job
  /// offered a slot on a node holding none of its pending splits may pass
  /// up to this many times, waiting for a node-local slot, before accepting
  /// a remote assignment.  0 disables (greedy Hadoop FIFO behaviour).
  int locality_wait_offers = 0;

  /// Speculative execution of straggling map tasks (Hadoop's backup
  /// tasks).  When a job has no pending maps and a tracker has idle map
  /// slots, a second attempt of the slowest running map may be launched on
  /// it; the first attempt to finish wins and the other is killed.
  /// Speculation competes with other jobs for slots, which is why it
  /// interacts with slot management.
  bool speculative_execution = false;
  /// Speculative execution of straggling *reduce* tasks: a backup attempt
  /// may launch once the job is past the barrier (its partition is fully
  /// available, so the backup can re-fetch independently).  Requires
  /// speculative_execution as well.
  bool speculative_reduce_execution = false;
  /// A task is a straggler if its progress trails the mean progress of its
  /// job's running maps by more than this gap (Hadoop's 0.2 rule).
  double speculative_progress_gap = 0.2;
  /// Never speculate on tasks younger than this (they may just have
  /// started) or further along than 90% (not worth the duplicate work).
  SimTime speculative_min_age = 30.0;

  /// Fault injection: fail a worker node at a given time.  Running tasks
  /// on it are requeued; completed map tasks whose output is still needed
  /// by an unfinished shuffle are re-executed (map outputs live on the
  /// failed node's local disk, exactly as in Hadoop).  When `recover_at`
  /// is set the failure is *transient*: the tracker rejoins at that time
  /// with no running tasks, its initial slot targets, a clean blacklist
  /// record, and a resumed heartbeat.  The same node may fail and recover
  /// repeatedly via multiple entries.
  struct NodeFailure {
    NodeId node = kInvalidNode;
    SimTime at = 0.0;
    SimTime recover_at = kTimeNever;  // kTimeNever = permanent
  };
  std::vector<NodeFailure> failures;

  /// Probability that any given task attempt (map or reduce, speculative
  /// shadows included) fails mid-phase.  Each launch draws once from a
  /// dedicated seeded stream; a failing attempt is assigned a progress
  /// threshold and dies when it crosses it.  0 disables injection and
  /// leaves every RNG stream untouched.
  double task_fail_rate = 0.0;

  /// Attempts per task before the owning *job* is failed and torn down
  /// (Hadoop's mapred.map.max.attempts / reduce.max.attempts, default 4).
  int max_attempts = 4;

  /// Blacklist a tracker once this many attempt failures happened on it
  /// (Hadoop's tracker fault threshold).  Blacklisted trackers keep
  /// heartbeating but receive no new tasks and drop out of slot-target
  /// totals; the last healthy tracker is never blacklisted.  0 disables.
  int blacklist_after = 4;

  /// Hard stop; a run hitting it reports completed == false.
  SimTime time_limit = 48.0 * 3600.0;

  void validate() const;
};

class Runtime {
 public:
  /// `scheduler` orders jobs for slot assignment; nullptr means FIFO (the
  /// Hadoop default the paper evaluates with).
  Runtime(RuntimeConfig config, std::unique_ptr<AllocationPolicy> policy,
          std::unique_ptr<JobScheduler> scheduler = nullptr);

  /// Submit a job for execution at absolute time `at`.  Before run() this
  /// builds the batch workload, exactly as before.  After run() has started
  /// it is the serving path: allowed only on a runtime held open via
  /// keep_open(), with `at` >= now; the job enters the running simulation
  /// and competes for slots from `at` on.
  JobId submit(const JobSpec& spec, SimTime at = 0.0);

  /// Serving mode: keep the run alive when the job queue momentarily
  /// drains, so an open-loop arrival process can keep submitting into the
  /// running simulation.  Must be called before run(); the run then only
  /// ends after close_submissions() (or the time limit / an abort).
  void keep_open() {
    SMR_CHECK_MSG(!ran_, "keep_open() after run()");
    open_ = true;
  }

  /// End of the arrival stream: no further submissions will be made.  The
  /// run may stop as soon as every submitted job has finished.  Callable
  /// from inside an engine event (the usual case) or before run().
  void close_submissions();

  /// Optional callback fired whenever a job leaves the system — finished
  /// or failed (Job::failed distinguishes).  Invoked at the tail of the
  /// completing event with the runtime's state consistent, but the
  /// callback must NOT synchronously call back into the runtime (submit,
  /// close_submissions, ...): schedule a zero-delay engine event instead.
  void set_job_finished_callback(std::function<void(const Job&)> callback) {
    on_job_finished_ = std::move(callback);
  }

  /// Execute the simulation to completion (or the time limit); single use.
  metrics::RunResult run();

  /// Attach a trace log (optional; must outlive run()).  Records every job
  /// submission, task launch, phase transition, completion, kill and
  /// barrier crossing, plus slot-target counter changes and (when the
  /// policy keeps a decision log) POLICY_DECISION events.
  void set_trace(metrics::TraceLog* trace) { trace_ = trace; }

  /// Attach a metrics registry (optional; must outlive run()).  The
  /// runtime then records sampled time series every sample period
  /// (slot targets, running tasks, queue depths, shuffle bytes in
  /// flight), control-plane counters (heartbeats, policy periods, task
  /// launches/kills) and task-duration histograms.  Metric names are
  /// documented in docs/OBSERVABILITY.md.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attach a span log (optional; must outlive run()).  The runtime then
  /// records the causal span tree — run > job > phase (map waves, shuffle,
  /// reduce) > task attempt — with retries linked to the attempt whose
  /// failure caused them and every launch annotated with the most recent
  /// slot-changing policy decision (when the policy keeps a DecisionLog).
  /// Recording is purely observational (no RNG draws, no events): a run
  /// is bit-identical with or without a log attached, and with none the
  /// hooks reduce to a null-pointer test.
  void set_spans(obs::SpanLog* spans) { spans_ = spans; }

  // --- Observers (tests and policies) ---------------------------------
  const RuntimeConfig& config() const { return config_; }
  ClusterStats snapshot() const;
  /// Fill `stats` in place, reusing its vector capacity (the per-heartbeat
  /// path; identical contents to snapshot()).
  void snapshot_into(ClusterStats& stats) const;
  std::span<TaskTracker> trackers() { return trackers_; }
  std::span<const TaskTracker> trackers() const { return trackers_; }
  const std::vector<Job>& jobs() const { return jobs_; }
  sim::Engine& engine() { return engine_; }
  AllocationPolicy& policy() { return *policy_; }
  const JobScheduler& scheduler() const { return *scheduler_; }
  const dfs::BlockStore& dfs() const { return dfs_; }

  /// Count of map tasks that ran on a node holding a replica of their
  /// split (locality diagnostics).
  int local_map_launches() const { return local_map_launches_; }
  int remote_map_launches() const { return remote_map_launches_; }
  /// Map tasks killed by eager slot shrinking (0 under the lazy policy).
  int killed_map_tasks() const { return killed_map_tasks_; }
  /// Tasks (running or completed-but-needed maps, running reduces) lost to
  /// injected node failures and requeued.
  int tasks_lost_to_failures() const { return tasks_lost_to_failures_; }
  /// Injected per-attempt failures (tentpole fault model) and the retries
  /// they caused (an exhausted task fails its job instead of retrying).
  int task_attempt_failures() const { return task_attempt_failures_; }
  int task_retries() const { return task_retries_; }
  /// Jobs torn down because a task exhausted max_attempts.
  int failed_jobs() const { return failed_jobs_; }
  /// Node lifecycle counters.
  int nodes_recovered() const { return nodes_recovered_; }
  int nodes_blacklisted() const { return nodes_blacklisted_; }
  bool node_blacklisted(NodeId node) const {
    return trackers_[static_cast<std::size_t>(node)].blacklisted();
  }
  /// Speculative map attempts launched / that finished before the original.
  int speculative_launches() const { return speculative_launches_; }
  int speculative_wins() const { return speculative_wins_; }
  int speculative_reduce_launches() const { return speculative_reduce_launches_; }
  int speculative_reduce_wins() const { return speculative_reduce_wins_; }
  bool node_alive(NodeId node) const {
    return node_alive_[static_cast<std::size_t>(node)];
  }
  /// True once the run has stopped accepting work (all jobs done after
  /// close_submissions(), or an abort).  The serving layer checks this
  /// before submitting deferred jobs.
  bool stopped() const { return stopping_; }

  /// Cluster-total live slot targets (map + reduce) over alive,
  /// non-blacklisted trackers — the capacity the fairness layer accounts
  /// tenant usage against.
  int live_slot_capacity() const {
    return total_map_target() + total_reduce_target();
  }

  /// Per-job census of the active jobs (tenant, pending/running tasks),
  /// independent of the policy's wants_job_stats() gate.  The serving
  /// layer's fairness sampler reads this every policy period.
  std::vector<JobStats> job_census() const;

  /// Aggregated incremental max-min solver statistics over every per-node
  /// compute model plus the network model (perf instrumentation).
  cluster::MaxMinSolver::Stats solver_stats() const;

  /// Thread pool for the sharded tick (must outlive run()).  Unset with
  /// shard_count > 1 falls back to default_thread_pool().  The pool size
  /// never changes results: shard boundaries come from shard_count alone,
  /// and an inline (1-thread) pool runs the shards serially in shard order.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Per-shard window statistics (empty unless shard_count > 1).  The
  /// occupancy numbers are deterministic (resolved attempts per window);
  /// barrier_stall_s is wall-clock time the shard spent finished-but-
  /// waiting at window barriers, so it varies run to run and is reported
  /// through the separate shards.json artifact, never the compared ones.
  struct ShardStats {
    int shard = 0;
    NodeId node_begin = 0;
    NodeId node_end = 0;             // exclusive
    std::uint64_t windows = 0;       // parallel windows executed
    std::uint64_t entries = 0;       // resolved attempts summed over windows
    std::uint64_t entries_peak = 0;  // max resolved attempts in one window
    double barrier_stall_s = 0.0;    // wall-clock barrier wait, cumulative
    /// Sampled series (sim time, value), appended every sample period:
    /// mean window occupancy since the previous sample, and the cumulative
    /// barrier stall at that instant.
    std::vector<std::pair<SimTime, double>> occupancy_series;
    std::vector<std::pair<SimTime, double>> stall_series;
  };
  std::span<const ShardStats> shard_stats() const { return shard_stats_; }
  // (write_shard_stats_json, declared after the class, serialises these.)
  /// Effective shard count (config clamped to the node count); 1 = serial.
  int shard_count() const {
    return shards_.empty() ? 1 : static_cast<int>(shards_.size());
  }

 private:
  struct TaskRef {
    JobId job = kInvalidJob;
    int index = -1;
    bool is_map = true;
    /// True for speculative shadow attempts; `index` then names the
    /// primary task the shadow duplicates and `shadow_slot` its record in
    /// the map/reduce shadow pool.
    bool speculative = false;
    std::int32_t shadow_slot = -1;
  };

  void on_tick();
  /// Shard-parallel tick body (shards_.size() > 1): same stages as
  /// on_tick(), with the per-node work fanned out over the shards and all
  /// cross-shard effects applied at the barrier in shard order.  Byte-
  /// identical to on_tick() by construction (see docs/PERF.md §7).
  void on_tick_sharded();
  /// Partition the nodes into config_.shard_count contiguous shards and
  /// size the per-shard scratch; no-op for shard_count <= 1.
  void setup_shards();
  // Per-shard window bodies (runtime_shard.cpp): each runs on the pool and
  // writes only shard-owned state.
  struct ShardScratch;
  void shard_census(ShardScratch& s, bool detect_doom);
  void shard_collect_flows(ShardScratch& s);
  void shard_solve_integrate(ShardScratch& s);
  void on_heartbeat(std::size_t tracker_index);
  void on_policy_period();
  void on_sample();
  /// Append one sample of every cluster-level metric series.  Called from
  /// on_sample() on the sampling period and once more from abort_run() so
  /// an aborted run's metrics end at the abort instant, not mid-period.
  void record_metric_samples(SimTime now);
  void assign_tasks(TaskTracker& tracker);
  void eager_shrink(TaskTracker& tracker);
  void requeue_running_map(MapTask& task);
  void requeue_running_reduce(ReduceTask& task);
  void requeue_completed_map(Job& job, MapTask& task);
  void fail_node(NodeId node);
  void recover_node(NodeId node);
  /// Stop the run without finishing: cancel all periodic machinery and
  /// report completed == false with `reason`.
  void abort_run(std::string reason);
  /// Fault injection: per-attempt failure draws and mid-phase checks.
  /// Doom detection itself rides the tick's resolve pass (the scratch's
  /// doomed_* lists); this fails the collected attempts in id order.
  double draw_fail_threshold();
  void fail_doomed_attempts();
  void fail_map_attempt(TaskId id);
  void fail_reduce_attempt(TaskId id);
  /// Count an attempt failure against `node`, blacklisting it at the
  /// configured threshold (never the last healthy tracker).
  void record_attempt_failure_on(NodeId node);
  /// A task exhausted max_attempts: cancel the job's running attempts and
  /// mark it failed (JobResult.failed) instead of wedging the run.
  void fail_job(Job& job, std::string reason);
  /// A live replica of `replicas` to read from, falling back to any live
  /// node (HDFS re-replication); kInvalidNode when every worker is dead.
  NodeId pick_live_source(const std::vector<NodeId>& replicas);
  /// Roll a running attempt's fluid input accounting back out of the job
  /// and cluster counters.
  void rollback_map_progress(const MapTask& task);
  bool launch_speculative(TaskTracker& tracker);
  void kill_shadow(MapTask& primary);
  /// The shadow attempt `shadow_id` finished first: kill the primary
  /// attempt and complete the task on the shadow's node.
  void win_speculative(TaskId shadow_id);
  /// Shadow attempt id of `primary` (kInvalidTask when none).  Maps and
  /// reduces share the TaskId space, so one dense table serves both.
  TaskId shadow_id_of(TaskId primary) const {
    return static_cast<std::size_t>(primary) < shadow_link_.size()
               ? shadow_link_[static_cast<std::size_t>(primary)]
               : kInvalidTask;
  }
  void set_shadow_link(TaskId primary, TaskId shadow);
  bool has_shadow(TaskId primary) const {
    return shadow_id_of(primary) != kInvalidTask;
  }
  bool launch_speculative_reduce(TaskTracker& tracker);
  void kill_reduce_shadow(ReduceTask& primary);
  void win_speculative_reduce(TaskId shadow_id);
  bool has_reduce_shadow(TaskId primary) const { return has_shadow(primary); }
  /// Pool slot management for shadow attempt records (dense, free-listed;
  /// slots are stable for the lifetime of the attempt).
  std::int32_t acquire_map_shadow_slot();
  void release_map_shadow_slot(std::int32_t slot);
  std::int32_t acquire_reduce_shadow_slot();
  void release_reduce_shadow_slot(std::int32_t slot);
  bool assign_one_map(TaskTracker& tracker);
  bool assign_one_reduce(TaskTracker& tracker);
  /// True when the policy caps this job's in-flight task count and the cap
  /// is reached (see AllocationPolicy::job_task_caps).
  bool job_at_cap(const Job& job, bool for_map) const;
  /// `attempt_id` is the tracker-list entry of the finishing attempt (the
  /// task's own id, or the shadow's id after a speculative win).
  void complete_map(Job& job, MapTask& task, TaskId attempt_id);
  void complete_reduce(Job& job, ReduceTask& task, TaskId attempt_id);
  void settle_reduce(Job& job, ReduceTask& task);
  void check_all_done();

  Job& job_of(JobId id) {
    SMR_CHECK(id >= 0 && static_cast<std::size_t>(id) < jobs_.size());
    return jobs_[static_cast<std::size_t>(id)];
  }
  MapTask& map_task(TaskId id);
  ReduceTask& reduce_task(TaskId id);
  /// Task ids are allocated densely from 0, so the ref table is a plain
  /// vector (hot: every census/integration step resolves ids through it).
  /// A slot with job == kInvalidJob is retired (shadow attempts only;
  /// primary-task refs live for the whole run).
  const TaskRef* find_task_ref(TaskId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= task_refs_.size()) return nullptr;
    const TaskRef& ref = task_refs_[static_cast<std::size_t>(id)];
    return ref.job == kInvalidJob ? nullptr : &ref;
  }
  const TaskRef& task_ref_at(TaskId id) const {
    const TaskRef* ref = find_task_ref(id);
    SMR_CHECK_MSG(ref != nullptr, "unknown task " << id);
    return *ref;
  }
  void set_task_ref(TaskId id, TaskRef ref) {
    SMR_CHECK(id >= 0);
    if (static_cast<std::size_t>(id) >= task_refs_.size()) {
      task_refs_.resize(static_cast<std::size_t>(id) + 1);
    }
    task_refs_[static_cast<std::size_t>(id)] = ref;
  }
  void erase_task_ref(TaskId id) {
    if (id >= 0 && static_cast<std::size_t>(id) < task_refs_.size()) {
      task_refs_[static_cast<std::size_t>(id)] = TaskRef{};
    }
  }
  void trace_event(metrics::TraceEventKind kind, JobId job, TaskId task,
                   NodeId node, bool is_map, const char* detail = "",
                   double value = 0.0);

  // --- Span recording (every helper is a no-op when spans_ == nullptr) --
  /// Per-job span bookkeeping; lives beside the Job so the Job struct
  /// stays observation-free.
  struct JobSpanState {
    obs::SpanId job = obs::kInvalidSpan;
    obs::SpanId maps_phase = obs::kInvalidSpan;
    obs::SpanId shuffle_phase = obs::kInvalidSpan;
    obs::SpanId reduce_phase = obs::kInvalidSpan;
    obs::SpanId wave = obs::kInvalidSpan;
    int open_map_attempts = 0;
    int waves = 0;        // waves opened so far (names wave-1, wave-2, ...)
    int maps_phases = 1;  // re-opened barriers name maps-2, maps-3, ...
    SimTime last_shuffle_end = kTimeNever;
  };
  /// The run-root span (created on first use).
  obs::SpanId span_run_root();
  /// This job's span state, creating the job span (and, before the
  /// barrier, its map phase) on first use.
  JobSpanState* span_job_state(const Job& job);
  /// An attempt launched: open its span under the right phase, stamp the
  /// enabling policy decision, and link it to the failed attempt it
  /// retries (if any).  `primary` is the task whose work this attempt
  /// carries (== attempt for non-speculative attempts).
  void span_attempt_launched(TaskId attempt, const Job& job, NodeId node,
                             bool is_map, bool speculative, TaskId primary);
  /// An attempt ended; closes its span (idempotent: later calls for the
  /// same attempt are ignored, so teardown paths may overlap).
  void span_attempt_ended(TaskId attempt, obs::SpanOutcome outcome);
  /// Remember that `primary`'s next launch is a retry caused by this
  /// (failed/killed/lost) attempt.
  void span_mark_retry(TaskId primary, TaskId failed_attempt);
  /// Phase transitions.
  void span_barrier_crossed(const Job& job);
  void span_reduce_eligible(const Job& job);
  void span_shuffle_settled(const Job& job, TaskId attempt);
  void span_job_finished(const Job& job, obs::SpanOutcome outcome);
  /// Abort-path flush: close every open span at the abort time.
  void span_flush_aborted();
  /// Latest slot-changing decision from the policy's DecisionLog (span
  /// launch annotations); refreshed each policy period.
  void span_refresh_decisions();
  /// Cluster-total slot targets over all trackers (telemetry).
  int total_map_target() const;
  int total_reduce_target() const;
  /// Emit kSlotTargetChanged trace events when the cluster totals moved
  /// away from the given previous values.
  void trace_slot_targets(int prev_map_total, int prev_reduce_total);

  RuntimeConfig config_;
  std::unique_ptr<AllocationPolicy> policy_;
  std::unique_ptr<JobScheduler> scheduler_;
  sim::Engine engine_;
  dfs::BlockStore dfs_;
  cluster::NetworkModel network_;
  Rng rng_;

  std::vector<TaskTracker> trackers_;
  std::vector<Job> jobs_;
  /// Active-job index: indices of submitted, unfinished jobs in id order —
  /// the exact sequence the old full-scan filters produced.  Maintained
  /// incrementally (a pending min-heap drained lazily once a job's submit
  /// time is reached; erased on finish/fail) so the per-heartbeat control
  /// plane never rescans all of jobs_.  Mutable: const observers
  /// (snapshot_into) trigger the lazy drain.
  mutable std::vector<std::size_t> active_job_ids_;
  /// Not-yet-active jobs, a min-heap on (submit_time, index).
  mutable std::vector<std::pair<SimTime, std::size_t>> pending_jobs_;
  /// The active set as of `now` (drains newly-due pending jobs first).
  std::span<const std::size_t> active_jobs_now(SimTime now) const;
  /// Remove a finished/failed job from the active index.
  void deactivate_job(JobId id);
  /// Dense id -> ref table (see find_task_ref above).
  std::vector<TaskRef> task_refs_;
  /// One incremental compute solver per worker node: across consecutive
  /// ticks a node's occupancy and loads are usually unchanged, so the
  /// per-tick solve is answered from the cache.
  std::vector<cluster::ComputeModel> node_models_;
  /// Per-tick scratch, hoisted so the fluid tick allocates nothing in
  /// steady state.  The SoA ref arrays are rebuilt once per tick in node
  /// order (the "one pass over the dense task-ref vector"): every later
  /// tick stage indexes them instead of re-resolving ids through hash maps
  /// — hot fields (task/job pointers) split from cold spec data.
  struct TickScratch {
    // Running tasks, resolved once, node order (SoA).
    std::vector<TaskId> map_id, red_id;
    std::vector<MapTask*> map_task;
    std::vector<ReduceTask*> red_task;
    std::vector<Job*> map_job, red_job;
    std::vector<const JobSpec*> map_spec, red_spec;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> map_range, red_range;
    // Census + network + solve stages.
    std::vector<cluster::Occupancy> occ;
    /// Nodes hosting a remote-reading map this tick: their load rate caps
    /// track the per-tick network grant, so the solve can never be skipped.
    std::vector<std::uint8_t> node_has_remote;
    /// SoA indices of the tick's network participants, collected during the
    /// resolve sweep (node order): reduces mid-shuffle and maps reading a
    /// remote split.  The network stage walks these instead of re-scanning
    /// every running task.
    std::vector<std::uint32_t> shuffle_entries, remote_entries;
    std::vector<cluster::NetFlow> flows;
    std::vector<std::uint32_t> flow_entry;  // index into map_* / red_* SoA
    std::vector<bool> flow_is_shuffle;
    std::vector<int> fetch_streams;
    std::vector<double> net_rates;
    std::vector<double> shuffle_disk_demand;
    std::vector<double> shuffle_scale;
    std::vector<cluster::BackgroundLoad> background;
    std::vector<cluster::PhaseLoad> loads;          // per node
    std::vector<std::uint32_t> load_entry;          // per node, SoA index
    std::vector<bool> load_is_map;                  // per node
    struct ComputeRate {
      std::uint32_t entry;
      bool is_map;
      double rate;
    };
    std::vector<ComputeRate> compute;  // node-ordered, all nodes
    // Completion / settle stages.
    std::vector<TaskId> finished_maps, finished_reduces;
    std::vector<TaskId> settle_primaries, settle_shadows;
    // Fault injection (collected during the resolve pass).
    std::vector<TaskId> doomed_maps, doomed_reduces;
  };
  TickScratch tick_;
  /// Per-shard tick scratch for the sharded parallel tick.  Mirrors
  /// TickScratch over the shard's contiguous node range only, node-indexed
  /// arrays in local node space (global node = node_lo + local).  During a
  /// window everything here is written exclusively by the owning shard;
  /// the mailboxes are drained serially at the barrier.
  struct ShardScratch {
    int index = 0;
    NodeId node_lo = 0;
    NodeId node_hi = 0;  // exclusive
    // Running tasks, resolved per census, shard-node order (SoA).
    std::vector<TaskId> map_id, red_id;
    std::vector<MapTask*> map_task;
    std::vector<ReduceTask*> red_task;
    std::vector<Job*> map_job, red_job;
    std::vector<const JobSpec*> map_spec, red_spec;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> map_range, red_range;
    std::vector<cluster::Occupancy> occ;
    std::vector<std::uint8_t> node_has_remote;
    std::vector<std::uint32_t> shuffle_entries, remote_entries;
    std::vector<TaskId> settle_primaries, settle_shadows;
    std::vector<TaskId> doomed_maps, doomed_reduces;
    // Network stage: flows whose destination is on this shard, copied into
    // the global array at flow_base for the single cluster-wide solve.
    std::vector<cluster::NetFlow> flows;
    std::vector<std::uint32_t> flow_entry;
    std::vector<std::uint8_t> flow_is_shuffle;
    std::size_t flow_base = 0;
    std::vector<double> shuffle_disk_demand, shuffle_scale;
    std::vector<cluster::BackgroundLoad> background;
    std::vector<cluster::PhaseLoad> loads;
    std::vector<std::uint32_t> load_entry;
    std::vector<std::uint8_t> load_is_map;
    std::vector<TickScratch::ComputeRate> compute;
    // Mailboxes: job-level float deltas and trace events produced inside
    // the window, replayed at the barrier in shard order (== node order ==
    // the serial accumulation order, hence byte-identical sums).
    struct FpDelta {
      Job* job;
      double delta;
    };
    std::vector<FpDelta> shuffle_deltas;    // bytes_shuffled + cum_shuffled_
    std::vector<FpDelta> map_input_deltas;  // map_input_processed + cum_map_input_
    struct TraceBuf {
      metrics::TraceEventKind kind;
      JobId job;
      TaskId task;
      NodeId node;
      bool is_map;
      const char* detail;
    };
    std::vector<TraceBuf> trace_events;
    std::vector<TaskId> finished_maps, finished_reduces;
    /// Some owned task changed phase inside the window; OR'd into the
    /// global + per-shard dirty flags at the barrier.
    bool phase_dirty = false;
    // Shard-local census quiescence (same scheme as the serial fields).
    std::uint64_t resolve_version_sum = ~std::uint64_t{0};
    std::size_t resolve_jobs_size = ~std::size_t{0};
    /// Wall-clock instant (steady-clock seconds) this shard finished the
    /// current parallel stage; barrier stall = window max minus this.
    double stage_end = 0.0;
    // Occupancy accumulators since the last sample (series points).
    std::uint64_t stat_entries = 0;
    std::uint64_t stat_windows = 0;
  };
  std::vector<ShardScratch> shards_;
  std::vector<ShardStats> shard_stats_;
  /// node -> owning shard; empty when running serially.
  std::vector<std::uint16_t> node_shard_;
  /// Per-shard census phase-dirty flags: set by the (serial) control plane
  /// through mark_node_dirty and by each shard's own window transitions,
  /// consumed and cleared by the owning shard's census.
  std::vector<std::uint8_t> shard_phase_dirty_;
  ThreadPool* pool_ = nullptr;
  /// Guard for reusing the tick's SoA ref arrays across ticks: the arrays
  /// are a pure function of the tracker running lists (membership + order)
  /// and of the job/shadow storage those ids resolve into.  The summed
  /// tracker versions change on every launch/finish (versions only ever
  /// increment, so the sum cannot alias), and jobs_.size() catches the one
  /// pointer-invalidating mutation that bumps no version: a serving-path
  /// submit() growing jobs_.  While both match, only the phase-dependent
  /// census is re-swept; ids, pointers and ranges are reused as-is.
  std::uint64_t resolve_version_sum_ = ~std::uint64_t{0};
  std::size_t resolve_jobs_size_ = ~std::size_t{0};
  /// True when some running task's phase changed since the last census
  /// sweep (set alongside the per-node dirty marks).  While membership and
  /// every phase are unchanged and no fault injection is armed, the whole
  /// census output (occupancy, network participants, settle candidates) is
  /// provably identical to the previous tick's and the sweep is skipped.
  bool census_phase_dirty_ = true;
  /// Per-node quiescence tracking for the tick's compute solve: a node
  /// whose tracker version is unchanged (no launch/finish), with no pure
  /// phase transition flagged (node_dirty_), no remote-reading map, and
  /// bit-identical shuffle background since its last solve provably
  /// presents the same raw inputs — the cached rates are replayed without
  /// rebuilding the loads (counted as a memo hit to keep stats identical).
  std::vector<std::uint8_t> node_dirty_;
  std::vector<std::uint32_t> node_solve_version_;
  std::vector<cluster::BackgroundLoad> node_bg_prev_;
  std::vector<std::vector<double>> node_rates_cache_;
  void mark_node_dirty(NodeId node) {
    census_phase_dirty_ = true;
    if (node >= 0 && static_cast<std::size_t>(node) < node_dirty_.size()) {
      node_dirty_[static_cast<std::size_t>(node)] = 1;
      if (!node_shard_.empty()) {
        shard_phase_dirty_[node_shard_[static_cast<std::size_t>(node)]] = 1;
      }
    }
  }
  /// Remote-read network grants, epoch-stamped by tick so the table never
  /// needs clearing (PR 7: formerly an unordered_map rebuilt every tick).
  std::vector<double> net_grant_rate_;
  std::vector<std::uint64_t> net_grant_epoch_;
  std::uint64_t net_grant_cur_epoch_ = 0;
  /// Heartbeat-path snapshot scratch (capacity reused across heartbeats).
  ClusterStats hb_stats_;
  TaskId next_task_id_ = 0;
  int unfinished_jobs_ = 0;
  int jobs_not_yet_submitted_ = 0;

  // Cluster-wide cumulative counters (Section III-C heartbeat statistics).
  double cum_map_input_ = 0.0;
  double cum_map_output_ = 0.0;
  double cum_shuffled_ = 0.0;

  int local_map_launches_ = 0;
  int remote_map_launches_ = 0;
  int killed_map_tasks_ = 0;
  int tasks_lost_to_failures_ = 0;
  int speculative_launches_ = 0;
  int speculative_wins_ = 0;
  std::vector<bool> node_alive_;
  // --- Fault-injection state -------------------------------------------
  /// Dedicated stream for attempt-failure draws, seeded independently of
  /// rng_ so task_fail_rate == 0 reproduces fault-free runs bit-for-bit.
  Rng fault_rng_;
  /// Per-tracker heartbeat events, cancellable on node failure and
  /// re-schedulable on recovery (indexed by NodeId).
  std::vector<sim::EventId> heartbeat_events_;
  /// Attempt failures charged to each tracker (blacklist accounting).
  std::vector<int> node_attempt_failures_;
  /// Scheduled recoveries not yet fired: while > 0, an all-nodes-dead
  /// cluster waits instead of aborting the run.
  int pending_recoveries_ = 0;
  bool aborted_ = false;
  SimTime abort_time_ = 0.0;
  std::string run_failure_reason_;
  int task_attempt_failures_ = 0;
  int task_retries_ = 0;
  int failed_jobs_ = 0;
  int nodes_recovered_ = 0;
  int nodes_blacklisted_ = 0;
  // Per-node cumulative byte counters (the heartbeat statistics of §III-C).
  std::vector<double> node_map_input_;
  std::vector<double> node_map_output_;
  std::vector<double> node_shuffled_in_;
  /// Shadow attempt records in dense free-listed pools (PR 7: formerly
  /// unordered_maps keyed by attempt id).  A free slot is marked by
  /// `id == kInvalidTask`; TaskRef::shadow_slot points at the live slot.
  std::vector<MapTask> map_shadow_pool_;
  std::vector<std::int32_t> map_shadow_free_;
  std::vector<ReduceTask> reduce_shadow_pool_;
  std::vector<std::int32_t> reduce_shadow_free_;
  /// Dense primary-task -> shadow-attempt id links (kInvalidTask = none).
  std::vector<TaskId> shadow_link_;
  int speculative_reduce_launches_ = 0;
  int speculative_reduce_wins_ = 0;

  metrics::RunResult result_;
  metrics::TraceLog* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  // --- Span-recording state (inert while spans_ == nullptr) ------------
  obs::SpanLog* spans_ = nullptr;
  obs::SpanId run_span_ = obs::kInvalidSpan;
  /// Per-job span state, dense by JobId (state.job == kInvalidSpan means
  /// not yet created).  PR 7: formerly unordered_maps keyed by id.
  std::vector<JobSpanState> job_spans_;
  /// Open attempt spans, dense by attempt TaskId (kInvalidSpan = closed).
  std::vector<obs::SpanId> attempt_spans_;
  /// Last (open or closed) non-speculative attempt span of each primary
  /// task; retry links for re-executions of *completed* attempts.
  std::vector<obs::SpanId> last_attempt_span_;
  /// Primary task -> span of the failed/killed attempt its next launch
  /// retries; consumed at that launch (kInvalidSpan = none pending).
  std::vector<obs::SpanId> retry_parent_;
  /// Dense-vector accessors: read without growing, write grows on demand.
  static obs::SpanId span_slot_get(const std::vector<obs::SpanId>& table,
                                   TaskId id) {
    return id >= 0 && static_cast<std::size_t>(id) < table.size()
               ? table[static_cast<std::size_t>(id)]
               : obs::kInvalidSpan;
  }
  static void span_slot_set(std::vector<obs::SpanId>& table, TaskId id,
                            obs::SpanId value) {
    if (static_cast<std::size_t>(id) >= table.size()) {
      table.resize(static_cast<std::size_t>(id) + 1, obs::kInvalidSpan);
    }
    table[static_cast<std::size_t>(id)] = value;
  }
  /// Most recent slot-changing policy decision (launch annotations).
  int last_decision_id_ = -1;
  SimTime last_decision_time_ = kTimeNever;
  /// Decision-log rows already scanned by span_refresh_decisions.
  std::size_t decisions_seen_ = 0;
  std::function<void(const Job&)> on_job_finished_;
  std::vector<sim::EventId> periodic_events_;
  bool ran_ = false;
  bool stopping_ = false;
  /// Serving mode: while true the run never stops on an empty job queue.
  bool open_ = false;
};

/// Serialise the runtime's per-shard window statistics as one JSON object
/// ({"shard_count": N, "shards": [...]}) with fixed-precision decimals.
/// The barrier-stall fields are wall-clock measurements, so shards.json is
/// *excluded* from the byte-compared determinism artifact set; every other
/// field (windows, entries, occupancy series) is deterministic.
void write_shard_stats_json(const Runtime& runtime, std::ostream& out);

}  // namespace smr::mapreduce
