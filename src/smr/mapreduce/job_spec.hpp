// Workload characterisation of a MapReduce job.
//
// For the purposes of slot management a job is fully described by how much
// data flows through each sub-phase and what each byte costs in CPU, disk
// and memory.  The PUMA catalogue (smr::workload) instantiates these specs
// with parameters following the published benchmark characterisation.
//
// Sub-phases (Section II-A1 of the paper):
//   map task    = MAP (read + user map fn + in-memory sort) then
//                 SPILL (sort/spill/merge + optional combine) — progress is
//                 measured in input bytes and output bytes respectively.
//   reduce task = SHUFFLE (fetch its partition of every map output),
//                 SORT (external merge of fetched runs),
//                 REDUCE (user reduce fn + replicated output write).
#pragma once

#include <string>

#include "smr/common/error.hpp"
#include "smr/common/types.hpp"

namespace smr::mapreduce {

struct JobSpec {
  std::string name = "job";

  /// Total input data in HDFS.
  Bytes input_size = 30 * kGiB;

  /// Split size (= DFS block size); one map task per split.
  Bytes split_size = 128 * kMiB;

  /// Number of reduce tasks (the paper uses 30 on a 32-reduce-slot cluster).
  int reduce_tasks = 30;

  // --- Map side ------------------------------------------------------
  /// CPU-seconds per MiB of map input (read, decode, user map, sort).
  double map_cpu_per_mib = 0.08;

  /// Map output bytes per input byte, after the combiner if any.
  double map_selectivity = 0.5;

  /// Optional combiner (paper §II-A1: "plus optionally the combine
  /// phase").  When present, the map task runs an explicit COMBINE
  /// sub-phase over the *pre-combine* output volume
  /// (map_selectivity / combiner_reduction of the input) before spilling
  /// the reduced volume.  map_selectivity remains the post-combine ratio.
  bool has_combiner = false;
  /// Post-combine bytes per pre-combine byte (< 1 means the combiner
  /// collapses records); ignored without a combiner.
  double combiner_reduction = 1.0;
  /// CPU-seconds per MiB of pre-combine output during the combine.
  double combine_cpu_per_mib = 0.04;

  /// CPU-seconds per MiB of map output during sort/spill.
  double spill_cpu_per_mib = 0.02;

  /// Disk bytes written per map-output byte (spill + merge passes).
  double spill_disk_factor = 1.2;

  /// Resident working set per map task (JVM heap, sort buffers, page
  /// cache pressure).  The dominant driver of the thrashing point.
  Bytes map_task_memory = 2 * kGiB;

  // --- Reduce side ----------------------------------------------------
  /// CPU-seconds per MiB fetched during shuffle (decompress, in-memory
  /// merge).  Accounted as background CPU load on the receiving node.
  double shuffle_cpu_per_mib = 0.012;

  /// Disk bytes written per shuffled byte on the receiver (on-disk merge
  /// segments).
  double shuffle_disk_factor = 1.0;

  /// Fetch-service ceiling per reduce task, in bytes/s.  Hadoop's shuffle
  /// moves data in many small per-map fetches with handshakes and merge
  /// pauses, so a reducer's aggregate pull rate is far below NIC line rate;
  /// this ceiling (before incast and port sharing) models that.  It is what
  /// makes high-selectivity jobs genuinely reduce-heavy: once the cluster
  /// map-output rate exceeds reduce_tasks × this cap, shuffle falls behind.
  Rate shuffle_fetch_cap = 12.0 * static_cast<double>(kMiB);

  /// CPU-seconds per MiB during the reduce-side external merge sort.
  double sort_cpu_per_mib = 0.03;

  /// Disk bytes moved per byte during the reduce-side merge.
  double sort_disk_factor = 2.0;

  /// CPU-seconds per MiB of reduce input (user reduce fn).
  double reduce_cpu_per_mib = 0.05;

  /// Final output bytes per reduce-input byte.
  double reduce_selectivity = 1.0;

  /// Disk bytes written per output byte (local replica; remote replicas go
  /// over the network and other nodes' disks — folded into this factor).
  double output_disk_factor = 2.0;

  /// Resident working set per reduce task (shuffle + merge buffers).
  Bytes reduce_task_memory = 2 * kGiB;

  /// Coefficient of variation of per-task cost jitter.  Real Hadoop task
  /// durations vary well over ±15% (data skew, JVM warm-up, stragglers);
  /// this also desynchronises task waves, without which completions arrive
  /// in lockstep bursts no real cluster exhibits.
  double duration_cv = 0.18;

  // --- Serving / SLO ---------------------------------------------------
  /// SLO class label for serving workloads ("" = unclassified); purely
  /// descriptive, carried through to per-job results and serve reports.
  std::string slo_class;

  /// Owning tenant ("" = default tenant).  The serving layer stamps it
  /// from the arrival trace; multi-tenant allocators (Karma, GameCapacity)
  /// group jobs by it and the fairness layer accounts slot-seconds per
  /// tenant.  Purely descriptive for single-tenant runs.
  std::string tenant;

  /// Completion deadline in seconds after submission (kTimeNever = none).
  /// The serving layer derives it from per-class SLO multipliers; the
  /// runtime stamps the absolute deadline on the Job at submission, which
  /// the DeadlineScheduler orders by (EDF) and the SLO metrics judge
  /// goodput against.  0 is allowed (already past due on arrival — e.g. a
  /// deferred job that exhausted its budget in the admission queue).
  SimTime relative_deadline = kTimeNever;

  // --- Derived --------------------------------------------------------
  int map_task_count() const {
    return static_cast<int>((input_size + split_size - 1) / split_size);
  }
  Bytes map_output_total() const {
    return static_cast<Bytes>(static_cast<double>(input_size) * map_selectivity);
  }
  /// Shuffle volume per reduce task under the paper's uniform-partition
  /// assumption (Section IV-A3).
  Bytes partition_size() const {
    return map_output_total() / reduce_tasks;
  }

  /// Map-heavy jobs shuffle little relative to their input (Section II-A2).
  bool map_heavy() const { return map_selectivity < 0.2; }

  void validate() const {
    SMR_CHECK(input_size > 0 && split_size > 0);
    SMR_CHECK(reduce_tasks >= 1);
    SMR_CHECK(map_cpu_per_mib > 0 && reduce_cpu_per_mib >= 0);
    SMR_CHECK(map_selectivity >= 0 && reduce_selectivity >= 0);
    SMR_CHECK(spill_disk_factor >= 0 && sort_disk_factor >= 0);
    SMR_CHECK(map_task_memory >= 0 && reduce_task_memory >= 0);
    SMR_CHECK(duration_cv >= 0);
    SMR_CHECK(shuffle_fetch_cap > 0);
    SMR_CHECK(combiner_reduction > 0 && combiner_reduction <= 1.0);
    SMR_CHECK(combine_cpu_per_mib >= 0);
    SMR_CHECK(relative_deadline >= 0.0);
  }
};

}  // namespace smr::mapreduce
