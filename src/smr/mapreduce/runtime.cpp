#include "smr/mapreduce/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "smr/common/log.hpp"
#include "smr/obs/decision_log.hpp"

namespace smr::mapreduce {

namespace {
constexpr double kByteEps = 1.0;  // one byte of slack on fluid comparisons

double per_mib_to_per_byte(double per_mib) {
  return per_mib / static_cast<double>(kMiB);
}

// Min-heap comparator for the pending-job heap: "later" on (submit_time,
// index), so the earliest submission (ties by id) sits at the front.
bool pending_later(const std::pair<SimTime, std::size_t>& a,
                   const std::pair<SimTime, std::size_t>& b) {
  return a.first > b.first || (a.first == b.first && a.second > b.second);
}
}  // namespace

void RuntimeConfig::validate() const {
  cluster.validate();
  SMR_CHECK(initial_map_slots >= 0 && initial_reduce_slots >= 0);
  SMR_CHECK(initial_map_slots + initial_reduce_slots >= 1);
  SMR_CHECK(tick > 0.0);
  SMR_CHECK(shard_count >= 1);
  SMR_CHECK(heartbeat_period > 0.0 && policy_period > 0.0 && sample_period > 0.0);
  SMR_CHECK(reduce_slowstart >= 0.0 && reduce_slowstart <= 1.0);
  SMR_CHECK(shuffle_disk_share > 0.0 && shuffle_disk_share <= 1.0);
  SMR_CHECK(parallel_copies >= 1);
  SMR_CHECK(time_limit > 0.0);
  SMR_CHECK(locality_wait_offers >= 0);
  for (const auto& failure : failures) {
    SMR_CHECK_MSG(failure.node >= 0 && failure.node < cluster.worker_count(),
                  "failure on unknown node " << failure.node);
    SMR_CHECK(failure.at >= 0.0);
    SMR_CHECK_MSG(failure.recover_at == kTimeNever || failure.recover_at > failure.at,
                  "node " << failure.node << " recovery at " << failure.recover_at
                          << " precedes its failure at " << failure.at);
  }
  SMR_CHECK(task_fail_rate >= 0.0 && task_fail_rate <= 1.0);
  SMR_CHECK(max_attempts >= 1);
  SMR_CHECK(blacklist_after >= 0);
}

Runtime::Runtime(RuntimeConfig config, std::unique_ptr<AllocationPolicy> policy,
                 std::unique_ptr<JobScheduler> scheduler)
    : config_(std::move(config)),
      policy_(std::move(policy)),
      scheduler_(scheduler ? std::move(scheduler)
                           : std::make_unique<FifoScheduler>()),
      dfs_(config_.cluster.worker_count(), config_.cluster.dfs_replication,
           Rng(config_.seed ^ 0x9e3779b97f4a7c15ULL)),
      network_(config_.cluster),
      rng_(config_.seed),
      // Independent stream for attempt-failure draws: task_fail_rate == 0
      // must reproduce fault-free runs bit-for-bit, so injection never
      // advances (or forks) rng_.
      fault_rng_(config_.seed ^ 0xfa011a7e5eedULL) {
  config_.validate();
  SMR_CHECK(policy_ != nullptr);
  trackers_.reserve(static_cast<std::size_t>(config_.cluster.worker_count()));
  for (NodeId n = 0; n < config_.cluster.worker_count(); ++n) {
    trackers_.emplace_back(n, config_.initial_map_slots, config_.initial_reduce_slots);
  }
  node_alive_.assign(static_cast<std::size_t>(config_.cluster.worker_count()), true);
  node_map_input_.assign(node_alive_.size(), 0.0);
  node_map_output_.assign(node_alive_.size(), 0.0);
  node_shuffled_in_.assign(node_alive_.size(), 0.0);
  node_attempt_failures_.assign(node_alive_.size(), 0);
  heartbeat_events_.assign(node_alive_.size(), sim::kInvalidEvent);
  node_models_.resize(node_alive_.size());
  node_dirty_.assign(node_alive_.size(), 1);
  node_solve_version_.assign(node_alive_.size(), 0);
  node_bg_prev_.assign(node_alive_.size(), cluster::BackgroundLoad{});
  node_rates_cache_.resize(node_alive_.size());
}

cluster::MaxMinSolver::Stats Runtime::solver_stats() const {
  cluster::MaxMinSolver::Stats total = network_.solver_stats();
  for (const auto& model : node_models_) {
    const auto& s = model.solver_stats();
    total.calls += s.calls;
    total.cache_hits += s.cache_hits;
    total.cap_fast_hits += s.cap_fast_hits;
    total.full_solves += s.full_solves;
  }
  return total;
}

JobId Runtime::submit(const JobSpec& spec, SimTime at) {
  if (ran_) {
    // The serving path: submission into a running simulation.  Only a
    // runtime held open can still be fed (a closed batch run may already
    // have torn its periodic machinery down), and only from the engine's
    // present onwards.
    SMR_CHECK_MSG(open_, "submit() after run() on a runtime not kept open");
    SMR_CHECK_MSG(!stopping_, "submit() on a stopped runtime");
    SMR_CHECK(at >= engine_.now());
  } else {
    SMR_CHECK(at >= 0.0);
  }
  spec.validate();

  Job job;
  job.id = static_cast<JobId>(jobs_.size());
  job.spec = spec;
  job.submit_time = at;
  job.deadline =
      spec.relative_deadline == kTimeNever ? kTimeNever : at + spec.relative_deadline;
  job.input_file = dfs_.add_file(spec.input_size, spec.split_size);

  Rng task_rng = rng_.fork();
  const auto& file = dfs_.file(job.input_file);
  job.maps.reserve(file.blocks.size());
  for (std::size_t b = 0; b < file.blocks.size(); ++b) {
    MapTask task;
    task.id = next_task_id_++;
    task.job = job.id;
    task.split_index = static_cast<int>(b);
    task.input_size = file.blocks[b].size;
    task.cost_factor = task_rng.jitter(spec.duration_cv);
    task.output_size = static_cast<Bytes>(
        std::llround(static_cast<double>(task.input_size) * spec.map_selectivity));
    if (spec.has_combiner) {
      task.combine_total = static_cast<Bytes>(std::llround(
          static_cast<double>(task.output_size) / spec.combiner_reduction));
    }
    set_task_ref(task.id, TaskRef{job.id, static_cast<int>(b), true});
    job.maps.push_back(task);
  }
  // Map output is partitioned uniformly over the reduce tasks (Section
  // IV-A3's estimation assumption); partition sizes derive from the actual
  // per-task outputs so bytes are conserved exactly.
  Bytes total_output = 0;
  for (const auto& m : job.maps) total_output += m.output_size;
  job.reduces.reserve(static_cast<std::size_t>(spec.reduce_tasks));
  for (int r = 0; r < spec.reduce_tasks; ++r) {
    ReduceTask task;
    task.id = next_task_id_++;
    task.job = job.id;
    task.partition = r;
    // Distribute the remainder over the first partitions.
    const Bytes base = total_output / spec.reduce_tasks;
    const Bytes extra = (r < static_cast<int>(total_output % spec.reduce_tasks)) ? 1 : 0;
    task.partition_size = base + extra;
    task.cost_factor = task_rng.jitter(spec.duration_cv);
    set_task_ref(task.id, TaskRef{job.id, r, false});
    job.reduces.push_back(task);
  }

  jobs_.push_back(std::move(job));
  ++unfinished_jobs_;
  ++jobs_not_yet_submitted_;
  pending_jobs_.emplace_back(at, jobs_.size() - 1);
  std::push_heap(pending_jobs_.begin(), pending_jobs_.end(), pending_later);
  if (ran_) {
    // run() has already sized the progress table and scheduled the batch's
    // arrival events; do both for this late job now.
    result_.progress.emplace_back();
    const JobId id = jobs_.back().id;
    engine_.schedule_at(at, [this, id] {
      --jobs_not_yet_submitted_;
      trace_event(metrics::TraceEventKind::kJobSubmitted, id, kInvalidTask,
                  kInvalidNode, true);
    });
  }
  return jobs_.back().id;
}

metrics::RunResult Runtime::run() {
  SMR_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;
  // An open (serving) runtime may start empty: arrivals stream in later.
  SMR_CHECK_MSG(!jobs_.empty() || open_, "no jobs submitted");

  setup_shards();
  policy_->on_start(trackers());
  // Seed the slot-target counter tracks at their initial values so the
  // trace timeline starts at t = 0 rather than the first change.
  if (trace_ != nullptr) {
    trace_event(metrics::TraceEventKind::kSlotTargetChanged, kInvalidJob,
                kInvalidTask, kInvalidNode, true, "map",
                static_cast<double>(total_map_target()));
    trace_event(metrics::TraceEventKind::kSlotTargetChanged, kInvalidJob,
                kInvalidTask, kInvalidNode, false, "reduce",
                static_cast<double>(total_reduce_target()));
  }

  periodic_events_.push_back(
      engine_.schedule_periodic(config_.tick, config_.tick, [this] { on_tick(); }));
  // Heartbeats live outside periodic_events_ so a node failure can cancel
  // just its tracker's event (and a recovery re-schedule it).
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    const SimTime offset = config_.heartbeat_period * static_cast<double>(i + 1) /
                           static_cast<double>(trackers_.size());
    heartbeat_events_[i] = engine_.schedule_periodic(
        offset, config_.heartbeat_period, [this, i] { on_heartbeat(i); });
  }
  periodic_events_.push_back(engine_.schedule_periodic(
      config_.policy_period, config_.policy_period, [this] { on_policy_period(); }));
  periodic_events_.push_back(engine_.schedule_periodic(
      config_.sample_period, config_.sample_period, [this] { on_sample(); }));

  // Job arrivals only need an event so that a heartbeat is forced promptly;
  // assignment itself filters on submit_time.
  for (const auto& job : jobs_) {
    const JobId id = job.id;
    engine_.schedule_at(job.submit_time, [this, id] {
      --jobs_not_yet_submitted_;
      trace_event(metrics::TraceEventKind::kJobSubmitted, id, kInvalidTask,
                  kInvalidNode, true);
    });
  }

  for (const auto& failure : config_.failures) {
    const NodeId node = failure.node;
    engine_.schedule_at(failure.at, [this, node] { fail_node(node); });
    if (failure.recover_at != kTimeNever) {
      // Count the scheduled recovery up front: an all-nodes-dead cluster
      // must wait for it instead of aborting the run.
      ++pending_recoveries_;
      engine_.schedule_at(failure.recover_at,
                          [this, node] { recover_node(node); });
    }
  }

  result_.progress.assign(jobs_.size(), {});
  engine_.run(config_.time_limit);

  result_.jobs.clear();
  result_.jobs.reserve(jobs_.size());
  for (const auto& job : jobs_) {
    metrics::JobResult jr;
    jr.id = job.id;
    jr.name = job.spec.name;
    jr.input_size = job.spec.input_size;
    jr.shuffle_volume = job.spec.map_output_total();
    jr.submit_time = job.submit_time;
    jr.start_time = job.start_time;
    jr.maps_done_time = job.maps_done_time;
    jr.finish_time = job.finish_time;
    jr.deadline = job.deadline;
    jr.failed = job.failed;
    result_.jobs.push_back(jr);
  }
  result_.completed = unfinished_jobs_ == 0 && !aborted_ && failed_jobs_ == 0;
  if (aborted_) {
    result_.failure_reason = run_failure_reason_;
  } else if (failed_jobs_ > 0) {
    for (const auto& job : jobs_) {
      if (!job.failed) continue;
      result_.failure_reason =
          "job " + job.spec.name + " failed: " + job.failure_reason;
      break;
    }
  } else if (!result_.completed) {
    result_.failure_reason = "time limit reached";
  }
  if (aborted_) {
    // The run was cut short; the makespan is when it stopped making
    // progress, not the far-away time limit the engine ran out to.
    result_.makespan = abort_time_;
  } else if (unfinished_jobs_ == 0) {
    // The clock sits at the run limit after engine_.run(); the makespan is
    // when the last job actually finished (teardown time for failed jobs).
    result_.makespan = 0.0;
    for (const auto& job : result_.jobs) {
      result_.makespan = std::max(result_.makespan, job.finish_time);
    }
  } else {
    result_.makespan = config_.time_limit;
  }
  if (spans_ != nullptr && run_span_ != obs::kInvalidSpan) {
    // Close whatever the run left open: the run root always, plus phases
    // and attempts when the time limit truncated it (abort_run already
    // flushed its own spans at the abort instant).
    spans_->close_open(result_.makespan, result_.completed
                                             ? obs::SpanOutcome::kOk
                                             : obs::SpanOutcome::kAborted);
  }
  result_.engine_events = engine_.dispatched();
  const cluster::MaxMinSolver::Stats solver = solver_stats();
  result_.solver_calls = solver.calls;
  result_.solver_full_solves = solver.full_solves;
  return result_;
}

ClusterStats Runtime::snapshot() const {
  ClusterStats stats;
  snapshot_into(stats);
  return stats;
}

std::span<const std::size_t> Runtime::active_jobs_now(SimTime now) const {
  // Drain every pending job whose submit time has been reached into the
  // id-sorted active list.  Draining at read time (rather than from the
  // arrival events) keeps the set identical to the historic filter even
  // when a reader fires at the same instant as, but before, the arrival
  // event.  Each job is drained exactly once, so the lazy inserts are
  // amortised O(log n + shift) over the whole run.
  while (!pending_jobs_.empty() && pending_jobs_.front().first <= now) {
    std::pop_heap(pending_jobs_.begin(), pending_jobs_.end(), pending_later);
    const std::size_t idx = pending_jobs_.back().second;
    pending_jobs_.pop_back();
    // A job can leave the system (teardown on failure) at the very instant
    // it was due; never resurrect it into the active set.
    if (jobs_[idx].finished()) continue;
    active_job_ids_.insert(
        std::lower_bound(active_job_ids_.begin(), active_job_ids_.end(), idx),
        idx);
  }
  return active_job_ids_;
}

void Runtime::deactivate_job(JobId id) {
  const auto idx = static_cast<std::size_t>(id);
  const auto it =
      std::lower_bound(active_job_ids_.begin(), active_job_ids_.end(), idx);
  if (it != active_job_ids_.end() && *it == idx) active_job_ids_.erase(it);
}

void Runtime::snapshot_into(ClusterStats& stats) const {
  // Reset to defaults while keeping the vectors' capacity: the heartbeat
  // path reuses one scratch instance instead of reallocating per beat.
  auto active_jobs = std::move(stats.active_jobs);
  auto per_node = std::move(stats.per_node);
  auto job_stats = std::move(stats.job_stats);
  active_jobs.clear();
  per_node.clear();
  job_stats.clear();
  stats = ClusterStats{};
  stats.active_jobs = std::move(active_jobs);
  stats.per_node = std::move(per_node);
  stats.job_stats = std::move(job_stats);
  stats.now = engine_.now();
  stats.nodes = config_.cluster.worker_count();
  stats.cum_map_input = cum_map_input_;
  stats.cum_map_output = cum_map_output_;
  stats.cum_shuffled = cum_shuffled_;

  const bool want_jobs = policy_->wants_job_stats();
  const Job* front = nullptr;
  for (const std::size_t j : active_jobs_now(stats.now)) {
    const Job& job = jobs_[j];
    if (front == nullptr) front = &job;
    stats.has_active_job = true;
    stats.active_jobs.push_back(job.id);
    stats.pending_maps += job.maps_pending();
    stats.finished_maps += job.maps_finished;
    stats.total_maps += static_cast<int>(job.maps.size());
    stats.running_maps +=
        job.maps_assigned - job.maps_finished;
    stats.pending_reduces += job.reduces_pending();
    stats.total_reduces += static_cast<int>(job.reduces.size());
    stats.running_reduces += job.reduces_assigned - job.reduces_finished;
    if (want_jobs) {
      JobStats js;
      js.job = job.id;
      js.tenant = job.spec.tenant;
      js.submit_time = job.submit_time;
      js.deadline = job.deadline;
      js.pending_maps = job.maps_pending();
      js.running_maps = job.maps_assigned - job.maps_finished;
      js.pending_reduces = job.reduces_pending();
      js.running_reduces = job.reduces_assigned - job.reduces_finished;
      stats.job_stats.push_back(std::move(js));
    }
  }
  if (front != nullptr) {
    stats.front_job_map_fraction = front->map_completion_fraction();
    stats.front_job_shuffle_volume = front->spec.map_output_total();
  }
  stats.per_node.reserve(trackers_.size());
  for (std::size_t n = 0; n < trackers_.size(); ++n) {
    NodeStats node;
    node.node = static_cast<NodeId>(n);
    node.alive = node_alive_[n];
    node.blacklisted = trackers_[n].blacklisted();
    node.running_maps = trackers_[n].running_maps();
    node.running_reduces = trackers_[n].running_reduces();
    node.cum_map_input = node_map_input_[n];
    node.cum_map_output = node_map_output_[n];
    node.cum_shuffled_in = node_shuffled_in_[n];
    stats.per_node.push_back(node);
  }
  if (policy_->wants_placement_stats()) {
    // Pending-split placement: input bytes of unassigned map tasks credited
    // to every node holding a replica of their split.  One pass over the
    // pending maps, so the cost scales with outstanding work, not nodes ×
    // tasks; only locality-driven policies (wants_placement_stats) pay it.
    for (const std::size_t j : active_jobs_now(stats.now)) {
      const Job& job = jobs_[j];
      if (job.maps_pending() == 0) continue;
      const auto& file = dfs_.file(job.input_file);
      const double split = static_cast<double>(job.spec.split_size);
      for (const auto& task : job.maps) {
        if (task.node != kInvalidNode) continue;
        const auto& block =
            file.blocks[static_cast<std::size_t>(task.split_index)];
        for (const NodeId replica : block.replicas) {
          stats.per_node[static_cast<std::size_t>(replica)]
              .local_pending_input += split;
        }
      }
    }
  }
}

MapTask& Runtime::map_task(TaskId id) {
  const TaskRef* ref = find_task_ref(id);
  SMR_CHECK_MSG(ref != nullptr && ref->is_map, "unknown map task " << id);
  if (ref->speculative) {
    SMR_CHECK_MSG(ref->shadow_slot >= 0, "dangling shadow " << id);
    return map_shadow_pool_[static_cast<std::size_t>(ref->shadow_slot)];
  }
  return job_of(ref->job).maps[static_cast<std::size_t>(ref->index)];
}

ReduceTask& Runtime::reduce_task(TaskId id) {
  const TaskRef* ref = find_task_ref(id);
  SMR_CHECK_MSG(ref != nullptr && !ref->is_map, "unknown reduce task " << id);
  if (ref->speculative) {
    SMR_CHECK_MSG(ref->shadow_slot >= 0, "dangling reduce shadow " << id);
    return reduce_shadow_pool_[static_cast<std::size_t>(ref->shadow_slot)];
  }
  return job_of(ref->job).reduces[static_cast<std::size_t>(ref->index)];
}

// --- Shadow-pool slot management -------------------------------------------

void Runtime::set_shadow_link(TaskId primary, TaskId shadow) {
  if (static_cast<std::size_t>(primary) >= shadow_link_.size()) {
    shadow_link_.resize(static_cast<std::size_t>(primary) + 1, kInvalidTask);
  }
  shadow_link_[static_cast<std::size_t>(primary)] = shadow;
}

std::int32_t Runtime::acquire_map_shadow_slot() {
  if (!map_shadow_free_.empty()) {
    const std::int32_t slot = map_shadow_free_.back();
    map_shadow_free_.pop_back();
    return slot;
  }
  map_shadow_pool_.emplace_back();
  return static_cast<std::int32_t>(map_shadow_pool_.size() - 1);
}

void Runtime::release_map_shadow_slot(std::int32_t slot) {
  map_shadow_pool_[static_cast<std::size_t>(slot)].id = kInvalidTask;
  map_shadow_free_.push_back(slot);
}

std::int32_t Runtime::acquire_reduce_shadow_slot() {
  if (!reduce_shadow_free_.empty()) {
    const std::int32_t slot = reduce_shadow_free_.back();
    reduce_shadow_free_.pop_back();
    return slot;
  }
  reduce_shadow_pool_.emplace_back();
  return static_cast<std::int32_t>(reduce_shadow_pool_.size() - 1);
}

void Runtime::release_reduce_shadow_slot(std::int32_t slot) {
  reduce_shadow_pool_[static_cast<std::size_t>(slot)].id = kInvalidTask;
  reduce_shadow_free_.push_back(slot);
}

// ---------------------------------------------------------------------------
// The fluid tick.
// ---------------------------------------------------------------------------

void Runtime::on_tick() {
  if (stopping_) return;
  if (shards_.size() > 1) {
    on_tick_sharded();
    return;
  }
  const double dt = config_.tick;
  const int n = config_.cluster.worker_count();
  TickScratch& t = tick_;

  // --- 0. Resolve every running attempt once ---------------------------
  // One pass over the tracker lists and the dense task-ref table builds
  // SoA views (ids / task pointers / job pointers / specs, node order).
  // Every later stage of the tick indexes these instead of re-resolving
  // attempt ids, which used to cost a ref lookup plus a hash probe (for
  // shadows) per touch, several touches per task per tick.  Pointers stay
  // valid for the whole tick: no attempt launches happen outside
  // heartbeats, and teardown paths run after the stages that use them.
  //
  // Doom detection rides the same pass: an attempt whose progress crossed
  // its injected-failure threshold last tick dies at this tick boundary,
  // before the census (freeing its slot for the next heartbeat's
  // assignment round).  Firing failures mutates the tracker lists, so the
  // scratch is rebuilt afterwards — a rare second pass.
  bool detect_doom = config_.task_fail_rate > 0.0;
  t.doomed_maps.clear();
  t.doomed_reduces.clear();
  for (;;) {
    // The id/pointer/range arrays only change when some tracker's running
    // list does (or a serving-path submit reallocates jobs_); between such
    // changes the full rebuild is skipped and only the phase-dependent
    // census is re-swept over the cached dense arrays.  When additionally
    // no phase changed since the last sweep and no fault injection is
    // armed, even the sweep is skipped: the scratch still holds the
    // previous tick's census, which is bit-identical by construction (the
    // settle stage only sorts its candidate lists in place — idempotent).
    std::uint64_t vsum = 0;
    for (const auto& tracker : trackers_) vsum += tracker.version();
    const bool same_membership =
        vsum == resolve_version_sum_ && jobs_.size() == resolve_jobs_size_;
    if (same_membership && !census_phase_dirty_ && !detect_doom) break;
    census_phase_dirty_ = false;
    // The occupancy census rides this pass too: every field is a pure
    // function of the task state being touched anyway, and fusing it saves
    // a full second sweep over the running set.
    t.settle_primaries.clear();
    t.settle_shadows.clear();
    t.shuffle_entries.clear();
    t.remote_entries.clear();
    t.occ.assign(static_cast<std::size_t>(n), cluster::Occupancy{});
    t.node_has_remote.assign(static_cast<std::size_t>(n), 0);
    if (!same_membership) {
      resolve_version_sum_ = vsum;
      resolve_jobs_size_ = jobs_.size();
      t.map_id.clear();
      t.map_task.clear();
      t.map_job.clear();
      t.map_spec.clear();
      t.red_id.clear();
      t.red_task.clear();
      t.red_job.clear();
      t.red_spec.clear();
      t.map_range.clear();
      t.red_range.clear();
      for (int d = 0; d < n; ++d) {
        const auto& tracker = trackers_[static_cast<std::size_t>(d)];
        auto& o = t.occ[static_cast<std::size_t>(d)];
        const auto map_begin = static_cast<std::uint32_t>(t.map_id.size());
        for (TaskId id : tracker.running_map_tasks()) {
          const TaskRef& ref = task_refs_[static_cast<std::size_t>(id)];
          Job* job = &jobs_[static_cast<std::size_t>(ref.job)];
          MapTask* task =
              ref.speculative
                  ? &map_shadow_pool_[static_cast<std::size_t>(ref.shadow_slot)]
                  : &job->maps[static_cast<std::size_t>(ref.index)];
          const auto entry = static_cast<std::uint32_t>(t.map_id.size());
          t.map_id.push_back(id);
          t.map_task.push_back(task);
          t.map_job.push_back(job);
          t.map_spec.push_back(&job->spec);
          const bool remote_mapping =
              task->phase == MapPhase::kMapping && !task->local;
          o.threads += 1;
          o.io_streams += remote_mapping ? 0 : 1;
          o.memory_demand += job->spec.map_task_memory;
          if (remote_mapping) {
            t.node_has_remote[static_cast<std::size_t>(d)] = 1;
            t.remote_entries.push_back(entry);
          }
          if (detect_doom && task->progress() >= task->fail_at_progress) {
            t.doomed_maps.push_back(id);
          }
        }
        t.map_range.emplace_back(map_begin,
                                 static_cast<std::uint32_t>(t.map_id.size()));
        const auto red_begin = static_cast<std::uint32_t>(t.red_id.size());
        for (TaskId id : tracker.running_reduce_tasks()) {
          const TaskRef& ref = task_refs_[static_cast<std::size_t>(id)];
          Job* job = &jobs_[static_cast<std::size_t>(ref.job)];
          ReduceTask* task =
              ref.speculative
                  ? &reduce_shadow_pool_[static_cast<std::size_t>(ref.shadow_slot)]
                  : &job->reduces[static_cast<std::size_t>(ref.index)];
          const auto entry = static_cast<std::uint32_t>(t.red_id.size());
          t.red_id.push_back(id);
          t.red_task.push_back(task);
          t.red_job.push_back(job);
          t.red_spec.push_back(&job->spec);
          const bool shuffling = task->phase == ReducePhase::kShuffling;
          o.threads += shuffling ? 2 : 1;
          o.io_streams += 1;
          o.memory_demand += job->spec.reduce_task_memory;
          // Collect the shuffle-settle candidates here so the settle stage
          // no longer scans every reduce of every job each tick.  Conditions
          // are re-checked at settle time; phases can only *enter*
          // kShuffling via requeues, which never happen inside a tick.
          if (shuffling) {
            t.shuffle_entries.push_back(entry);
            (ref.speculative ? t.settle_shadows : t.settle_primaries)
                .push_back(id);
          }
          if (detect_doom && task->progress() >= task->fail_at_progress) {
            t.doomed_reduces.push_back(id);
          }
        }
        t.red_range.emplace_back(red_begin,
                                 static_cast<std::uint32_t>(t.red_id.size()));
      }
    } else {
      // Membership unchanged: sweep the cached arrays for the
      // phase-dependent census only.  Field-for-field this repeats the
      // rebuild path above over identical tasks in identical order.
      for (int d = 0; d < n; ++d) {
        auto& o = t.occ[static_cast<std::size_t>(d)];
        const auto [mb, me] = t.map_range[static_cast<std::size_t>(d)];
        for (std::uint32_t i = mb; i < me; ++i) {
          const MapTask* task = t.map_task[i];
          const bool remote_mapping =
              task->phase == MapPhase::kMapping && !task->local;
          o.threads += 1;
          o.io_streams += remote_mapping ? 0 : 1;
          o.memory_demand += t.map_spec[i]->map_task_memory;
          if (remote_mapping) {
            t.node_has_remote[static_cast<std::size_t>(d)] = 1;
            t.remote_entries.push_back(i);
          }
          if (detect_doom && task->progress() >= task->fail_at_progress) {
            t.doomed_maps.push_back(t.map_id[i]);
          }
        }
        const auto [rb, re] = t.red_range[static_cast<std::size_t>(d)];
        for (std::uint32_t i = rb; i < re; ++i) {
          const ReduceTask* task = t.red_task[i];
          const bool shuffling = task->phase == ReducePhase::kShuffling;
          o.threads += shuffling ? 2 : 1;
          o.io_streams += 1;
          o.memory_demand += t.red_spec[i]->reduce_task_memory;
          if (shuffling) {
            const TaskId id = t.red_id[i];
            t.shuffle_entries.push_back(i);
            (task_refs_[static_cast<std::size_t>(id)].speculative
                 ? t.settle_shadows
                 : t.settle_primaries)
                .push_back(id);
          }
          if (detect_doom && task->progress() >= task->fail_at_progress) {
            t.doomed_reduces.push_back(t.red_id[i]);
          }
        }
      }
    }
    if (!detect_doom || (t.doomed_maps.empty() && t.doomed_reduces.empty())) {
      break;
    }
    detect_doom = false;  // one detection round per tick, as ever
    fail_doomed_attempts();
    if (stopping_) return;  // the last failure may have failed the last job
  }

  // --- 2. Network allocation -------------------------------------------
  t.flows.clear();
  t.flow_entry.clear();
  t.flow_is_shuffle.clear();
  t.fetch_streams.assign(static_cast<std::size_t>(n), 0);

  // Walk only the network participants collected in the resolve sweep.
  // Both lists are in node order, so advancing each cursor to the end of
  // the node's SoA range reproduces the historic per-node scan exactly:
  // shuffling reduces first, then remote-reading maps.
  std::size_t sp = 0;
  std::size_t rp = 0;
  for (int d = 0; d < n; ++d) {
    const NodeId dst = trackers_[static_cast<std::size_t>(d)].node();
    const std::uint32_t re = t.red_range[static_cast<std::size_t>(d)].second;
    for (; sp < t.shuffle_entries.size() && t.shuffle_entries[sp] < re; ++sp) {
      const std::uint32_t i = t.shuffle_entries[sp];
      const ReduceTask& task = *t.red_task[i];
      if (task.backlog() <= kByteEps) continue;
      t.fetch_streams[static_cast<std::size_t>(dst)] +=
          std::min(config_.parallel_copies, n);
      const JobSpec& spec = *t.red_spec[i];
      cluster::NetFlow flow;
      flow.dst = dst;
      flow.src = kInvalidNode;  // diffuse pull from every node
      flow.rate_cap = std::min(task.backlog() / dt, spec.shuffle_fetch_cap);
      t.flows.push_back(flow);
      t.flow_entry.push_back(i);
      t.flow_is_shuffle.push_back(true);
    }
    const std::uint32_t me = t.map_range[static_cast<std::size_t>(d)].second;
    for (; rp < t.remote_entries.size() && t.remote_entries[rp] < me; ++rp) {
      const std::uint32_t i = t.remote_entries[rp];
      const MapTask& task = *t.map_task[i];
      const JobSpec& spec = *t.map_spec[i];
      const auto& node_spec = config_.cluster.workers[static_cast<std::size_t>(dst)];
      const double cpu_per_byte =
          per_mib_to_per_byte(spec.map_cpu_per_mib) * task.cost_factor;
      const double cpu_rate = node_spec.cpu_speed / cpu_per_byte;
      cluster::NetFlow flow;
      flow.dst = dst;
      flow.src = task.src_node;
      flow.rate_cap = std::min(task.phase_remaining() / dt, cpu_rate);
      t.flows.push_back(flow);
      t.flow_entry.push_back(i);
      t.flow_is_shuffle.push_back(false);
    }
  }
  // Copy out of the solver cache: shuffle rates are rescaled in place below.
  {
    const std::vector<double>& granted =
        network_.allocate_cached(t.flows, t.fetch_streams);
    t.net_rates.assign(granted.begin(), granted.end());
  }

  // --- 3. Cap shuffle ingest by each receiver's disk share --------------
  t.shuffle_disk_demand.assign(static_cast<std::size_t>(n), 0.0);
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    if (!t.flow_is_shuffle[f]) continue;
    const JobSpec& spec = *t.red_spec[t.flow_entry[f]];
    t.shuffle_disk_demand[static_cast<std::size_t>(t.flows[f].dst)] +=
        t.net_rates[f] * spec.shuffle_disk_factor;
  }
  t.shuffle_scale.assign(static_cast<std::size_t>(n), 1.0);
  for (int d = 0; d < n; ++d) {
    const auto& node_spec = config_.cluster.workers[static_cast<std::size_t>(d)];
    const double allowed =
        config_.shuffle_disk_share *
        cluster::ComputeModel::effective_disk(node_spec, t.occ[static_cast<std::size_t>(d)]);
    const double demand = t.shuffle_disk_demand[static_cast<std::size_t>(d)];
    if (demand > allowed && demand > 0.0) {
      t.shuffle_scale[static_cast<std::size_t>(d)] = allowed / demand;
    }
  }
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    if (t.flow_is_shuffle[f]) {
      t.net_rates[f] *= t.shuffle_scale[static_cast<std::size_t>(t.flows[f].dst)];
    }
  }

  // --- 4. Background load from shuffle ingest ---------------------------
  t.background.assign(static_cast<std::size_t>(n), cluster::BackgroundLoad{});
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    if (!t.flow_is_shuffle[f]) continue;
    const JobSpec& spec = *t.red_spec[t.flow_entry[f]];
    auto& bg = t.background[static_cast<std::size_t>(t.flows[f].dst)];
    bg.cpu_cores += t.net_rates[f] * per_mib_to_per_byte(spec.shuffle_cpu_per_mib);
    bg.disk_rate += t.net_rates[f] * spec.shuffle_disk_factor;
  }

  // --- 5. Per-node compute solve ----------------------------------------
  // Remote-read map grants, keyed by task id in an epoch-stamped dense
  // table (no per-tick clearing, no hashing).
  ++net_grant_cur_epoch_;
  if (net_grant_rate_.size() < static_cast<std::size_t>(next_task_id_)) {
    net_grant_rate_.resize(static_cast<std::size_t>(next_task_id_), 0.0);
    net_grant_epoch_.resize(static_cast<std::size_t>(next_task_id_), 0);
  }
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    if (t.flow_is_shuffle[f]) continue;
    const auto id = static_cast<std::size_t>(t.map_id[t.flow_entry[f]]);
    net_grant_rate_[id] = t.net_rates[f];
    net_grant_epoch_[id] = net_grant_cur_epoch_;
  }

  // Node-ordered (task, rate) pairs: iteration order below is deterministic,
  // which keeps floating-point accumulation bit-for-bit reproducible.
  t.compute.clear();
  for (int d = 0; d < n; ++d) {
    const auto di = static_cast<std::size_t>(d);
    const auto& node_spec = config_.cluster.workers[di];
    const auto& tracker = trackers_[di];
    const cluster::BackgroundLoad& bg = t.background[di];
    // Quiescent-node fast path.  A node's solve inputs (occupancy,
    // background, per-load coefficients) are pure functions of its running
    // set, each task's phase/local/cost_factor, the background shuffle
    // ingest, and — for remote-read maps only — the per-tick network grant.
    // The running set is covered by the tracker version counter (bumped on
    // every launch/finish), pure phase transitions by the explicit dirty
    // marks in the integration and settle stages, background by a bit
    // compare, and grant-capped loads by excluding any node hosting a
    // remote kMapping map.  When all four say "unchanged", the previous
    // rates are provably bit-identical and are replayed from the cache
    // without rebuilding loads; the skipped solver call is recorded as a
    // memo hit so the reported solver stats stay byte-identical.
    const bool quiet = !node_dirty_[di] &&
                       tracker.version() == node_solve_version_[di] &&
                       !t.node_has_remote[di] &&
                       bg.cpu_cores == node_bg_prev_[di].cpu_cores &&
                       bg.disk_rate == node_bg_prev_[di].disk_rate;
    if (quiet) {
      const std::vector<double>& cache = node_rates_cache_[di];
      if (cache.empty()) continue;  // no loads last tick, none now
      std::size_t k = 0;
      const auto [mb, me] = t.map_range[di];
      for (std::uint32_t i = mb; i < me; ++i) {
        t.compute.push_back({i, true, cache[k++]});
      }
      const auto [rb, re] = t.red_range[di];
      for (std::uint32_t i = rb; i < re; ++i) {
        if (t.red_task[i]->phase == ReducePhase::kShuffling) continue;
        t.compute.push_back({i, false, cache[k++]});
      }
      SMR_CHECK(k == cache.size());
      node_models_[di].count_memo_hit();
      continue;
    }
    node_dirty_[di] = 0;
    node_solve_version_[di] = tracker.version();
    node_bg_prev_[di] = bg;
    t.loads.clear();
    t.load_entry.clear();
    t.load_is_map.clear();
    const auto [mb, me] = t.map_range[static_cast<std::size_t>(d)];
    for (std::uint32_t i = mb; i < me; ++i) {
      const MapTask& task = *t.map_task[i];
      const JobSpec& spec = *t.map_spec[i];
      cluster::PhaseLoad load;
      if (task.phase == MapPhase::kMapping) {
        load.cpu_per_byte = per_mib_to_per_byte(spec.map_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = task.local ? 1.0 : 0.0;
        if (!task.local) {
          const auto id = static_cast<std::size_t>(t.map_id[i]);
          load.rate_cap = net_grant_epoch_[id] == net_grant_cur_epoch_
                              ? net_grant_rate_[id]
                              : 0.0;
        }
      } else if (task.phase == MapPhase::kCombining) {
        // In-memory aggregation over the pre-combine output: CPU-bound with
        // light buffer churn on disk.
        load.cpu_per_byte =
            per_mib_to_per_byte(spec.combine_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = 0.3;
      } else {  // kSpilling: progress in output bytes
        load.cpu_per_byte = per_mib_to_per_byte(spec.spill_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = spec.spill_disk_factor;
      }
      t.loads.push_back(load);
      t.load_entry.push_back(i);
      t.load_is_map.push_back(true);
    }
    const auto [rb, re] = t.red_range[static_cast<std::size_t>(d)];
    for (std::uint32_t i = rb; i < re; ++i) {
      const ReduceTask& task = *t.red_task[i];
      const JobSpec& spec = *t.red_spec[i];
      if (task.phase == ReducePhase::kShuffling) continue;  // network-driven
      cluster::PhaseLoad load;
      if (task.phase == ReducePhase::kSorting) {
        load.cpu_per_byte = per_mib_to_per_byte(spec.sort_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = spec.sort_disk_factor;
      } else {  // kReducing
        load.cpu_per_byte = per_mib_to_per_byte(spec.reduce_cpu_per_mib) * task.cost_factor;
        load.disk_per_byte = 1.0 + spec.reduce_selectivity * spec.output_disk_factor;
      }
      t.loads.push_back(load);
      t.load_entry.push_back(i);
      t.load_is_map.push_back(false);
    }
    if (t.loads.empty()) {
      node_rates_cache_[di].clear();
      continue;
    }
    const std::vector<double>& rates =
        node_models_[di].solve_cached(node_spec, t.occ[di], bg, t.loads);
    node_rates_cache_[di].assign(rates.begin(), rates.end());
    for (std::size_t i = 0; i < t.loads.size(); ++i) {
      t.compute.push_back({t.load_entry[i], t.load_is_map[i] != 0, rates[i]});
    }
  }

  // --- 6. Integrate progress and fire transitions ------------------------
  // Shuffle progress first (jumps in `available` only happen via map
  // completions below, so ordering within the tick is consistent).
  for (std::size_t f = 0; f < t.flows.size(); ++f) {
    if (!t.flow_is_shuffle[f]) continue;
    ReduceTask& task = *t.red_task[t.flow_entry[f]];
    Job& job = *t.red_job[t.flow_entry[f]];
    const double delta = std::min(t.net_rates[f] * dt, task.backlog());
    if (delta <= 0.0) continue;
    task.fetched += delta;
    job.bytes_shuffled += delta;
    cum_shuffled_ += delta;
    node_shuffled_in_[static_cast<std::size_t>(t.flows[f].dst)] += delta;
  }

  // Compute-phase progress, with completions collected and applied after
  // the sweep (map completions mutate reduce backlogs; reduce completions
  // mutate tracker lists we are not iterating here).
  t.finished_maps.clear();
  t.finished_reduces.clear();
  for (const auto& c : t.compute) {
    if (c.is_map) {
      MapTask& task = *t.map_task[c.entry];
      Job& job = *t.map_job[c.entry];
      double advance = std::min(c.rate * dt, task.phase_remaining());
      if (task.phase == MapPhase::kMapping) {
        task.phase_done += advance;
        job.map_input_processed += advance;
        cum_map_input_ += advance;
        node_map_input_[static_cast<std::size_t>(task.node)] += advance;
        if (task.phase_remaining() <= kByteEps) {
          task.phase_done = task.phase_total();
          if (task.combine_total > 0) {
            task.phase = MapPhase::kCombining;
            task.phase_done = 0.0;
            mark_node_dirty(task.node);
            trace_event(metrics::TraceEventKind::kPhaseStarted, task.job,
                        task.id, task.node, true, "COMBINE");
          } else if (task.output_size > 0) {
            task.phase = MapPhase::kSpilling;
            task.phase_done = 0.0;
            mark_node_dirty(task.node);
            trace_event(metrics::TraceEventKind::kPhaseStarted, task.job,
                        task.id, task.node, true, "SPILL");
          } else {
            t.finished_maps.push_back(t.map_id[c.entry]);
          }
        }
      } else if (task.phase == MapPhase::kCombining) {
        task.phase_done += advance;
        if (task.phase_remaining() <= kByteEps) {
          if (task.output_size > 0) {
            task.phase = MapPhase::kSpilling;
            task.phase_done = 0.0;
            mark_node_dirty(task.node);
            trace_event(metrics::TraceEventKind::kPhaseStarted, task.job,
                        task.id, task.node, true, "SPILL");
          } else {
            t.finished_maps.push_back(t.map_id[c.entry]);
          }
        }
      } else if (task.phase == MapPhase::kSpilling) {
        task.phase_done += advance;
        if (task.phase_remaining() <= kByteEps) {
          t.finished_maps.push_back(t.map_id[c.entry]);
        }
      }
    } else {
      ReduceTask& task = *t.red_task[c.entry];
      double advance = c.rate * dt;
      const double total = static_cast<double>(task.partition_size);
      if (task.phase == ReducePhase::kSorting) {
        task.phase_done = std::min(task.phase_done + advance, total);
        if (total - task.phase_done <= kByteEps) {
          task.phase = ReducePhase::kReducing;
          task.phase_done = 0.0;
          mark_node_dirty(task.node);
          trace_event(metrics::TraceEventKind::kPhaseStarted, task.job,
                      task.id, task.node, false, "REDUCE");
        }
      } else if (task.phase == ReducePhase::kReducing) {
        task.phase_done = std::min(task.phase_done + advance, total);
        if (total - task.phase_done <= kByteEps) {
          t.finished_reduces.push_back(t.red_id[c.entry]);
        }
      }
    }
  }
  // Deterministic completion order (the compute sweep is in node order, not
  // id order).
  std::sort(t.finished_maps.begin(), t.finished_maps.end());
  std::sort(t.finished_reduces.begin(), t.finished_reduces.end());
  for (TaskId id : t.finished_maps) {
    const TaskRef* ref_it = find_task_ref(id);
    if (ref_it == nullptr) continue;  // shadow retired this tick
    const TaskRef& ref = *ref_it;
    if (ref.speculative) {
      win_speculative(id);
      continue;
    }
    MapTask& task = map_task(id);
    if (task.phase == MapPhase::kDone) continue;  // shadow won this tick
    complete_map(job_of(task.job), task, id);
  }
  for (TaskId id : t.finished_reduces) {
    const TaskRef* ref_it = find_task_ref(id);
    if (ref_it == nullptr) continue;  // shadow retired this tick
    if (ref_it->speculative) {
      win_speculative_reduce(id);
      continue;
    }
    ReduceTask& task = reduce_task(id);
    if (task.phase == ReducePhase::kDone) continue;  // shadow won this tick
    complete_reduce(job_of(task.job), task, id);
  }

  // Settle shuffle completions and zero-size phases (must run after map
  // completions so the barrier state is current).  Candidates were
  // collected in the resolve pass; ascending-id order reproduces the
  // historic jobs-then-partitions scan order, primaries before shadows.
  std::sort(t.settle_primaries.begin(), t.settle_primaries.end());
  for (TaskId id : t.settle_primaries) {
    const TaskRef& ref = task_refs_[static_cast<std::size_t>(id)];
    Job& job = jobs_[static_cast<std::size_t>(ref.job)];
    ReduceTask& task = job.reduces[static_cast<std::size_t>(ref.index)];
    // Re-check: a speculative win above may have completed (and thereby
    // de-scheduled) the primary since the census.
    if (!task.running() || task.phase != ReducePhase::kShuffling) continue;
    settle_reduce(job, task);
  }
  if (!t.settle_shadows.empty()) {
    std::sort(t.settle_shadows.begin(), t.settle_shadows.end());
    for (TaskId id : t.settle_shadows) {
      // The shadow may have been retired by a primary completing above.
      const TaskRef* ref = find_task_ref(id);
      if (ref == nullptr) continue;
      ReduceTask& task =
          reduce_shadow_pool_[static_cast<std::size_t>(ref->shadow_slot)];
      if (task.phase != ReducePhase::kShuffling) continue;
      settle_reduce(job_of(task.job), task);
    }
  }

  check_all_done();
}

void Runtime::complete_map(Job& job, MapTask& task, TaskId attempt_id) {
  SMR_CHECK(task.phase != MapPhase::kDone);
  // A surviving shadow loses the race the moment the primary completes.
  if (has_shadow(task.id)) kill_shadow(task);
  task.phase = MapPhase::kDone;
  task.finish_time = engine_.now();
  if (metrics_ != nullptr) {
    metrics_->histogram("task.map_duration_s", obs::kDurationBounds)
        .observe(task.finish_time - task.start_time);
  }
  trace_event(metrics::TraceEventKind::kTaskFinished, job.id, task.id,
              task.node, true);
  span_attempt_ended(attempt_id, obs::SpanOutcome::kOk);
  trackers_[static_cast<std::size_t>(task.node)].finish_map(attempt_id);
  ++job.maps_finished;
  if (spans_ != nullptr && !job.maps.empty() &&
      job.map_completion_fraction() >= config_.reduce_slowstart) {
    span_reduce_eligible(job);
  }
  job.map_output_produced += static_cast<double>(task.output_size);
  cum_map_output_ += static_cast<double>(task.output_size);
  node_map_output_[static_cast<std::size_t>(task.node)] +=
      static_cast<double>(task.output_size);

  // Feed this map's output into every reduce partition of the job.  Uniform
  // partitioning; the last reduce absorbs rounding so bytes are conserved.
  if (!job.reduces.empty() && task.output_size > 0) {
    const double share = static_cast<double>(task.output_size) /
                         static_cast<double>(job.reduces.size());
    for (auto& reduce : job.reduces) reduce.available += share;
  }

  if (job.maps_all_finished()) {
    job.maps_done_time = engine_.now();
    // Kill accumulated floating-point drift: every partition is now fully
    // available by definition.
    for (auto& reduce : job.reduces) {
      reduce.available = static_cast<double>(reduce.partition_size);
      reduce.fetched = std::min(reduce.fetched, reduce.available);
    }
    trace_event(metrics::TraceEventKind::kBarrierCrossed, job.id, kInvalidTask,
                kInvalidNode, true);
    span_barrier_crossed(job);
    SMR_DEBUG("job " << job.spec.name << " crossed the barrier at "
                     << format_duration(engine_.now()));
  }
}

void Runtime::settle_reduce(Job& job, ReduceTask& task) {
  SMR_CHECK(task.phase == ReducePhase::kShuffling);
  const double total = static_cast<double>(task.partition_size);
  if (!job.maps_all_finished()) return;
  if (total - task.fetched > kByteEps) return;
  // Shuffle complete: account any sub-byte residue, then cross into the
  // compute phases; zero-size partitions fall straight through.
  task.fetched = total;
  task.shuffle_end_time = engine_.now();
  task.phase = ReducePhase::kSorting;
  task.phase_done = 0.0;
  mark_node_dirty(task.node);
  trace_event(metrics::TraceEventKind::kPhaseStarted, task.job, task.id,
              task.node, false, "SORT");
  span_shuffle_settled(job, task.id);
  if (task.partition_size == 0) {
    // Nothing to sort or reduce; the task completes immediately (zero-size
    // partitions never have speculative shadows).
    complete_reduce(job, task, task.id);
  }
}

void Runtime::complete_reduce(Job& job, ReduceTask& task, TaskId attempt_id) {
  SMR_CHECK(task.phase != ReducePhase::kDone);
  if (has_reduce_shadow(task.id)) kill_reduce_shadow(task);
  task.phase = ReducePhase::kDone;
  task.finish_time = engine_.now();
  if (metrics_ != nullptr) {
    metrics_->histogram("task.reduce_duration_s", obs::kDurationBounds)
        .observe(task.finish_time - task.start_time);
  }
  trace_event(metrics::TraceEventKind::kTaskFinished, job.id, task.id,
              task.node, false);
  span_attempt_ended(attempt_id, obs::SpanOutcome::kOk);
  trackers_[static_cast<std::size_t>(task.node)].finish_reduce(attempt_id);
  ++job.reduces_finished;
  if (job.reduces_finished == static_cast<int>(job.reduces.size()) &&
      job.maps_all_finished()) {
    job.finish_time = engine_.now();
    --unfinished_jobs_;
    deactivate_job(job.id);
    trace_event(metrics::TraceEventKind::kJobFinished, job.id, kInvalidTask,
                kInvalidNode, true);
    span_job_finished(job, obs::SpanOutcome::kOk);
    SMR_INFO("job " << job.spec.name << " finished at "
                    << format_duration(engine_.now()));
    if (on_job_finished_) on_job_finished_(job);
  }
}

void Runtime::close_submissions() {
  open_ = false;
  if (ran_) check_all_done();
}

void Runtime::check_all_done() {
  if (stopping_) return;
  // An open runtime idles through empty-queue stretches: the arrival
  // process may still inject work.
  if (open_) return;
  if (unfinished_jobs_ == 0 && jobs_not_yet_submitted_ == 0) {
    stopping_ = true;
    for (sim::EventId id : periodic_events_) engine_.cancel(id);
    periodic_events_.clear();
    for (sim::EventId& id : heartbeat_events_) {
      if (id != sim::kInvalidEvent) engine_.cancel(id);
      id = sim::kInvalidEvent;
    }
  }
}

void Runtime::abort_run(std::string reason) {
  if (stopping_) return;
  SMR_WARN("aborting run at " << format_duration(engine_.now()) << ": " << reason);
  aborted_ = true;
  abort_time_ = engine_.now();
  run_failure_reason_ = std::move(reason);
  stopping_ = true;
  for (sim::EventId id : periodic_events_) engine_.cancel(id);
  periodic_events_.clear();
  for (sim::EventId& id : heartbeat_events_) {
    if (id != sim::kInvalidEvent) engine_.cancel(id);
    id = sim::kInvalidEvent;
  }
  // Graceful-degradation flush: the samplers above are dead, so leave the
  // obs sinks complete as of the abort instant — one final metric sample,
  // any policy decisions not yet mirrored into the trace, and every span
  // closed (kAborted).  The decision/trace logs themselves are append-only
  // and already consistent.
  record_metric_samples(abort_time_);
  span_refresh_decisions();
  span_flush_aborted();
}

// ---------------------------------------------------------------------------
// Control plane.
// ---------------------------------------------------------------------------

void Runtime::on_heartbeat(std::size_t tracker_index) {
  if (stopping_) return;
  if (!node_alive_[tracker_index]) return;
  TaskTracker& tracker = trackers_[tracker_index];
  // Stagger offsets keep heartbeat instants distinct, so every heartbeat
  // would need a fresh snapshot; snapshot_into reuses the scratch's vector
  // capacity instead of reallocating per-job / per-node arrays each time.
  // Policies whose on_heartbeat ignores its stats argument (the static
  // policy, the slot manager) declare so and skip the snapshot entirely —
  // the dominant per-heartbeat cost on large clusters.
  if (policy_->wants_heartbeat_stats()) snapshot_into(hb_stats_);
  const ClusterStats& stats = hb_stats_;
  // Heartbeat-level policies (YARN's capacity accounting) adjust targets
  // here; watch the cluster totals so the counter tracks stay truthful.
  const int prev_map_total = trace_ != nullptr ? total_map_target() : 0;
  const int prev_reduce_total = trace_ != nullptr ? total_reduce_target() : 0;
  policy_->on_heartbeat(tracker, stats);
  if (trace_ != nullptr) trace_slot_targets(prev_map_total, prev_reduce_total);
  if (metrics_ != nullptr) metrics_->counter("heartbeats.processed").inc();
  // A blacklisted tracker still heartbeats (its statistics stay fresh and
  // running tasks drain lazily) but takes no new assignments.
  if (tracker.blacklisted()) return;
  if (config_.eager_slot_shrink) eager_shrink(tracker);
  assign_tasks(tracker);
}

void Runtime::eager_shrink(TaskTracker& tracker) {
  while (tracker.running_maps() > tracker.map_target()) {
    // Kill the most recently started map: the least sunk progress.
    // Speculative shadows go first — they are pure duplicates.
    TaskId victim = kInvalidTask;
    SimTime latest = -1.0;
    bool victim_is_shadow = false;
    for (TaskId id : tracker.running_map_tasks()) {
      const bool is_shadow = task_ref_at(id).speculative;
      const MapTask& task = map_task(id);
      if ((is_shadow && !victim_is_shadow) ||
          (is_shadow == victim_is_shadow && task.start_time > latest)) {
        latest = task.start_time;
        victim = id;
        victim_is_shadow = is_shadow;
      }
    }
    SMR_CHECK(victim != kInvalidTask);
    if (victim_is_shadow) {
      const TaskRef ref = task_ref_at(victim);
      kill_shadow(job_of(ref.job).maps[static_cast<std::size_t>(ref.index)]);
    } else {
      requeue_running_map(map_task(victim));
    }
    ++killed_map_tasks_;
  }
}

void Runtime::rollback_map_progress(const MapTask& task) {
  Job& job = job_of(task.job);
  const double processed = task.phase == MapPhase::kMapping
                               ? task.phase_done
                               : static_cast<double>(task.input_size);
  job.map_input_processed -= processed;
  cum_map_input_ -= processed;
  node_map_input_[static_cast<std::size_t>(task.node)] -= processed;
}

void Runtime::requeue_running_map(MapTask& task) {
  SMR_CHECK(task.running());
  // A requeued primary cannot race its own shadow: retire the shadow too.
  if (has_shadow(task.id)) kill_shadow(task);
  Job& job = job_of(task.job);
  // Roll the fluid accounting back: its partial input no longer counts.
  rollback_map_progress(task);
  trace_event(metrics::TraceEventKind::kTaskKilled, task.job, task.id,
              task.node, true);
  span_mark_retry(task.id, task.id);
  span_attempt_ended(task.id, obs::SpanOutcome::kKilled);
  trackers_[static_cast<std::size_t>(task.node)].finish_map(task.id);
  task.node = kInvalidNode;
  task.src_node = kInvalidNode;
  task.local = true;
  task.phase = MapPhase::kMapping;
  task.phase_done = 0.0;
  task.start_time = kTimeNever;
  --job.maps_assigned;
}

void Runtime::requeue_running_reduce(ReduceTask& task) {
  SMR_CHECK(task.running());
  if (has_reduce_shadow(task.id)) kill_reduce_shadow(task);
  Job& job = job_of(task.job);
  // Whatever the task fetched sat on the failed node's disk; the work has
  // to be redone by the fresh attempt.
  job.bytes_shuffled -= task.fetched;
  cum_shuffled_ -= task.fetched;
  node_shuffled_in_[static_cast<std::size_t>(task.node)] -= task.fetched;
  trace_event(metrics::TraceEventKind::kTaskKilled, task.job, task.id,
              task.node, false);
  span_mark_retry(task.id, task.id);
  span_attempt_ended(task.id, obs::SpanOutcome::kKilled);
  trackers_[static_cast<std::size_t>(task.node)].finish_reduce(task.id);
  task.node = kInvalidNode;
  task.phase = ReducePhase::kShuffling;
  task.fetched = 0.0;
  task.phase_done = 0.0;
  task.start_time = kTimeNever;
  task.shuffle_end_time = kTimeNever;
  --job.reduces_assigned;
}

void Runtime::requeue_completed_map(Job& job, MapTask& task) {
  SMR_CHECK(task.phase == MapPhase::kDone);
  trace_event(metrics::TraceEventKind::kTaskKilled, task.job, task.id,
              task.node, true);
  // The re-execution is causally a retry of the (successfully completed,
  // then lost) attempt; its span is already closed, so link via the
  // last-attempt record.
  span_mark_retry(task.id, task.id);
  --job.maps_finished;
  --job.maps_assigned;
  job.map_input_processed -= static_cast<double>(task.input_size);
  cum_map_input_ -= static_cast<double>(task.input_size);
  node_map_input_[static_cast<std::size_t>(task.node)] -=
      static_cast<double>(task.input_size);
  job.map_output_produced -= static_cast<double>(task.output_size);
  cum_map_output_ -= static_cast<double>(task.output_size);
  node_map_output_[static_cast<std::size_t>(task.node)] -=
      static_cast<double>(task.output_size);
  // Take this map's share back out of every reduce backlog.  The fluid
  // partition model cannot attribute already-fetched bytes to individual
  // maps, so the claw-back is clamped at what each reducer still holds:
  // reducers keep everything they fetched and re-fetch only the remainder.
  if (!job.reduces.empty() && task.output_size > 0) {
    const double share = static_cast<double>(task.output_size) /
                         static_cast<double>(job.reduces.size());
    for (auto& reduce : job.reduces) {
      reduce.available = std::max(reduce.fetched, reduce.available - share);
    }
  }
  // If the job had crossed the barrier, the barrier re-opens.
  job.maps_done_time = kTimeNever;
  task.node = kInvalidNode;
  task.src_node = kInvalidNode;
  task.local = true;
  task.phase = MapPhase::kMapping;
  task.phase_done = 0.0;
  task.start_time = kTimeNever;
  task.finish_time = kTimeNever;
}

void Runtime::fail_node(NodeId node) {
  if (stopping_) return;  // failure scheduled past the end of the run
  SMR_CHECK(node >= 0 && static_cast<std::size_t>(node) < node_alive_.size());
  SMR_CHECK_MSG(node_alive_[static_cast<std::size_t>(node)],
                "node " << node << " failed twice");
  const int prev_map_total = trace_ != nullptr ? total_map_target() : 0;
  const int prev_reduce_total = trace_ != nullptr ? total_reduce_target() : 0;
  node_alive_[static_cast<std::size_t>(node)] = false;
  trace_event(metrics::TraceEventKind::kNodeFailed, kInvalidJob, kInvalidTask,
              node, true);
  if (metrics_ != nullptr) metrics_->counter("nodes.failed").inc();
  TaskTracker& tracker = trackers_[static_cast<std::size_t>(node)];
  SMR_WARN("node " << node << " failed at " << format_duration(engine_.now()));

  // A dead tracker stops heartbeating (the job tracker expires it); leaving
  // the periodic event live would keep running its control loop.  Park the
  // series instead of cancelling so a recovery can revive the same event.
  const sim::EventId heartbeat = heartbeat_events_[static_cast<std::size_t>(node)];
  if (heartbeat != sim::kInvalidEvent) {
    engine_.reschedule(heartbeat, kTimeNever);
  }
  // Its slots are gone with it: zero the targets so cluster totals (and the
  // slot-target counter tracks) reflect live capacity only.
  tracker.set_map_target(0);
  tracker.set_reduce_target(0);
  if (trace_ != nullptr) trace_slot_targets(prev_map_total, prev_reduce_total);

  // Kill everything running there (copies: requeue mutates the lists).
  const std::vector<TaskId> running_maps = tracker.running_map_tasks();
  for (TaskId id : running_maps) {
    const TaskRef ref = task_ref_at(id);
    if (ref.speculative) {
      kill_shadow(job_of(ref.job).maps[static_cast<std::size_t>(ref.index)]);
    } else {
      requeue_running_map(map_task(id));
    }
    ++tasks_lost_to_failures_;
  }
  const std::vector<TaskId> running_reduces = tracker.running_reduce_tasks();
  for (TaskId id : running_reduces) {
    const TaskRef ref = task_ref_at(id);
    if (ref.speculative) {
      kill_reduce_shadow(
          job_of(ref.job).reduces[static_cast<std::size_t>(ref.index)]);
    } else {
      requeue_running_reduce(reduce_task(id));
    }
    ++tasks_lost_to_failures_;
  }

  // Completed map outputs on this node are gone; re-execute them for any
  // job whose shuffle still needs them (Hadoop's map re-execution on
  // tracker loss).
  for (const std::size_t j : active_jobs_now(engine_.now())) {
    Job& job = jobs_[j];
    bool shuffle_outstanding = false;
    for (const auto& reduce : job.reduces) {
      if (reduce.phase == ReducePhase::kShuffling) {
        shuffle_outstanding = true;
        break;
      }
    }
    if (!shuffle_outstanding && job.reduces_assigned == static_cast<int>(job.reduces.size())) {
      continue;  // every reducer already holds its full partition
    }
    for (auto& task : job.maps) {
      if (task.phase == MapPhase::kDone && task.node == node) {
        requeue_completed_map(job, task);
        ++tasks_lost_to_failures_;
      }
    }
  }

  // With every worker down and no recovery on the calendar, the run can
  // never finish — degrade gracefully instead of wedging until the time
  // limit (or crashing in the assignment path).
  bool any_alive = false;
  for (const bool alive : node_alive_) any_alive = any_alive || alive;
  if (!any_alive && (unfinished_jobs_ > 0 || jobs_not_yet_submitted_ > 0)) {
    if (pending_recoveries_ > 0) {
      SMR_WARN("all worker nodes are down; waiting for scheduled recovery");
    } else {
      abort_run("all worker nodes have failed");
    }
  }
}

void Runtime::recover_node(NodeId node) {
  --pending_recoveries_;
  if (stopping_) return;  // recovery scheduled past the end of the run
  SMR_CHECK(node >= 0 && static_cast<std::size_t>(node) < node_alive_.size());
  SMR_CHECK_MSG(!node_alive_[static_cast<std::size_t>(node)],
                "node " << node << " recovered while alive");
  const int prev_map_total = trace_ != nullptr ? total_map_target() : 0;
  const int prev_reduce_total = trace_ != nullptr ? total_reduce_target() : 0;
  node_alive_[static_cast<std::size_t>(node)] = true;
  TaskTracker& tracker = trackers_[static_cast<std::size_t>(node)];
  // A fresh tracker process rejoins: no running tasks (the failure already
  // emptied the lists), initial slot targets, a clean blacklist record.
  tracker.set_blacklisted(false);
  node_attempt_failures_[static_cast<std::size_t>(node)] = 0;
  tracker.set_map_target(config_.initial_map_slots);
  tracker.set_reduce_target(config_.initial_reduce_slots);
  if (trace_ != nullptr) trace_slot_targets(prev_map_total, prev_reduce_total);
  ++nodes_recovered_;
  trace_event(metrics::TraceEventKind::kNodeRecovered, kInvalidJob,
              kInvalidTask, node, true);
  if (metrics_ != nullptr) metrics_->counter("nodes.recovered").inc();
  SMR_INFO("node " << node << " recovered at " << format_duration(engine_.now()));
  // Resume the heartbeat on this tracker's original stagger grid, at the
  // first grid point after the recovery instant.  The parked periodic
  // series is revived in place — no cancel+push pair, no new event id.
  const std::size_t i = static_cast<std::size_t>(node);
  const SimTime offset = config_.heartbeat_period * static_cast<double>(i + 1) /
                         static_cast<double>(trackers_.size());
  const SimTime now = engine_.now();
  SimTime first = offset;
  if (first <= now) {
    first = offset + std::ceil((now - offset) / config_.heartbeat_period) *
                         config_.heartbeat_period;
    if (first <= now) first += config_.heartbeat_period;
  }
  const bool revived = engine_.reschedule(heartbeat_events_[i], first);
  SMR_CHECK_MSG(revived, "heartbeat series for node " << node << " vanished");
}

// ---------------------------------------------------------------------------
// Fault injection: per-attempt failures, retries, blacklisting.
// ---------------------------------------------------------------------------

NodeId Runtime::pick_live_source(const std::vector<NodeId>& replicas) {
  std::vector<NodeId> alive;
  for (NodeId r : replicas) {
    if (node_alive_[static_cast<std::size_t>(r)]) alive.push_back(r);
  }
  if (alive.empty()) {
    // Every replica died: HDFS would have re-replicated long before the
    // split is read; model that by reading from a random live node.
    for (NodeId r = 0; r < static_cast<NodeId>(node_alive_.size()); ++r) {
      if (node_alive_[static_cast<std::size_t>(r)]) alive.push_back(r);
    }
  }
  if (alive.empty()) return kInvalidNode;
  return alive[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(alive.size()) - 1))];
}

double Runtime::draw_fail_threshold() {
  // Draw only when injection is on: a fault-free config must not advance
  // fault_rng_ either, so later enabling injection cannot perturb it.
  if (config_.task_fail_rate <= 0.0) return kNeverFail;
  if (fault_rng_.uniform() >= config_.task_fail_rate) return kNeverFail;
  // Doomed: die somewhere mid-phase (never at 0, where the attempt has no
  // footprint yet, and never so close to 1 that it always finishes first).
  return fault_rng_.uniform(0.05, 0.95);
}

void Runtime::fail_doomed_attempts() {
  // Fail in id order: the collection order (tracker lists) is launch
  // history, not deterministic rank.  A failure can tear a job down and
  // retire other doomed attempts mid-sweep; fail_*_attempt re-checks.
  std::sort(tick_.doomed_maps.begin(), tick_.doomed_maps.end());
  std::sort(tick_.doomed_reduces.begin(), tick_.doomed_reduces.end());
  for (TaskId id : tick_.doomed_maps) fail_map_attempt(id);
  for (TaskId id : tick_.doomed_reduces) fail_reduce_attempt(id);
}

void Runtime::fail_map_attempt(TaskId id) {
  const TaskRef* it = find_task_ref(id);
  if (it == nullptr) return;  // retired by an earlier teardown
  const TaskRef ref = *it;
  Job& job = job_of(ref.job);
  if (job.failed) return;
  MapTask& primary = job.maps[static_cast<std::size_t>(ref.index)];
  const NodeId node = map_task(id).node;
  ++task_attempt_failures_;
  ++primary.failed_attempts;
  if (metrics_ != nullptr) metrics_->counter("tasks.map_attempt_failures").inc();
  trace_event(metrics::TraceEventKind::kTaskAttemptFailed, job.id, id, node,
              true, ref.speculative ? "injected-speculative" : "injected",
              static_cast<double>(primary.failed_attempts));
  // Close the span as kFailed before the requeue/kill path (whose own
  // close would report kKilled); mark the retry link for a relaunch.
  if (!ref.speculative) span_mark_retry(primary.id, id);
  span_attempt_ended(id, obs::SpanOutcome::kFailed);
  if (ref.speculative) {
    // The shadow dies; the primary keeps running (but the failure counts
    // against the shared attempt budget, as in Hadoop).
    kill_shadow(primary);
  } else if (primary.failed_attempts < config_.max_attempts) {
    requeue_running_map(primary);  // emits TASK_KILLED, frees the slot
    ++task_retries_;
    if (metrics_ != nullptr) metrics_->counter("tasks.retries").inc();
  }
  record_attempt_failure_on(node);
  if (primary.failed_attempts >= config_.max_attempts) {
    fail_job(job, "map task " + std::to_string(primary.id) + " failed " +
                      std::to_string(primary.failed_attempts) + " attempts");
  }
}

void Runtime::fail_reduce_attempt(TaskId id) {
  const TaskRef* it = find_task_ref(id);
  if (it == nullptr) return;  // retired by an earlier teardown
  const TaskRef ref = *it;
  Job& job = job_of(ref.job);
  if (job.failed) return;
  ReduceTask& primary = job.reduces[static_cast<std::size_t>(ref.index)];
  const NodeId node = reduce_task(id).node;
  ++task_attempt_failures_;
  ++primary.failed_attempts;
  if (metrics_ != nullptr) {
    metrics_->counter("tasks.reduce_attempt_failures").inc();
  }
  trace_event(metrics::TraceEventKind::kTaskAttemptFailed, job.id, id, node,
              false, ref.speculative ? "injected-speculative" : "injected",
              static_cast<double>(primary.failed_attempts));
  if (!ref.speculative) span_mark_retry(primary.id, id);
  span_attempt_ended(id, obs::SpanOutcome::kFailed);
  if (ref.speculative) {
    kill_reduce_shadow(primary);
  } else if (primary.failed_attempts < config_.max_attempts) {
    requeue_running_reduce(primary);
    ++task_retries_;
    if (metrics_ != nullptr) metrics_->counter("tasks.retries").inc();
  }
  record_attempt_failure_on(node);
  if (primary.failed_attempts >= config_.max_attempts) {
    fail_job(job, "reduce task " + std::to_string(primary.id) + " failed " +
                      std::to_string(primary.failed_attempts) + " attempts");
  }
}

void Runtime::record_attempt_failure_on(NodeId node) {
  if (config_.blacklist_after <= 0) return;
  const auto n = static_cast<std::size_t>(node);
  if (!node_alive_[n] || trackers_[n].blacklisted()) return;
  if (++node_attempt_failures_[n] < config_.blacklist_after) return;
  // Never blacklist the last healthy tracker: a cluster with zero
  // assignable slots can only wedge.
  int healthy = 0;
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    if (node_alive_[i] && !trackers_[i].blacklisted()) ++healthy;
  }
  if (healthy <= 1) return;
  const int prev_map_total = trace_ != nullptr ? total_map_target() : 0;
  const int prev_reduce_total = trace_ != nullptr ? total_reduce_target() : 0;
  trackers_[n].set_blacklisted(true);
  if (trace_ != nullptr) trace_slot_targets(prev_map_total, prev_reduce_total);
  ++nodes_blacklisted_;
  trace_event(metrics::TraceEventKind::kNodeBlacklisted, kInvalidJob,
              kInvalidTask, node, true, "",
              static_cast<double>(node_attempt_failures_[n]));
  if (metrics_ != nullptr) metrics_->counter("nodes.blacklisted").inc();
  SMR_WARN("node " << node << " blacklisted after " << node_attempt_failures_[n]
                   << " attempt failures at " << format_duration(engine_.now()));
}

void Runtime::fail_job(Job& job, std::string reason) {
  SMR_CHECK(!job.failed);
  SMR_WARN("job " << job.spec.name << " failed: " << reason);
  // Tear down every running attempt; the requeue helpers retire shadows,
  // emit TASK_KILLED and roll the fluid accounting back.  Queued tasks are
  // cancelled implicitly: a finished job is invisible to the scheduler.
  for (auto& task : job.maps) {
    if (task.running()) requeue_running_map(task);
  }
  for (auto& task : job.reduces) {
    if (task.running()) requeue_running_reduce(task);
  }
  job.failed = true;
  job.failure_reason = std::move(reason);
  job.finish_time = engine_.now();
  --unfinished_jobs_;
  deactivate_job(job.id);
  ++failed_jobs_;
  trace_event(metrics::TraceEventKind::kJobFailed, job.id, kInvalidTask,
              kInvalidNode, true, job.failure_reason.c_str());
  span_job_finished(job, obs::SpanOutcome::kFailed);
  if (metrics_ != nullptr) metrics_->counter("jobs.failed").inc();
  if (on_job_finished_) on_job_finished_(job);
  check_all_done();  // this may have been the last unfinished job
}

void Runtime::on_policy_period() {
  if (stopping_) return;
  const obs::DecisionLog* decisions = policy_->decision_log();
  const std::size_t decisions_before =
      decisions != nullptr ? decisions->size() : 0;
  const int prev_map_total = trace_ != nullptr ? total_map_target() : 0;
  const int prev_reduce_total = trace_ != nullptr ? total_reduce_target() : 0;

  policy_->on_period(trackers(), snapshot());

  span_refresh_decisions();
  if (metrics_ != nullptr) metrics_->counter("policy.periods").inc();
  if (trace_ != nullptr) {
    trace_slot_targets(prev_map_total, prev_reduce_total);
    // Mirror freshly appended audit records into the trace so Perfetto
    // shows the control loop's reasoning next to the task slices.
    if (decisions != nullptr) {
      for (std::size_t i = decisions_before; i < decisions->size(); ++i) {
        const obs::SlotDecision& d = decisions->decisions()[i];
        std::string detail = obs::to_string(d.action);
        if (!d.reason.empty()) {
          detail += ": ";
          detail += d.reason;
        }
        trace_event(metrics::TraceEventKind::kPolicyDecision, kInvalidJob,
                    kInvalidTask, kInvalidNode, true, detail.c_str(),
                    d.balance_factor.value_or(0.0));
      }
    }
  }
}

int Runtime::total_map_target() const {
  // Live capacity only: dead and blacklisted trackers contribute nothing,
  // whatever stale targets they may carry.
  int total = 0;
  for (std::size_t n = 0; n < trackers_.size(); ++n) {
    if (!node_alive_[n] || trackers_[n].blacklisted()) continue;
    total += trackers_[n].map_target();
  }
  return total;
}

int Runtime::total_reduce_target() const {
  int total = 0;
  for (std::size_t n = 0; n < trackers_.size(); ++n) {
    if (!node_alive_[n] || trackers_[n].blacklisted()) continue;
    total += trackers_[n].reduce_target();
  }
  return total;
}

void Runtime::trace_slot_targets(int prev_map_total, int prev_reduce_total) {
  if (const int now_map = total_map_target(); now_map != prev_map_total) {
    trace_event(metrics::TraceEventKind::kSlotTargetChanged, kInvalidJob,
                kInvalidTask, kInvalidNode, true, "map",
                static_cast<double>(now_map));
  }
  if (const int now_reduce = total_reduce_target();
      now_reduce != prev_reduce_total) {
    trace_event(metrics::TraceEventKind::kSlotTargetChanged, kInvalidJob,
                kInvalidTask, kInvalidNode, false, "reduce",
                static_cast<double>(now_reduce));
  }
}

bool Runtime::job_at_cap(const Job& job, bool for_map) const {
  const std::vector<int>* caps = policy_->job_task_caps();
  if (caps == nullptr) return false;
  const auto idx = static_cast<std::size_t>(job.id);
  if (idx >= caps->size()) return false;
  const int cap = (*caps)[idx];
  if (cap < 0) return false;
  // Per-phase count: see AllocationPolicy::job_task_caps — a combined
  // count deadlocks once waiting reduces hold the cap against their maps.
  const int in_flight = for_map ? job.maps_assigned - job.maps_finished
                                : job.reduces_assigned - job.reduces_finished;
  return in_flight >= cap;
}

std::vector<JobStats> Runtime::job_census() const {
  std::vector<JobStats> census;
  const SimTime now = engine_.now();
  for (const std::size_t j : active_jobs_now(now)) {
    const Job& job = jobs_[j];
    JobStats js;
    js.job = job.id;
    js.tenant = job.spec.tenant;
    js.submit_time = job.submit_time;
    js.deadline = job.deadline;
    js.pending_maps = job.maps_pending();
    js.running_maps = job.maps_assigned - job.maps_finished;
    js.pending_reduces = job.reduces_pending();
    js.running_reduces = job.reduces_assigned - job.reduces_finished;
    census.push_back(std::move(js));
  }
  return census;
}

void Runtime::assign_tasks(TaskTracker& tracker) {
  while (tracker.free_map_slots() > 0 && assign_one_map(tracker)) {
  }
  while (tracker.free_reduce_slots() > 0 && assign_one_reduce(tracker)) {
  }
}

bool Runtime::assign_one_map(TaskTracker& tracker) {
  const SimTime now = engine_.now();
  for (std::size_t job_index :
       scheduler_->job_order(jobs_, active_jobs_now(now), /*for_map=*/true)) {
    Job& job = jobs_[job_index];
    if (job.maps_pending() == 0) continue;
    if (job_at_cap(job, /*for_map=*/true)) continue;
    const auto& file = dfs_.file(job.input_file);
    MapTask* chosen = nullptr;
    // Node-local preference (the FIFO scheduler's locality pass).
    for (auto& task : job.maps) {
      if (task.node != kInvalidNode) continue;
      if (file.blocks[static_cast<std::size_t>(task.split_index)].has_replica_on(
              tracker.node())) {
        chosen = &task;
        break;
      }
    }
    bool local = chosen != nullptr;
    if (chosen == nullptr) {
      // Delay scheduling: decline this (non-local) offer a bounded number
      // of times in the hope that a node holding one of our splits frees a
      // slot first.
      if (job.locality_skips < config_.locality_wait_offers) {
        ++job.locality_skips;
        continue;
      }
      for (auto& task : job.maps) {
        if (task.node == kInvalidNode) {
          chosen = &task;
          break;
        }
      }
    } else {
      job.locality_skips = 0;
    }
    SMR_CHECK(chosen != nullptr);  // maps_pending() > 0 guarantees one
    chosen->node = tracker.node();
    chosen->local = local;
    if (!local) {
      const auto& replicas =
          file.blocks[static_cast<std::size_t>(chosen->split_index)].replicas;
      const NodeId src = pick_live_source(replicas);
      if (src == kInvalidNode) {
        // No live node holds (or could re-host) the split.  Unreachable
        // while the assigning tracker itself is alive, but degrade to "no
        // assignment" rather than crashing the run.
        chosen->node = kInvalidNode;
        chosen->local = true;
        return false;
      }
      chosen->src_node = src;
      ++remote_map_launches_;
    } else {
      ++local_map_launches_;
    }
    chosen->start_time = now;
    chosen->fail_at_progress = draw_fail_threshold();
    tracker.launch_map(chosen->id);
    ++job.maps_assigned;
    if (!job.started()) job.start_time = now;
    trace_event(metrics::TraceEventKind::kTaskLaunched, job.id, chosen->id,
                tracker.node(), true);
    trace_event(metrics::TraceEventKind::kPhaseStarted, job.id, chosen->id,
                tracker.node(), true, "MAP");
    span_attempt_launched(chosen->id, job, tracker.node(), /*is_map=*/true,
                          /*speculative=*/false, chosen->id);
    return true;
  }
  if (config_.speculative_execution && launch_speculative(tracker)) return true;
  return false;
}

bool Runtime::launch_speculative(TaskTracker& tracker) {
  const SimTime now = engine_.now();
  for (std::size_t job_index :
       scheduler_->job_order(jobs_, active_jobs_now(now), /*for_map=*/true)) {
    Job& job = jobs_[job_index];
    // Hadoop speculates only once a job has no pending maps left.
    if (job.maps_pending() != 0 || job.maps_all_finished()) continue;
    // Mean progress over the whole map phase (finished tasks count 1.0),
    // as in Hadoop's speculation heuristic; comparing only against other
    // *running* tasks would blind the detector in the final wave, where
    // everyone still running is a straggler.
    double mean_progress = 0.0;
    bool any_running = false;
    for (const auto& task : job.maps) {
      mean_progress += task.progress();
      any_running = any_running || task.running();
    }
    if (!any_running) continue;
    mean_progress /= static_cast<double>(job.maps.size());

    MapTask* straggler = nullptr;
    for (auto& task : job.maps) {
      if (!task.running() || has_shadow(task.id)) continue;
      if (task.node == tracker.node()) continue;  // duplicate elsewhere
      if (now - task.start_time < config_.speculative_min_age) continue;
      const double progress = task.progress();
      if (progress > 0.9) continue;
      if (progress < mean_progress - config_.speculative_progress_gap &&
          (straggler == nullptr || progress < straggler->progress())) {
        straggler = &task;
      }
    }
    if (straggler == nullptr) continue;

    MapTask shadow = *straggler;
    shadow.id = next_task_id_++;
    shadow.node = tracker.node();
    shadow.phase = MapPhase::kMapping;
    shadow.phase_done = 0.0;
    shadow.start_time = now;
    // A fresh attempt redraws its cost (the straggle is attempt-specific).
    shadow.cost_factor = rng_.jitter(job.spec.duration_cv);
    const auto& file = dfs_.file(job.input_file);
    const auto& block = file.blocks[static_cast<std::size_t>(shadow.split_index)];
    shadow.local = block.has_replica_on(tracker.node());
    if (!shadow.local) {
      // Fall back to any live node when every replica holder is dead (the
      // re-replication model of assign_one_map); previously this crashed
      // with dfs_replication == 1 and the sole replica's node down.
      const NodeId src = pick_live_source(block.replicas);
      if (src == kInvalidNode) continue;  // nowhere to read from: skip
      shadow.src_node = src;
    }
    shadow.fail_at_progress = draw_fail_threshold();
    shadow.failed_attempts = 0;  // the budget lives on the primary
    const std::int32_t slot = acquire_map_shadow_slot();
    const TaskId shadow_id = shadow.id;
    set_task_ref(shadow_id, TaskRef{job.id, straggler->split_index, true,
                                    /*speculative=*/true, slot});
    set_shadow_link(straggler->id, shadow_id);
    map_shadow_pool_[static_cast<std::size_t>(slot)] = std::move(shadow);
    tracker.launch_map(shadow_id);
    ++speculative_launches_;
    trace_event(metrics::TraceEventKind::kTaskLaunched, job.id, shadow_id,
                tracker.node(), true, "speculative");
    trace_event(metrics::TraceEventKind::kPhaseStarted, job.id, shadow_id,
                tracker.node(), true, "MAP");
    span_attempt_launched(shadow_id, job, tracker.node(), /*is_map=*/true,
                          /*speculative=*/true, straggler->id);
    return true;
  }
  return false;
}

void Runtime::kill_shadow(MapTask& primary) {
  const TaskId shadow_id = shadow_id_of(primary.id);
  SMR_CHECK(shadow_id != kInvalidTask);
  const TaskRef ref = task_ref_at(shadow_id);
  MapTask& shadow = map_shadow_pool_[static_cast<std::size_t>(ref.shadow_slot)];
  rollback_map_progress(shadow);
  trace_event(metrics::TraceEventKind::kTaskKilled, shadow.job, shadow_id,
              shadow.node, true, "speculative");
  span_attempt_ended(shadow_id, obs::SpanOutcome::kKilled);
  trackers_[static_cast<std::size_t>(shadow.node)].finish_map(shadow_id);
  set_shadow_link(primary.id, kInvalidTask);
  release_map_shadow_slot(ref.shadow_slot);
  erase_task_ref(shadow_id);
}

void Runtime::win_speculative(TaskId shadow_id) {
  const TaskRef ref = task_ref_at(shadow_id);
  SMR_CHECK(ref.speculative);
  Job& job = job_of(ref.job);
  MapTask& primary = job.maps[static_cast<std::size_t>(ref.index)];
  MapTask shadow = map_shadow_pool_[static_cast<std::size_t>(ref.shadow_slot)];
  SMR_CHECK(primary.phase != MapPhase::kDone);

  // The original attempt loses: discard its partial work.
  rollback_map_progress(primary);
  trace_event(metrics::TraceEventKind::kTaskKilled, job.id, primary.id,
              primary.node, true, "lost-race");
  span_attempt_ended(primary.id, obs::SpanOutcome::kKilled);
  trackers_[static_cast<std::size_t>(primary.node)].finish_map(primary.id);

  // The task completes where the shadow ran.
  primary.node = shadow.node;
  primary.local = shadow.local;
  primary.src_node = shadow.src_node;
  primary.phase = shadow.phase == MapPhase::kDone ? MapPhase::kSpilling
                                                  : shadow.phase;
  primary.phase_done = shadow.phase_done;
  set_shadow_link(primary.id, kInvalidTask);
  release_map_shadow_slot(ref.shadow_slot);
  erase_task_ref(shadow_id);
  ++speculative_wins_;
  complete_map(job, primary, shadow_id);
}

bool Runtime::assign_one_reduce(TaskTracker& tracker) {
  const SimTime now = engine_.now();
  for (std::size_t job_index :
       scheduler_->job_order(jobs_, active_jobs_now(now), /*for_map=*/false)) {
    Job& job = jobs_[job_index];
    if (job.reduces_pending() == 0) continue;
    if (job_at_cap(job, /*for_map=*/false)) continue;
    if (!job.maps.empty() &&
        job.map_completion_fraction() < config_.reduce_slowstart) {
      continue;
    }
    for (auto& task : job.reduces) {
      if (task.node != kInvalidNode) continue;
      task.node = tracker.node();
      task.start_time = now;
      task.fail_at_progress = draw_fail_threshold();
      tracker.launch_reduce(task.id);
      ++job.reduces_assigned;
      if (!job.started()) job.start_time = now;
      trace_event(metrics::TraceEventKind::kTaskLaunched, job.id, task.id,
                  tracker.node(), false);
      trace_event(metrics::TraceEventKind::kPhaseStarted, job.id, task.id,
                  tracker.node(), false, "SHUFFLE");
      span_attempt_launched(task.id, job, tracker.node(), /*is_map=*/false,
                            /*speculative=*/false, task.id);
      return true;
    }
  }
  if (config_.speculative_execution && config_.speculative_reduce_execution &&
      launch_speculative_reduce(tracker)) {
    return true;
  }
  return false;
}

bool Runtime::launch_speculative_reduce(TaskTracker& tracker) {
  const SimTime now = engine_.now();
  for (std::size_t job_index :
       scheduler_->job_order(jobs_, active_jobs_now(now), /*for_map=*/false)) {
    Job& job = jobs_[job_index];
    // Only past the barrier with every reduce assigned: the partition is
    // fully available, so a backup can re-fetch independently.
    if (!job.maps_all_finished() || job.reduces_pending() != 0) continue;
    if (job.reduces_finished == static_cast<int>(job.reduces.size())) continue;
    double mean_progress = 0.0;
    bool any_running = false;
    for (const auto& task : job.reduces) {
      mean_progress += task.progress();
      any_running = any_running || task.running();
    }
    if (!any_running) continue;
    mean_progress /= static_cast<double>(job.reduces.size());

    ReduceTask* straggler = nullptr;
    for (auto& task : job.reduces) {
      if (!task.running() || has_reduce_shadow(task.id)) continue;
      if (task.node == tracker.node()) continue;
      if (now - task.start_time < config_.speculative_min_age) continue;
      const double progress = task.progress();
      if (progress > 0.9) continue;
      if (progress < mean_progress - config_.speculative_progress_gap &&
          (straggler == nullptr || progress < straggler->progress())) {
        straggler = &task;
      }
    }
    if (straggler == nullptr) continue;

    ReduceTask shadow = *straggler;
    shadow.id = next_task_id_++;
    shadow.node = tracker.node();
    shadow.phase = ReducePhase::kShuffling;
    shadow.available = static_cast<double>(shadow.partition_size);  // post-barrier
    shadow.fetched = 0.0;
    shadow.phase_done = 0.0;
    shadow.start_time = now;
    shadow.shuffle_end_time = kTimeNever;
    shadow.cost_factor = rng_.jitter(job.spec.duration_cv);
    shadow.fail_at_progress = draw_fail_threshold();
    shadow.failed_attempts = 0;  // the budget lives on the primary
    const std::int32_t slot = acquire_reduce_shadow_slot();
    const TaskId shadow_id = shadow.id;
    set_task_ref(shadow_id, TaskRef{job.id, straggler->partition, false,
                                    /*speculative=*/true, slot});
    set_shadow_link(straggler->id, shadow_id);
    reduce_shadow_pool_[static_cast<std::size_t>(slot)] = std::move(shadow);
    tracker.launch_reduce(shadow_id);
    ++speculative_reduce_launches_;
    trace_event(metrics::TraceEventKind::kTaskLaunched, job.id, shadow_id,
                tracker.node(), false, "speculative");
    trace_event(metrics::TraceEventKind::kPhaseStarted, job.id, shadow_id,
                tracker.node(), false, "SHUFFLE");
    span_attempt_launched(shadow_id, job, tracker.node(), /*is_map=*/false,
                          /*speculative=*/true, straggler->id);
    return true;
  }
  return false;
}

void Runtime::kill_reduce_shadow(ReduceTask& primary) {
  const TaskId shadow_id = shadow_id_of(primary.id);
  SMR_CHECK(shadow_id != kInvalidTask);
  const TaskRef ref = task_ref_at(shadow_id);
  ReduceTask& shadow =
      reduce_shadow_pool_[static_cast<std::size_t>(ref.shadow_slot)];
  Job& job = job_of(shadow.job);
  // The shadow's fetched bytes were duplicate work: back them out.
  job.bytes_shuffled -= shadow.fetched;
  cum_shuffled_ -= shadow.fetched;
  node_shuffled_in_[static_cast<std::size_t>(shadow.node)] -= shadow.fetched;
  trace_event(metrics::TraceEventKind::kTaskKilled, shadow.job, shadow_id,
              shadow.node, false, "speculative");
  span_attempt_ended(shadow_id, obs::SpanOutcome::kKilled);
  trackers_[static_cast<std::size_t>(shadow.node)].finish_reduce(shadow_id);
  set_shadow_link(primary.id, kInvalidTask);
  release_reduce_shadow_slot(ref.shadow_slot);
  erase_task_ref(shadow_id);
}

void Runtime::win_speculative_reduce(TaskId shadow_id) {
  const TaskRef ref = task_ref_at(shadow_id);
  SMR_CHECK(ref.speculative && !ref.is_map);
  Job& job = job_of(ref.job);
  ReduceTask& primary = job.reduces[static_cast<std::size_t>(ref.index)];
  ReduceTask shadow =
      reduce_shadow_pool_[static_cast<std::size_t>(ref.shadow_slot)];
  SMR_CHECK(primary.phase != ReducePhase::kDone);

  // The original attempt loses: back its fetched bytes out and free it.
  job.bytes_shuffled -= primary.fetched;
  cum_shuffled_ -= primary.fetched;
  node_shuffled_in_[static_cast<std::size_t>(primary.node)] -= primary.fetched;
  trace_event(metrics::TraceEventKind::kTaskKilled, job.id, primary.id,
              primary.node, false, "lost-race");
  span_attempt_ended(primary.id, obs::SpanOutcome::kKilled);
  trackers_[static_cast<std::size_t>(primary.node)].finish_reduce(primary.id);

  primary.node = shadow.node;
  primary.fetched = shadow.fetched;
  primary.phase_done = shadow.phase_done;
  primary.shuffle_end_time = shadow.shuffle_end_time;
  primary.phase = ReducePhase::kReducing;  // completing momentarily
  set_shadow_link(primary.id, kInvalidTask);
  release_reduce_shadow_slot(ref.shadow_slot);
  erase_task_ref(shadow_id);
  ++speculative_reduce_wins_;
  complete_reduce(job, primary, shadow_id);
}

void Runtime::on_sample() {
  if (stopping_) return;
  const SimTime now = engine_.now();
  for (const std::size_t j : active_jobs_now(now)) {
    const Job& job = jobs_[j];
    metrics::ProgressSample sample;
    sample.time = now;
    sample.map_pct = 100.0 * job.map_progress();
    sample.reduce_pct = 100.0 * job.reduce_progress();
    result_.progress[j].push_back(sample);
  }
  metrics::SlotSample slot_sample;
  slot_sample.time = now;
  for (const auto& tracker : trackers_) {
    slot_sample.map_target += tracker.map_target();
    slot_sample.reduce_target += tracker.reduce_target();
    slot_sample.running_maps += tracker.running_maps();
    slot_sample.running_reduces += tracker.running_reduces();
  }
  record_metric_samples(now);
  const double nt = static_cast<double>(trackers_.size());
  slot_sample.map_target /= nt;
  slot_sample.reduce_target /= nt;
  slot_sample.running_maps /= nt;
  slot_sample.running_reduces /= nt;
  result_.slots.push_back(slot_sample);

  // Per-shard window-occupancy / barrier-stall series (shards.json only;
  // the occupancy numbers are deterministic, the stall is wall-clock).
  if (shards_.size() > 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardScratch& shard = shards_[s];
      ShardStats& stats = shard_stats_[s];
      const double mean =
          shard.stat_windows > 0
              ? static_cast<double>(shard.stat_entries) /
                    static_cast<double>(shard.stat_windows)
              : 0.0;
      stats.occupancy_series.emplace_back(now, mean);
      stats.stall_series.emplace_back(now, stats.barrier_stall_s);
      shard.stat_entries = 0;
      shard.stat_windows = 0;
    }
  }
}

void Runtime::record_metric_samples(SimTime now) {
  if (metrics_ == nullptr) return;
  // Cluster totals (the per-node averages land in result_.slots instead).
  double map_target = 0.0;
  double reduce_target = 0.0;
  double running_maps = 0.0;
  double running_reduces = 0.0;
  for (const auto& tracker : trackers_) {
    map_target += tracker.map_target();
    reduce_target += tracker.reduce_target();
    running_maps += tracker.running_maps();
    running_reduces += tracker.running_reduces();
  }
  metrics_->series("slots.map_target").append(now, map_target);
  metrics_->series("slots.reduce_target").append(now, reduce_target);
  metrics_->series("tasks.running_maps").append(now, running_maps);
  metrics_->series("tasks.running_reduces").append(now, running_reduces);
  double pending_maps = 0.0;
  double pending_reduces = 0.0;
  double shuffle_backlog = 0.0;
  for (const std::size_t j : active_jobs_now(now)) {
    const Job& job = jobs_[j];
    pending_maps += job.maps_pending();
    pending_reduces += job.reduces_pending();
    for (const ReduceTask& task : job.reduces) {
      if (task.running() && task.phase == ReducePhase::kShuffling) {
        shuffle_backlog += task.backlog();
      }
    }
  }
  metrics_->series("queue.pending_maps").append(now, pending_maps);
  metrics_->series("queue.pending_reduces").append(now, pending_reduces);
  metrics_->series("shuffle.bytes_in_flight").append(now, shuffle_backlog);
}

void Runtime::trace_event(metrics::TraceEventKind kind, JobId job, TaskId task,
                          NodeId node, bool is_map, const char* detail,
                          double value) {
  // Every launch and kill flows through here, so the control-plane counters
  // live here rather than at each call site.
  if (metrics_ != nullptr) {
    switch (kind) {
      case metrics::TraceEventKind::kTaskLaunched:
        metrics_
            ->counter(is_map ? "tasks.map_launches" : "tasks.reduce_launches")
            .inc();
        break;
      case metrics::TraceEventKind::kTaskKilled:
        metrics_->counter("tasks.kills").inc();
        break;
      default:
        break;
    }
  }
  if (trace_ == nullptr) return;
  metrics::TraceEvent event;
  event.time = engine_.now();
  event.kind = kind;
  event.job = job;
  event.task = task;
  event.node = node;
  event.is_map = is_map;
  event.detail = detail;
  event.value = value;
  trace_->record(event);
}

// ---------------------------------------------------------------------------
// Span recording.  Everything here is purely observational: no RNG draws,
// no events, no reads that feed back into scheduling — a run with a
// SpanLog attached is bit-identical to one without.
// ---------------------------------------------------------------------------

obs::SpanId Runtime::span_run_root() {
  if (run_span_ == obs::kInvalidSpan) {
    run_span_ = spans_->open(obs::SpanKind::kRun, "run", 0.0);
  }
  return run_span_;
}

Runtime::JobSpanState* Runtime::span_job_state(const Job& job) {
  if (spans_ == nullptr) return nullptr;
  const auto slot = static_cast<std::size_t>(job.id);
  if (slot >= job_spans_.size()) job_spans_.resize(slot + 1);
  JobSpanState& state = job_spans_[slot];
  if (state.job == obs::kInvalidSpan) {
    state.job = spans_->open(obs::SpanKind::kJob, job.spec.name,
                             job.submit_time, span_run_root());
    spans_->at(state.job).job = job.id;
    // The map phase opens with the job: its tasks are runnable (and
    // usually waiting for slots) from submission on.
    state.maps_phase = spans_->open(obs::SpanKind::kPhase, "maps",
                                    job.submit_time, state.job);
  }
  return &state;
}

void Runtime::span_attempt_launched(TaskId attempt, const Job& job,
                                    NodeId node, bool is_map, bool speculative,
                                    TaskId primary) {
  if (spans_ == nullptr) return;
  JobSpanState* state = span_job_state(job);
  const SimTime now = engine_.now();
  obs::SpanId parent;
  if (is_map) {
    if (state->maps_phase == obs::kInvalidSpan) {
      // The barrier re-opened (a completed map was lost to a node
      // failure): a fresh map phase carries the re-execution.
      ++state->maps_phases;
      state->maps_phase =
          spans_->open(obs::SpanKind::kPhase,
                       "maps-" + std::to_string(state->maps_phases), now,
                       state->job);
    }
    if (state->open_map_attempts == 0) {
      ++state->waves;
      state->wave = spans_->open(obs::SpanKind::kWave,
                                 "wave-" + std::to_string(state->waves), now,
                                 state->maps_phase);
    }
    ++state->open_map_attempts;
    parent = state->wave;
  } else {
    if (state->shuffle_phase == obs::kInvalidSpan) {
      state->shuffle_phase =
          spans_->open(obs::SpanKind::kPhase, "shuffle", now, state->job);
      spans_->at(state->shuffle_phase).is_map = false;
    }
    parent = state->reduce_phase != obs::kInvalidSpan ? state->reduce_phase
                                                      : state->shuffle_phase;
  }

  std::string name = speculative ? "spec-" : "";
  name += is_map ? "map-" : "reduce-";
  name += std::to_string(primary);
  const obs::SpanId id = spans_->open(obs::SpanKind::kAttempt,
                                      std::move(name), now, parent);
  obs::Span& span = spans_->at(id);
  span.task = attempt;
  span.node = node;
  span.is_map = is_map;
  span.speculative = speculative;
  span.decision_id = last_decision_id_;
  span.decision_time = last_decision_time_;
  if (!speculative) {
    const obs::SpanId retry_of = span_slot_get(retry_parent_, primary);
    if (retry_of != obs::kInvalidSpan) {
      span.retry_of = retry_of;
      span_slot_set(retry_parent_, primary, obs::kInvalidSpan);
    }
    span_slot_set(last_attempt_span_, primary, id);
  }
  span_slot_set(attempt_spans_, attempt, id);
}

void Runtime::span_attempt_ended(TaskId attempt, obs::SpanOutcome outcome) {
  if (spans_ == nullptr) return;
  const obs::SpanId id = span_slot_get(attempt_spans_, attempt);
  if (id == obs::kInvalidSpan) return;  // already closed by an earlier path
  span_slot_set(attempt_spans_, attempt, obs::kInvalidSpan);
  spans_->close(id, engine_.now(), outcome);
  const obs::Span& span = spans_->at(id);
  if (span.is_map) {
    const auto slot = static_cast<std::size_t>(span.job);
    if (span.job >= 0 && slot < job_spans_.size() &&
        job_spans_[slot].job != obs::kInvalidSpan) {
      JobSpanState& state = job_spans_[slot];
      if (--state.open_map_attempts == 0 &&
          state.wave != obs::kInvalidSpan) {
        spans_->close(state.wave, engine_.now());
        state.wave = obs::kInvalidSpan;
      }
    }
  }
}

void Runtime::span_mark_retry(TaskId primary, TaskId failed_attempt) {
  if (spans_ == nullptr) return;
  const obs::SpanId open_span = span_slot_get(attempt_spans_, failed_attempt);
  if (open_span != obs::kInvalidSpan) {
    span_slot_set(retry_parent_, primary, open_span);
    return;
  }
  // The attempt span is already closed (e.g. a *completed* map lost to
  // a node failure): link the re-execution to its last recorded span.
  const obs::SpanId last = span_slot_get(last_attempt_span_, primary);
  if (last != obs::kInvalidSpan) {
    span_slot_set(retry_parent_, primary, last);
  }
}

void Runtime::span_barrier_crossed(const Job& job) {
  if (spans_ == nullptr) return;
  JobSpanState* state = span_job_state(job);
  const SimTime now = engine_.now();
  if (state->wave != obs::kInvalidSpan) {
    spans_->close(state->wave, now);
    state->wave = obs::kInvalidSpan;
  }
  if (state->maps_phase != obs::kInvalidSpan) {
    spans_->close(state->maps_phase, now);
    state->maps_phase = obs::kInvalidSpan;
  }
  if (state->reduce_phase == obs::kInvalidSpan) {
    state->reduce_phase =
        spans_->open(obs::SpanKind::kPhase, "reduce", now, state->job);
    spans_->at(state->reduce_phase).is_map = false;
  }
}

void Runtime::span_reduce_eligible(const Job& job) {
  if (spans_ == nullptr) return;
  JobSpanState* state = span_job_state(job);
  obs::Span& job_span = spans_->at(state->job);
  if (job_span.reduce_eligible == kTimeNever) {
    job_span.reduce_eligible = engine_.now();
  }
}

void Runtime::span_shuffle_settled(const Job& job, TaskId attempt) {
  if (spans_ == nullptr) return;
  const SimTime now = engine_.now();
  const obs::SpanId id = span_slot_get(attempt_spans_, attempt);
  if (id != obs::kInvalidSpan) spans_->at(id).shuffle_end = now;
  const auto slot = static_cast<std::size_t>(job.id);
  if (slot < job_spans_.size() && job_spans_[slot].job != obs::kInvalidSpan) {
    job_spans_[slot].last_shuffle_end = now;
  }
}

void Runtime::span_job_finished(const Job& job, obs::SpanOutcome outcome) {
  if (spans_ == nullptr) return;
  JobSpanState* state = span_job_state(job);
  const SimTime now = engine_.now();
  const obs::SpanOutcome phase_outcome =
      outcome == obs::SpanOutcome::kOk ? obs::SpanOutcome::kOk
                                       : obs::SpanOutcome::kKilled;
  if (state->wave != obs::kInvalidSpan) {
    spans_->close(state->wave, now, phase_outcome);
    state->wave = obs::kInvalidSpan;
  }
  if (state->maps_phase != obs::kInvalidSpan) {
    spans_->close(state->maps_phase, now, phase_outcome);
    state->maps_phase = obs::kInvalidSpan;
  }
  if (state->shuffle_phase != obs::kInvalidSpan) {
    // A clean finish dates the shuffle's end at the last settle; a
    // teardown cuts it off at the teardown instant.
    const SimTime end = outcome == obs::SpanOutcome::kOk &&
                                state->last_shuffle_end != kTimeNever
                            ? state->last_shuffle_end
                            : now;
    spans_->close(state->shuffle_phase, end, phase_outcome);
    state->shuffle_phase = obs::kInvalidSpan;
  }
  if (state->reduce_phase != obs::kInvalidSpan) {
    spans_->close(state->reduce_phase, now, phase_outcome);
    state->reduce_phase = obs::kInvalidSpan;
  }
  spans_->close(state->job, now, outcome);
}

void Runtime::span_flush_aborted() {
  if (spans_ == nullptr) return;
  spans_->close_open(engine_.now(), obs::SpanOutcome::kAborted);
  attempt_spans_.assign(attempt_spans_.size(), obs::kInvalidSpan);
  for (auto& state : job_spans_) {
    if (state.job == obs::kInvalidSpan) continue;
    state.wave = obs::kInvalidSpan;
    state.maps_phase = obs::kInvalidSpan;
    state.shuffle_phase = obs::kInvalidSpan;
    state.reduce_phase = obs::kInvalidSpan;
    state.open_map_attempts = 0;
  }
}

void Runtime::span_refresh_decisions() {
  if (spans_ == nullptr) return;
  const obs::DecisionLog* log = policy_->decision_log();
  if (log == nullptr) return;
  const auto& decisions = log->decisions();
  for (; decisions_seen_ < decisions.size(); ++decisions_seen_) {
    const obs::SlotDecision& d = decisions[decisions_seen_];
    // Only decisions that moved slot targets can enable a launch; holds
    // keep the previous annotation current.
    if (d.changed_slots()) {
      last_decision_id_ = d.id;
      last_decision_time_ = d.time;
    }
  }
}

}  // namespace smr::mapreduce
