#include "smr/mapreduce/task.hpp"

#include <algorithm>

namespace smr::mapreduce {

const char* to_string(MapPhase phase) {
  switch (phase) {
    case MapPhase::kMapping: return "MAP";
    case MapPhase::kCombining: return "COMBINE";
    case MapPhase::kSpilling: return "SPILL";
    case MapPhase::kDone: return "DONE";
  }
  return "?";
}

const char* to_string(ReducePhase phase) {
  switch (phase) {
    case ReducePhase::kShuffling: return "SHUFFLE";
    case ReducePhase::kSorting: return "SORT";
    case ReducePhase::kReducing: return "REDUCE";
    case ReducePhase::kDone: return "DONE";
  }
  return "?";
}

double MapTask::progress() const {
  auto frac = [this] {
    const double total = phase_total();
    return total > 0.0 ? std::clamp(phase_done / total, 0.0, 1.0) : 1.0;
  };
  switch (phase) {
    case MapPhase::kMapping:
      return 0.5 * frac();
    case MapPhase::kCombining:
      return 0.5 + 0.25 * frac();
    case MapPhase::kSpilling:
      return combine_total > 0 ? 0.75 + 0.25 * frac() : 0.5 + 0.5 * frac();
    case MapPhase::kDone:
      return 1.0;
  }
  return 0.0;
}

double ReduceTask::progress() const {
  const double total = static_cast<double>(partition_size);
  auto frac = [&](double done) {
    return total > 0.0 ? std::clamp(done / total, 0.0, 1.0) : 1.0;
  };
  switch (phase) {
    case ReducePhase::kShuffling: return (1.0 / 3.0) * frac(fetched);
    case ReducePhase::kSorting: return 1.0 / 3.0 + (1.0 / 3.0) * frac(phase_done);
    case ReducePhase::kReducing: return 2.0 / 3.0 + (1.0 / 3.0) * frac(phase_done);
    case ReducePhase::kDone: return 1.0;
  }
  return 0.0;
}

}  // namespace smr::mapreduce
