// Job schedulers: the order in which jobs are offered free slots.
//
// The paper runs the FIFO scheduler on HadoopV1/SMapReduce and the capacity
// scheduler on YARN (Section V-F); the capacity scheduler's map-priority
// half lives in yarn::CapacityPolicy, while job ordering is delegated here.
// The Fair scheduler (Zaharia et al., the paper's reference [13]) is
// provided as the natural alternative for shared clusters.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "smr/common/types.hpp"
#include "smr/mapreduce/job.hpp"

namespace smr::mapreduce {

class JobScheduler {
 public:
  virtual ~JobScheduler() = default;

  virtual std::string name() const = 0;

  /// Indices into `jobs` in the order they should be offered a free slot of
  /// the given kind.  `active` lists the indices of the active jobs —
  /// submitted, unfinished — in submission (id) order; the scheduler only
  /// reorders it.  The runtime applies per-kind eligibility (pending tasks,
  /// reduce slow start) on top.  The runtime maintains the active set
  /// incrementally, so implementations must not rescan `jobs`.
  virtual std::vector<std::size_t> job_order(const std::vector<Job>& jobs,
                                             std::span<const std::size_t> active,
                                             bool for_map) const = 0;

  /// Convenience overload: scans `jobs` for the active set (submit_time <=
  /// now, unfinished), then orders it.  O(jobs); tests and one-shot callers
  /// only — the runtime passes its incrementally-maintained active span.
  std::vector<std::size_t> job_order(const std::vector<Job>& jobs,
                                     SimTime now, bool for_map) const;
};

/// Strict submission order (Hadoop's default).  A later job only receives
/// slots the earlier jobs cannot use.
class FifoScheduler final : public JobScheduler {
 public:
  using JobScheduler::job_order;

  std::string name() const override { return "fifo"; }
  std::vector<std::size_t> job_order(const std::vector<Job>& jobs,
                                     std::span<const std::size_t> active,
                                     bool for_map) const override;
};

/// Fair sharing: jobs with the smallest number of currently running tasks
/// of the requested kind (scaled by weight) go first, so every active job
/// converges to an equal share of the slots.  Ties break by submission
/// order.
class FairScheduler final : public JobScheduler {
 public:
  /// `weights[i]` scales job i's fair share (default 1.0 for all).
  explicit FairScheduler(std::vector<double> weights = {});

  using JobScheduler::job_order;

  std::string name() const override { return "fair"; }
  std::vector<std::size_t> job_order(const std::vector<Job>& jobs,
                                     std::span<const std::size_t> active,
                                     bool for_map) const override;

 private:
  std::vector<double> weights_;
};

/// Earliest-deadline-first over Job::deadline (submit time + the spec's
/// relative SLO deadline).  Jobs without a deadline (kTimeNever) sort after
/// every dated job; ties — including all-undated workloads — fall back to
/// submission order, so EDF degrades to FIFO when no SLOs are configured.
/// This is the job-driven deadline scheduling of Lee & Lin (hybrid
/// job-driven scheduling) applied at the slot-offer level.
class DeadlineScheduler final : public JobScheduler {
 public:
  using JobScheduler::job_order;

  std::string name() const override { return "deadline"; }
  std::vector<std::size_t> job_order(const std::vector<Job>& jobs,
                                     std::span<const std::size_t> active,
                                     bool for_map) const override;
};

}  // namespace smr::mapreduce
