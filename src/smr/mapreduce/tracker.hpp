// TaskTracker: the per-node agent holding the working slots.
//
// Slot semantics follow the paper exactly:
//   * The job tracker sends slot-number commands in heartbeat responses
//     (Section III-C); `set_map_target` / `set_reduce_target` model that.
//   * The slot changer applies them through the *lazy policy* (Section
//     III-D): raising a target adds free slots immediately; lowering it
//     never terminates a running task — excess slots are retired as their
//     tasks finish.  The invariant is therefore
//         actual_slots == max(target, running_tasks)
//     and a new task may launch iff running_tasks < target.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "smr/common/error.hpp"
#include "smr/common/types.hpp"

namespace smr::mapreduce {

class TaskTracker {
 public:
  TaskTracker(NodeId node, int map_target, int reduce_target)
      : node_(node), map_target_(map_target), reduce_target_(reduce_target) {
    SMR_CHECK(node >= 0);
    SMR_CHECK(map_target >= 0 && reduce_target >= 0);
  }

  NodeId node() const { return node_; }

  // --- Targets (commands from the job tracker) ------------------------
  void set_map_target(int target) {
    SMR_CHECK(target >= 0);
    map_target_ = target;
  }
  void set_reduce_target(int target) {
    SMR_CHECK(target >= 0);
    reduce_target_ = target;
  }
  int map_target() const { return map_target_; }
  int reduce_target() const { return reduce_target_; }

  // --- Blacklisting -----------------------------------------------------
  /// A blacklisted tracker keeps heartbeating and finishes its running
  /// tasks (the lazy policy never kills), but receives no new assignments
  /// and is exempt from cluster slot-target totals.  Cleared when the node
  /// recovers from a failure (a fresh tracker process).
  void set_blacklisted(bool blacklisted) { blacklisted_ = blacklisted; }
  bool blacklisted() const { return blacklisted_; }

  // --- Actual slots under the lazy policy ------------------------------
  int map_slots() const { return std::max(map_target_, running_maps()); }
  int reduce_slots() const { return std::max(reduce_target_, running_reduces()); }
  int free_map_slots() const { return std::max(0, map_target_ - running_maps()); }
  int free_reduce_slots() const { return std::max(0, reduce_target_ - running_reduces()); }

  // --- Running tasks ----------------------------------------------------
  int running_maps() const { return static_cast<int>(running_map_tasks_.size()); }
  int running_reduces() const { return static_cast<int>(running_reduce_tasks_.size()); }
  const std::vector<TaskId>& running_map_tasks() const { return running_map_tasks_; }
  const std::vector<TaskId>& running_reduce_tasks() const { return running_reduce_tasks_; }

  /// Bumped on every launch/finish: lets the runtime's per-tick solve skip
  /// nodes whose running set provably has not changed since the last tick.
  std::uint32_t version() const { return version_; }

  void launch_map(TaskId task) {
    SMR_CHECK_MSG(free_map_slots() > 0, "no free map slot on node " << node_);
    running_map_tasks_.push_back(task);
    ++version_;
  }
  void launch_reduce(TaskId task) {
    SMR_CHECK_MSG(free_reduce_slots() > 0, "no free reduce slot on node " << node_);
    running_reduce_tasks_.push_back(task);
    ++version_;
  }
  void finish_map(TaskId task) {
    remove(running_map_tasks_, task);
    ++version_;
  }
  void finish_reduce(TaskId task) {
    remove(running_reduce_tasks_, task);
    ++version_;
  }

 private:
  static void remove(std::vector<TaskId>& tasks, TaskId task) {
    auto it = std::find(tasks.begin(), tasks.end(), task);
    SMR_CHECK_MSG(it != tasks.end(), "task " << task << " not running here");
    tasks.erase(it);
  }

  NodeId node_;
  int map_target_;
  int reduce_target_;
  std::uint32_t version_ = 0;
  bool blacklisted_ = false;
  std::vector<TaskId> running_map_tasks_;
  std::vector<TaskId> running_reduce_tasks_;
};

}  // namespace smr::mapreduce
