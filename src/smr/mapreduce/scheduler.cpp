#include "smr/mapreduce/scheduler.hpp"

#include <algorithm>

#include "smr/common/error.hpp"

namespace smr::mapreduce {

std::vector<std::size_t> JobScheduler::job_order(const std::vector<Job>& jobs,
                                                 SimTime now, bool for_map) const {
  std::vector<std::size_t> active;
  active.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].submit_time <= now && !jobs[i].finished()) active.push_back(i);
  }
  return job_order(jobs, active, for_map);
}

std::vector<std::size_t> FifoScheduler::job_order(
    const std::vector<Job>& /*jobs*/, std::span<const std::size_t> active,
    bool /*for_map*/) const {
  // jobs_ is stored in submission order, so the active set is the order.
  return {active.begin(), active.end()};
}

FairScheduler::FairScheduler(std::vector<double> weights)
    : weights_(std::move(weights)) {
  for (double w : weights_) SMR_CHECK(w > 0.0);
}

std::vector<std::size_t> FairScheduler::job_order(
    const std::vector<Job>& jobs, std::span<const std::size_t> active,
    bool for_map) const {
  std::vector<std::size_t> order(active.begin(), active.end());
  auto weight = [this](std::size_t i) {
    return i < weights_.size() ? weights_[i] : 1.0;
  };
  auto deficit = [&](std::size_t i) {
    const Job& job = jobs[i];
    const int running = for_map ? job.maps_assigned - job.maps_finished
                                : job.reduces_assigned - job.reduces_finished;
    return static_cast<double>(running) / weight(i);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return deficit(a) < deficit(b); });
  return order;
}

std::vector<std::size_t> DeadlineScheduler::job_order(
    const std::vector<Job>& jobs, std::span<const std::size_t> active,
    bool /*for_map*/) const {
  std::vector<std::size_t> order(active.begin(), active.end());
  // kTimeNever is +inf, so undated jobs naturally sort last; stable keeps
  // submission order within equal deadlines.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].deadline < jobs[b].deadline;
  });
  return order;
}

}  // namespace smr::mapreduce
