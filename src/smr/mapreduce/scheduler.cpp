#include "smr/mapreduce/scheduler.hpp"

#include <algorithm>

#include "smr/common/error.hpp"

namespace smr::mapreduce {

namespace {

std::vector<std::size_t> active_jobs(const std::vector<Job>& jobs, SimTime now) {
  std::vector<std::size_t> order;
  order.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].submit_time <= now && !jobs[i].finished()) order.push_back(i);
  }
  return order;
}

}  // namespace

std::vector<std::size_t> FifoScheduler::job_order(const std::vector<Job>& jobs,
                                                  SimTime now, bool /*for_map*/) const {
  // jobs_ is stored in submission order, so the active filter is the order.
  return active_jobs(jobs, now);
}

FairScheduler::FairScheduler(std::vector<double> weights)
    : weights_(std::move(weights)) {
  for (double w : weights_) SMR_CHECK(w > 0.0);
}

std::vector<std::size_t> FairScheduler::job_order(const std::vector<Job>& jobs,
                                                  SimTime now, bool for_map) const {
  std::vector<std::size_t> order = active_jobs(jobs, now);
  auto weight = [this](std::size_t i) {
    return i < weights_.size() ? weights_[i] : 1.0;
  };
  auto deficit = [&](std::size_t i) {
    const Job& job = jobs[i];
    const int running = for_map ? job.maps_assigned - job.maps_finished
                                : job.reduces_assigned - job.reduces_finished;
    return static_cast<double>(running) / weight(i);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return deficit(a) < deficit(b); });
  return order;
}

std::vector<std::size_t> DeadlineScheduler::job_order(const std::vector<Job>& jobs,
                                                      SimTime now,
                                                      bool /*for_map*/) const {
  std::vector<std::size_t> order = active_jobs(jobs, now);
  // kTimeNever is +inf, so undated jobs naturally sort last; stable keeps
  // submission order within equal deadlines.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].deadline < jobs[b].deadline;
  });
  return order;
}

}  // namespace smr::mapreduce
