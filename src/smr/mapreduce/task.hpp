// Runtime state of map and reduce tasks (fluid task model).
#pragma once

#include "smr/common/types.hpp"

namespace smr::mapreduce {

enum class MapPhase { kMapping, kCombining, kSpilling, kDone };
enum class ReducePhase { kShuffling, kSorting, kReducing, kDone };

const char* to_string(MapPhase phase);
const char* to_string(ReducePhase phase);

/// Sentinel progress threshold meaning "this attempt will not be failed by
/// the fault injector" (progress() never exceeds 1.0).
inline constexpr double kNeverFail = 2.0;

struct MapTask {
  TaskId id = kInvalidTask;
  JobId job = kInvalidJob;
  int split_index = -1;

  /// Node the task runs on; kInvalidNode while pending.
  NodeId node = kInvalidNode;
  /// Whether the input split has a replica on `node`.
  bool local = true;
  /// For non-local tasks: the replica node the split is read from.
  NodeId src_node = kInvalidNode;

  MapPhase phase = MapPhase::kMapping;
  Bytes input_size = 0;
  Bytes output_size = 0;
  /// Pre-combine output volume; 0 when the job has no combiner.
  Bytes combine_total = 0;

  /// Progress within the current phase, in bytes of that phase's unit
  /// (input bytes while mapping, output bytes while spilling).
  double phase_done = 0.0;

  /// Per-task multiplicative cost factor (~1.0; trial jitter).
  double cost_factor = 1.0;

  /// Fault injection: the current attempt fails once progress() passes this
  /// threshold (kNeverFail disables; redrawn per attempt at launch).
  double fail_at_progress = kNeverFail;
  /// Failed attempts of this task so far (speculative shadows count against
  /// their primary); max_attempts exhausts the owning job.
  int failed_attempts = 0;

  SimTime start_time = kTimeNever;
  SimTime finish_time = kTimeNever;

  bool running() const { return node != kInvalidNode && phase != MapPhase::kDone; }
  double phase_total() const {
    switch (phase) {
      case MapPhase::kMapping: return static_cast<double>(input_size);
      case MapPhase::kCombining: return static_cast<double>(combine_total);
      default: return static_cast<double>(output_size);
    }
  }
  double phase_remaining() const { return phase_total() - phase_done; }

  /// 0..1 overall progress (half weight per sub-phase).
  double progress() const;
};

struct ReduceTask {
  TaskId id = kInvalidTask;
  JobId job = kInvalidJob;
  int partition = -1;

  NodeId node = kInvalidNode;
  ReducePhase phase = ReducePhase::kShuffling;

  /// Total bytes this task will shuffle (uniform-partition assumption).
  Bytes partition_size = 0;

  /// Bytes of this partition already produced by finished map tasks
  /// (accumulates even before the task is scheduled).
  double available = 0.0;
  /// Bytes fetched so far; invariant fetched <= available.
  double fetched = 0.0;

  /// Progress within SORT / REDUCE phases (bytes merged / reduced).
  double phase_done = 0.0;

  double cost_factor = 1.0;

  /// Fault injection (see MapTask::fail_at_progress).
  double fail_at_progress = kNeverFail;
  int failed_attempts = 0;

  SimTime start_time = kTimeNever;
  SimTime shuffle_end_time = kTimeNever;
  SimTime finish_time = kTimeNever;

  bool running() const { return node != kInvalidNode && phase != ReducePhase::kDone; }
  double backlog() const { return available - fetched; }

  /// 0..1 overall progress, Hadoop-style: 1/3 shuffle + 1/3 sort + 1/3 reduce.
  double progress() const;
};

}  // namespace smr::mapreduce
