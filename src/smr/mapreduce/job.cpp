#include "smr/mapreduce/job.hpp"

namespace smr::mapreduce {

double Job::map_progress() const {
  if (maps.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& task : maps) sum += task.progress();
  return sum / static_cast<double>(maps.size());
}

double Job::reduce_progress() const {
  if (reduces.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& task : reduces) sum += task.progress();
  return sum / static_cast<double>(reduces.size());
}

}  // namespace smr::mapreduce
