#include "smr/sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace smr::sim {

namespace {

// Buckets above this are treated as "effectively forever" so that
// bucket arithmetic (cur_bucket_ + ring size) can never overflow even for
// events scheduled at astronomically large but finite times.
constexpr std::int64_t kMaxBucket =
    std::numeric_limits<std::int64_t>::max() / 2;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Engine::Engine(const CalendarConfig& calendar) {
  SMR_CHECK_MSG(calendar.bucket_width > 0.0, "bucket width must be positive");
  SMR_CHECK_MSG(calendar.bucket_count >= 2, "need at least two buckets");
  width_ = calendar.bucket_width;
  inv_width_ = 1.0 / width_;
  const std::size_t n = round_up_pow2(calendar.bucket_count);
  ring_.resize(n);
  mask_ = n - 1;
}

std::uint32_t Engine::alloc_slot(SimTime when, SimTime period, Callback fn) {
  std::uint32_t index;
  if (free_head_ != kNullSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    SMR_CHECK_MSG(slots_.size() < 0xffffffffu, "event slot table exhausted");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[index];
  s.occupied = true;
  // Bump first so any stray stub a former tenant left behind can never
  // match this tenant's pushes.
  ++s.stub_gen;
  s.when = when;
  s.period = period;
  s.fn = std::move(fn);
  ++live_;
  return index;
}

void Engine::free_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.fn = Callback{};
  s.occupied = false;
  s.when = kTimeNever;
  s.period = 0.0;
  if (++s.id_gen == 0) s.id_gen = 1;  // keep ids distinct from kInvalidEvent
  s.next_free = free_head_;
  free_head_ = index;
  --live_;
}

void Engine::push_stub(SimTime when, std::uint32_t slot, Generation gen) {
  const Stub stub{when, next_seq_++, slot, gen};
  const double scaled = when * inv_width_;
  const std::int64_t b =
      scaled >= static_cast<double>(kMaxBucket)
          ? kMaxBucket
          : std::max<std::int64_t>(static_cast<std::int64_t>(scaled), 0);
  if (b <= cur_bucket_) {
    // Present (or a window that already advanced past the stub's bucket);
    // the active heap keeps full (when, seq) order, so this stays exact.
    current_.push_back(stub);
    std::push_heap(current_.begin(), current_.end(), Later{});
  } else if (b - cur_bucket_ <= static_cast<std::int64_t>(mask_)) {
    ring_[static_cast<std::size_t>(b) & mask_].push_back(stub);
    ++ring_stubs_;
  } else {
    ladder_.push_back(stub);
    ladder_min_bucket_ = std::min(ladder_min_bucket_, b);
  }
  ++stub_count_;
  peak_pending_ = std::max(peak_pending_, stub_count_);
}

void Engine::drain_ladder() {
  // Single pass: keep far stubs in place, move the rest into the window.
  const std::int64_t horizon = cur_bucket_ + static_cast<std::int64_t>(mask_);
  std::size_t keep = 0;
  std::int64_t new_min = kNoLadder;
  for (const Stub& stub : ladder_) {
    const double scaled = stub.when * inv_width_;
    const std::int64_t b = scaled >= static_cast<double>(kMaxBucket)
                               ? kMaxBucket
                               : static_cast<std::int64_t>(scaled);
    if (b > horizon) {
      new_min = std::min(new_min, b);
      ladder_[keep++] = stub;
    } else if (b <= cur_bucket_) {
      current_.push_back(stub);
      std::push_heap(current_.begin(), current_.end(), Later{});
    } else {
      ring_[static_cast<std::size_t>(b) & mask_].push_back(stub);
      ++ring_stubs_;
    }
  }
  ladder_.resize(keep);
  ladder_min_bucket_ = new_min;
}

bool Engine::advance() {
  while (current_.empty()) {
    if (stub_count_ == 0) return false;
    if (ring_stubs_ == 0) {
      // Everything pending sits beyond the horizon: jump the window
      // straight to the ladder's earliest bucket instead of stepping
      // through (possibly billions of) empty buckets.
      cur_bucket_ = std::max(cur_bucket_, ladder_min_bucket_);
      drain_ladder();
      continue;
    }
    ++cur_bucket_;
    if (ladder_min_bucket_ - static_cast<std::int64_t>(mask_) <= cur_bucket_) {
      // The ladder's earliest bucket just entered the window; sweep it in.
      // Stubs landing at cur_bucket_ go straight into current_, so the
      // ring slot below must still be merged (same bucket, same instant).
      drain_ladder();
    }
    std::vector<Stub>& bucket = ring_[static_cast<std::size_t>(cur_bucket_) & mask_];
    if (!bucket.empty()) {
      ring_stubs_ -= bucket.size();
      if (current_.empty()) {
        // Swap instead of copy: the emptied current_ hands its capacity to
        // the ring slot, so the steady state allocates nothing.
        current_.swap(bucket);
      } else {
        current_.insert(current_.end(), bucket.begin(), bucket.end());
        bucket.clear();
      }
      std::make_heap(current_.begin(), current_.end(), Later{});
    } else if (!current_.empty()) {
      // drain_ladder() above already heapified what it pushed.
      break;
    }
  }
  return true;
}

void Engine::compact() {
  const auto retired = [this](const Stub& stub) {
    return slots_[stub.slot].stub_gen != stub.gen;
  };
  std::erase_if(current_, retired);
  std::make_heap(current_.begin(), current_.end(), Later{});
  for (std::vector<Stub>& bucket : ring_) {
    std::erase_if(bucket, retired);
  }
  std::erase_if(ladder_, retired);
  ring_stubs_ = 0;
  for (const std::vector<Stub>& bucket : ring_) ring_stubs_ += bucket.size();
  ladder_min_bucket_ = kNoLadder;
  for (const Stub& stub : ladder_) {
    const double scaled = stub.when * inv_width_;
    const std::int64_t b = scaled >= static_cast<double>(kMaxBucket)
                               ? kMaxBucket
                               : static_cast<std::int64_t>(scaled);
    ladder_min_bucket_ = std::min(ladder_min_bucket_, b);
  }
  stub_count_ = current_.size() + ring_stubs_ + ladder_.size();
  stale_ = 0;
}

EventId Engine::schedule_at(SimTime when, Callback fn) {
  SMR_CHECK_MSG(when >= now_, "schedule_at in the past: " << when << " < " << now_);
  SMR_CHECK(fn != nullptr);
  const std::uint32_t slot = alloc_slot(when, 0.0, std::move(fn));
  // Events born parked (when == kTimeNever) hold no calendar stub at all;
  // reschedule() revives them.
  if (when < kTimeNever) push_stub(when, slot, slots_[slot].stub_gen);
  return pack_id(slot, slots_[slot].id_gen);
}

EventId Engine::schedule_in(SimTime delay, Callback fn) {
  SMR_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_periodic(SimTime first, SimTime period, Callback fn) {
  SMR_CHECK_MSG(first >= now_, "periodic first firing in the past");
  SMR_CHECK_MSG(period > 0.0, "periodic period must be positive");
  SMR_CHECK(fn != nullptr);
  const std::uint32_t slot = alloc_slot(first, period, std::move(fn));
  if (first < kTimeNever) push_stub(first, slot, slots_[slot].stub_gen);
  return pack_id(slot, slots_[slot].id_gen);
}

bool Engine::cancel(EventId id) {
  Slot* s = lookup(id);
  if (s == nullptr) return false;
  if (s->when < kTimeNever) {
    // Retire the in-flight stub; it is skipped when it surfaces.
    ++s->stub_gen;
    ++stale_;
  }
  free_slot(static_cast<std::uint32_t>(id >> 32));
  maybe_compact();
  return true;
}

bool Engine::reschedule(EventId id, SimTime when) {
  SMR_CHECK_MSG(when >= now_, "reschedule in the past: " << when << " < " << now_);
  Slot* s = lookup(id);
  if (s == nullptr) return false;
  if (s->when < kTimeNever) {
    ++s->stub_gen;
    ++stale_;
  }
  s->when = when;
  if (when < kTimeNever) {
    push_stub(when, static_cast<std::uint32_t>(id >> 32), s->stub_gen);
  }
  maybe_compact();
  return true;
}

bool Engine::step(SimTime limit) {
  for (;;) {
    if (current_.empty() && !advance()) return false;
    const Stub top = current_.front();
    Slot& s = slots_[top.slot];
    if (s.stub_gen != top.gen) {
      std::pop_heap(current_.begin(), current_.end(), Later{});
      current_.pop_back();
      --stale_;
      --stub_count_;
      continue;
    }
    // Live stubs always carry finite times (parked events hold none), so a
    // bare bound check suffices.
    if (top.when > limit) return false;
    std::pop_heap(current_.begin(), current_.end(), Later{});
    current_.pop_back();
    --stub_count_;
    now_ = top.when;
    ++dispatched_;
    if (s.period > 0.0) {
      // Re-arm before running so the callback can cancel or move the
      // series.  Same generation: the popped stub is gone, so the
      // invariant of one stub per scheduled event holds.
      s.when = top.when + s.period;
      push_stub(s.when, top.slot, top.gen);
      // Invoke through a stack copy (cheap: memcpy or refcount bump) so a
      // callback that cancels its own registration cannot free the frame
      // it is running in.
      Callback fn = s.fn;
      fn();
    } else {
      Callback fn = std::move(s.fn);
      free_slot(top.slot);
      fn();
    }
    return true;
  }
}

SimTime Engine::run(SimTime limit) {
  while (step(limit)) {
  }
  if (limit != kTimeNever) {
    // A bounded run leaves the clock at the bound, whether events remain
    // beyond it or the queue drained early.
    now_ = std::max(now_, limit);
  }
  return now_;
}

}  // namespace smr::sim
