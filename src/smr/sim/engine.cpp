#include "smr/sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace smr::sim {

void Engine::push(SimTime when, SimTime period, EventId id, std::function<void()> fn) {
  heap_.push(Entry{when, next_seq_++, id, period, std::move(fn)});
  peak_pending_ = std::max(peak_pending_, heap_.size());
}

EventId Engine::schedule_at(SimTime when, std::function<void()> fn) {
  SMR_CHECK_MSG(when >= now_, "schedule_at in the past: " << when << " < " << now_);
  SMR_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  push(when, 0.0, id, std::move(fn));
  return id;
}

EventId Engine::schedule_in(SimTime delay, std::function<void()> fn) {
  SMR_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_periodic(SimTime first, SimTime period, std::function<void()> fn) {
  SMR_CHECK_MSG(first >= now_, "periodic first firing in the past");
  SMR_CHECK_MSG(period > 0.0, "periodic period must be positive");
  SMR_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  push(first, period, id, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  // We cannot remove from the heap; mark the id dead and skip on pop.
  return cancelled_.insert(id).second;
}

bool Engine::step(SimTime limit) {
  for (;;) {
    if (heap_.empty()) return false;
    const Entry& top = heap_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      heap_.pop();
      continue;
    }
    if (top.when > limit) return false;
    // Copy out what we need before popping invalidates the reference.
    Entry entry{top.when, top.seq, top.id, top.period, top.fn};
    heap_.pop();
    now_ = entry.when;
    ++dispatched_;
    if (entry.period > 0.0) {
      // Reschedule before running so the callback can cancel the series.
      push(entry.when + entry.period, entry.period, entry.id, entry.fn);
    }
    entry.fn();
    return true;
  }
}

SimTime Engine::run(SimTime limit) {
  while (step(limit)) {
  }
  if (limit != kTimeNever) {
    // A bounded run leaves the clock at the bound, whether events remain
    // beyond it or the queue drained early.
    now_ = std::max(now_, limit);
  }
  return now_;
}

}  // namespace smr::sim
