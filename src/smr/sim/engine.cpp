#include "smr/sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace smr::sim {

void Engine::push(SimTime when, EventId id, Generation gen) {
  heap_.push_back(Entry{when, next_seq_++, id, gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  peak_pending_ = std::max(peak_pending_, heap_.size());
}

void Engine::compact() {
  std::erase_if(heap_, [this](const Entry& e) {
    const auto it = live_.find(e.id);
    return it == live_.end() || it->second.gen != e.gen;
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  stale_ = 0;
}

EventId Engine::schedule_at(SimTime when, std::function<void()> fn) {
  SMR_CHECK_MSG(when >= now_, "schedule_at in the past: " << when << " < " << now_);
  SMR_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  live_.emplace(id, Live{0, 0.0, std::move(fn)});
  push(when, id, 0);
  return id;
}

EventId Engine::schedule_in(SimTime delay, std::function<void()> fn) {
  SMR_CHECK_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_periodic(SimTime first, SimTime period, std::function<void()> fn) {
  SMR_CHECK_MSG(first >= now_, "periodic first firing in the past");
  SMR_CHECK_MSG(period > 0.0, "periodic period must be positive");
  SMR_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  live_.emplace(id, Live{0, period, std::move(fn)});
  push(first, id, 0);
  return id;
}

bool Engine::cancel(EventId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  // Its single heap stub (invariant: one per live event) is now retired.
  live_.erase(it);
  ++stale_;
  maybe_compact();
  return true;
}

bool Engine::reschedule(EventId id, SimTime when) {
  SMR_CHECK_MSG(when >= now_, "reschedule in the past: " << when << " < " << now_);
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  // Retire the current stub by bumping the generation, then push a fresh
  // one; the callback never moves.
  ++it->second.gen;
  ++stale_;
  push(when, id, it->second.gen);
  maybe_compact();
  return true;
}

bool Engine::step(SimTime limit) {
  for (;;) {
    if (heap_.empty()) return false;
    const Entry top = heap_.front();
    const auto it = live_.find(top.id);
    if (it == live_.end() || it->second.gen != top.gen) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      --stale_;
      continue;
    }
    // Parked events never fire; they are only reachable again through
    // reschedule().  The heap is time-ordered, so everything behind this
    // stub is parked too.
    if (top.when >= kTimeNever) return false;
    if (top.when > limit) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    now_ = top.when;
    ++dispatched_;
    if (it->second.period > 0.0) {
      // Re-arm before running so the callback can cancel or move the
      // series.  Same generation: the popped stub is gone, so the invariant
      // of one stub per live event holds.
      push(top.when + it->second.period, top.id, top.gen);
      // The map node is stable, but step() can recurse through fn into
      // another schedule_* that rehashes live_; don't hold `it` across it.
      const auto fn = it->second.fn;
      fn();
    } else {
      auto fn = std::move(it->second.fn);
      live_.erase(it);
      fn();
    }
    return true;
  }
}

SimTime Engine::run(SimTime limit) {
  while (step(limit)) {
  }
  if (limit != kTimeNever) {
    // A bounded run leaves the clock at the bound, whether events remain
    // beyond it or the queue drained early.
    now_ = std::max(now_, limit);
  }
  return now_;
}

}  // namespace smr::sim
