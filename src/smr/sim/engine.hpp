// Deterministic discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same simulated time
// fire in scheduling order, which makes every run bit-for-bit reproducible.
// Events are cancellable via the EventId returned by schedule_*; periodic
// events reschedule themselves until cancelled, and reschedule() moves a
// pending event (or the next firing of a periodic series) without consuming
// a new id.
//
// Internally the pending set is a two-tier calendar queue holding
// lightweight generation-stamped stubs:
//
//   * `current_` — a small binary heap over the bucket being dispatched,
//     so callbacks may schedule into the present without breaking order;
//   * `ring_` — a power-of-two ring of near-future buckets, one bucket per
//     `bucket_width` seconds of simulated time (heartbeat granularity), each
//     an unsorted vector that is heapified only when its time arrives;
//   * `ladder_` — an overflow spill for stubs beyond the ring's horizon,
//     swept on demand when the window advances (a cached minimum bucket
//     skips the sweep entirely while the window stays short of it).
//
// Scheduling and popping are therefore O(1) amortised instead of the
// O(log n) of the old global binary heap, which matters under serving
// workloads with millions of pending events.  Callbacks and per-event state
// live in a dense slot table indexed by the EventId itself (slot | id
// generation), with a free list recycling slots; callbacks use
// common::SmallFn, so the steady state allocates nothing.  cancel() and
// reschedule() never search the calendar — they retire the stamped stub
// lazily (it is skipped when it surfaces) and the calendar is compacted in
// one pass when retired stubs outnumber live ones (or when *every* stub is
// retired, so park/cancel churn on a small queue cannot leak stubs).  This
// keeps cancel/reschedule O(1) and pending() exact.  Events parked at
// kTimeNever hold no stub at all: a million parked events cost nothing per
// dispatch.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "smr/common/error.hpp"
#include "smr/common/small_fn.hpp"
#include "smr/common/types.hpp"

namespace smr::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  /// Callback type for scheduled events (small-buffer; see small_fn.hpp).
  using Callback = common::SmallFn;

  /// Calendar geometry.  The defaults put one bucket per fluid tick and a
  /// ~4-minute near-future window; tests shrink them to force ladder and
  /// window-wrap traffic.
  struct CalendarConfig {
    SimTime bucket_width = 0.25;
    std::size_t bucket_count = 1024;  // rounded up to a power of two
  };

  Engine() : Engine(CalendarConfig{}) {}
  explicit Engine(const CalendarConfig& calendar);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now).
  EventId schedule_at(SimTime when, Callback fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, Callback fn);

  /// Schedule `fn` to run every `period` seconds, first firing at
  /// `first` (absolute).  Returns an id that cancels the whole series.
  EventId schedule_periodic(SimTime first, SimTime period, Callback fn);

  /// Cancel a pending event (or a periodic series).  Cancelling an already
  /// fired or unknown one-shot event is a no-op and returns false.
  bool cancel(EventId id);

  /// Move a pending event to fire at `when` (>= now) instead.  For a
  /// periodic series this moves the next firing; later firings follow at
  /// `when + period`, `when + 2*period`, ...  Pass kTimeNever to park the
  /// event indefinitely (a later reschedule can revive it).  Returns false
  /// if the id is unknown or already fired.
  bool reschedule(EventId id, SimTime when);

  /// Run until the queue is empty or `limit` is reached, whichever first.
  /// Events parked at kTimeNever never fire.  Returns the final time.
  SimTime run(SimTime limit = kTimeNever);

  /// Run a single event; returns false if the queue was empty or the next
  /// event lies beyond `limit` (time does not advance past `limit`).
  bool step(SimTime limit = kTimeNever);

  /// Exact number of pending events (cancelled/rescheduled stubs excluded;
  /// events parked at kTimeNever included).
  std::size_t pending() const { return live_; }

  bool empty() const { return pending() == 0; }

  /// Total events dispatched so far (for tests / instrumentation).
  std::uint64_t dispatched() const { return dispatched_; }

  /// High-water mark of the calendar (self-profiling: how deep the queue
  /// ever got, retired-but-unswept stubs included).
  std::size_t peak_pending() const { return peak_pending_; }

  /// Calendar entries currently retired (awaiting lazy skip or compaction).
  /// Exposed for tests of the compaction policy.
  std::size_t stale() const { return stale_; }

 private:
  using Generation = std::uint32_t;
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;

  // Lightweight, trivially-copyable calendar stub.  The callback and
  // per-event state stay in the slot table so reschedule() never has to
  // move them.
  struct Stub {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    Generation gen;
  };
  struct Later {
    bool operator()(const Stub& a, const Stub& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    /// Embedded in the EventId; bumped when the slot is freed so a stale
    /// id from a previous tenant never resolves.
    Generation id_gen = 1;
    /// Generation of the live stub; bumped on every reschedule/park so the
    /// retired stub is skipped when it surfaces.  Monotonic across slot
    /// reuse (never reset), so stubs of former tenants stay dead too.
    Generation stub_gen = 0;
    /// Current firing time; kTimeNever while parked (no stub in flight).
    SimTime when = kTimeNever;
    /// Periodic period; 0 means one-shot.
    SimTime period = 0.0;
    Callback fn;
    std::uint32_t next_free = kNullSlot;
    bool occupied = false;
  };

  static EventId pack_id(std::uint32_t slot, Generation gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }
  Slot* lookup(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<Generation>(id & 0xffffffffu);
    if (slot >= slots_.size()) return nullptr;
    Slot& s = slots_[slot];
    return (s.occupied && s.id_gen == gen) ? &s : nullptr;
  }
  std::uint32_t alloc_slot(SimTime when, SimTime period, Callback fn);
  void free_slot(std::uint32_t index);

  std::int64_t bucket_of(SimTime when) const {
    return static_cast<std::int64_t>(when * inv_width_);
  }
  void push_stub(SimTime when, std::uint32_t slot, Generation gen);
  /// Refill current_ from the earliest nonempty bucket; false when no stub
  /// remains anywhere (parked events hold none).
  bool advance();
  /// Sweep ladder stubs that entered the ring's window into the calendar.
  void drain_ladder();
  /// Live (non-retired) stubs across all tiers.
  std::size_t live_stubs() const { return stub_count_ - stale_; }
  /// Drop every retired stub from the calendar in one pass.
  void compact();
  void maybe_compact() {
    // Amortised: each compaction touches the whole calendar, so only fire
    // once retired stubs dominate and the calendar is big enough to matter
    // — or once every stub is retired, where "compaction" is a cheap clear
    // and skipping it would leak stubs forever on small park/cancel-heavy
    // queues (and overcount peak_pending).
    if (stale_ == 0) return;
    if (live_stubs() == 0 || (stale_ > live_stubs() && stub_count_ >= 64)) {
      compact();
    }
  }

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t peak_pending_ = 0;

  // --- Calendar geometry -------------------------------------------------
  SimTime width_;
  double inv_width_;
  std::size_t mask_;  // bucket_count - 1 (power of two)
  std::int64_t cur_bucket_ = 0;

  // --- The three tiers ---------------------------------------------------
  std::vector<Stub> current_;             // heap over the active bucket
  std::vector<std::vector<Stub>> ring_;   // near-future buckets
  std::vector<Stub> ladder_;              // beyond-horizon spill
  std::size_t ring_stubs_ = 0;
  std::int64_t ladder_min_bucket_ = kNoLadder;
  static constexpr std::int64_t kNoLadder =
      std::numeric_limits<std::int64_t>::max();

  // --- Event state -------------------------------------------------------
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNullSlot;
  std::size_t live_ = 0;        // occupied slots (parked included)
  std::size_t stub_count_ = 0;  // stubs across all tiers (stale included)
  std::size_t stale_ = 0;       // retired stubs awaiting skip/compaction
};

}  // namespace smr::sim
