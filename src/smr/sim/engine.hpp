// Deterministic discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same simulated time
// fire in scheduling order, which makes every run bit-for-bit reproducible.
// Events are cancellable via the EventId returned by schedule_*; periodic
// events reschedule themselves until cancelled.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "smr/common/error.hpp"
#include "smr/common/types.hpp"

namespace smr::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now).
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Schedule `fn` to run every `period` seconds, first firing at
  /// `first` (absolute).  Returns an id that cancels the whole series.
  EventId schedule_periodic(SimTime first, SimTime period, std::function<void()> fn);

  /// Cancel a pending event (or a periodic series).  Cancelling an already
  /// fired or unknown one-shot event is a no-op and returns false.
  bool cancel(EventId id);

  /// Run until the queue is empty or `limit` is reached, whichever first.
  /// Returns the final simulated time.
  SimTime run(SimTime limit = kTimeNever);

  /// Run a single event; returns false if the queue was empty or the next
  /// event lies beyond `limit` (time does not advance past `limit`).
  bool step(SimTime limit = kTimeNever);

  /// Number of pending events (cancelled-but-not-popped entries excluded).
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  bool empty() const { return pending() == 0; }

  /// Total events dispatched so far (for tests / instrumentation).
  std::uint64_t dispatched() const { return dispatched_; }

  /// High-water mark of the event heap (self-profiling: how deep the
  /// queue ever got, cancelled-but-unpopped entries included).
  std::size_t peak_pending() const { return peak_pending_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    // Periodic period; 0 means one-shot.
    SimTime period;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void push(SimTime when, SimTime period, EventId id, std::function<void()> fn);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t peak_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace smr::sim
