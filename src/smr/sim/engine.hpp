// Deterministic discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same simulated time
// fire in scheduling order, which makes every run bit-for-bit reproducible.
// Events are cancellable via the EventId returned by schedule_*; periodic
// events reschedule themselves until cancelled, and reschedule() moves a
// pending event (or the next firing of a periodic series) without consuming
// a new id.
//
// Internally the heap holds lightweight generation-stamped stubs; callbacks
// live in a side table keyed by EventId.  cancel() and reschedule() never
// touch the heap — they retire the stamped stub lazily (it is skipped when
// it surfaces) and the heap is compacted in one pass when retired stubs
// outnumber live ones.  This keeps cancel/reschedule O(1) and pending()
// exact, unlike the earlier tombstone-set scheme whose count underflowed
// when an already-fired id was cancelled.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "smr/common/error.hpp"
#include "smr/common/types.hpp"

namespace smr::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now).
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Schedule `fn` to run every `period` seconds, first firing at
  /// `first` (absolute).  Returns an id that cancels the whole series.
  EventId schedule_periodic(SimTime first, SimTime period, std::function<void()> fn);

  /// Cancel a pending event (or a periodic series).  Cancelling an already
  /// fired or unknown one-shot event is a no-op and returns false.
  bool cancel(EventId id);

  /// Move a pending event to fire at `when` (>= now) instead.  For a
  /// periodic series this moves the next firing; later firings follow at
  /// `when + period`, `when + 2*period`, ...  Pass kTimeNever to park the
  /// event indefinitely (a later reschedule can revive it).  Returns false
  /// if the id is unknown or already fired.
  bool reschedule(EventId id, SimTime when);

  /// Run until the queue is empty or `limit` is reached, whichever first.
  /// Events parked at kTimeNever never fire.  Returns the final time.
  SimTime run(SimTime limit = kTimeNever);

  /// Run a single event; returns false if the queue was empty or the next
  /// event lies beyond `limit` (time does not advance past `limit`).
  bool step(SimTime limit = kTimeNever);

  /// Exact number of pending events (cancelled/rescheduled stubs excluded;
  /// events parked at kTimeNever included).
  std::size_t pending() const { return live_.size(); }

  bool empty() const { return pending() == 0; }

  /// Total events dispatched so far (for tests / instrumentation).
  std::uint64_t dispatched() const { return dispatched_; }

  /// High-water mark of the event heap (self-profiling: how deep the
  /// queue ever got, retired-but-unpopped stubs included).
  std::size_t peak_pending() const { return peak_pending_; }

  /// Heap entries currently retired (awaiting lazy skip or compaction).
  /// Exposed for tests of the compaction policy.
  std::size_t stale() const { return stale_; }

 private:
  using Generation = std::uint32_t;

  // Lightweight, trivially-copyable heap stub.  The callback and period
  // stay in `live_` so reschedule() does not have to move them.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    Generation gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Live {
    Generation gen = 0;
    // Periodic period; 0 means one-shot.
    SimTime period = 0.0;
    std::function<void()> fn;
  };

  void push(SimTime when, EventId id, Generation gen);
  /// Drop every retired stub from the heap in one pass.
  void compact();
  void maybe_compact() {
    // Amortised: each compaction touches the whole heap, so only fire once
    // retired stubs dominate and the heap is big enough to matter.
    if (stale_ > live_.size() && heap_.size() >= 64) compact();
  }

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t peak_pending_ = 0;
  std::size_t stale_ = 0;
  std::vector<Entry> heap_;
  std::unordered_map<EventId, Live> live_;
};

}  // namespace smr::sim
