// Admission control for the serving subsystem.
//
// An open-loop arrival stream can offer more work than the cluster
// sustains; without admission control the job queue grows without bound
// and every latency percentile diverges.  The controller bounds the
// number of jobs in the system and either sheds excess arrivals (drops
// them, counting against the tenant's goodput) or defers them in a
// bounded pending queue that drains as jobs depart.
#pragma once

#include <cstdint>

namespace smr::serve {

/// What to do with an arrival that exceeds max_in_system.
enum class AdmissionPolicy {
  kShed,   ///< Drop it immediately (load shedding).
  kDefer,  ///< Park it in the pending queue (up to max_pending, then shed).
};

const char* admission_policy_name(AdmissionPolicy policy);

struct AdmissionConfig {
  /// Maximum jobs admitted concurrently (submitted, not yet departed).
  /// <= 0 means unlimited (pure open loop, no control).
  int max_in_system = 0;

  /// Maximum deferred arrivals waiting for a slot in the system (only
  /// meaningful under kDefer).  <= 0 means an unbounded pending queue.
  int max_pending = 0;

  AdmissionPolicy policy = AdmissionPolicy::kShed;

  void validate() const;
};

/// Decision for one arrival.
enum class AdmissionDecision { kAdmit, kDefer, kShed };

/// Pure counting state machine: the serving session owns the actual
/// deferred-job queue and calls `on_arrival` per arrival (acting on the
/// decision) and `on_departure` per job departure (a `true` return means
/// one deferred arrival may now be admitted — the session pops its queue
/// and must then call `on_deferred_admitted`).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  AdmissionDecision on_arrival();
  /// A job left the system (finished or failed).  Returns true when a
  /// deferred arrival should be admitted in its place.
  bool on_departure();
  /// The session admitted a previously deferred arrival.
  void on_deferred_admitted();

  int in_system() const { return in_system_; }
  int pending() const { return pending_; }

  // --- Lifetime counters -----------------------------------------------
  std::int64_t admitted() const { return admitted_; }
  std::int64_t deferred() const { return deferred_; }
  std::int64_t shed() const { return shed_; }
  int peak_in_system() const { return peak_in_system_; }
  int peak_pending() const { return peak_pending_; }

 private:
  bool unlimited() const { return config_.max_in_system <= 0; }

  AdmissionConfig config_;
  int in_system_ = 0;
  int pending_ = 0;
  std::int64_t admitted_ = 0;
  std::int64_t deferred_ = 0;
  std::int64_t shed_ = 0;
  int peak_in_system_ = 0;
  int peak_pending_ = 0;
};

}  // namespace smr::serve
