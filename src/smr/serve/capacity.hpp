// Capacity sweep: find the maximum sustainable arrival rate per engine.
//
// A serving system's headline number is its capacity knee — the highest
// offered rate it sustains with bounded tail latency and (near) zero
// shedding.  The sweep scales the tenants' offered rates proportionally
// across a rate grid, runs one ServeSession per (engine, rate) point, and
// marks each point sustainable iff the measured p99 stays under the bound
// and the shed fraction under its cap.  Comparing knees across engines is
// the serving-mode analogue of the paper's Fig. 8 makespan comparison:
// the slot policy that finishes batches faster also sustains a higher
// arrival rate before its queue diverges.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "smr/driver/experiment.hpp"
#include "smr/serve/session.hpp"

namespace smr::serve {

struct CapacityConfig {
  /// Template session; `base.tenants` rates are scaled so their sum hits
  /// each grid point, and `base.experiment.engine` is overridden per
  /// swept engine.
  ServeConfig base;

  /// Aggregate offered rates (jobs/hour) to sweep, ascending.
  std::vector<double> rates;

  /// A point is sustainable iff measured aggregate p99 sojourn <= this...
  double p99_bound_s = 1800.0;
  /// ...and (shed jobs / measured arrivals) <= this.
  double max_shed_fraction = 0.0;

  void validate() const;
};

struct CapacityPoint {
  double jobs_per_hour = 0.0;
  bool sustainable = false;
  ServeReport report;
  /// Fairness accounting over the point's measurement window (sampled
  /// every policy period; see alloc::FairnessTracker).
  alloc::FairnessReport fairness;
};

struct CapacityCurve {
  std::string engine;
  std::vector<CapacityPoint> points;
  /// Highest sustainable rate in the grid; 0 when none was sustainable.
  double knee_jobs_per_hour = 0.0;
};

/// Scale `tenants` so their aggregate rate equals `jobs_per_hour`.
std::vector<TenantConfig> scale_tenants(std::vector<TenantConfig> tenants,
                                        double jobs_per_hour);

/// Sweep one registry policy over the rate grid (curve.engine takes the
/// policy's display name).  Deterministic in base.seed; every point runs
/// with a FairnessTracker attached.
CapacityCurve sweep_policy(const CapacityConfig& config,
                           const alloc::PolicySpec& spec);

/// Sweep one engine over the rate grid.  Deterministic in base.seed.
/// Routes through sweep_policy() under the engine's registry name.
CapacityCurve sweep_capacity(const CapacityConfig& config,
                             driver::EngineKind engine);

/// Sweep several registry policies (`--policies=a;b;c`).
std::vector<CapacityCurve> sweep_policies(
    const CapacityConfig& config, const std::vector<alloc::PolicySpec>& specs);

/// Sweep several engines and emit the rate-vs-p99 JSON report:
/// {"p99_bound_s":...,"rates":[...],"curves":[{"engine":...,
///  "knee_jobs_per_hour":...,"points":[{"jobs_per_hour":...,
///  "sustainable":...,"fairness":{...},"report":{...}}]}]}.
std::vector<CapacityCurve> sweep_engines(
    const CapacityConfig& config, const std::vector<driver::EngineKind>& engines);

void write_capacity_json(const CapacityConfig& config,
                         const std::vector<CapacityCurve>& curves,
                         std::ostream& out);

}  // namespace smr::serve
