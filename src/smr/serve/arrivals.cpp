#include "smr/serve/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "smr/common/error.hpp"
#include "smr/common/rng.hpp"

namespace smr::serve {

void TenantConfig::validate() const {
  SMR_CHECK_MSG(!name.empty(), "tenant with empty name");
  SMR_CHECK_MSG(jobs_per_hour > 0.0,
                "tenant '" << name << "': jobs_per_hour must be > 0");
  shape.validate();
}

ArrivalTrace generate_arrivals(const std::vector<TenantConfig>& tenants,
                               SimTime horizon, std::uint64_t seed) {
  SMR_CHECK(horizon > 0.0);
  SMR_CHECK_MSG(!tenants.empty(), "no tenants configured");

  ArrivalTrace trace;
  trace.tenants.reserve(tenants.size());

  // Per-tenant substream seeds come from one SplitMix64 walk over the
  // master seed: tenant i's seed is the i-th output, a function of (seed,
  // i) only, so later tenants never perturb earlier streams.
  SplitMix64 seeder(seed);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantConfig& tenant = tenants[i];
    tenant.validate();
    trace.tenants.push_back(tenant.name);

    Rng rng(seeder.next());
    const double mean_gap = 3600.0 / tenant.jobs_per_hour;
    SimTime clock = 0.0;
    for (;;) {
      clock += -mean_gap * std::log1p(-rng.uniform());
      if (clock >= horizon) break;
      Arrival arrival;
      arrival.tenant = static_cast<int>(i);
      arrival.job.spec = workload::draw_synthetic_job(tenant.shape, rng);
      arrival.job.submit_at = clock;
      trace.arrivals.push_back(std::move(arrival));
    }
  }

  std::stable_sort(trace.arrivals.begin(), trace.arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.job.submit_at != b.job.submit_at) {
                       return a.job.submit_at < b.job.submit_at;
                     }
                     return a.tenant < b.tenant;
                   });
  return trace;
}

namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) fields.push_back(trim(field));
  return fields;
}

double parse_number(const std::string& text, int line_number, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  SMR_CHECK_MSG(end != nullptr && *end == '\0' && !text.empty(),
                "arrivals csv line " << line_number << ": bad " << what << " '"
                                     << text << "'");
  return value;
}

}  // namespace

ArrivalTrace parse_arrivals_csv(std::istream& in) {
  ArrivalTrace trace;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = split_csv(trimmed);
    if (line_number == 1 && !fields.empty() && fields[0] == "tenant") {
      continue;  // header row
    }
    SMR_CHECK_MSG(fields.size() == 4 || fields.size() == 6,
                  "arrivals csv line " << line_number
                                       << ": expected 4 or 6 fields, got "
                                       << fields.size());

    Arrival arrival;
    const std::string& tenant_name = fields[0];
    SMR_CHECK_MSG(!tenant_name.empty(),
                  "arrivals csv line " << line_number << ": empty tenant");
    const auto found = std::find(trace.tenants.begin(), trace.tenants.end(),
                                 tenant_name);
    if (found == trace.tenants.end()) {
      arrival.tenant = static_cast<int>(trace.tenants.size());
      trace.tenants.push_back(tenant_name);
    } else {
      arrival.tenant = static_cast<int>(found - trace.tenants.begin());
    }

    const auto bench = workload::puma_from_name(fields[1]);
    SMR_CHECK_MSG(bench.has_value(),
                  "arrivals csv line " << line_number << ": unknown benchmark '"
                                       << fields[1] << "'");
    const double input_gib = parse_number(fields[2], line_number, "input_gib");
    SMR_CHECK_MSG(input_gib > 0.0,
                  "arrivals csv line " << line_number << ": input_gib must be > 0");
    arrival.job.spec = workload::make_puma_job(
        *bench, static_cast<Bytes>(input_gib * static_cast<double>(kGiB)));
    arrival.job.submit_at = parse_number(fields[3], line_number, "arrive_at");
    SMR_CHECK_MSG(arrival.job.submit_at >= 0.0,
                  "arrivals csv line " << line_number << ": arrive_at must be >= 0");

    if (fields.size() == 6) {
      arrival.job.spec.slo_class = fields[4];
      if (!fields[5].empty() && fields[5] != "inf") {
        const double deadline = parse_number(fields[5], line_number, "deadline_s");
        SMR_CHECK_MSG(deadline >= 0.0,
                      "arrivals csv line " << line_number
                                           << ": deadline_s must be >= 0");
        arrival.job.spec.relative_deadline = deadline;
      }
    }
    trace.arrivals.push_back(std::move(arrival));
  }

  std::stable_sort(trace.arrivals.begin(), trace.arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.job.submit_at != b.job.submit_at) {
                       return a.job.submit_at < b.job.submit_at;
                     }
                     return a.tenant < b.tenant;
                   });
  return trace;
}

ArrivalTrace load_arrivals_csv(const std::string& path) {
  std::ifstream in(path);
  SMR_CHECK_MSG(in.good(), "cannot read arrivals csv '" << path << "'");
  return parse_arrivals_csv(in);
}

void write_arrivals_csv(const ArrivalTrace& trace, std::ostream& out) {
  out << "tenant,benchmark,input_gib,arrive_at,slo_class,deadline_s\n";
  for (const auto& arrival : trace.arrivals) {
    out << trace.tenants[static_cast<std::size_t>(arrival.tenant)] << ','
        << arrival.job.spec.name << ',' << to_gib(arrival.job.spec.input_size)
        << ',' << arrival.job.submit_at << ',' << arrival.job.spec.slo_class
        << ',';
    if (arrival.job.spec.relative_deadline == kTimeNever) {
      out << "inf";
    } else {
      out << arrival.job.spec.relative_deadline;
    }
    out << '\n';
  }
}

}  // namespace smr::serve
