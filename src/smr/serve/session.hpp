// ServeSession: one long-lived serving run.
//
// Wires the pieces of the serving subsystem together: an arrival stream
// (generated or replayed) feeds an AdmissionController; admitted jobs are
// submitted into a *running* mapreduce::Runtime (held open via
// keep_open()); departures release admission slots and pop the deferred
// queue; an SloTracker measures the steady state between the warmup end
// and the arrival horizon.  The run ends once arrivals stop and the
// system drains (bounded by drain_limit), and the whole thing is
// deterministic in the config seed.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "smr/alloc/fairness.hpp"
#include "smr/driver/experiment.hpp"
#include "smr/obs/metrics_registry.hpp"
#include "smr/serve/admission.hpp"
#include "smr/serve/arrivals.hpp"
#include "smr/serve/burn_rate.hpp"
#include "smr/serve/slo.hpp"

namespace smr::metrics {
class TraceLog;
}

namespace smr::obs {
class DecisionLog;
class SpanLog;
}

namespace smr::serve {

struct ServeConfig {
  /// Engine / cluster / scheduler under test.  `trials` is ignored (a
  /// serving run is one long session); `runtime.seed` and
  /// `runtime.time_limit` are overridden by `seed` and
  /// `horizon + drain_limit` below.
  driver::ExperimentConfig experiment;

  /// Offered load (ignored by replay(), which brings its own trace).
  std::vector<TenantConfig> tenants;

  AdmissionConfig admission;

  /// Arrivals cover [0, horizon); the measurement window is
  /// [warmup, horizon).
  SimTime horizon = 2.0 * 3600.0;
  SimTime warmup = 900.0;

  /// Extra simulated time after the horizon for in-flight jobs to drain
  /// before the hard stop.
  SimTime drain_limit = 2.0 * 3600.0;

  /// Seeds both the arrival streams and the runtime.
  std::uint64_t seed = 1;

  /// Rolling-window burn-rate alerting over deadline-carrying departures.
  BurnRateConfig burn;

  void validate() const;
};

/// Single-use session: construct, then call run() or replay() exactly once.
class ServeSession {
 public:
  explicit ServeSession(ServeConfig config);
  ~ServeSession();

  /// Generate per-tenant Poisson arrivals from the config and serve them.
  /// `metrics` (optional) additionally receives the runtime's telemetry
  /// and the serve.* counters/series; pass nullptr to keep it internal.
  ServeReport run(obs::MetricsRegistry* metrics = nullptr);

  /// Serve a recorded arrival trace instead (tenant set comes from the
  /// trace; config.tenants is ignored).
  ServeReport replay(ArrivalTrace trace, obs::MetricsRegistry* metrics = nullptr);

  /// The underlying batch-style result (per-job records, slot timeline),
  /// valid after run()/replay() returned.
  const metrics::RunResult& run_result() const { return result_; }

  /// Attach a trace log (optional; must outlive the run; call before
  /// run()/replay()).  Receives the runtime's task events plus kSloAlert
  /// instants from the burn-rate tracker.
  void set_trace(metrics::TraceLog* trace) { trace_log_ = trace; }

  /// Attach a span log (optional; forwarded to the runtime).
  void set_spans(obs::SpanLog* spans) { spans_ = spans; }

  /// Attach a decision audit log (optional; must outlive the run; call
  /// before run()/replay()).  Forwarded to the allocation policy through
  /// the virtual AllocationPolicy::set_decision_log hook, so *every*
  /// allocator's periodic decisions land in it.
  void set_decisions(obs::DecisionLog* decisions) { decisions_ = decisions; }

  /// Attach a fairness tracker (optional; must outlive the run; call
  /// before run()/replay()).  The session then samples per-tenant usage,
  /// demand, live capacity and credit balances every policy period across
  /// the measurement window [warmup, horizon).  Purely observational.
  void set_fairness(alloc::FairnessTracker* fairness) { fairness_ = fairness; }

  /// Thread pool for the runtime's sharded tick (optional; must outlive
  /// the run; call before run()/replay()).  Pool size never changes
  /// results.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Burn-rate alerts fired during the run, in time order.  Valid after
  /// run()/replay() returned.
  const std::vector<BurnAlert>& burn_alerts() const;

  /// The underlying runtime (per-shard window stats, engine counters).
  /// Valid after run()/replay() returned; nullptr before.
  const mapreduce::Runtime* runtime() const { return runtime_.get(); }

  /// One {"type":"slo_alert",...} JSON object per alert, in order.
  void write_burn_alerts_jsonl(std::ostream& out) const;

 private:
  struct JobInfo {
    int tenant = 0;
    SimTime arrived = 0.0;
  };

  ServeReport execute(ArrivalTrace trace, obs::MetricsRegistry* metrics);
  void on_arrival(std::size_t index);
  /// Submit arrival `index` at the current simulation time, re-anchoring
  /// its relative deadline to the original arrival instant.
  void submit_arrival(std::size_t index);
  void on_job_finished(const mapreduce::Job& job);
  /// Feed one deadline-carrying departure into the burn-rate tracker,
  /// surfacing any alert as a counter bump and a kSloAlert trace instant.
  void record_burn(int tenant, SimTime now, bool slo_met);
  void process_departure();
  void maybe_close();
  double utilization_from_slots() const;

  /// Schedules the next fairness sample (self-rescheduling engine event
  /// starting at warmup, every policy period, until the horizon).
  void sample_fairness();

  ServeConfig config_;
  ArrivalTrace trace_;
  metrics::TraceLog* trace_log_ = nullptr;
  obs::SpanLog* spans_ = nullptr;
  obs::DecisionLog* decisions_ = nullptr;
  alloc::FairnessTracker* fairness_ = nullptr;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<mapreduce::Runtime> runtime_;
  std::unique_ptr<SloTracker> tracker_;
  std::unique_ptr<BurnRateTracker> burn_;
  AdmissionController admission_;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unordered_map<JobId, JobInfo> admitted_;
  std::deque<std::size_t> deferred_;
  metrics::RunResult result_;
  bool arrivals_closed_ = false;
  bool closed_ = false;
  bool executed_ = false;
};

}  // namespace smr::serve
