// Steady-state SLO metrics for the serving subsystem.
//
// Batch metrics (makespan, per-job results) say little about a long-lived
// service; what matters is the steady state: latency percentiles, the
// fraction of jobs meeting their deadline, goodput, and how much load was
// shed.  The tracker excludes a warmup window — the initial transient
// while the pipeline fills — and measures every job by its *arrival* time
// (deferred queueing counts against latency; shed jobs count against
// goodput), per tenant and in aggregate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::serve {

/// Percentile summary of one latency sample set.  With count == 0 the
/// percentile fields are quiet NaN (smr::percentile's empty contract) and
/// the JSON writers emit null.
struct LatencyStats {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Compute the summary (consumes the samples; they get sorted).
LatencyStats summarize_latency(std::vector<double> samples);

/// Measured steady-state results for one tenant (or the aggregate).
struct TenantReport {
  std::string name;

  // Counts over jobs *arriving* inside the measurement window.
  std::int64_t arrived = 0;
  std::int64_t shed = 0;
  std::int64_t deferred = 0;   ///< Arrivals that waited in the pending queue.
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t slo_met = 0;    ///< Completed with finish <= deadline.
  std::int64_t with_deadline = 0;  ///< Completed jobs that carried an SLO.

  /// Sojourn time: finish - arrival (queueing included), completed jobs.
  LatencyStats latency;
  /// Mean of (finish - arrival) / service time, completed jobs; >= 1.
  double mean_slowdown = 0.0;
  /// SLO-met completions per simulated hour of measurement window.
  double goodput_per_hour = 0.0;
};

/// The full serving report: configuration echo, aggregate and per-tenant
/// steady-state metrics, and run health.
struct ServeReport {
  std::string engine;
  std::string scheduler;
  std::string admission;

  double offered_jobs_per_hour = 0.0;  ///< Over the whole arrival stream.
  SimTime warmup = 0.0;
  SimTime horizon = 0.0;
  SimTime makespan = 0.0;  ///< When the simulation actually ended.
  bool completed = false;  ///< False when the run hit its time limit/abort.
  std::string failure_reason;

  TenantReport aggregate;  ///< name == "all".
  std::vector<TenantReport> tenants;

  /// Unfinished admitted jobs at the end of the run (drain shortfall).
  std::int64_t unfinished = 0;
  /// Mean busy-slot fraction over the measurement window, from the
  /// runtime's sampled series ((running maps + reduces) / slot targets).
  double utilization = 0.0;

  void write_json(std::ostream& out) const;
};

/// Accumulates per-job outcomes and produces the report.  Only jobs whose
/// arrival time falls inside [warmup_end, measure_end) are measured; the
/// rest still run (they load the system) but do not distort the steady
/// state with warmup or tail-drain transients.
class SloTracker {
 public:
  SloTracker(SimTime warmup_end, SimTime measure_end,
             std::vector<std::string> tenant_names);

  void record_arrival(int tenant, SimTime arrived);
  void record_shed(int tenant, SimTime arrived);
  void record_deferred(int tenant, SimTime arrived);
  /// A job departed.  `service` is finish - first task launch (0 when the
  /// job never started); `deadline` is absolute, kTimeNever when none.
  void record_outcome(int tenant, SimTime arrived, SimTime finished,
                      SimTime service, SimTime deadline, bool failed);

  /// Build the aggregate + per-tenant reports (counts, percentiles,
  /// slowdown, goodput).  Leaves the caller to fill the config-echo and
  /// run-health fields of ServeReport.
  void fill(ServeReport& report) const;

  bool measured(SimTime arrived) const {
    return arrived >= warmup_end_ && arrived < measure_end_;
  }

 private:
  struct PerTenant {
    std::string name;
    std::int64_t arrived = 0;
    std::int64_t shed = 0;
    std::int64_t deferred = 0;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    std::int64_t slo_met = 0;
    std::int64_t with_deadline = 0;
    std::vector<double> latencies;
    double slowdown_sum = 0.0;
    std::int64_t slowdown_count = 0;
  };

  TenantReport report_of(const PerTenant& t) const;

  SimTime warmup_end_;
  SimTime measure_end_;
  std::vector<PerTenant> tenants_;
};

}  // namespace smr::serve
