#include "smr/serve/admission.hpp"

#include <algorithm>

#include "smr/common/error.hpp"

namespace smr::serve {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kShed: return "shed";
    case AdmissionPolicy::kDefer: return "defer";
  }
  return "unknown";
}

void AdmissionConfig::validate() const {
  // Nothing to reject: non-positive limits mean "unlimited" by contract.
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  config_.validate();
}

AdmissionDecision AdmissionController::on_arrival() {
  if (unlimited() || in_system_ < config_.max_in_system) {
    ++in_system_;
    ++admitted_;
    peak_in_system_ = std::max(peak_in_system_, in_system_);
    return AdmissionDecision::kAdmit;
  }
  if (config_.policy == AdmissionPolicy::kDefer &&
      (config_.max_pending <= 0 || pending_ < config_.max_pending)) {
    ++pending_;
    ++deferred_;
    peak_pending_ = std::max(peak_pending_, pending_);
    return AdmissionDecision::kDefer;
  }
  ++shed_;
  return AdmissionDecision::kShed;
}

bool AdmissionController::on_departure() {
  SMR_CHECK_MSG(in_system_ > 0, "departure with no jobs in system");
  --in_system_;
  return pending_ > 0;
}

void AdmissionController::on_deferred_admitted() {
  SMR_CHECK_MSG(pending_ > 0, "deferred admit with empty pending queue");
  --pending_;
  ++in_system_;
  ++admitted_;
  peak_in_system_ = std::max(peak_in_system_, in_system_);
}

}  // namespace smr::serve
