// Open-loop arrival processes for the serving subsystem.
//
// A long-lived cluster does not see a fixed batch: jobs arrive from
// independent tenants as streams.  This module generates such streams —
// per-tenant Poisson processes whose job shapes come from the synthetic
// mix generator — and can also replay recorded arrival traces from CSV.
// Arrivals are *open loop*: the arrival clock never waits for the system,
// which is what exposes a capacity knee when the offered rate exceeds
// what a slot policy can sustain.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "smr/common/types.hpp"
#include "smr/workload/synthetic.hpp"

namespace smr::serve {

/// One tenant's offered load: a Poisson arrival process (exponential
/// inter-arrival gaps, mean 3600 / jobs_per_hour seconds) over job shapes
/// drawn from `shape` (benchmark mix, input-size distribution, SLO
/// classes).  The shape's own `jobs` / `mean_interarrival` / `seed`
/// fields are ignored here; the arrival process owns the clock and the
/// stream seed.
struct TenantConfig {
  std::string name = "tenant";
  double jobs_per_hour = 30.0;
  workload::SyntheticMixConfig shape;

  void validate() const;
};

/// One job arrival: which tenant offered it and the timed job itself
/// (`job.submit_at` is the absolute arrival time).
struct Arrival {
  int tenant = 0;
  workload::TimedJob job;
};

/// A full arrival stream: tenant names plus arrivals sorted by time.
struct ArrivalTrace {
  std::vector<std::string> tenants;
  std::vector<Arrival> arrivals;
};

/// Generate the merged arrival stream for `tenants` over [0, horizon).
///
/// Deterministic in `seed`.  Each tenant draws from its own substream
/// (derived from `seed` by tenant index), so adding or re-ordering one
/// tenant's config never perturbs another tenant's arrivals.  The merged
/// stream is sorted by (time, tenant) — a total order, since a single
/// tenant cannot arrive twice at the same continuous instant.
ArrivalTrace generate_arrivals(const std::vector<TenantConfig>& tenants,
                               SimTime horizon, std::uint64_t seed);

/// Parse a recorded arrival trace.  Format (header optional, `#` comments
/// and blank lines skipped):
///
///   tenant,benchmark,input_gib,arrive_at[,slo_class,deadline_s]
///
/// Tenants are numbered in order of first appearance.  `deadline_s` is the
/// relative completion deadline in seconds ("inf" or empty = none).
/// Arrivals are returned sorted by (time, tenant).
ArrivalTrace parse_arrivals_csv(std::istream& in);
ArrivalTrace load_arrivals_csv(const std::string& path);

/// Write a trace back out in the replayable CSV format.
void write_arrivals_csv(const ArrivalTrace& trace, std::ostream& out);

}  // namespace smr::serve
