// Rolling-window SLO burn-rate alerting for the serving path.
//
// The end-of-run ServeReport tells you attainment after the fact; an
// operator needs to know *while the run is degrading*.  Standard SRE
// burn-rate framing: with an attainment target T, the error budget is
// 1 - T.  Over a trailing window the burn rate is
//
//   burn = miss_fraction_in_window / (1 - T)
//
// burn == 1 means the tenant is consuming budget exactly at the rate the
// SLO allows; burn == threshold (default 2x) fires an alert.  Alerts are
// edge-triggered per tenant with a cooldown so a sustained burn produces
// a bounded alert stream, and require a minimum sample count so the first
// missed deadline after warmup does not page.
//
// ServeSession feeds every measured deadline-carrying departure into the
// tracker; alerts land in the serve.slo_alerts counter, the alert JSONL
// (`smr_serve --alerts-out`) and — when a TraceLog is attached — as
// kSloAlert trace instants.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::serve {

struct BurnRateConfig {
  /// Trailing window the miss fraction is computed over.
  SimTime window = 600.0;
  /// Attainment target T; budget is 1 - T.  Must be < 1.
  double target = 0.9;
  /// Alert when burn >= threshold (2.0 = burning budget twice as fast as
  /// the SLO allows).
  double threshold = 2.0;
  /// Outcomes required in the window before alerts can fire.
  std::size_t min_samples = 10;
  /// Per-tenant refractory period between alerts.
  SimTime cooldown = 300.0;

  void validate() const;
};

struct BurnAlert {
  SimTime time = 0.0;
  int tenant = 0;
  std::string tenant_name;
  double burn_rate = 0.0;
  double miss_fraction = 0.0;
  std::size_t window_samples = 0;
};

/// Per-tenant rolling miss-fraction monitor.  Deterministic: state is a
/// pure function of the (tenant, time, met) call sequence.
class BurnRateTracker {
 public:
  BurnRateTracker(BurnRateConfig config, std::vector<std::string> tenant_names);

  /// Record one deadline-carrying departure; returns an alert when this
  /// outcome pushes the tenant's burn rate over threshold (and the
  /// cooldown has elapsed).  The alert is also retained internally.
  std::optional<BurnAlert> record(int tenant, SimTime now, bool slo_met);

  /// Current burn rate of `tenant` (0 when its window is empty).
  double burn_rate(int tenant) const;

  const std::vector<BurnAlert>& alerts() const { return alerts_; }

  /// One {"type":"slo_alert",...} JSON object per alert, in order.
  void write_alerts_jsonl(std::ostream& out) const;

 private:
  struct Outcome {
    SimTime time;
    bool met;
  };
  struct PerTenant {
    std::string name;
    std::deque<Outcome> window;
    std::size_t misses = 0;
    SimTime last_alert = -kTimeNever;  // -inf: first alert never suppressed
  };

  void evict(PerTenant& t, SimTime now);
  double miss_fraction(const PerTenant& t) const;

  BurnRateConfig config_;
  std::vector<PerTenant> tenants_;
  std::vector<BurnAlert> alerts_;
};

}  // namespace smr::serve
