#include "smr/serve/capacity.hpp"

#include <cmath>
#include <ostream>
#include <utility>

#include "smr/common/error.hpp"

namespace smr::serve {

void CapacityConfig::validate() const {
  base.validate();
  SMR_CHECK_MSG(!base.tenants.empty(), "capacity sweep needs tenants");
  SMR_CHECK_MSG(!rates.empty(), "capacity sweep needs a rate grid");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    SMR_CHECK_MSG(rates[i] > 0.0, "rates must be > 0");
    SMR_CHECK_MSG(i == 0 || rates[i] > rates[i - 1], "rates must ascend");
  }
  SMR_CHECK(p99_bound_s > 0.0);
  SMR_CHECK(max_shed_fraction >= 0.0 && max_shed_fraction <= 1.0);
}

std::vector<TenantConfig> scale_tenants(std::vector<TenantConfig> tenants,
                                        double jobs_per_hour) {
  double total = 0.0;
  for (const auto& tenant : tenants) total += tenant.jobs_per_hour;
  SMR_CHECK(total > 0.0);
  const double factor = jobs_per_hour / total;
  for (auto& tenant : tenants) tenant.jobs_per_hour *= factor;
  return tenants;
}

namespace {

bool point_sustainable(const CapacityConfig& config, const ServeReport& report) {
  const auto& agg = report.aggregate;
  if (agg.completed == 0) return false;
  if (std::isnan(agg.latency.p99) || agg.latency.p99 > config.p99_bound_s) {
    return false;
  }
  if (agg.arrived > 0) {
    const double shed_fraction =
        static_cast<double>(agg.shed) / static_cast<double>(agg.arrived);
    if (shed_fraction > config.max_shed_fraction) return false;
  }
  // A run that hit the hard stop with work still queued is not steady
  // state, whatever its percentiles say.
  if (!report.completed && report.unfinished > 0) return false;
  return true;
}

}  // namespace

CapacityCurve sweep_policy(const CapacityConfig& config,
                           const alloc::PolicySpec& spec) {
  config.validate();
  CapacityCurve curve;
  {
    driver::ExperimentConfig probe = config.base.experiment;
    probe.policy = spec;
    curve.engine = driver::policy_label(probe);
  }
  curve.points.reserve(config.rates.size());

  for (double rate : config.rates) {
    ServeConfig serve = config.base;
    serve.experiment.policy = spec;
    serve.tenants = scale_tenants(serve.tenants, rate);

    CapacityPoint point;
    point.jobs_per_hour = rate;
    ServeSession session(serve);
    alloc::FairnessTracker fairness;
    session.set_fairness(&fairness);
    point.report = session.run();
    point.fairness = fairness.report();
    point.sustainable = point_sustainable(config, point.report);
    if (point.sustainable) curve.knee_jobs_per_hour = rate;
    curve.points.push_back(std::move(point));
  }
  return curve;
}

CapacityCurve sweep_capacity(const CapacityConfig& config,
                             driver::EngineKind engine) {
  alloc::PolicySpec spec;
  spec.name = driver::engine_name(engine);
  return sweep_policy(config, spec);
}

std::vector<CapacityCurve> sweep_policies(
    const CapacityConfig& config, const std::vector<alloc::PolicySpec>& specs) {
  std::vector<CapacityCurve> curves;
  curves.reserve(specs.size());
  for (const alloc::PolicySpec& spec : specs) {
    curves.push_back(sweep_policy(config, spec));
  }
  return curves;
}

std::vector<CapacityCurve> sweep_engines(
    const CapacityConfig& config,
    const std::vector<driver::EngineKind>& engines) {
  std::vector<CapacityCurve> curves;
  curves.reserve(engines.size());
  for (driver::EngineKind engine : engines) {
    curves.push_back(sweep_capacity(config, engine));
  }
  return curves;
}

void write_capacity_json(const CapacityConfig& config,
                         const std::vector<CapacityCurve>& curves,
                         std::ostream& out) {
  out << "{\"p99_bound_s\":" << config.p99_bound_s
      << ",\"max_shed_fraction\":" << config.max_shed_fraction
      << ",\"horizon_s\":" << config.base.horizon
      << ",\"warmup_s\":" << config.base.warmup << ",\"seed\":"
      << config.base.seed << ",\"rates\":[";
  for (std::size_t i = 0; i < config.rates.size(); ++i) {
    if (i > 0) out << ',';
    out << config.rates[i];
  }
  out << "],\"curves\":[";
  for (std::size_t c = 0; c < curves.size(); ++c) {
    if (c > 0) out << ',';
    const CapacityCurve& curve = curves[c];
    out << "{\"engine\":\"" << curve.engine << "\",\"knee_jobs_per_hour\":"
        << curve.knee_jobs_per_hour << ",\"points\":[";
    for (std::size_t p = 0; p < curve.points.size(); ++p) {
      if (p > 0) out << ',';
      const CapacityPoint& point = curve.points[p];
      out << "{\"jobs_per_hour\":" << point.jobs_per_hour
          << ",\"sustainable\":" << (point.sustainable ? "true" : "false")
          << ",\"fairness\":{\"jain\":" << point.fairness.jain
          << ",\"max_envy\":" << point.fairness.max_envy
          << ",\"utilitarian_welfare\":" << point.fairness.utilitarian_welfare
          << ",\"nash_welfare\":" << point.fairness.nash_welfare
          << "},\"report\":";
      point.report.write_json(out);
      out << '}';
    }
    out << "]}";
  }
  out << "]}\n";
}

}  // namespace smr::serve
