#include "smr/serve/burn_rate.hpp"

#include <ostream>

#include "smr/common/error.hpp"

namespace smr::serve {

void BurnRateConfig::validate() const {
  SMR_CHECK_MSG(window > 0.0, "burn-rate window must be positive");
  SMR_CHECK_MSG(target > 0.0 && target < 1.0,
                "burn-rate target must be in (0, 1)");
  SMR_CHECK_MSG(threshold > 0.0, "burn-rate threshold must be positive");
  SMR_CHECK_MSG(min_samples >= 1, "burn-rate min_samples must be >= 1");
  SMR_CHECK_MSG(cooldown >= 0.0, "burn-rate cooldown must be >= 0");
}

BurnRateTracker::BurnRateTracker(BurnRateConfig config,
                                 std::vector<std::string> tenant_names)
    : config_(config) {
  config_.validate();
  tenants_.resize(tenant_names.size());
  for (std::size_t i = 0; i < tenant_names.size(); ++i) {
    tenants_[i].name = std::move(tenant_names[i]);
  }
}

void BurnRateTracker::evict(PerTenant& t, SimTime now) {
  while (!t.window.empty() && t.window.front().time <= now - config_.window) {
    if (!t.window.front().met) --t.misses;
    t.window.pop_front();
  }
}

double BurnRateTracker::miss_fraction(const PerTenant& t) const {
  if (t.window.empty()) return 0.0;
  return static_cast<double>(t.misses) /
         static_cast<double>(t.window.size());
}

std::optional<BurnAlert> BurnRateTracker::record(int tenant, SimTime now,
                                                 bool slo_met) {
  SMR_CHECK_MSG(tenant >= 0 &&
                    static_cast<std::size_t>(tenant) < tenants_.size(),
                "unknown tenant " << tenant);
  PerTenant& t = tenants_[static_cast<std::size_t>(tenant)];
  evict(t, now);
  t.window.push_back({now, slo_met});
  if (!slo_met) ++t.misses;

  if (t.window.size() < config_.min_samples) return std::nullopt;
  const double fraction = miss_fraction(t);
  const double burn = fraction / (1.0 - config_.target);
  if (burn < config_.threshold) return std::nullopt;
  if (now - t.last_alert < config_.cooldown) return std::nullopt;

  t.last_alert = now;
  BurnAlert alert;
  alert.time = now;
  alert.tenant = tenant;
  alert.tenant_name = t.name;
  alert.burn_rate = burn;
  alert.miss_fraction = fraction;
  alert.window_samples = t.window.size();
  alerts_.push_back(alert);
  return alert;
}

double BurnRateTracker::burn_rate(int tenant) const {
  SMR_CHECK_MSG(tenant >= 0 &&
                    static_cast<std::size_t>(tenant) < tenants_.size(),
                "unknown tenant " << tenant);
  return miss_fraction(tenants_[static_cast<std::size_t>(tenant)]) /
         (1.0 - config_.target);
}

void BurnRateTracker::write_alerts_jsonl(std::ostream& out) const {
  for (const BurnAlert& a : alerts_) {
    out << "{\"type\":\"slo_alert\",\"time\":" << a.time
        << ",\"tenant\":" << a.tenant << ",\"tenant_name\":\"" << a.tenant_name
        << "\",\"burn_rate\":" << a.burn_rate
        << ",\"miss_fraction\":" << a.miss_fraction
        << ",\"window_samples\":" << a.window_samples
        << ",\"window\":" << config_.window
        << ",\"target\":" << config_.target
        << ",\"threshold\":" << config_.threshold << "}\n";
  }
}

}  // namespace smr::serve
