#include "smr/serve/session.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "smr/common/error.hpp"
#include "smr/metrics/trace.hpp"

namespace smr::serve {

namespace {

/// Bucket bounds (seconds) for the serve.latency_s histogram: sojourn
/// times span minutes to hours, unlike task durations.
const std::vector<double> kLatencyBounds = {30.0,   60.0,   120.0,  300.0,
                                            600.0,  1200.0, 1800.0, 3600.0,
                                            7200.0, 14400.0};

}  // namespace

void ServeConfig::validate() const {
  SMR_CHECK(horizon > 0.0);
  SMR_CHECK(warmup >= 0.0 && warmup < horizon);
  SMR_CHECK(drain_limit >= 0.0);
  burn.validate();
  admission.validate();
  for (const auto& tenant : tenants) tenant.validate();
}

ServeSession::ServeSession(ServeConfig config)
    : config_(std::move(config)), admission_(config_.admission) {
  config_.validate();
}

ServeSession::~ServeSession() = default;

const std::vector<BurnAlert>& ServeSession::burn_alerts() const {
  SMR_CHECK_MSG(burn_ != nullptr, "burn_alerts() before run()/replay()");
  return burn_->alerts();
}

void ServeSession::write_burn_alerts_jsonl(std::ostream& out) const {
  SMR_CHECK_MSG(burn_ != nullptr,
                "write_burn_alerts_jsonl() before run()/replay()");
  burn_->write_alerts_jsonl(out);
}

ServeReport ServeSession::run(obs::MetricsRegistry* metrics) {
  // Arrival streams get their own seed domain so they never correlate
  // with the runtime's task-duration streams under the same user seed.
  const std::uint64_t arrival_seed = config_.seed ^ 0xa11a5eedULL;
  return execute(
      generate_arrivals(config_.tenants, config_.horizon, arrival_seed),
      metrics);
}

ServeReport ServeSession::replay(ArrivalTrace trace,
                                 obs::MetricsRegistry* metrics) {
  return execute(std::move(trace), metrics);
}

ServeReport ServeSession::execute(ArrivalTrace trace,
                                  obs::MetricsRegistry* metrics) {
  SMR_CHECK_MSG(!executed_, "ServeSession is single-use");
  executed_ = true;
  SMR_CHECK_MSG(!trace.arrivals.empty(), "empty arrival stream");
  trace_ = std::move(trace);
  metrics_ = metrics != nullptr ? metrics : &own_metrics_;

  driver::ExperimentConfig experiment = config_.experiment;
  experiment.runtime.seed = config_.seed;
  experiment.runtime.time_limit = config_.horizon + config_.drain_limit;
  runtime_ = std::make_unique<mapreduce::Runtime>(
      experiment.runtime, driver::make_policy(experiment),
      driver::make_scheduler(experiment));
  runtime_->keep_open();
  runtime_->set_metrics(metrics_);
  if (trace_log_ != nullptr) runtime_->set_trace(trace_log_);
  if (spans_ != nullptr) runtime_->set_spans(spans_);
  if (decisions_ != nullptr) runtime_->policy().set_decision_log(decisions_);
  if (pool_ != nullptr) runtime_->set_thread_pool(pool_);
  runtime_->set_job_finished_callback(
      [this](const mapreduce::Job& job) { on_job_finished(job); });

  tracker_ = std::make_unique<SloTracker>(config_.warmup, config_.horizon,
                                          trace_.tenants);
  burn_ = std::make_unique<BurnRateTracker>(config_.burn, trace_.tenants);

  sim::Engine& engine = runtime_->engine();
  for (std::size_t i = 0; i < trace_.arrivals.size(); ++i) {
    engine.schedule_at(trace_.arrivals[i].job.submit_at,
                       [this, i] { on_arrival(i); });
  }
  engine.schedule_at(config_.horizon, [this] {
    arrivals_closed_ = true;
    maybe_close();
  });
  if (fairness_ != nullptr) {
    fairness_->set_policy(driver::policy_label(config_.experiment));
    engine.schedule_at(config_.warmup, [this] { sample_fairness(); });
  }

  result_ = runtime_->run();

  // Deferred arrivals that never got a slot before the run ended were
  // effectively shed.
  for (std::size_t index : deferred_) {
    const Arrival& arrival = trace_.arrivals[index];
    tracker_->record_shed(arrival.tenant, arrival.job.submit_at);
    metrics_->counter("serve.jobs_shed").inc();
  }

  ServeReport report;
  tracker_->fill(report);
  report.engine = driver::policy_label(config_.experiment);
  report.scheduler = driver::scheduler_name(config_.experiment.scheduler);
  report.admission = admission_policy_name(config_.admission.policy);
  report.offered_jobs_per_hour =
      static_cast<double>(trace_.arrivals.size()) / (config_.horizon / 3600.0);
  report.makespan = result_.makespan;
  report.completed = result_.completed;
  report.failure_reason = result_.failure_reason;
  for (const auto& job : result_.jobs) {
    if (job.finish_time == kTimeNever) ++report.unfinished;
  }
  report.utilization = utilization_from_slots();
  return report;
}

void ServeSession::on_arrival(std::size_t index) {
  const Arrival& arrival = trace_.arrivals[index];
  metrics_->counter("serve.jobs_arrived").inc();
  tracker_->record_arrival(arrival.tenant, arrival.job.submit_at);

  if (runtime_->stopped()) {
    // The run aborted (e.g. every node died); nothing can be admitted.
    tracker_->record_shed(arrival.tenant, arrival.job.submit_at);
    metrics_->counter("serve.jobs_shed").inc();
    return;
  }

  switch (admission_.on_arrival()) {
    case AdmissionDecision::kAdmit:
      metrics_->counter("serve.jobs_admitted").inc();
      submit_arrival(index);
      break;
    case AdmissionDecision::kDefer:
      deferred_.push_back(index);
      tracker_->record_deferred(arrival.tenant, arrival.job.submit_at);
      metrics_->counter("serve.jobs_deferred").inc();
      metrics_->series("serve.queue_depth")
          .append(runtime_->engine().now(),
                  static_cast<double>(admission_.pending()));
      break;
    case AdmissionDecision::kShed:
      tracker_->record_shed(arrival.tenant, arrival.job.submit_at);
      metrics_->counter("serve.jobs_shed").inc();
      break;
  }
}

void ServeSession::submit_arrival(std::size_t index) {
  const Arrival& arrival = trace_.arrivals[index];
  const SimTime now = runtime_->engine().now();

  mapreduce::JobSpec spec = arrival.job.spec;
  spec.tenant = trace_.tenants[static_cast<std::size_t>(arrival.tenant)];
  if (spec.relative_deadline != kTimeNever) {
    // Keep the absolute deadline anchored to the *arrival* instant: time
    // spent in the deferred queue eats into the job's budget.
    spec.relative_deadline =
        std::max(0.0, spec.relative_deadline - (now - arrival.job.submit_at));
  }

  const JobId id = runtime_->submit(spec, now);
  admitted_[id] = JobInfo{arrival.tenant, arrival.job.submit_at};
  metrics_->series("serve.jobs_in_system")
      .append(now, static_cast<double>(admission_.in_system()));
}

void ServeSession::on_job_finished(const mapreduce::Job& job) {
  // Fires at the tail of the runtime event that completed/failed the job.
  // Recording is safe here; anything that re-enters the runtime (deferred
  // submits, close_submissions) is pushed to a zero-delay event.
  const auto found = admitted_.find(job.id);
  SMR_CHECK_MSG(found != admitted_.end(), "departure of unknown job " << job.id);
  const JobInfo info = found->second;
  admitted_.erase(found);

  const SimTime service =
      job.started() ? job.finish_time - job.start_time : 0.0;
  tracker_->record_outcome(info.tenant, info.arrived, job.finish_time, service,
                           job.deadline, job.failed);
  if (job.failed) {
    metrics_->counter("serve.jobs_failed").inc();
  } else {
    metrics_->counter("serve.jobs_completed").inc();
    metrics_->histogram("serve.latency_s", kLatencyBounds)
        .observe(job.finish_time - info.arrived);
    if (job.deadline != kTimeNever) {
      metrics_
          ->counter(job.finish_time <= job.deadline ? "serve.slo_met"
                                                    : "serve.slo_missed")
          .inc();
    }
  }
  if (job.deadline != kTimeNever) {
    // Every deadline-carrying departure feeds the burn-rate monitor; a
    // failed job is a miss by definition.
    record_burn(info.tenant, job.finish_time,
                !job.failed && job.finish_time <= job.deadline);
  }

  runtime_->engine().schedule_in(0.0, [this] { process_departure(); });
}

void ServeSession::record_burn(int tenant, SimTime now, bool slo_met) {
  const std::optional<BurnAlert> alert = burn_->record(tenant, now, slo_met);
  metrics_
      ->series("serve.burn_rate",
               {{"tenant", trace_.tenants[static_cast<std::size_t>(tenant)]}})
      .append(now, burn_->burn_rate(tenant));
  if (!alert) return;
  metrics_->counter("serve.slo_alerts").inc();
  if (trace_log_ != nullptr) {
    metrics::TraceEvent event;
    event.time = alert->time;
    event.kind = metrics::TraceEventKind::kSloAlert;
    event.detail = alert->tenant_name;
    event.value = alert->burn_rate;
    trace_log_->record(event);
  }
}

void ServeSession::process_departure() {
  const bool admit_deferred = admission_.on_departure();
  if (admit_deferred && !deferred_.empty() && !runtime_->stopped()) {
    const std::size_t index = deferred_.front();
    deferred_.pop_front();
    admission_.on_deferred_admitted();
    metrics_->counter("serve.jobs_admitted").inc();
    metrics_->series("serve.queue_depth")
        .append(runtime_->engine().now(),
                static_cast<double>(admission_.pending()));
    submit_arrival(index);
  }
  metrics_->series("serve.jobs_in_system")
      .append(runtime_->engine().now(),
              static_cast<double>(admission_.in_system()));
  maybe_close();
}

void ServeSession::sample_fairness() {
  if (runtime_->stopped()) return;
  const SimTime now = runtime_->engine().now();

  // Aggregate the active-job census into per-tenant usage and demand.
  // Keyed by tenant name so the sample order is deterministic.
  std::map<std::string, alloc::TenantUsageSample> by_tenant;
  for (const mapreduce::JobStats& job : runtime_->job_census()) {
    alloc::TenantUsageSample& sample = by_tenant[job.tenant];
    sample.tenant = job.tenant;
    sample.running += job.running_maps + job.running_reduces;
    sample.demand += job.demand();
  }
  std::vector<alloc::TenantUsageSample> tenants;
  tenants.reserve(by_tenant.size());
  for (auto& [name, sample] : by_tenant) tenants.push_back(std::move(sample));

  fairness_->record(now, runtime_->live_slot_capacity(), tenants,
                    runtime_->policy().credit_balances());

  // Re-arm until the closing sample at the horizon has been taken; the
  // tracker integrates left-Riemann, so that final sample flushes the
  // last interval of the measurement window.
  if (now >= config_.horizon) return;
  const SimTime period = std::max(config_.experiment.runtime.policy_period, 1.0);
  runtime_->engine().schedule_at(std::min(now + period, config_.horizon),
                                 [this] { sample_fairness(); });
}

void ServeSession::maybe_close() {
  if (closed_ || !arrivals_closed_ || !deferred_.empty()) return;
  if (runtime_->stopped()) return;
  closed_ = true;
  runtime_->close_submissions();
}

double ServeSession::utilization_from_slots() const {
  double sum = 0.0;
  int samples = 0;
  for (const auto& sample : result_.slots) {
    if (sample.time < config_.warmup || sample.time >= config_.horizon) continue;
    const double target = sample.map_target + sample.reduce_target;
    if (target <= 0.0) continue;
    sum += (sample.running_maps + sample.running_reduces) / target;
    ++samples;
  }
  return samples > 0 ? sum / static_cast<double>(samples) : std::nan("");
}

}  // namespace smr::serve
