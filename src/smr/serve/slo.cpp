#include "smr/serve/slo.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "smr/common/error.hpp"
#include "smr/common/stats.hpp"

namespace smr::serve {

LatencyStats summarize_latency(std::vector<double> samples) {
  LatencyStats stats;
  stats.count = samples.size();
  if (samples.empty()) {
    const double nan = std::nan("");
    stats.mean = stats.p50 = stats.p95 = stats.p99 = stats.max = nan;
    return stats;
  }
  double sum = 0.0;
  for (double s : samples) sum += s;
  stats.mean = sum / static_cast<double>(samples.size());
  stats.max = *std::max_element(samples.begin(), samples.end());
  stats.p50 = percentile(samples, 50.0);
  stats.p95 = percentile(samples, 95.0);
  stats.p99 = percentile(std::move(samples), 99.0);
  return stats;
}

SloTracker::SloTracker(SimTime warmup_end, SimTime measure_end,
                       std::vector<std::string> tenant_names)
    : warmup_end_(warmup_end), measure_end_(measure_end) {
  SMR_CHECK(measure_end_ > warmup_end_);
  tenants_.reserve(tenant_names.size());
  for (auto& name : tenant_names) {
    PerTenant tenant;
    tenant.name = std::move(name);
    tenants_.push_back(std::move(tenant));
  }
}

void SloTracker::record_arrival(int tenant, SimTime arrived) {
  if (!measured(arrived)) return;
  ++tenants_.at(static_cast<std::size_t>(tenant)).arrived;
}

void SloTracker::record_shed(int tenant, SimTime arrived) {
  if (!measured(arrived)) return;
  ++tenants_.at(static_cast<std::size_t>(tenant)).shed;
}

void SloTracker::record_deferred(int tenant, SimTime arrived) {
  if (!measured(arrived)) return;
  ++tenants_.at(static_cast<std::size_t>(tenant)).deferred;
}

void SloTracker::record_outcome(int tenant, SimTime arrived, SimTime finished,
                                SimTime service, SimTime deadline, bool failed) {
  if (!measured(arrived)) return;
  PerTenant& t = tenants_.at(static_cast<std::size_t>(tenant));
  if (failed) {
    ++t.failed;
    return;
  }
  ++t.completed;
  const double sojourn = finished - arrived;
  t.latencies.push_back(sojourn);
  if (service > 0.0) {
    t.slowdown_sum += sojourn / service;
    ++t.slowdown_count;
  }
  if (deadline != kTimeNever) {
    ++t.with_deadline;
    if (finished <= deadline) ++t.slo_met;
  } else {
    // Deadline-free jobs always "meet" their (absent) SLO: they count
    // toward goodput, otherwise mixes without SLO classes report zero.
    ++t.slo_met;
  }
}

TenantReport SloTracker::report_of(const PerTenant& t) const {
  TenantReport report;
  report.name = t.name;
  report.arrived = t.arrived;
  report.shed = t.shed;
  report.deferred = t.deferred;
  report.completed = t.completed;
  report.failed = t.failed;
  report.slo_met = t.slo_met;
  report.with_deadline = t.with_deadline;
  report.latency = summarize_latency(t.latencies);
  report.mean_slowdown =
      t.slowdown_count > 0
          ? t.slowdown_sum / static_cast<double>(t.slowdown_count)
          : std::nan("");
  const double window_hours = (measure_end_ - warmup_end_) / 3600.0;
  report.goodput_per_hour = static_cast<double>(t.slo_met) / window_hours;
  return report;
}

void SloTracker::fill(ServeReport& report) const {
  report.warmup = warmup_end_;
  report.horizon = measure_end_;
  report.tenants.clear();
  report.tenants.reserve(tenants_.size());

  PerTenant all;
  all.name = "all";
  for (const auto& t : tenants_) {
    report.tenants.push_back(report_of(t));
    all.arrived += t.arrived;
    all.shed += t.shed;
    all.deferred += t.deferred;
    all.completed += t.completed;
    all.failed += t.failed;
    all.slo_met += t.slo_met;
    all.with_deadline += t.with_deadline;
    all.latencies.insert(all.latencies.end(), t.latencies.begin(),
                         t.latencies.end());
    all.slowdown_sum += t.slowdown_sum;
    all.slowdown_count += t.slowdown_count;
  }
  report.aggregate = report_of(all);
}

namespace {

void json_number(std::ostream& out, double value) {
  if (std::isnan(value)) {
    out << "null";
  } else if (std::isinf(value)) {
    out << (value > 0 ? "1e308" : "-1e308");
  } else {
    out << value;
  }
}

void json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void write_latency(std::ostream& out, const LatencyStats& stats) {
  out << "{\"count\":" << stats.count << ",\"mean_s\":";
  json_number(out, stats.mean);
  out << ",\"p50_s\":";
  json_number(out, stats.p50);
  out << ",\"p95_s\":";
  json_number(out, stats.p95);
  out << ",\"p99_s\":";
  json_number(out, stats.p99);
  out << ",\"max_s\":";
  json_number(out, stats.max);
  out << '}';
}

void write_tenant(std::ostream& out, const TenantReport& tenant) {
  out << "{\"name\":";
  json_string(out, tenant.name);
  out << ",\"arrived\":" << tenant.arrived << ",\"shed\":" << tenant.shed
      << ",\"deferred\":" << tenant.deferred
      << ",\"completed\":" << tenant.completed
      << ",\"failed\":" << tenant.failed << ",\"slo_met\":" << tenant.slo_met
      << ",\"with_deadline\":" << tenant.with_deadline << ",\"latency\":";
  write_latency(out, tenant.latency);
  out << ",\"mean_slowdown\":";
  json_number(out, tenant.mean_slowdown);
  out << ",\"goodput_per_hour\":";
  json_number(out, tenant.goodput_per_hour);
  out << '}';
}

}  // namespace

void ServeReport::write_json(std::ostream& out) const {
  out << "{\"engine\":";
  json_string(out, engine);
  out << ",\"scheduler\":";
  json_string(out, scheduler);
  out << ",\"admission\":";
  json_string(out, admission);
  out << ",\"offered_jobs_per_hour\":";
  json_number(out, offered_jobs_per_hour);
  out << ",\"warmup_s\":";
  json_number(out, warmup);
  out << ",\"horizon_s\":";
  json_number(out, horizon);
  out << ",\"makespan_s\":";
  json_number(out, makespan);
  out << ",\"completed\":" << (completed ? "true" : "false")
      << ",\"failure_reason\":";
  json_string(out, failure_reason);
  out << ",\"unfinished\":" << unfinished << ",\"utilization\":";
  json_number(out, utilization);
  out << ",\"aggregate\":";
  write_tenant(out, aggregate);
  out << ",\"tenants\":[";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (i > 0) out << ',';
    write_tenant(out, tenants[i]);
  }
  out << "]}";
}

}  // namespace smr::serve
