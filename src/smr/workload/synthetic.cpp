#include "smr/workload/synthetic.hpp"

#include <cmath>

#include "smr/common/error.hpp"

namespace smr::workload {

void SyntheticMixConfig::validate() const {
  SMR_CHECK(jobs >= 1);
  SMR_CHECK(mean_interarrival >= 0.0);
  SMR_CHECK(min_input > 0 && min_input <= max_input);
  SMR_CHECK(reduce_tasks >= 1);
  for (const auto& slo : slo_classes) {
    SMR_CHECK_MSG(!slo.name.empty(), "SLO class with empty name");
    SMR_CHECK(slo.base_deadline_s >= 0.0 && slo.per_gib_s >= 0.0);
    SMR_CHECK_MSG(slo.base_deadline_s + slo.per_gib_s > 0.0,
                  "SLO class '" << slo.name << "' has a zero deadline");
  }
}

JobSpec draw_synthetic_job(const SyntheticMixConfig& config, Rng& rng) {
  const std::vector<Puma> candidates =
      config.candidates.empty() ? all_puma_benchmarks() : config.candidates;
  const double log_min = std::log(static_cast<double>(config.min_input));
  const double log_max = std::log(static_cast<double>(config.max_input));

  const Puma bench = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  const auto input = static_cast<Bytes>(std::exp(rng.uniform(log_min, log_max)));
  JobSpec spec = make_puma_job(bench, input);
  spec.reduce_tasks = config.reduce_tasks;
  if (!config.slo_classes.empty()) {
    const auto& slo = config.slo_classes[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.slo_classes.size()) - 1))];
    spec.slo_class = slo.name;
    spec.relative_deadline = slo.base_deadline_s + slo.per_gib_s * to_gib(input);
  }
  return spec;
}

std::vector<TimedJob> make_synthetic_mix(const SyntheticMixConfig& config) {
  config.validate();
  Rng rng(config.seed);

  std::vector<TimedJob> mix;
  mix.reserve(static_cast<std::size_t>(config.jobs));
  SimTime clock = 0.0;
  for (int i = 0; i < config.jobs; ++i) {
    TimedJob job;
    job.spec = draw_synthetic_job(config, rng);
    job.submit_at = clock;
    mix.push_back(std::move(job));

    if (config.mean_interarrival > 0.0) {
      // Exponential inter-arrival (Poisson process).
      clock += -config.mean_interarrival * std::log1p(-rng.uniform());
    }
  }
  return mix;
}

}  // namespace smr::workload
