#include "smr/workload/jobs_file.hpp"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "smr/common/error.hpp"

namespace smr::workload {

namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) fields.push_back(trim(field));
  return fields;
}

double parse_number(const std::string& text, int line_number, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  SMR_CHECK_MSG(end != nullptr && *end == '\0' && !text.empty(),
                "jobs csv line " << line_number << ": bad " << what << " '"
                                 << text << "'");
  return value;
}

}  // namespace

std::vector<TimedJob> parse_jobs_csv(std::istream& in) {
  std::vector<TimedJob> jobs;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = split_csv(trimmed);
    if (line_number == 1 && !fields.empty() && fields[0] == "benchmark") {
      continue;  // header row
    }
    SMR_CHECK_MSG(fields.size() == 3 || fields.size() == 4,
                  "jobs csv line " << line_number << ": expected 3-4 fields, got "
                                   << fields.size());
    const auto bench = puma_from_name(fields[0]);
    SMR_CHECK_MSG(bench.has_value(),
                  "jobs csv line " << line_number << ": unknown benchmark '"
                                   << fields[0] << "'");
    const double input_gib = parse_number(fields[1], line_number, "input_gib");
    SMR_CHECK_MSG(input_gib > 0.0,
                  "jobs csv line " << line_number << ": input_gib must be > 0");
    const double submit_at = parse_number(fields[2], line_number, "submit_at");
    SMR_CHECK_MSG(submit_at >= 0.0,
                  "jobs csv line " << line_number << ": submit_at must be >= 0");

    TimedJob job;
    job.spec = make_puma_job(
        *bench, static_cast<Bytes>(input_gib * static_cast<double>(kGiB)));
    job.submit_at = submit_at;
    if (fields.size() == 4) {
      const double reduce_tasks = parse_number(fields[3], line_number, "reduce_tasks");
      SMR_CHECK_MSG(reduce_tasks >= 1.0,
                    "jobs csv line " << line_number << ": reduce_tasks must be >= 1");
      job.spec.reduce_tasks = static_cast<int>(reduce_tasks);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<TimedJob> load_jobs_csv(const std::string& path) {
  std::ifstream in(path);
  SMR_CHECK_MSG(in.good(), "cannot read jobs csv '" << path << "'");
  return parse_jobs_csv(in);
}

void write_jobs_csv(const std::vector<TimedJob>& jobs, std::ostream& out) {
  out << "benchmark,input_gib,submit_at,reduce_tasks\n";
  for (const auto& job : jobs) {
    out << job.spec.name << ','
        << static_cast<double>(job.spec.input_size) / static_cast<double>(kGiB)
        << ',' << job.submit_at << ',' << job.spec.reduce_tasks << '\n';
  }
}

}  // namespace smr::workload
