// Workload replay from a CSV description.
//
// Format (header optional, '#' comments and blank lines ignored):
//
//     benchmark,input_gib,submit_at[,reduce_tasks]
//     terasort,30,0
//     grep,8,15,12
//
// Lets smr_sim and user programs replay a recorded or hand-written job mix
// instead of the built-in generators.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "smr/workload/synthetic.hpp"

namespace smr::workload {

/// Parse a job list from a stream.  Throws SmrError with a line number on
/// malformed rows or unknown benchmark names.
std::vector<TimedJob> parse_jobs_csv(std::istream& in);

/// Parse a job list from a file.  Throws SmrError if unreadable.
std::vector<TimedJob> load_jobs_csv(const std::string& path);

/// Serialise a job list back to CSV (inverse of parse for the supported
/// fields).
void write_jobs_csv(const std::vector<TimedJob>& jobs, std::ostream& out);

}  // namespace smr::workload
