#include "smr/workload/puma.hpp"

#include <algorithm>

#include "smr/common/error.hpp"

namespace smr::workload {

std::vector<Puma> all_puma_benchmarks() {
  return {
      Puma::kGrep,          Puma::kHistogramMovies, Puma::kHistogramRatings,
      Puma::kWordCount,     Puma::kClassification,  Puma::kKMeans,
      Puma::kTermVector,    Puma::kInvertedIndex,   Puma::kSequenceCount,
      Puma::kSelfJoin,      Puma::kRankedInvertedIndex,
      Puma::kAdjacencyList, Puma::kTerasort,
  };
}

const char* puma_name(Puma benchmark) {
  switch (benchmark) {
    case Puma::kGrep: return "grep";
    case Puma::kHistogramMovies: return "histogram-movies";
    case Puma::kHistogramRatings: return "histogram-ratings";
    case Puma::kWordCount: return "word-count";
    case Puma::kClassification: return "classification";
    case Puma::kKMeans: return "k-means";
    case Puma::kTermVector: return "term-vector";
    case Puma::kInvertedIndex: return "inverted-index";
    case Puma::kSequenceCount: return "sequence-count";
    case Puma::kSelfJoin: return "self-join";
    case Puma::kRankedInvertedIndex: return "ranked-inverted-index";
    case Puma::kAdjacencyList: return "adjacency-list";
    case Puma::kTerasort: return "terasort";
  }
  return "unknown";
}

std::optional<Puma> puma_from_name(const std::string& name) {
  for (Puma b : all_puma_benchmarks()) {
    if (name == puma_name(b)) return b;
  }
  return std::nullopt;
}

JobSpec make_puma_job(Puma benchmark, Bytes input_size) {
  JobSpec spec;
  spec.name = puma_name(benchmark);
  spec.input_size = input_size;

  switch (benchmark) {
    // --- Map-heavy: tiny shuffle, light per-task memory -----------------
    case Puma::kGrep:
      spec.map_cpu_per_mib = 0.22;       // regex scan
      spec.map_selectivity = 0.001;      // rare matches
      spec.reduce_cpu_per_mib = 0.05;
      spec.reduce_selectivity = 1.0;
      spec.map_task_memory = static_cast<Bytes>(2.2 * static_cast<double>(kGiB));
      spec.reduce_task_memory = 1 * kGiB;
      break;
    case Puma::kHistogramMovies:
      spec.map_cpu_per_mib = 0.38;       // parse + bucket per record
      spec.map_selectivity = 0.0008;
      spec.reduce_cpu_per_mib = 0.05;
      spec.reduce_selectivity = 1.0;
      spec.map_task_memory = static_cast<Bytes>(3.0 * static_cast<double>(kGiB));
      spec.reduce_task_memory = 1 * kGiB;
      break;
    case Puma::kHistogramRatings:
      spec.map_cpu_per_mib = 0.35;
      spec.map_selectivity = 0.0008;
      spec.reduce_cpu_per_mib = 0.05;
      spec.reduce_selectivity = 1.0;
      spec.map_task_memory = static_cast<Bytes>(3.0 * static_cast<double>(kGiB));
      spec.reduce_task_memory = 1 * kGiB;
      break;
    case Puma::kWordCount:
      spec.map_cpu_per_mib = 0.40;       // tokenise
      spec.map_selectivity = 0.05;       // post-combine ratio
      spec.has_combiner = true;          // collapses ~10 raw pairs into 1
      spec.combiner_reduction = 0.1;
      spec.combine_cpu_per_mib = 0.03;
      spec.spill_cpu_per_mib = 0.06;
      spec.reduce_cpu_per_mib = 0.08;
      spec.reduce_selectivity = 0.4;
      spec.map_task_memory = static_cast<Bytes>(2.6 * static_cast<double>(kGiB));
      spec.reduce_task_memory = static_cast<Bytes>(1.5 * static_cast<double>(kGiB));
      break;
    case Puma::kClassification:
      spec.map_cpu_per_mib = 0.55;       // distance to centroids
      spec.map_selectivity = 0.008;
      spec.reduce_cpu_per_mib = 0.06;
      spec.reduce_selectivity = 1.0;
      spec.map_task_memory = static_cast<Bytes>(2.4 * static_cast<double>(kGiB));
      spec.reduce_task_memory = 1 * kGiB;
      break;
    case Puma::kKMeans:
      spec.map_cpu_per_mib = 0.75;       // heaviest map compute in PUMA
      spec.map_selectivity = 0.01;
      spec.reduce_cpu_per_mib = 0.10;
      spec.reduce_selectivity = 1.0;
      spec.map_task_memory = static_cast<Bytes>(2.6 * static_cast<double>(kGiB));
      spec.reduce_task_memory = static_cast<Bytes>(1.5 * static_cast<double>(kGiB));
      break;

    // --- Medium shuffle ---------------------------------------------------
    case Puma::kTermVector:
      spec.map_cpu_per_mib = 0.50;       // per-term frequency vectors
      spec.map_selectivity = 0.30;
      spec.spill_cpu_per_mib = 0.05;
      spec.sort_cpu_per_mib = 0.06;
      spec.reduce_cpu_per_mib = 0.20;    // heavy reduce: vector merge + sort
      spec.reduce_selectivity = 0.3;
      spec.map_task_memory = static_cast<Bytes>(4.0 * static_cast<double>(kGiB));
      spec.reduce_task_memory = static_cast<Bytes>(3.0 * static_cast<double>(kGiB));
      break;
    case Puma::kInvertedIndex:
      spec.map_cpu_per_mib = 0.42;
      spec.map_selectivity = 0.35;
      spec.spill_cpu_per_mib = 0.05;
      spec.reduce_cpu_per_mib = 0.12;
      spec.reduce_selectivity = 0.8;
      spec.map_task_memory = static_cast<Bytes>(3.6 * static_cast<double>(kGiB));
      spec.reduce_task_memory = static_cast<Bytes>(2.5 * static_cast<double>(kGiB));
      break;
    case Puma::kSequenceCount:
      spec.map_cpu_per_mib = 0.48;
      spec.map_selectivity = 0.55;
      spec.spill_cpu_per_mib = 0.06;
      spec.reduce_cpu_per_mib = 0.12;
      spec.reduce_selectivity = 0.5;
      spec.map_task_memory = static_cast<Bytes>(4.0 * static_cast<double>(kGiB));
      spec.reduce_task_memory = static_cast<Bytes>(2.5 * static_cast<double>(kGiB));
      break;
    case Puma::kSelfJoin:
      spec.map_cpu_per_mib = 0.25;       // light map: key re-emission
      spec.map_selectivity = 0.28;
      spec.reduce_cpu_per_mib = 0.15;
      spec.reduce_selectivity = 0.4;
      spec.map_task_memory = static_cast<Bytes>(3.2 * static_cast<double>(kGiB));
      spec.reduce_task_memory = static_cast<Bytes>(2.5 * static_cast<double>(kGiB));
      break;

    // --- Reduce-heavy: shuffle ≈ input, fat working sets ------------------
    case Puma::kRankedInvertedIndex:
      spec.map_cpu_per_mib = 0.35;
      spec.map_selectivity = 0.85;
      spec.spill_cpu_per_mib = 0.06;
      spec.spill_disk_factor = 1.3;
      spec.reduce_cpu_per_mib = 0.15;
      spec.reduce_selectivity = 0.9;
      spec.map_task_memory = static_cast<Bytes>(5.0 * static_cast<double>(kGiB));
      spec.reduce_task_memory = static_cast<Bytes>(3.5 * static_cast<double>(kGiB));
      break;
    case Puma::kAdjacencyList:
      spec.map_cpu_per_mib = 0.40;
      spec.map_selectivity = 1.10;       // output exceeds input
      spec.spill_cpu_per_mib = 0.07;
      spec.spill_disk_factor = 1.3;
      spec.reduce_cpu_per_mib = 0.18;
      spec.reduce_selectivity = 0.7;
      spec.map_task_memory = static_cast<Bytes>(5.5 * static_cast<double>(kGiB));
      spec.reduce_task_memory = static_cast<Bytes>(3.5 * static_cast<double>(kGiB));
      break;
    case Puma::kTerasort:
      spec.map_cpu_per_mib = 0.18;       // identity map; sort dominated
      spec.map_selectivity = 1.0;
      spec.spill_cpu_per_mib = 0.08;
      spec.spill_disk_factor = 1.3;
      spec.sort_cpu_per_mib = 0.08;
      spec.reduce_cpu_per_mib = 0.10;
      spec.reduce_selectivity = 1.0;
      spec.map_task_memory = 6 * kGiB;   // io.sort buffers dominate
      spec.reduce_task_memory = 4 * kGiB;
      break;
  }

  spec.validate();
  return spec;
}

int recommended_reduce_tasks(int workers, int reduce_slots_per_node) {
  SMR_CHECK(workers >= 1 && reduce_slots_per_node >= 0);
  const int slots = workers * reduce_slots_per_node;
  return std::max(1, static_cast<int>(0.99 * slots));
}

std::vector<Puma> fig1_benchmarks() {
  return {Puma::kTerasort, Puma::kTermVector, Puma::kGrep};
}

std::vector<Puma> fig3_benchmarks() {
  return {
      Puma::kGrep,          Puma::kHistogramMovies, Puma::kHistogramRatings,
      Puma::kWordCount,     Puma::kClassification,  Puma::kTermVector,
      Puma::kInvertedIndex, Puma::kSequenceCount,   Puma::kSelfJoin,
      Puma::kTerasort,
  };
}

}  // namespace smr::workload
