// Synthetic multi-job workload mixes.
//
// The paper's Section V-F uses homogeneous batches (4 identical jobs, 5 s
// apart).  Real shared clusters see mixed benchmarks, skewed sizes and
// random arrivals; this generator produces such mixes deterministically
// from a seed, for the scheduler experiments and stress tests.
#pragma once

#include <cstdint>
#include <vector>

#include "smr/common/rng.hpp"
#include "smr/common/types.hpp"
#include "smr/workload/puma.hpp"

namespace smr::workload {

struct TimedJob {
  JobSpec spec;
  SimTime submit_at = 0.0;
};

struct SyntheticMixConfig {
  /// Number of jobs to generate.
  int jobs = 8;

  /// Mean of the exponential inter-arrival time (seconds); 0 submits all
  /// jobs at t = 0.
  double mean_interarrival = 60.0;

  /// Input sizes are drawn log-uniformly from [min_input, max_input].
  Bytes min_input = 5 * kGiB;
  Bytes max_input = 40 * kGiB;

  /// Benchmarks drawn uniformly; empty means the full PUMA catalogue.
  std::vector<Puma> candidates;

  /// Reduce tasks per job (the paper's 30 suits a 16-node cluster).
  int reduce_tasks = 30;

  std::uint64_t seed = 1;

  void validate() const;
};

/// Generate the mix.  Deterministic in `config.seed`; jobs are returned in
/// submission order.
std::vector<TimedJob> make_synthetic_mix(const SyntheticMixConfig& config);

}  // namespace smr::workload
