// Synthetic multi-job workload mixes.
//
// The paper's Section V-F uses homogeneous batches (4 identical jobs, 5 s
// apart).  Real shared clusters see mixed benchmarks, skewed sizes and
// random arrivals; this generator produces such mixes deterministically
// from a seed, for the scheduler experiments and stress tests.
#pragma once

#include <cstdint>
#include <vector>

#include "smr/common/rng.hpp"
#include "smr/common/types.hpp"
#include "smr/workload/puma.hpp"

namespace smr::workload {

struct TimedJob {
  JobSpec spec;
  SimTime submit_at = 0.0;
};

struct SyntheticMixConfig {
  /// Number of jobs to generate.
  int jobs = 8;

  /// Mean of the exponential inter-arrival time (seconds); 0 submits all
  /// jobs at t = 0.
  double mean_interarrival = 60.0;

  /// Input sizes are drawn log-uniformly from [min_input, max_input].
  Bytes min_input = 5 * kGiB;
  Bytes max_input = 40 * kGiB;

  /// Benchmarks drawn uniformly; empty means the full PUMA catalogue.
  std::vector<Puma> candidates;

  /// Reduce tasks per job (the paper's 30 suits a 16-node cluster).
  int reduce_tasks = 30;

  /// Optional SLO class attached to every generated job (the serving
  /// subsystem's deadline inputs).  When non-empty, each job draws a class
  /// uniformly and receives its label plus a relative completion deadline
  /// of base_deadline_s + per_gib_s × input-GiB, which the runtime turns
  /// into the absolute Job::deadline the DeadlineScheduler orders by.
  /// Empty (the default) leaves specs deadline-free and the RNG stream
  /// untouched, so pre-SLO mixes reproduce bit-for-bit.
  struct SloClass {
    std::string name = "default";
    double base_deadline_s = 300.0;
    double per_gib_s = 60.0;
  };
  std::vector<SloClass> slo_classes;

  std::uint64_t seed = 1;

  void validate() const;
};

/// Generate the mix.  Deterministic in `config.seed`; jobs are returned in
/// submission order.
std::vector<TimedJob> make_synthetic_mix(const SyntheticMixConfig& config);

/// Draw one job spec from the mix distribution (benchmark, log-uniform
/// input size, reduce tasks, optional SLO class) using `rng`.  This is the
/// per-job core of make_synthetic_mix, exposed so open-loop generators
/// (smr::serve) can draw the same shapes on their own arrival clock.
JobSpec draw_synthetic_job(const SyntheticMixConfig& config, Rng& rng);

}  // namespace smr::workload
