// The PUMA benchmark catalogue (Purdue MapReduce Benchmarks Suite), the
// workload set the paper evaluates with (Section V, [10]).
//
// Each benchmark is characterised for the simulator by its data-flow
// selectivities, compute intensity per byte and per-task memory footprint.
// The parameters follow the published PUMA characterisation qualitatively:
//
//   * map-heavy, tiny shuffle: Grep, HistogramMovies, HistogramRatings,
//     Classification, KMeans (high map compute, selectivity ≈ 0).
//     WordCount joins them thanks to its combiner.
//   * medium shuffle: TermVector, InvertedIndex, SequenceCount, SelfJoin.
//   * reduce-heavy, shuffle ≈ input: Terasort, RankedInvertedIndex,
//     AdjacencyList.
//
// Memory footprints grow with shuffle intensity (sort buffers, in-memory
// segment maps), which is what gives reduce-heavy jobs their earlier map
// thrashing point (paper §II-B, Fig. 1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "smr/mapreduce/job_spec.hpp"

namespace smr::workload {

using mapreduce::JobSpec;

/// Benchmark identifiers, mirroring the PUMA suite.
enum class Puma {
  kGrep,
  kHistogramMovies,
  kHistogramRatings,
  kWordCount,
  kClassification,
  kKMeans,
  kTermVector,
  kInvertedIndex,
  kSequenceCount,
  kSelfJoin,
  kRankedInvertedIndex,
  kAdjacencyList,
  kTerasort,
};

/// All benchmarks, in the catalogue's canonical order.
std::vector<Puma> all_puma_benchmarks();

const char* puma_name(Puma benchmark);

/// Parse a catalogue name ("grep", "terasort", ...); nullopt if unknown.
std::optional<Puma> puma_from_name(const std::string& name);

/// Build the JobSpec for `benchmark` over `input_size` bytes with the
/// paper's defaults (128 MB splits, 30 reduce tasks).
JobSpec make_puma_job(Puma benchmark, Bytes input_size = 30 * kGiB);

/// The paper's sizing rule (Section V): "the recommended reduce task
/// number is 99% of the number of reduce slots in the cluster" — floor of
/// 0.99 × workers × reduce_slots_per_node, at least 1.  With the paper's 16
/// trackers × 2 slots this yields 30, the number used in every benchmark.
int recommended_reduce_tasks(int workers, int reduce_slots_per_node);

/// The three benchmarks of the paper's Fig. 1 thrashing study.
std::vector<Puma> fig1_benchmarks();

/// The benchmark set of the paper's Fig. 3 execution-time comparison.
std::vector<Puma> fig3_benchmarks();

}  // namespace smr::workload
