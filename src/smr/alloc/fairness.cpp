#include "smr/alloc/fairness.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "smr/common/error.hpp"

namespace smr::alloc {

void FairnessTracker::record(
    SimTime now, double capacity_slots,
    const std::vector<TenantUsageSample>& tenants,
    const std::vector<std::pair<std::string, double>>& credits) {
  if (last_time_ != kTimeNever) {
    SMR_CHECK_MSG(now >= last_time_, "fairness samples out of order");
    const double dt = now - last_time_;
    if (dt > 0.0) {
      duration_ += dt;
      capacity_slot_seconds_ += last_capacity_ * dt;
      // Entitlement splits the previous capacity equally over the tenants
      // that were demanding then.
      int demanding = 0;
      for (const auto& [name, accum] : tenants_) {
        if (accum.last_demand > 0.0) ++demanding;
      }
      const double share =
          demanding > 0 ? last_capacity_ / static_cast<double>(demanding) : 0.0;
      for (auto& [name, accum] : tenants_) {
        accum.used += accum.last_running * dt;
        accum.demand += accum.last_demand * dt;
        if (accum.last_demand > 0.0) accum.entitlement += share * dt;
      }
    }
  }
  last_time_ = now;
  last_capacity_ = capacity_slots;
  for (auto& [name, accum] : tenants_) {
    accum.last_running = 0.0;
    accum.last_demand = 0.0;
  }
  for (const TenantUsageSample& sample : tenants) {
    Accum& accum = tenants_[sample.tenant];
    accum.last_running = sample.running;
    accum.last_demand = sample.demand;
  }
  for (const auto& [tenant, balance] : credits) {
    Accum& accum = tenants_[tenant];
    accum.has_credits = true;
    accum.final_credits = balance;
    accum.credit_series.emplace_back(now, balance);
  }
  ++samples_;
}

FairnessReport FairnessTracker::report() const {
  constexpr double kEps = 1e-9;
  FairnessReport report;
  report.policy = policy_;
  report.duration = duration_;
  report.capacity_slot_seconds = capacity_slot_seconds_;

  double x_sum = 0.0;
  double x_sq_sum = 0.0;
  double satisfaction_sum = 0.0;
  double log_satisfaction_sum = 0.0;
  int counted = 0;
  for (const auto& [name, accum] : tenants_) {
    TenantFairness tenant;
    tenant.tenant = name;
    tenant.used_slot_seconds = accum.used;
    tenant.demand_slot_seconds = accum.demand;
    tenant.entitlement_slot_seconds = accum.entitlement;
    tenant.final_credits = accum.final_credits;
    tenant.has_credits = accum.has_credits;
    if (accum.demand > kEps) {
      const double claim = std::min(accum.demand, accum.entitlement);
      tenant.normalized_allocation =
          std::min(1.0, accum.used / std::max(claim, kEps));
      tenant.envy = accum.entitlement > kEps
                        ? std::max(0.0, claim - accum.used) / accum.entitlement
                        : 0.0;
      tenant.satisfaction = std::min(1.0, accum.used / accum.demand);
      x_sum += tenant.normalized_allocation;
      x_sq_sum += tenant.normalized_allocation * tenant.normalized_allocation;
      satisfaction_sum += tenant.satisfaction;
      log_satisfaction_sum += std::log(std::max(tenant.satisfaction, kEps));
      report.max_envy = std::max(report.max_envy, tenant.envy);
      ++counted;
    }
    report.tenants.push_back(std::move(tenant));
    if (accum.has_credits) {
      report.credit_series.emplace_back(name, accum.credit_series);
    }
  }
  if (counted > 0) {
    report.jain = x_sq_sum > kEps
                      ? (x_sum * x_sum) / (static_cast<double>(counted) * x_sq_sum)
                      : 1.0;
    report.utilitarian_welfare = satisfaction_sum / counted;
    report.nash_welfare = std::exp(log_satisfaction_sum / counted);
  }
  return report;
}

namespace {

void quote(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void write_report_body(const FairnessReport& report, std::ostream& out,
                       int max_trajectory_points) {
  out << "{\"policy\":";
  quote(out, report.policy);
  out << ",\"duration\":" << report.duration
      << ",\"capacity_slot_seconds\":" << report.capacity_slot_seconds
      << ",\"jain\":" << report.jain << ",\"max_envy\":" << report.max_envy
      << ",\"utilitarian_welfare\":" << report.utilitarian_welfare
      << ",\"nash_welfare\":" << report.nash_welfare << ",\"tenants\":[";
  for (std::size_t i = 0; i < report.tenants.size(); ++i) {
    const TenantFairness& t = report.tenants[i];
    if (i != 0) out << ',';
    out << "{\"tenant\":";
    quote(out, t.tenant);
    out << ",\"used_slot_seconds\":" << t.used_slot_seconds
        << ",\"demand_slot_seconds\":" << t.demand_slot_seconds
        << ",\"entitlement_slot_seconds\":" << t.entitlement_slot_seconds
        << ",\"normalized_allocation\":" << t.normalized_allocation
        << ",\"envy\":" << t.envy << ",\"satisfaction\":" << t.satisfaction;
    if (t.has_credits) out << ",\"final_credits\":" << t.final_credits;
    out << '}';
  }
  out << "],\"credit_trajectories\":{";
  bool first_series = true;
  for (const auto& [tenant, series] : report.credit_series) {
    if (!first_series) out << ',';
    first_series = false;
    quote(out, tenant);
    out << ":[";
    // Thin long trajectories by a deterministic index stride, always
    // keeping the final point.
    const std::size_t n = series.size();
    const std::size_t stride =
        max_trajectory_points > 0 && n > static_cast<std::size_t>(max_trajectory_points)
            ? (n + static_cast<std::size_t>(max_trajectory_points) - 1) /
                  static_cast<std::size_t>(max_trajectory_points)
            : 1;
    bool first_point = true;
    for (std::size_t i = 0; i < n; i += stride) {
      if (!first_point) out << ',';
      first_point = false;
      out << '[' << series[i].first << ',' << series[i].second << ']';
    }
    if (n > 0 && (n - 1) % stride != 0) {
      if (!first_point) out << ',';
      out << '[' << series[n - 1].first << ',' << series[n - 1].second << ']';
    }
    out << ']';
  }
  out << "}}";
}

}  // namespace

void write_fairness_json(const FairnessReport& report, std::ostream& out,
                         int max_trajectory_points) {
  out << std::fixed << std::setprecision(6);
  write_report_body(report, out, max_trajectory_points);
  out << '\n';
}

void write_fairness_json(const std::vector<FairnessReport>& reports,
                         std::ostream& out, int max_trajectory_points) {
  out << std::fixed << std::setprecision(6);
  out << "{\"tool\":\"smr_serve\",\"reports\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i != 0) out << ',';
    write_report_body(reports[i], out, max_trajectory_points);
  }
  out << "]}\n";
}

}  // namespace smr::alloc
