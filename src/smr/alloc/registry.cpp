#include "smr/alloc/registry.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "smr/alloc/game_capacity.hpp"
#include "smr/alloc/hybrid_job_driven.hpp"
#include "smr/alloc/karma.hpp"
#include "smr/common/error.hpp"
#include "smr/core/slot_policy.hpp"
#include "smr/yarn/capacity_policy.hpp"

namespace smr::alloc {

namespace {

std::string to_lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t");
  std::size_t end = s.find_last_not_of(" \t");
  if (begin == std::string::npos) return "";
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::string PolicySpec::to_string() const {
  std::ostringstream out;
  out << name;
  for (std::size_t i = 0; i < options.size(); ++i) {
    out << (i == 0 ? ':' : ',') << options[i].first << '='
        << options[i].second;
  }
  return out.str();
}

PolicySpec parse_policy_spec(const std::string& text) {
  PolicySpec spec;
  const std::string trimmed = trim(text);
  const std::size_t colon = trimmed.find(':');
  spec.name = to_lower(trim(trimmed.substr(0, colon)));
  if (spec.name.empty()) {
    throw SmrError("policy spec '" + text + "' has no policy name");
  }
  if (colon == std::string::npos) return spec;
  std::string rest = trimmed.substr(colon + 1);
  std::istringstream stream(rest);
  std::string item;
  while (std::getline(stream, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw SmrError("policy option '" + item + "' in spec '" + text +
                     "' is not key=value");
    }
    spec.options.emplace_back(to_lower(trim(item.substr(0, eq))),
                              trim(item.substr(eq + 1)));
  }
  return spec;
}

std::vector<PolicySpec> parse_policy_list(const std::string& text) {
  std::vector<PolicySpec> specs;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ';')) {
    if (trim(item).empty()) continue;
    specs.push_back(parse_policy_spec(item));
  }
  return specs;
}

PolicyOptions::PolicyOptions(const PolicySpec& spec)
    : policy_(spec.name), pending_(spec.options) {}

std::optional<std::string> PolicyOptions::take(const std::string& key) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first == key) {
      std::string value = it->second;
      pending_.erase(it);
      return value;
    }
  }
  return std::nullopt;
}

double PolicyOptions::get_double(const std::string& key, double fallback) {
  const auto value = take(key);
  if (!value) return fallback;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*value, &used);
    if (used != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw SmrError("policy '" + policy_ + "': option " + key + "=" + *value +
                   " is not a number");
  }
}

int PolicyOptions::get_int(const std::string& key, int fallback) {
  const auto value = take(key);
  if (!value) return fallback;
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(*value, &used);
    if (used != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw SmrError("policy '" + policy_ + "': option " + key + "=" + *value +
                   " is not an integer");
  }
}

bool PolicyOptions::get_bool(const std::string& key, bool fallback) {
  const auto value = take(key);
  if (!value) return fallback;
  const std::string lower = to_lower(*value);
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") {
    return false;
  }
  throw SmrError("policy '" + policy_ + "': option " + key + "=" + *value +
                 " is not a boolean");
}

std::string PolicyOptions::get_string(const std::string& key,
                                      std::string fallback) {
  const auto value = take(key);
  return value ? *value : std::move(fallback);
}

void PolicyOptions::finish() const {
  if (pending_.empty()) return;
  std::ostringstream out;
  out << "policy '" << policy_ << "': unknown option";
  if (pending_.size() > 1) out << 's';
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    out << (i == 0 ? " " : ", ") << pending_[i].first;
  }
  throw SmrError(out.str());
}

void AllocatorRegistry::register_policy(const std::string& name,
                                        std::vector<std::string> aliases,
                                        Factory factory) {
  const std::string canonical = to_lower(name);
  aliases.insert(aliases.begin(), canonical);
  for (const std::string& alias : aliases) {
    const std::string key = to_lower(alias);
    const auto [it, inserted] = entries_.emplace(key, Entry{canonical, factory});
    if (!inserted) {
      throw SmrError("allocator '" + key + "' registered twice");
    }
  }
}

std::unique_ptr<mapreduce::AllocationPolicy> AllocatorRegistry::create(
    const PolicySpec& spec, const PolicyContext& context) const {
  const auto it = entries_.find(to_lower(spec.name));
  if (it == entries_.end()) {
    std::ostringstream out;
    out << "unknown policy '" << spec.name << "' (known:";
    for (const std::string& name : catalogue()) out << ' ' << name;
    out << ')';
    throw SmrError(out.str());
  }
  return it->second.factory(spec, context);
}

bool AllocatorRegistry::known(const std::string& name) const {
  return entries_.count(to_lower(name)) != 0;
}

std::vector<std::string> AllocatorRegistry::catalogue() const {
  std::vector<std::string> names;
  for (const auto& [key, entry] : entries_) {
    if (key == entry.canonical) names.push_back(key);
  }
  return names;  // std::map iteration is already sorted
}

AllocatorRegistry& AllocatorRegistry::instance() {
  static AllocatorRegistry registry = [] {
    AllocatorRegistry r;
    r.register_policy(
        "hadoopv1", {"static"},
        [](const PolicySpec& spec, const PolicyContext&) {
          PolicyOptions options(spec);
          options.finish();
          return std::make_unique<mapreduce::StaticSlotPolicy>();
        });
    r.register_policy(
        "yarn", {},
        [](const PolicySpec& spec, const PolicyContext& context) {
          PolicyOptions options(spec);
          options.finish();
          const yarn::YarnConfig config = context.yarn.value_or(
              yarn::YarnConfig::equivalent_slots(context.initial_map_slots,
                                                 context.initial_reduce_slots));
          return std::make_unique<yarn::CapacityPolicy>(config);
        });
    r.register_policy(
        "smapreduce", {"smr"},
        [](const PolicySpec& spec, const PolicyContext& context) {
          PolicyOptions options(spec);
          options.finish();
          if (context.slot_manager.per_node_targets &&
              !context.node_speeds.empty()) {
            return std::make_unique<core::SmrSlotPolicy>(context.slot_manager,
                                                         context.node_speeds);
          }
          return std::make_unique<core::SmrSlotPolicy>(context.slot_manager);
        });
    r.register_policy(
        "karma", {},
        [](const PolicySpec& spec, const PolicyContext&) {
          PolicyOptions options(spec);
          KarmaConfig config;
          config.init_credits =
              options.get_double("init_credits", config.init_credits);
          config.donate_rate =
              options.get_double("donate_rate", config.donate_rate);
          config.borrow_rate =
              options.get_double("borrow_rate", config.borrow_rate);
          config.decay = options.get_double("decay", config.decay);
          options.finish();
          return std::make_unique<KarmaAllocator>(config);
        });
    r.register_policy(
        "gamecapacity", {"game"},
        [](const PolicySpec& spec, const PolicyContext&) {
          PolicyOptions options(spec);
          GameCapacityConfig config;
          config.max_iterations =
              options.get_int("max_iterations", config.max_iterations);
          config.tolerance = options.get_double("tolerance", config.tolerance);
          config.deadline_weight =
              options.get_double("deadline_weight", config.deadline_weight);
          config.urgency_scale =
              options.get_double("urgency_scale", config.urgency_scale);
          config.min_share = options.get_int("min_share", config.min_share);
          options.finish();
          return std::make_unique<GameCapacityAllocator>(config);
        });
    r.register_policy(
        "hybridjobdriven", {"hybrid"},
        [](const PolicySpec& spec, const PolicyContext&) {
          PolicyOptions options(spec);
          HybridJobDrivenConfig config;
          config.max_factor =
              options.get_double("max_factor", config.max_factor);
          options.finish();
          return std::make_unique<HybridJobDrivenAllocator>(config);
        });
    return r;
  }();
  return registry;
}

}  // namespace smr::alloc
