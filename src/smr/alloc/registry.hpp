// Pluggable allocator arena: construct any AllocationPolicy by name.
//
// A PolicySpec is the parsed form of the uniform CLI syntax
//
//     --policy=<name>[:key=value,key=value,...]
//
// (e.g. `--policy=karma:init_credits=50,decay=0.99`).  The registry maps
// names (plus aliases) to factories; each factory consumes its options
// through PolicyOptions, which rejects unknown keys so a typo'd option is
// an error rather than a silently applied default.  The built-in policies
// — hadoopv1, yarn, smapreduce, karma, gamecapacity, hybridjobdriven —
// register themselves on first use; tests may register extras.
//
// Construction is parameterised by a PolicyContext (cluster size, initial
// slot targets, per-node speeds, the SMR/YARN sub-configs) rather than the
// driver's ExperimentConfig, so the alloc layer never depends on driver.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "smr/core/slot_manager_config.hpp"
#include "smr/mapreduce/policy.hpp"
#include "smr/yarn/resources.hpp"

namespace smr::alloc {

/// Parsed `--policy=<name>[:k=v,...]` value.  `name` is lowercased;
/// options keep declaration order (reports echo them back verbatim).
struct PolicySpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> options;

  bool empty() const { return name.empty(); }
  /// Canonical round-trip form: `name` or `name:k=v,...`.
  std::string to_string() const;
};

/// Parse the CLI syntax.  Throws SmrError on malformed input (empty name,
/// option without '=', empty key).
PolicySpec parse_policy_spec(const std::string& text);

/// Typed option accessor with unknown-key detection.  Each get_* consumes
/// its key; finish() throws SmrError listing any keys never asked for.
class PolicyOptions {
 public:
  explicit PolicyOptions(const PolicySpec& spec);

  double get_double(const std::string& key, double fallback);
  int get_int(const std::string& key, int fallback);
  bool get_bool(const std::string& key, bool fallback);
  std::string get_string(const std::string& key, std::string fallback);

  /// Throws SmrError if any provided option was never consumed.
  void finish() const;

 private:
  std::optional<std::string> take(const std::string& key);

  std::string policy_;
  std::vector<std::pair<std::string, std::string>> pending_;
};

/// Everything a factory may need to build a policy, independent of the
/// driver layer.
struct PolicyContext {
  int nodes = 0;
  int initial_map_slots = 3;
  int initial_reduce_slots = 2;
  /// Per-node CPU speeds (empty = homogeneous); consumed by smapreduce
  /// when slot_manager.per_node_targets is set.
  std::vector<double> node_speeds;
  core::SlotManagerConfig slot_manager;
  std::optional<yarn::YarnConfig> yarn;
};

class AllocatorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<mapreduce::AllocationPolicy>(
      const PolicySpec&, const PolicyContext&)>;

  /// The process-wide registry, with the built-ins pre-registered.
  static AllocatorRegistry& instance();

  /// Register `factory` under `name` (lowercase) and each alias.  Throws
  /// SmrError on duplicates.
  void register_policy(const std::string& name,
                       std::vector<std::string> aliases, Factory factory);

  /// Construct the policy named by `spec`.  Throws SmrError on unknown
  /// names and (via PolicyOptions) unknown option keys.
  std::unique_ptr<mapreduce::AllocationPolicy> create(
      const PolicySpec& spec, const PolicyContext& context) const;

  bool known(const std::string& name) const;

  /// Canonical policy names (aliases excluded), sorted.
  std::vector<std::string> catalogue() const;

 private:
  AllocatorRegistry() = default;

  struct Entry {
    std::string canonical;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;  // keyed by name and every alias
};

/// Parse a semicolon-separated list of policy specs (`a;b:k=v;c`) — the
/// multi-policy CLI syntax (`,` separates options inside one spec, so it
/// cannot separate specs).
std::vector<PolicySpec> parse_policy_list(const std::string& text);

}  // namespace smr::alloc
