#include "smr/alloc/karma.hpp"

#include <algorithm>
#include <sstream>

#include "smr/alloc/apportion.hpp"
#include "smr/common/error.hpp"
#include "smr/obs/decision_log.hpp"

namespace smr::alloc {

namespace {

/// Live cluster capacity: summed map + reduce targets over healthy nodes.
int live_capacity(std::span<mapreduce::TaskTracker> trackers,
                  const mapreduce::ClusterStats& stats) {
  int capacity = 0;
  for (const auto& tracker : trackers) {
    const auto n = static_cast<std::size_t>(tracker.node());
    if (n < stats.per_node.size() &&
        (!stats.per_node[n].alive || stats.per_node[n].blacklisted)) {
      continue;
    }
    capacity += tracker.map_target() + tracker.reduce_target();
  }
  return capacity;
}

}  // namespace

KarmaAllocator::KarmaAllocator(KarmaConfig config) : config_(config) {
  SMR_CHECK(config_.init_credits >= 0.0);
  SMR_CHECK(config_.donate_rate >= 0.0 && config_.borrow_rate >= 0.0);
  SMR_CHECK(config_.decay > 0.0 && config_.decay <= 1.0);
}

void KarmaAllocator::on_period(std::span<mapreduce::TaskTracker> trackers,
                               const mapreduce::ClusterStats& stats) {
  if (!stats.has_active_job) return;
  ++periods_;

  // Per-tenant demand (outstanding tasks), tenants in name order; every
  // tenant with an active job participates and opens a balance on first
  // sight.
  std::map<std::string, int> demand;
  for (const auto& js : stats.job_stats) {
    demand[js.tenant] += js.demand();
    balances_.try_emplace(js.tenant, config_.init_credits);
  }
  const int tenant_count = static_cast<int>(demand.size());
  if (tenant_count == 0) return;
  const int capacity = live_capacity(trackers, stats);

  // Equal entitlements (largest remainder over uniform weights).
  const std::vector<double> uniform(static_cast<std::size_t>(tenant_count), 1.0);
  const std::vector<int> entitlement = largest_remainder(capacity, uniform);

  // Donors fill the public pool with their surplus; borrowers queue up
  // with their deficits.
  struct Claim {
    const std::string* tenant;
    int entitled = 0;
    int want = 0;      // borrow request (deficit)
    int borrowed = 0;  // granted this period
    int donated = 0;
  };
  std::vector<Claim> claims;
  claims.reserve(demand.size());
  int pool = 0;
  {
    std::size_t i = 0;
    for (const auto& [tenant, d] : demand) {
      Claim claim;
      claim.tenant = &tenant;
      claim.entitled = entitlement[i++];
      if (d < claim.entitled) {
        claim.donated = claim.entitled - d;
        pool += claim.donated;
      } else {
        claim.want = d - claim.entitled;
      }
      claims.push_back(claim);
    }
  }
  const int pool_offered = pool;

  // Grant the pool one slot per round, richest balance first (name breaks
  // ties), while the borrower still wants slots and can afford the rate.
  std::vector<Claim*> borrowers;
  for (Claim& claim : claims) {
    if (claim.want > 0) borrowers.push_back(&claim);
  }
  std::stable_sort(borrowers.begin(), borrowers.end(),
                   [this](const Claim* a, const Claim* b) {
                     const double ba = balances_.at(*a->tenant);
                     const double bb = balances_.at(*b->tenant);
                     if (ba != bb) return ba > bb;
                     return *a->tenant < *b->tenant;
                   });
  bool granted_any = true;
  while (pool > 0 && granted_any) {
    granted_any = false;
    for (Claim* claim : borrowers) {
      if (pool == 0) break;
      if (claim->borrowed >= claim->want) continue;
      const double cost =
          config_.borrow_rate * static_cast<double>(claim->borrowed + 1);
      if (config_.borrow_rate > 0.0 && balances_.at(*claim->tenant) < cost) {
        continue;
      }
      ++claim->borrowed;
      --pool;
      granted_any = true;
    }
  }

  // Settle credits: borrowers pay per borrowed slot-period; donors split
  // the proceeds proportionally to their donations (only the borrowed
  // slot-periods mint credit, so donate_rate == borrow_rate conserves the
  // total balance).
  int borrowed_total = 0;
  for (const Claim& claim : claims) borrowed_total += claim.borrowed;
  for (const Claim& claim : claims) {
    if (claim.borrowed > 0) {
      const double paid = config_.borrow_rate * claim.borrowed;
      balances_[*claim.tenant] -= paid;
      burned_ += paid;
      borrowed_slot_periods_ += claim.borrowed;
    }
    if (claim.donated > 0 && borrowed_total > 0 && pool_offered > 0) {
      const double earned = config_.donate_rate *
                            static_cast<double>(borrowed_total) *
                            (static_cast<double>(claim.donated) /
                             static_cast<double>(pool_offered));
      balances_[*claim.tenant] += earned;
      minted_ += earned;
    }
    donated_slot_periods_ += claim.donated;
  }
  if (config_.decay < 1.0) {
    for (auto& [tenant, balance] : balances_) balance *= config_.decay;
  }

  // Tenant allocations -> per-job in-flight caps.  Donors are capped at
  // their demand (never binds); borrowers at entitlement + borrowed.
  caps_.assign(stats.job_stats.empty()
                   ? std::size_t{0}
                   : static_cast<std::size_t>(
                         stats.job_stats.back().job) + 1,
               -1);
  for (const Claim& claim : claims) {
    const int allocation = claim.want > 0
                               ? claim.entitled + claim.borrowed
                               : demand.at(*claim.tenant);
    // This tenant's jobs, in job-id order, weighted by their demand.
    std::vector<const mapreduce::JobStats*> jobs;
    std::vector<double> weights;
    for (const auto& js : stats.job_stats) {
      if (js.tenant != *claim.tenant) continue;
      jobs.push_back(&js);
      weights.push_back(static_cast<double>(js.demand()));
    }
    const std::vector<int> per_job = largest_remainder(allocation, weights);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      caps_[static_cast<std::size_t>(jobs[i]->job)] = per_job[i];
    }
  }

  if (decision_log_ != nullptr) {
    obs::SlotDecision decision;
    decision.time = stats.now;
    decision.running_reduces = stats.running_reduces;
    decision.total_reduces = stats.total_reduces;
    decision.slow_start_passed = true;
    decision.action = obs::SlotAction::kHoldBalanced;
    std::ostringstream reason;
    reason << "karma: capacity=" << capacity << " tenants=" << tenant_count
           << " pool=" << pool_offered << " borrowed=" << borrowed_total;
    decision.reason = reason.str();
    decision_log_->record(std::move(decision));
  }
}

std::vector<std::pair<std::string, double>> KarmaAllocator::credit_balances()
    const {
  return {balances_.begin(), balances_.end()};
}

double KarmaAllocator::total_balance() const {
  double total = 0.0;
  for (const auto& [tenant, balance] : balances_) total += balance;
  return total;
}

}  // namespace smr::alloc
