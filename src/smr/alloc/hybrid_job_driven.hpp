// Hybrid job-driven slot placement (after arXiv:1808.08040).
//
// Instead of capping jobs, this allocator *moves* the cluster's slot
// targets toward the data: every policy period the cluster-total map
// target is re-apportioned over the live nodes proportionally to the
// input bytes of pending map splits with a local replica
// (NodeStats::local_pending_input — job-driven map placement), and the
// cluster-total reduce target proportionally to the map output bytes
// already produced on each node (cum_map_output — locality-aware reduce
// assignment: reducers fetch least over the network where the most map
// output already lives).  Per-node targets are clamped to max_factor ×
// the node's initial target, with the clipped surplus re-spread over the
// unclamped nodes; when a weight vector is all-zero (no pending maps, no
// map output yet) the initial uniform targets are restored.  Totals are
// preserved, so the cluster never gains or loses capacity — slots only
// migrate.  Deterministic: node-order iteration, largest-remainder
// apportionment, no RNG.
#pragma once

#include <string>
#include <vector>

#include "smr/mapreduce/policy.hpp"

namespace smr::alloc {

struct HybridJobDrivenConfig {
  /// Per-node target ceiling, as a multiple of the node's initial target.
  double max_factor = 3.0;
};

class HybridJobDrivenAllocator final : public mapreduce::AllocationPolicy {
 public:
  explicit HybridJobDrivenAllocator(HybridJobDrivenConfig config = {});

  std::string name() const override { return "HybridJobDriven"; }
  bool wants_heartbeat_stats() const override { return false; }
  bool wants_placement_stats() const override { return true; }

  void on_start(std::span<mapreduce::TaskTracker> trackers) override;
  void on_period(std::span<mapreduce::TaskTracker> trackers,
                 const mapreduce::ClusterStats& stats) override;

  // --- Introspection ----------------------------------------------------
  const HybridJobDrivenConfig& config() const { return config_; }
  /// Slot-target moves applied so far (map + reduce, absolute deltas).
  long long slots_moved() const { return slots_moved_; }

 private:
  /// Apportion `total` over the live nodes by `weights` with per-node
  /// ceilings, re-spreading any clipped surplus.
  std::vector<int> place(int total, const std::vector<double>& weights,
                         const std::vector<int>& ceiling) const;

  HybridJobDrivenConfig config_;
  std::vector<int> initial_map_;     // by node
  std::vector<int> initial_reduce_;  // by node
  long long slots_moved_ = 0;
};

}  // namespace smr::alloc
