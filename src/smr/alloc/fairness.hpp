// Fairness accounting for multi-tenant serving runs.
//
// A FairnessTracker is sampled every policy period (the serving session
// schedules the sampling event): each sample carries the live slot
// capacity, every tenant's running task count (usage) and outstanding
// task count (demand), and — for credit-based allocators — the current
// credit balances.  Between consecutive samples usage/demand/capacity are
// integrated into slot-seconds; a tenant's *entitlement* accrues as an
// equal split of capacity over the tenants demanding at that instant.
//
// report() condenses the integrals into a FairnessReport:
//   * Jain's fairness index over normalised allocations
//     x_i = used_i / min(demand_i, entitlement_i) — 1.0 means every
//     tenant got the same fraction of what it could justly use;
//   * per-tenant envy: the fraction of a tenant's justified claim
//     (min(demand, entitlement)) it did not receive;
//   * utilitarian welfare (mean demand satisfaction) and Nash welfare
//     (geometric mean) over tenants that demanded anything;
//   * credit-balance trajectories (Karma), thinned for the JSON artifact.
//
// Purely observational and RNG-free: attaching a tracker never perturbs
// the simulation, so instrumented runs stay byte-identical.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::alloc {

/// One tenant's state at a sampling instant.
struct TenantUsageSample {
  std::string tenant;
  double running = 0.0;  // tasks currently running (usage)
  double demand = 0.0;   // tasks running + pending (justified claim)
};

struct TenantFairness {
  std::string tenant;
  double used_slot_seconds = 0.0;
  double demand_slot_seconds = 0.0;
  double entitlement_slot_seconds = 0.0;
  /// used / min(demand, entitlement), clamped to [0, 1] — the normalised
  /// allocation Jain's index runs over.
  double normalized_allocation = 1.0;
  /// Unserved fraction of the justified claim: max(0, min(demand, ent) −
  /// used) / ent.
  double envy = 0.0;
  /// min(1, used / demand) — demand satisfaction.
  double satisfaction = 1.0;
  double final_credits = 0.0;
  bool has_credits = false;
};

struct FairnessReport {
  std::string policy;
  double duration = 0.0;  // accounted sim-time span (post-warmup)
  double capacity_slot_seconds = 0.0;
  double jain = 1.0;
  double max_envy = 0.0;
  double utilitarian_welfare = 1.0;
  double nash_welfare = 1.0;
  std::vector<TenantFairness> tenants;  // tenant-name order
  /// (tenant, [(time, balance), ...]) — empty for credit-less policies.
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>
      credit_series;
};

class FairnessTracker {
 public:
  /// Display name of the policy under measurement (report metadata).
  void set_policy(std::string policy) { policy_ = std::move(policy); }

  /// Record one sampling instant.  `now` must not decrease across calls;
  /// the interval since the previous sample is integrated with the
  /// *previous* sample's rates (left Riemann sum, so a run's integrals
  /// are independent of when sampling stops mid-interval).
  void record(SimTime now, double capacity_slots,
              const std::vector<TenantUsageSample>& tenants,
              const std::vector<std::pair<std::string, double>>& credits);

  FairnessReport report() const;

  int samples() const { return samples_; }

 private:
  struct Accum {
    double used = 0.0;
    double demand = 0.0;
    double entitlement = 0.0;
    double last_running = 0.0;
    double last_demand = 0.0;
    double final_credits = 0.0;
    bool has_credits = false;
    std::vector<std::pair<double, double>> credit_series;
  };

  std::string policy_;
  std::map<std::string, Accum> tenants_;
  SimTime last_time_ = kTimeNever;
  double last_capacity_ = 0.0;
  double capacity_slot_seconds_ = 0.0;
  double duration_ = 0.0;
  int samples_ = 0;
};

/// Serialise one report as a fairness.json object (fixed-precision
/// decimals; trajectories thinned to at most `max_trajectory_points`).
void write_fairness_json(const FairnessReport& report, std::ostream& out,
                         int max_trajectory_points = 200);

/// Serialise several reports (the frontier's per-policy-per-mix runs) as
/// {"tool":"smr_serve","reports":[...]}.
void write_fairness_json(const std::vector<FairnessReport>& reports,
                         std::ostream& out, int max_trajectory_points = 200);

}  // namespace smr::alloc
