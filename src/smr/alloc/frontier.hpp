// Fairness-vs-goodput frontier over adversarial tenant mixes.
//
// A fairness index means little on a polite workload: every allocator
// looks fair when tenants ask for their share and no more.  The frontier
// driver stresses each registry policy with tenant mixes built to create
// allocation conflicts —
//
//   * selfish_spike:    one tenant periodically dumps its whole (3x-sized)
//                       offered load into short spike windows while three
//                       steady tenants keep a constant trickle;
//   * bursty_vs_steady: two duty-cycled bursty tenants against two steady
//                       ones, the classic case credit schemes (Karma,
//                       arXiv:2305.17222-style) are built for;
//   * free_rider:       one tenant floods the cluster with many tiny jobs
//                       (perpetual borrower, never a donor) while three
//                       tenants run normal-sized jobs at modest rates —
//
// and records, per (policy, mix) run, the goodput side (SLO-met
// completions/hour, p99 sojourn, shed fraction, utilization) next to the
// fairness side (Jain index, max envy, utilitarian and Nash welfare).
// Plotting goodput against Jain across policies is the fairness-vs-
// goodput frontier; the CSV is one row per run.
//
// Everything is deterministic in FrontierConfig::seed: mixes come from
// generate_arrivals (per-tenant substreams) with burst tenants' arrival
// times compressed by a fixed duty-cycle map, and every run goes through
// the same ServeSession::replay path the capacity sweep uses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "smr/alloc/fairness.hpp"
#include "smr/alloc/registry.hpp"
#include "smr/driver/experiment.hpp"
#include "smr/serve/admission.hpp"
#include "smr/serve/arrivals.hpp"

namespace smr::alloc {

struct FrontierConfig {
  /// Cluster / scheduler template.  `experiment.policy` is overridden per
  /// swept policy (and `engine` is ignored whenever a spec is set).
  driver::ExperimentConfig experiment;

  /// Aggregate offered rate (jobs/hour) across each mix's tenants.
  double offered_jobs_per_hour = 48.0;

  /// Serving window (see ServeConfig): arrivals in [0, horizon), the
  /// measurement window starts at `warmup`, and in-flight jobs may drain
  /// for `drain_limit` past the horizon.
  SimTime horizon = 2.0 * 3600.0;
  SimTime warmup = 900.0;
  SimTime drain_limit = 2.0 * 3600.0;

  serve::AdmissionConfig admission;

  /// Seeds the arrival streams (per mix) and every runtime.
  std::uint64_t seed = 1;

  void validate() const;
};

/// One named adversarial tenant mix: a deterministic, fully materialised
/// arrival trace ready for ServeSession::replay.
struct FrontierMix {
  std::string name;
  serve::ArrivalTrace trace;
};

/// One (policy, mix) run condensed to its frontier coordinates.
struct FrontierPoint {
  std::string policy;  ///< Display label (policy name()).
  std::string mix;
  double offered_jobs_per_hour = 0.0;
  double goodput_per_hour = 0.0;  ///< SLO-met completions / measured hour.
  double p99_latency_s = 0.0;     ///< NaN when nothing completed.
  double shed_fraction = 0.0;
  double utilization = 0.0;
  double jain = 1.0;
  double max_envy = 0.0;
  double utilitarian_welfare = 1.0;
  double nash_welfare = 1.0;
};

struct FrontierResult {
  /// Policy-major, mix order within each policy.
  std::vector<FrontierPoint> points;
  /// Full fairness reports, parallel to `points` (report.policy is
  /// "<policy>/<mix>"); feeds the aggregated fairness.json artifact.
  std::vector<FairnessReport> reports;
};

/// The built-in adversarial mix names, in sweep order.
const std::vector<std::string>& frontier_mix_names();

/// Materialise one built-in mix (throws SmrError on an unknown name).
FrontierMix make_frontier_mix(const std::string& name,
                              const FrontierConfig& config);

/// Run every policy through every built-in mix.
FrontierResult run_frontier(const FrontierConfig& config,
                            const std::vector<PolicySpec>& policies);

/// One CSV row per (policy, mix) run:
///   policy,mix,offered_jobs_per_hour,goodput_per_hour,p99_latency_s,
///   shed_fraction,utilization,jain,max_envy,utilitarian_welfare,
///   nash_welfare
void write_frontier_csv(const FrontierResult& result, std::ostream& out);

}  // namespace smr::alloc
