#include "smr/alloc/frontier.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "smr/common/error.hpp"
#include "smr/serve/session.hpp"

namespace smr::alloc {

void FrontierConfig::validate() const {
  SMR_CHECK_MSG(offered_jobs_per_hour > 0.0, "frontier needs a positive rate");
  SMR_CHECK(horizon > 0.0);
  SMR_CHECK(warmup >= 0.0 && warmup < horizon);
  SMR_CHECK(drain_limit >= 0.0);
  admission.validate();
}

namespace {

/// Shape templates.  Inputs stay small so a full frontier (5 policies x 3
/// mixes) finishes in CI-smoke time; every job carries an SLO class so
/// goodput (SLO-met completions) is meaningful.
workload::SyntheticMixConfig normal_shape() {
  workload::SyntheticMixConfig shape;
  shape.candidates = {workload::Puma::kWordCount, workload::Puma::kGrep};
  shape.min_input = 4 * kGiB;
  shape.max_input = 16 * kGiB;
  shape.reduce_tasks = 16;
  shape.slo_classes = {{"batch", 600.0, 60.0}};
  return shape;
}

workload::SyntheticMixConfig tiny_shape() {
  workload::SyntheticMixConfig shape;
  shape.candidates = {workload::Puma::kGrep};
  shape.min_input = 1 * kGiB;
  shape.max_input = 2 * kGiB;
  shape.reduce_tasks = 4;
  shape.slo_classes = {{"interactive", 300.0, 60.0}};
  return shape;
}

serve::TenantConfig tenant(std::string name, double jobs_per_hour,
                           workload::SyntheticMixConfig shape) {
  serve::TenantConfig config;
  config.name = std::move(name);
  config.jobs_per_hour = jobs_per_hour;
  config.shape = std::move(shape);
  return config;
}

/// Compress one tenant's arrival times into the leading `duty` fraction
/// of every `period`-second window: t' = floor(t/P)*P + (t mod P)*duty.
/// Order within the tenant's stream is preserved (the map is monotone),
/// so only the cross-tenant merge needs re-sorting.
void compress_bursts(serve::ArrivalTrace& trace, int tenant_index,
                     double period, double duty) {
  for (serve::Arrival& arrival : trace.arrivals) {
    if (arrival.tenant != tenant_index) continue;
    const double t = arrival.job.submit_at;
    const double window = std::floor(t / period) * period;
    arrival.job.submit_at = window + (t - window) * duty;
  }
  std::stable_sort(trace.arrivals.begin(), trace.arrivals.end(),
                   [](const serve::Arrival& a, const serve::Arrival& b) {
                     if (a.job.submit_at != b.job.submit_at) {
                       return a.job.submit_at < b.job.submit_at;
                     }
                     return a.tenant < b.tenant;
                   });
}

}  // namespace

const std::vector<std::string>& frontier_mix_names() {
  static const std::vector<std::string> names = {
      "selfish_spike", "bursty_vs_steady", "free_rider"};
  return names;
}

FrontierMix make_frontier_mix(const std::string& name,
                              const FrontierConfig& config) {
  config.validate();
  const double rate = config.offered_jobs_per_hour;
  FrontierMix mix;
  mix.name = name;

  if (name == "selfish_spike") {
    // One tenant holds half the offered load and releases it only inside
    // short windows (15% duty over 30-minute periods); three steady
    // tenants split the rest.
    std::vector<serve::TenantConfig> tenants = {
        tenant("spiker", rate / 2.0, normal_shape()),
        tenant("steady-1", rate / 6.0, normal_shape()),
        tenant("steady-2", rate / 6.0, normal_shape()),
        tenant("steady-3", rate / 6.0, normal_shape()),
    };
    mix.trace = serve::generate_arrivals(tenants, config.horizon,
                                         config.seed ^ 0x5e1f5ULL);
    compress_bursts(mix.trace, 0, 1800.0, 0.15);
    return mix;
  }
  if (name == "bursty_vs_steady") {
    // Two duty-cycled tenants against two steady ones at equal rates.
    std::vector<serve::TenantConfig> tenants = {
        tenant("bursty-1", rate / 4.0, normal_shape()),
        tenant("bursty-2", rate / 4.0, normal_shape()),
        tenant("steady-1", rate / 4.0, normal_shape()),
        tenant("steady-2", rate / 4.0, normal_shape()),
    };
    mix.trace = serve::generate_arrivals(tenants, config.horizon,
                                         config.seed ^ 0xb5757ULL);
    compress_bursts(mix.trace, 0, 900.0, 0.25);
    compress_bursts(mix.trace, 1, 900.0, 0.25);
    return mix;
  }
  if (name == "free_rider") {
    // One tenant floods tiny jobs at half the aggregate rate — under
    // Karma a perpetual borrower that never earns donation credits —
    // while three honest tenants run normal jobs.
    std::vector<serve::TenantConfig> tenants = {
        tenant("freerider", rate / 2.0, tiny_shape()),
        tenant("honest-1", rate / 6.0, normal_shape()),
        tenant("honest-2", rate / 6.0, normal_shape()),
        tenant("honest-3", rate / 6.0, normal_shape()),
    };
    mix.trace = serve::generate_arrivals(tenants, config.horizon,
                                         config.seed ^ 0xf4eeeULL);
    return mix;
  }
  SMR_CHECK_MSG(false, "unknown frontier mix '" << name << "'");
  return mix;
}

FrontierResult run_frontier(const FrontierConfig& config,
                            const std::vector<PolicySpec>& policies) {
  config.validate();
  SMR_CHECK_MSG(!policies.empty(), "frontier needs at least one policy");

  std::vector<FrontierMix> mixes;
  mixes.reserve(frontier_mix_names().size());
  for (const std::string& name : frontier_mix_names()) {
    mixes.push_back(make_frontier_mix(name, config));
  }

  FrontierResult result;
  for (const PolicySpec& spec : policies) {
    for (const FrontierMix& mix : mixes) {
      serve::ServeConfig serve;
      serve.experiment = config.experiment;
      serve.experiment.policy = spec;
      serve.admission = config.admission;
      serve.horizon = config.horizon;
      serve.warmup = config.warmup;
      serve.drain_limit = config.drain_limit;
      serve.seed = config.seed;

      serve::ServeSession session(serve);
      FairnessTracker fairness;
      session.set_fairness(&fairness);
      const serve::ServeReport report = session.replay(mix.trace);

      FrontierPoint point;
      point.policy = report.engine;
      point.mix = mix.name;
      point.offered_jobs_per_hour = report.offered_jobs_per_hour;
      point.goodput_per_hour = report.aggregate.goodput_per_hour;
      point.p99_latency_s = report.aggregate.latency.p99;
      point.shed_fraction =
          report.aggregate.arrived > 0
              ? static_cast<double>(report.aggregate.shed) /
                    static_cast<double>(report.aggregate.arrived)
              : 0.0;
      point.utilization = report.utilization;

      FairnessReport fairness_report = fairness.report();
      fairness_report.policy = point.policy + "/" + mix.name;
      point.jain = fairness_report.jain;
      point.max_envy = fairness_report.max_envy;
      point.utilitarian_welfare = fairness_report.utilitarian_welfare;
      point.nash_welfare = fairness_report.nash_welfare;

      result.points.push_back(std::move(point));
      result.reports.push_back(std::move(fairness_report));
    }
  }
  return result;
}

void write_frontier_csv(const FrontierResult& result, std::ostream& out) {
  out << "policy,mix,offered_jobs_per_hour,goodput_per_hour,p99_latency_s,"
         "shed_fraction,utilization,jain,max_envy,utilitarian_welfare,"
         "nash_welfare\n";
  const auto cell = [&out](double value) {
    out << ',';
    if (std::isnan(value)) return;  // empty cell, not "nan"
    out << value;
  };
  out << std::fixed;
  out.precision(6);
  for (const FrontierPoint& point : result.points) {
    out << point.policy << ',' << point.mix;
    cell(point.offered_jobs_per_hour);
    cell(point.goodput_per_hour);
    cell(point.p99_latency_s);
    cell(point.shed_fraction);
    cell(point.utilization);
    cell(point.jain);
    cell(point.max_envy);
    cell(point.utilitarian_welfare);
    cell(point.nash_welfare);
    out << '\n';
  }
}

}  // namespace smr::alloc
