// Karma-style credit allocator.
//
// Tenants share the cluster's fixed slot pool through per-tenant credit
// balances.  Every policy period:
//   1. Live capacity C (summed map + reduce targets over healthy
//      trackers) is apportioned into per-tenant entitlements, one equal
//      share per tenant with active jobs.
//   2. Tenants demanding less than their entitlement *donate* the surplus
//      into a public block pool; tenants demanding more *borrow* from the
//      pool, one slot at a time in credit order (richest first, name as
//      the tiebreak), for as long as their balance covers the borrow rate.
//   3. Borrowers pay `borrow_rate` credits per borrowed slot-period;
//      donors earn `donate_rate` per donated slot-period actually used,
//      split proportionally to their donations.  With donate_rate ==
//      borrow_rate the total balance is conserved (the credit-conservation
//      unit test); `decay` then multiplies every balance.
//
// The allocator never touches tracker slot targets: tenant allocations
// become per-job in-flight caps (AllocationPolicy::job_task_caps), which
// the runtime's assignment loop honours.  A single-tenant run therefore
// degenerates to HadoopV1 byte-for-byte — its caps never bind — which is
// the smr_perfbench makespan-identity gate for the arena's control-plane
// cost.  Everything here is ordered (std::map keyed by tenant name, job-id
// order) and RNG-free, so runs stay deterministic across shards × threads.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "smr/mapreduce/policy.hpp"

namespace smr::alloc {

struct KarmaConfig {
  /// Opening balance for a newly seen tenant.
  double init_credits = 100.0;
  /// Credits earned per donated slot-period actually borrowed.
  double donate_rate = 1.0;
  /// Credits paid per borrowed slot-period.
  double borrow_rate = 1.0;
  /// Per-period balance multiplier (1 = no decay).
  double decay = 1.0;
};

class KarmaAllocator final : public mapreduce::AllocationPolicy {
 public:
  explicit KarmaAllocator(KarmaConfig config = {});

  std::string name() const override { return "Karma"; }
  bool wants_heartbeat_stats() const override { return false; }
  bool wants_job_stats() const override { return true; }

  void on_period(std::span<mapreduce::TaskTracker> trackers,
                 const mapreduce::ClusterStats& stats) override;

  const std::vector<int>* job_task_caps() const override { return &caps_; }
  std::vector<std::pair<std::string, double>> credit_balances() const override;

  // --- Introspection (tests, fairness trajectories) ---------------------
  const KarmaConfig& config() const { return config_; }
  double credits_minted() const { return minted_; }
  double credits_burned() const { return burned_; }
  /// Total balance across every tenant seen so far.
  double total_balance() const;
  long long borrowed_slot_periods() const { return borrowed_slot_periods_; }
  long long donated_slot_periods() const { return donated_slot_periods_; }
  int periods() const { return periods_; }

 private:
  KarmaConfig config_;
  /// Ordered by tenant name: iteration order is part of the determinism
  /// contract.
  std::map<std::string, double> balances_;
  std::vector<int> caps_;  // by JobId; -1 = unlimited
  double minted_ = 0.0;
  double burned_ = 0.0;
  long long borrowed_slot_periods_ = 0;
  long long donated_slot_periods_ = 0;
  int periods_ = 0;
};

}  // namespace smr::alloc
