// Deterministic integer apportionment shared by the arena's allocators.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace smr::alloc {

/// Largest-remainder apportionment: split `total` integer slots over
/// `weights` proportionally, ties broken by lower index.  Non-positive
/// weights get nothing; an all-non-positive weight vector returns zeros.
/// Deterministic: plain double arithmetic and index-ordered stable sort.
inline std::vector<int> largest_remainder(int total,
                                          const std::vector<double>& weights) {
  std::vector<int> shares(weights.size(), 0);
  if (total <= 0 || weights.empty()) return shares;
  double weight_sum = 0.0;
  for (double w : weights) {
    if (w > 0.0) weight_sum += w;
  }
  if (weight_sum <= 0.0) return shares;

  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(weights.size());
  int assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    const double exact = static_cast<double>(total) * weights[i] / weight_sum;
    const int floor_share = static_cast<int>(std::floor(exact));
    shares[i] = floor_share;
    assigned += floor_share;
    remainders.emplace_back(exact - static_cast<double>(floor_share), i);
  }
  // Hand the leftover slots to the largest fractional remainders; stable
  // sort + index tiebreak keeps the result independent of sort internals.
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  for (std::size_t k = 0; assigned < total && k < remainders.size(); ++k) {
    ++shares[remainders[k].second];
    ++assigned;
  }
  // More slots than positive-weight entries can absorb fractionally:
  // round-robin the rest (keeps the sum exact when total > entries).
  for (std::size_t k = 0; assigned < total && !remainders.empty(); ++k) {
    ++shares[remainders[k % remainders.size()].second];
    ++assigned;
  }
  return shares;
}

}  // namespace smr::alloc
