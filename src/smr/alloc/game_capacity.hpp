// Game-theoretic runtime capacity allocation (after Gianniti et al.,
// arXiv:1701.04763).
//
// Each policy period the active jobs bid for the cluster's live slot
// capacity C with concave utilities u_j(x) = w_j·log(1 + x), where w_j
// rises for deadline-urgent jobs.  Against a posted price λ per slot, job
// j's best response is x_j(λ) = clamp(w_j/λ − 1, 0, d_j) (d_j its
// outstanding demand).  The allocator runs a tatonnement loop — bisecting
// λ until the best responses clear capacity (Σ x_j ≈ C) or the iteration
// budget is spent — and freezes the resulting equilibrium shares as
// per-job in-flight caps.  When Σ d_j ≤ C the game is degenerate (no
// scarcity) and every cap is lifted, so single-job runs are untouched.
//
// Deterministic by construction: job-id iteration order, fixed bisection
// bracket, no RNG.  Like Karma it never edits tracker targets.
#pragma once

#include <string>
#include <vector>

#include "smr/mapreduce/policy.hpp"

namespace smr::alloc {

struct GameCapacityConfig {
  /// Bisection budget per period.
  int max_iterations = 64;
  /// Relative capacity-clearing tolerance: stop when |Σx − C| ≤ tol·C.
  double tolerance = 1e-6;
  /// Extra utility weight for deadline-urgent jobs (0 = deadline-blind).
  double deadline_weight = 0.0;
  /// Time scale (seconds) over which a looming deadline saturates the
  /// urgency term.
  double urgency_scale = 600.0;
  /// Floor share for any job with demand (post-equilibrium bump; may
  /// overshoot C — caps are bounds, not reservations).
  int min_share = 0;
};

class GameCapacityAllocator final : public mapreduce::AllocationPolicy {
 public:
  explicit GameCapacityAllocator(GameCapacityConfig config = {});

  std::string name() const override { return "GameCapacity"; }
  bool wants_heartbeat_stats() const override { return false; }
  bool wants_job_stats() const override { return true; }

  void on_period(std::span<mapreduce::TaskTracker> trackers,
                 const mapreduce::ClusterStats& stats) override;

  const std::vector<int>* job_task_caps() const override { return &caps_; }

  // --- Introspection (the convergence/termination unit tests) -----------
  const GameCapacityConfig& config() const { return config_; }
  /// Bisection iterations spent by the most recent contended period.
  int last_iterations() const { return last_iterations_; }
  /// Whether that period hit the clearing tolerance (false = stopped on
  /// the iteration budget — still a valid, feasible allocation).
  bool last_converged() const { return last_converged_; }
  /// Equilibrium slot price of the most recent contended period.
  double last_price() const { return last_price_; }
  /// Contended periods solved so far (Σd > C).
  int equilibria_computed() const { return equilibria_; }

 private:
  GameCapacityConfig config_;
  std::vector<int> caps_;  // by JobId; -1 = unlimited
  int last_iterations_ = 0;
  bool last_converged_ = true;
  double last_price_ = 0.0;
  int equilibria_ = 0;
};

}  // namespace smr::alloc
