#include "smr/alloc/hybrid_job_driven.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "smr/alloc/apportion.hpp"
#include "smr/common/error.hpp"
#include "smr/obs/decision_log.hpp"

namespace smr::alloc {

HybridJobDrivenAllocator::HybridJobDrivenAllocator(HybridJobDrivenConfig config)
    : config_(config) {
  SMR_CHECK(config_.max_factor >= 1.0);
}

void HybridJobDrivenAllocator::on_start(
    std::span<mapreduce::TaskTracker> trackers) {
  initial_map_.clear();
  initial_reduce_.clear();
  for (const auto& tracker : trackers) {
    initial_map_.push_back(tracker.map_target());
    initial_reduce_.push_back(tracker.reduce_target());
  }
}

std::vector<int> HybridJobDrivenAllocator::place(
    int total, const std::vector<double>& weights,
    const std::vector<int>& ceiling) const {
  std::vector<int> result = largest_remainder(total, weights);
  // Clip to the ceilings and re-spread the surplus over nodes with
  // headroom, by the same weights; each pass either clips nobody new or
  // strictly shrinks the surplus, so at most nodes-many passes run.
  for (std::size_t pass = 0; pass < result.size(); ++pass) {
    int surplus = 0;
    std::vector<double> room_weights(weights.size(), 0.0);
    for (std::size_t n = 0; n < result.size(); ++n) {
      if (result[n] > ceiling[n]) {
        surplus += result[n] - ceiling[n];
        result[n] = ceiling[n];
      } else if (result[n] < ceiling[n]) {
        room_weights[n] = weights[n] > 0.0 ? weights[n] : 1.0;
      }
    }
    if (surplus == 0) break;
    const std::vector<int> extra = largest_remainder(surplus, room_weights);
    bool placed = false;
    for (std::size_t n = 0; n < result.size(); ++n) {
      if (extra[n] > 0) {
        result[n] += extra[n];
        placed = true;
      }
    }
    if (!placed) break;  // everywhere at ceiling: drop the surplus
  }
  return result;
}

void HybridJobDrivenAllocator::on_period(
    std::span<mapreduce::TaskTracker> trackers,
    const mapreduce::ClusterStats& stats) {
  if (!stats.has_active_job) return;
  if (initial_map_.size() < trackers.size()) {
    on_start(trackers);  // defensive: on_start missed (tests driving directly)
  }

  // Live nodes and cluster totals (dead/blacklisted nodes keep their
  // current targets and drop out of the apportionment).
  std::vector<std::size_t> live;
  int total_map = 0;
  int total_reduce = 0;
  for (std::size_t n = 0; n < trackers.size(); ++n) {
    const auto& node = stats.per_node[n];
    if (!node.alive || node.blacklisted) continue;
    live.push_back(n);
    total_map += initial_map_[n];
    total_reduce += initial_reduce_[n];
  }
  if (live.empty()) return;

  // Map weights: pending local input.  Reduce weights: map output already
  // on the node.  All-zero vectors fall back to uniform (initial layout).
  std::vector<double> map_weight(live.size(), 0.0);
  std::vector<double> reduce_weight(live.size(), 0.0);
  std::vector<int> map_ceiling(live.size(), 0);
  std::vector<int> reduce_ceiling(live.size(), 0);
  double map_sum = 0.0;
  double reduce_sum = 0.0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const auto& node = stats.per_node[live[i]];
    map_weight[i] = node.local_pending_input;
    reduce_weight[i] = node.cum_map_output;
    map_sum += map_weight[i];
    reduce_sum += reduce_weight[i];
    map_ceiling[i] = std::max(
        1, static_cast<int>(std::ceil(config_.max_factor *
                                      initial_map_[live[i]])));
    reduce_ceiling[i] = std::max(
        1, static_cast<int>(std::ceil(config_.max_factor *
                                      initial_reduce_[live[i]])));
  }
  if (map_sum <= 0.0) {
    for (std::size_t i = 0; i < live.size(); ++i) {
      map_weight[i] = static_cast<double>(initial_map_[live[i]]);
    }
  }
  if (reduce_sum <= 0.0) {
    for (std::size_t i = 0; i < live.size(); ++i) {
      reduce_weight[i] = static_cast<double>(initial_reduce_[live[i]]);
    }
  }

  const std::vector<int> map_place = place(total_map, map_weight, map_ceiling);
  const std::vector<int> reduce_place =
      place(total_reduce, reduce_weight, reduce_ceiling);

  int moved = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    auto& tracker = trackers[live[i]];
    moved += std::abs(tracker.map_target() - map_place[i]) +
             std::abs(tracker.reduce_target() - reduce_place[i]);
    tracker.set_map_target(map_place[i]);
    tracker.set_reduce_target(reduce_place[i]);
  }
  slots_moved_ += moved;

  if (decision_log_ != nullptr) {
    obs::SlotDecision decision;
    decision.time = stats.now;
    decision.running_reduces = stats.running_reduces;
    decision.total_reduces = stats.total_reduces;
    decision.slow_start_passed = true;
    decision.action = obs::SlotAction::kHoldBalanced;
    std::ostringstream reason;
    reason << "placement: moved=" << moved << " live_nodes=" << live.size()
           << " map_total=" << total_map << " reduce_total=" << total_reduce;
    decision.reason = reason.str();
    decision_log_->record(std::move(decision));
  }
}

}  // namespace smr::alloc
