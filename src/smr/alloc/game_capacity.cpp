#include "smr/alloc/game_capacity.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "smr/alloc/apportion.hpp"
#include "smr/common/error.hpp"
#include "smr/obs/decision_log.hpp"

namespace smr::alloc {

namespace {

int live_capacity(std::span<mapreduce::TaskTracker> trackers,
                  const mapreduce::ClusterStats& stats) {
  int capacity = 0;
  for (const auto& tracker : trackers) {
    const auto n = static_cast<std::size_t>(tracker.node());
    if (n < stats.per_node.size() &&
        (!stats.per_node[n].alive || stats.per_node[n].blacklisted)) {
      continue;
    }
    capacity += tracker.map_target() + tracker.reduce_target();
  }
  return capacity;
}

}  // namespace

GameCapacityAllocator::GameCapacityAllocator(GameCapacityConfig config)
    : config_(config) {
  SMR_CHECK(config_.max_iterations >= 1);
  SMR_CHECK(config_.tolerance > 0.0);
  SMR_CHECK(config_.deadline_weight >= 0.0);
  SMR_CHECK(config_.urgency_scale > 0.0);
  SMR_CHECK(config_.min_share >= 0);
}

void GameCapacityAllocator::on_period(
    std::span<mapreduce::TaskTracker> trackers,
    const mapreduce::ClusterStats& stats) {
  if (!stats.has_active_job) return;

  // Demands and utility weights, job-id order.
  std::vector<double> demand, weight;
  demand.reserve(stats.job_stats.size());
  weight.reserve(stats.job_stats.size());
  double demand_total = 0.0;
  for (const auto& js : stats.job_stats) {
    const double d = static_cast<double>(js.demand());
    demand.push_back(d);
    double w = 1.0;
    if (config_.deadline_weight > 0.0 && js.deadline != kTimeNever) {
      const double remaining = std::max(0.0, js.deadline - stats.now);
      w += config_.deadline_weight /
           (1.0 + remaining / config_.urgency_scale);
    }
    weight.push_back(w);
    demand_total += d;
  }

  const int capacity = live_capacity(trackers, stats);
  const auto cap_table_size =
      stats.job_stats.empty()
          ? std::size_t{0}
          : static_cast<std::size_t>(stats.job_stats.back().job) + 1;

  if (demand_total <= static_cast<double>(capacity)) {
    // No scarcity: the equilibrium gives everyone their full demand, so
    // every cap is lifted (single-job runs never feel the allocator).
    caps_.assign(cap_table_size, -1);
    if (decision_log_ != nullptr) {
      obs::SlotDecision decision;
      decision.time = stats.now;
      decision.running_reduces = stats.running_reduces;
      decision.total_reduces = stats.total_reduces;
      decision.slow_start_passed = true;
      decision.action = obs::SlotAction::kHoldBalanced;
      std::ostringstream reason;
      reason << "game: uncontended demand=" << demand_total
             << " capacity=" << capacity;
      decision.reason = reason.str();
      decision_log_->record(std::move(decision));
    }
    return;
  }

  // Tatonnement: bisect the slot price λ until the best responses
  // x_j(λ) = clamp(w_j/λ − 1, 0, d_j) clear capacity.  The bracket is
  // [λ_lo → everyone demands fully, λ_hi → nobody buys], so the clearing
  // price always lies inside it.
  const auto response_sum = [&](double price) {
    double sum = 0.0;
    for (std::size_t j = 0; j < demand.size(); ++j) {
      if (demand[j] <= 0.0) continue;
      const double x = weight[j] / price - 1.0;
      sum += std::clamp(x, 0.0, demand[j]);
    }
    return sum;
  };
  double lo = 1e-9;
  double hi = 2.0 * *std::max_element(weight.begin(), weight.end());
  const double target = static_cast<double>(capacity);
  int iterations = 0;
  bool converged = false;
  double price = hi;
  while (iterations < config_.max_iterations) {
    ++iterations;
    price = 0.5 * (lo + hi);
    const double sum = response_sum(price);
    if (std::abs(sum - target) <= config_.tolerance * std::max(target, 1.0)) {
      converged = true;
      break;
    }
    if (sum > target) {
      lo = price;  // too cheap: demand exceeds capacity
    } else {
      hi = price;
    }
  }
  last_iterations_ = iterations;
  last_converged_ = converged;
  last_price_ = price;
  ++equilibria_;

  // Freeze the equilibrium responses as integer caps.
  std::vector<double> shares(demand.size(), 0.0);
  for (std::size_t j = 0; j < demand.size(); ++j) {
    if (demand[j] <= 0.0) continue;
    shares[j] = std::clamp(weight[j] / price - 1.0, 0.0, demand[j]);
  }
  const std::vector<int> granted = largest_remainder(capacity, shares);
  caps_.assign(cap_table_size, -1);
  for (std::size_t j = 0; j < stats.job_stats.size(); ++j) {
    int cap = granted[j];
    if (config_.min_share > 0 && demand[j] > 0.0) {
      cap = std::max(cap, std::min(config_.min_share,
                                   static_cast<int>(demand[j])));
    }
    caps_[static_cast<std::size_t>(stats.job_stats[j].job)] = cap;
  }

  if (decision_log_ != nullptr) {
    obs::SlotDecision decision;
    decision.time = stats.now;
    decision.running_reduces = stats.running_reduces;
    decision.total_reduces = stats.total_reduces;
    decision.slow_start_passed = true;
    decision.action = obs::SlotAction::kHoldBalanced;
    std::ostringstream reason;
    reason << "game: jobs=" << stats.job_stats.size()
           << " capacity=" << capacity << " price=" << price
           << " iters=" << iterations << " converged=" << (converged ? 1 : 0);
    decision.reason = reason.str();
    decision_log_->record(std::move(decision));
  }
}

}  // namespace smr::alloc
