// Structured audit log of slot-manager decisions.
//
// Every SmrSlotPolicy::on_period with an active job appends one record:
// what the manager saw (windowed rates R_t and R_s, the reduce census
// n/N, the balance factor f), what state its gates were in (slow start,
// thrash detector strikes/ceiling), and what it did, with a
// human-readable reason.  The log turns the paper's runtime feedback loop
// from a black box into a replayable series: tests assert on it, the CLI
// exports it as CSV (--decisions-out) and the trace mirrors it as
// POLICY_DECISION events next to the task slices.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::obs {

/// The action a slot-manager period resolved to.
enum class SlotAction {
  kHoldSlowStart,   // slow-start gate still closed; no decision taken
  kHoldNoStats,     // no map output landed in the window; no basis to act
  kHoldBalanced,    // f inside the balance band, or a climb was gated
  kGrowMaps,        // map-heavy: +1 map slot
  kShrinkMaps,      // reduce-heavy: -1 map slot
  kRevertThrash,    // thrashing confirmed: revert to the last good count
  kTailStretch,     // no unfinished maps: release maps / boost reduces
};

const char* to_string(SlotAction action);

struct SlotDecision {
  /// Dense per-log index, assigned by DecisionLog::record.  Stable across
  /// a run, so span attempts can cite the decision that enabled their
  /// launch (Span::decision_id) and smr_inspect can join the two logs.
  int id = -1;
  SimTime time = 0.0;

  // What the manager saw (paper §III-C statistics).
  double map_output_rate = 0.0;  // R_t, bytes/s
  double shuffle_rate = 0.0;     // R_s, bytes/s
  int running_reduces = 0;       // n
  int total_reduces = 0;         // N
  /// f = R_s / ((n/N)·R_t); empty when nothing was shuffling.
  std::optional<double> balance_factor;

  // Gate state.
  bool slow_start_passed = false;
  bool thrash_suspected = false;
  bool thrash_confirmed = false;
  int thrash_strikes = 0;
  /// Thrash ceiling in force, or -1 when unconfirmed (no ceiling).
  int thrash_ceiling = -1;

  // What it did.
  int map_slots_before = 0;
  int map_slots_after = 0;
  int reduce_slots_before = 0;
  int reduce_slots_after = 0;
  SlotAction action = SlotAction::kHoldBalanced;
  std::string reason;

  bool changed_slots() const {
    return map_slots_before != map_slots_after ||
           reduce_slots_before != reduce_slots_after;
  }
};

class DecisionLog {
 public:
  void record(SlotDecision decision) {
    decision.id = static_cast<int>(decisions_.size());
    decisions_.push_back(std::move(decision));
  }
  const std::vector<SlotDecision>& decisions() const { return decisions_; }
  std::size_t size() const { return decisions_.size(); }
  bool empty() const { return decisions_.empty(); }
  void clear() { decisions_.clear(); }

  /// Decisions that resolved to `action`, in time order.
  std::vector<SlotDecision> of_action(SlotAction action) const;

 private:
  std::vector<SlotDecision> decisions_;
};

/// One CSV row per decision (header included; reason CSV-quoted):
/// id,time,action,map_output_rate,shuffle_rate,running_reduces,total_reduces,
/// balance_factor,slow_start_passed,thrash_suspected,thrash_confirmed,
/// thrash_strikes,thrash_ceiling,map_slots_before,map_slots_after,
/// reduce_slots_before,reduce_slots_after,reason.
/// An empty balance_factor cell means f was undefined that period.
void write_decisions_csv(const DecisionLog& log, std::ostream& out);

}  // namespace smr::obs
