#include "smr/obs/critical_path.hpp"

#include <algorithm>
#include <ostream>

namespace smr::obs {

namespace {

/// The retry chain that produced `last`: walks retry_of backward, returns
/// [earliest predecessor, ..., last] in launch order.
std::vector<const Span*> retry_chain(const SpanLog& log, const Span& last) {
  std::vector<const Span*> chain;
  const Span* cur = &last;
  chain.push_back(cur);
  while (cur->retry_of != kInvalidSpan) {
    const Span& pred = log.at(cur->retry_of);
    if (!pred.closed()) break;  // defensive: never walk into an open span
    chain.push_back(&pred);
    cur = &pred;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

/// Splits one launch gap: the first heartbeat-period's worth is the
/// control plane being unable to react faster, the rest is a genuine
/// wait for a free slot.
void attribute_gap(double gap, SimTime heartbeat_period,
                   CriticalPathSegments& seg) {
  if (gap <= 0.0) return;
  const double sched = std::min(gap, heartbeat_period);
  seg.scheduler_overhead += sched;
  seg.wait_for_slot += gap - sched;
}

struct ChainResult {
  int attempts = 0;
  int retries = 0;
  /// End of the last (successful) attempt; `floor` if the chain is empty.
  SimTime end = 0.0;
};

/// Attributes [floor, chain end] for the chain that produced `last`.
/// Predecessor attempt durations count as retry; the successful attempt
/// counts as compute (maps) or is split at shuffle_end into
/// data_transfer + compute (reduces); every launch gap is split by
/// attribute_gap.
ChainResult walk_chain(const SpanLog& log, const Span& last, SimTime floor,
                       SimTime heartbeat_period, CriticalPathSegments& seg) {
  const auto chain = retry_chain(log, last);
  ChainResult result;
  result.attempts = static_cast<int>(chain.size());
  result.retries = static_cast<int>(chain.size()) - 1;
  result.end = last.end;

  SimTime cursor = floor;
  for (const Span* attempt : chain) {
    attribute_gap(attempt->start - cursor, heartbeat_period, seg);
    const bool successful = attempt == chain.back();
    if (!successful) {
      seg.retry += attempt->duration();
    } else if (attempt->is_map) {
      seg.compute += attempt->duration();
    } else if (attempt->shuffle_end == kTimeNever) {
      // A reduce that never reported its shuffle end spent its whole
      // life fetching map output.
      seg.data_transfer += attempt->duration();
    } else {
      const SimTime split =
          std::clamp(attempt->shuffle_end, attempt->start, attempt->end);
      seg.data_transfer += split - attempt->start;
      seg.compute += attempt->end - split;
    }
    cursor = attempt->end;
  }
  return result;
}

/// Last-finishing closed attempt matching the predicate, or nullptr.
template <typename Pred>
const Span* last_finishing(const std::vector<Span>& attempts, Pred pred) {
  const Span* best = nullptr;
  for (const Span& a : attempts) {
    if (!pred(a)) continue;
    if (best == nullptr || a.end > best->end ||
        (a.end == best->end && a.id > best->id)) {
      best = &a;
    }
  }
  return best;
}

void write_segments(std::ostream& out, const CriticalPathSegments& seg) {
  out << "{\"wait_for_slot\":" << seg.wait_for_slot
      << ",\"data_transfer\":" << seg.data_transfer
      << ",\"compute\":" << seg.compute << ",\"retry\":" << seg.retry
      << ",\"scheduler_overhead\":" << seg.scheduler_overhead
      << ",\"total\":" << seg.total() << "}";
}

}  // namespace

CriticalPathReport analyze_critical_path(const SpanLog& log,
                                         SimTime heartbeat_period) {
  CriticalPathReport report;
  for (const Span& job_span : log.of_kind(SpanKind::kJob)) {
    if (!job_span.closed() || job_span.outcome != SpanOutcome::kOk) {
      ++report.skipped_jobs;
      continue;
    }
    JobCriticalPath jcp;
    jcp.job = job_span.job;
    jcp.name = job_span.name;
    jcp.submit = job_span.start;
    jcp.finish = job_span.end;
    jcp.makespan = job_span.end - job_span.start;

    const auto attempts = log.attempts_of_job(job_span.job);
    const Span* last_reduce = last_finishing(attempts, [](const Span& a) {
      return !a.is_map && a.outcome == SpanOutcome::kOk;
    });
    const Span* last_map = last_finishing(attempts, [](const Span& a) {
      return a.is_map && a.outcome == SpanOutcome::kOk;
    });

    CriticalPathSegments& seg = jcp.segments;
    if (last_reduce != nullptr) {
      // Two chains: the map chain gates reduce eligibility, the reduce
      // chain gates the finish.
      SimTime eligible = job_span.reduce_eligible != kTimeNever
                             ? job_span.reduce_eligible
                             : last_reduce->start;
      eligible = std::clamp(eligible, job_span.start, job_span.end);

      const auto reduce_chain = walk_chain(log, *last_reduce, eligible,
                                           heartbeat_period, seg);
      jcp.attempts_on_path += reduce_chain.attempts;
      jcp.retries_on_path += reduce_chain.retries;
      // The finish event fires at the last reduce completion; anything
      // between (there should be nothing) is control-plane residue.
      seg.scheduler_overhead +=
          std::max(0.0, job_span.end - reduce_chain.end);

      // Map chain: the last successful map finishing by the eligibility
      // crossing is the one whose completion opened the reduce phase.
      const Span* gating_map = nullptr;
      for (const Span& a : attempts) {
        if (!a.is_map || a.outcome != SpanOutcome::kOk) continue;
        if (a.end > eligible) continue;
        if (gating_map == nullptr || a.end > gating_map->end ||
            (a.end == gating_map->end && a.id > gating_map->id)) {
          gating_map = &a;
        }
      }
      if (gating_map != nullptr) {
        const auto map_chain = walk_chain(log, *gating_map, job_span.start,
                                          heartbeat_period, seg);
        jcp.attempts_on_path += map_chain.attempts;
        jcp.retries_on_path += map_chain.retries;
        seg.scheduler_overhead += std::max(0.0, eligible - map_chain.end);
      } else {
        // No map finished by the crossing (degenerate slow-start): the
        // whole head is one launch gap.
        attribute_gap(eligible - job_span.start, heartbeat_period, seg);
      }
    } else if (last_map != nullptr) {
      // Map-only job.
      const auto map_chain =
          walk_chain(log, *last_map, job_span.start, heartbeat_period, seg);
      jcp.attempts_on_path += map_chain.attempts;
      jcp.retries_on_path += map_chain.retries;
      seg.scheduler_overhead += std::max(0.0, job_span.end - map_chain.end);
    } else {
      // A job with no successful attempt should not be kOk; be lenient
      // in the analyzer and book everything as wait.
      attribute_gap(jcp.makespan, heartbeat_period, seg);
    }

    // Clamped gaps can only under-count, so the residue is non-negative
    // (modulo float noise); fold it into scheduler_overhead so the
    // segments sum to the makespan exactly.
    seg.scheduler_overhead += jcp.makespan - seg.total();

    report.aggregate += jcp.segments;
    report.jobs.push_back(std::move(jcp));
  }
  return report;
}

void CriticalPathReport::write_json(std::ostream& out) const {
  out << "{\"type\":\"critpath\",\"jobs\":[";
  bool first = true;
  for (const auto& jcp : jobs) {
    if (!first) out << ",";
    first = false;
    out << "{\"job\":" << jcp.job << ",\"name\":\"" << jcp.name
        << "\",\"submit\":" << jcp.submit << ",\"finish\":" << jcp.finish
        << ",\"makespan\":" << jcp.makespan << ",\"segments\":";
    write_segments(out, jcp.segments);
    out << ",\"attempts_on_path\":" << jcp.attempts_on_path
        << ",\"retries_on_path\":" << jcp.retries_on_path << "}";
  }
  out << "],\"aggregate\":";
  write_segments(out, aggregate);
  out << ",\"skipped_jobs\":" << skipped_jobs << "}\n";
}

}  // namespace smr::obs
