#include "smr/obs/self_profile.hpp"

#include <ostream>

namespace smr::obs {

void EngineProfile::write_json(std::ostream& out) const {
  out << "{\"type\":\"engine\",\"wall_seconds\":" << wall_seconds
      << ",\"sim_seconds\":" << sim_seconds << ",\"events\":" << events
      << ",\"events_per_sec\":" << events_per_sec()
      << ",\"speedup\":" << speedup() << ",\"peak_pending\":" << peak_pending
      << ",\"trace_events\":" << trace_events
      << ",\"trace_bytes\":" << trace_bytes << "}";
}

}  // namespace smr::obs
