#include "smr/obs/decision_log.hpp"

#include <ostream>

#include "smr/common/csv.hpp"

namespace smr::obs {

const char* to_string(SlotAction action) {
  switch (action) {
    case SlotAction::kHoldSlowStart: return "HOLD_SLOW_START";
    case SlotAction::kHoldNoStats: return "HOLD_NO_STATS";
    case SlotAction::kHoldBalanced: return "HOLD_BALANCED";
    case SlotAction::kGrowMaps: return "GROW_MAPS";
    case SlotAction::kShrinkMaps: return "SHRINK_MAPS";
    case SlotAction::kRevertThrash: return "REVERT_THRASH";
    case SlotAction::kTailStretch: return "TAIL_STRETCH";
  }
  return "UNKNOWN";
}

std::vector<SlotDecision> DecisionLog::of_action(SlotAction action) const {
  std::vector<SlotDecision> matching;
  for (const auto& decision : decisions_) {
    if (decision.action == action) matching.push_back(decision);
  }
  return matching;
}

void write_decisions_csv(const DecisionLog& log, std::ostream& out) {
  out << "id,time,action,map_output_rate,shuffle_rate,running_reduces,"
         "total_reduces,balance_factor,slow_start_passed,thrash_suspected,"
         "thrash_confirmed,thrash_strikes,thrash_ceiling,map_slots_before,"
         "map_slots_after,reduce_slots_before,reduce_slots_after,reason\n";
  for (const auto& d : log.decisions()) {
    out << d.id << ',' << d.time << ',' << to_string(d.action) << ',' << d.map_output_rate
        << ',' << d.shuffle_rate << ',' << d.running_reduces << ','
        << d.total_reduces << ',';
    if (d.balance_factor) out << *d.balance_factor;
    out << ',' << (d.slow_start_passed ? 1 : 0) << ','
        << (d.thrash_suspected ? 1 : 0) << ',' << (d.thrash_confirmed ? 1 : 0)
        << ',' << d.thrash_strikes << ',' << d.thrash_ceiling << ','
        << d.map_slots_before << ',' << d.map_slots_after << ','
        << d.reduce_slots_before << ',' << d.reduce_slots_after << ','
        << csv_quote(d.reason) << '\n';
  }
}

}  // namespace smr::obs
