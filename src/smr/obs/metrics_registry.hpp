// Thread-safe metrics registry: named counters, gauges, fixed-bucket
// histograms and (optionally labeled) time series.
//
// The registry hands out stable references — instruments live as long as
// the registry — so hot paths look up an instrument once and then update
// it lock-free (counters and gauges are atomics; histogram buckets are an
// atomic array).  Series appends take a per-series mutex, which is fine
// for the sampling rates involved (a few Hz of simulated time).
//
// Safe to use concurrently from ThreadPool workers: benches running
// independent simulations on the pool may share one registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::obs {

/// Default bucket bounds (seconds) for task-duration histograms.
inline const std::vector<double> kDurationBounds = {
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};

class Counter {
 public:
  void inc(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest.  Bounds are set at creation
/// and never change.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; `i == bounds().size()` is the overflow bucket.
  std::int64_t bucket_count(std::size_t i) const;
  std::int64_t total_count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Smallest / largest value ever observed (NaN when empty).  Tracked so
  /// quantile() can stay consistent with stats::percentile at the edges.
  double min() const;
  double max() const;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank, Prometheus histogram_quantile-style.
  /// Agrees exactly with stats::percentile at the points a diff tool
  /// compares: q=0 is the observed min, q=1 the observed max, a
  /// single-sample histogram returns that sample for every q, and every
  /// interpolated estimate is clamped to [min, max] (the overflow bucket
  /// interpolates between the largest finite bound and the observed max
  /// instead of flatlining at the bound).  NaN when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// An append-only (time, value) series.
class Series {
 public:
  struct Sample {
    double time = 0.0;
    double value = 0.0;
  };

  void append(double time, double value);
  std::vector<Sample> samples() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Sample> samples_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get or create an instrument.  References remain valid for the life of
  /// the registry.  Creating the same name with two different instrument
  /// kinds is a programming error and aborts.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is consulted only on first creation.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  Series& series(const std::string& name);
  /// Labeled series: stored under the canonical key
  /// `name{k1="v1",k2="v2"}` (keys sorted, Prometheus-style).
  Series& series(const std::string& name,
                 const std::map<std::string, std::string>& labels);

  /// Instrument names currently registered, sorted.
  std::vector<std::string> names() const;

  /// JSON-lines dump: one object per counter/gauge/histogram and one per
  /// series *sample* ({"type":"series","name":...,"t":...,"v":...}).
  void write_jsonl(std::ostream& out) const;

  /// All series flattened to CSV: name,time,value (name CSV-quoted).
  void write_series_csv(std::ostream& out) const;

 private:
  struct Instrument {
    // Exactly one is non-null.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Series> series;
  };

  Instrument& slot(const std::string& name);

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;  // sorted for stable output
};

/// Canonical key for a labeled metric: `name{k1="v1",...}` with keys in
/// map (i.e. sorted) order; `name` unchanged when labels are empty.
std::string labeled_name(const std::string& name,
                         const std::map<std::string, std::string>& labels);

}  // namespace smr::obs
