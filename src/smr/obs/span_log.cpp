#include "smr/obs/span_log.hpp"

#include <ostream>

#include "smr/common/error.hpp"
#include "smr/common/json.hpp"

namespace smr::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRun: return "run";
    case SpanKind::kJob: return "job";
    case SpanKind::kPhase: return "phase";
    case SpanKind::kWave: return "wave";
    case SpanKind::kAttempt: return "attempt";
  }
  return "unknown";
}

const char* to_string(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kOpen: return "open";
    case SpanOutcome::kOk: return "ok";
    case SpanOutcome::kFailed: return "failed";
    case SpanOutcome::kKilled: return "killed";
    case SpanOutcome::kAborted: return "aborted";
  }
  return "unknown";
}

SpanId SpanLog::open(SpanKind kind, std::string name, SimTime start,
                     SpanId parent) {
  SMR_CHECK_MSG(parent == kInvalidSpan ||
                    static_cast<std::size_t>(parent) < spans_.size(),
                "span parent " << parent << " does not exist");
  Span span;
  span.id = static_cast<SpanId>(spans_.size());
  span.parent = parent;
  span.kind = kind;
  span.name = std::move(name);
  span.start = start;
  if (parent != kInvalidSpan) {
    // Attempts inherit the job of their enclosing phase/wave/job span so
    // attempts_of_job works without the caller re-stating it.
    span.job = spans_[static_cast<std::size_t>(parent)].job;
  }
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void SpanLog::close(SpanId id, SimTime end, SpanOutcome outcome) {
  Span& span = at(id);
  SMR_CHECK_MSG(!span.closed(), "span " << id << " closed twice");
  span.end = end;
  span.outcome = outcome;
}

Span& SpanLog::at(SpanId id) {
  SMR_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < spans_.size(),
                "unknown span " << id);
  return spans_[static_cast<std::size_t>(id)];
}

const Span& SpanLog::at(SpanId id) const {
  SMR_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < spans_.size(),
                "unknown span " << id);
  return spans_[static_cast<std::size_t>(id)];
}

std::vector<Span> SpanLog::of_kind(SpanKind kind) const {
  std::vector<Span> matching;
  for (const auto& span : spans_) {
    if (span.kind == kind) matching.push_back(span);
  }
  return matching;
}

std::vector<Span> SpanLog::attempts_of_job(JobId job) const {
  std::vector<Span> matching;
  for (const auto& span : spans_) {
    if (span.kind == SpanKind::kAttempt && span.job == job && span.closed()) {
      matching.push_back(span);
    }
  }
  return matching;
}

std::size_t SpanLog::open_count() const {
  std::size_t open = 0;
  for (const auto& span : spans_) {
    if (!span.closed()) ++open;
  }
  return open;
}

void SpanLog::close_open(SimTime end, SpanOutcome outcome) {
  for (auto& span : spans_) {
    if (!span.closed()) {
      span.end = end;
      span.outcome = outcome;
    }
  }
}

namespace {

/// kTimeNever is not representable in JSON; open spans emit null.
void write_time(std::ostream& out, SimTime t) {
  if (t == kTimeNever) {
    out << "null";
  } else {
    out << t;
  }
}

}  // namespace

void SpanLog::write_jsonl(std::ostream& out) const {
  for (const Span& s : spans_) {
    out << "{\"type\":\"span\",\"id\":" << s.id << ",\"parent\":" << s.parent
        << ",\"kind\":\"" << to_string(s.kind) << "\",\"name\":";
    write_json_string(out, s.name);
    out << ",\"start\":" << s.start << ",\"end\":";
    write_time(out, s.end);
    out << ",\"outcome\":\"" << to_string(s.outcome) << "\",\"job\":" << s.job
        << ",\"task\":" << s.task << ",\"node\":" << s.node
        << ",\"is_map\":" << (s.is_map ? "true" : "false")
        << ",\"speculative\":" << (s.speculative ? "true" : "false")
        << ",\"decision_id\":" << s.decision_id << ",\"decision_time\":";
    write_time(out, s.decision_time);
    out << ",\"retry_of\":" << s.retry_of << ",\"shuffle_end\":";
    write_time(out, s.shuffle_end);
    out << ",\"reduce_eligible\":";
    write_time(out, s.reduce_eligible);
    out << "}\n";
  }
}

}  // namespace smr::obs
