// Critical-path attribution over a completed span DAG.
//
// For every finished job the analyzer walks backward from the job's end
// through the attempt chain that determined it — the last-finishing
// reduce attempt, its retry predecessors, the eligibility crossing that
// let reduces launch, and the map attempt chain behind that crossing —
// and attributes every second of the makespan to one of five segments:
//
//   * compute            — attempt time spent in CPU/disk-bound phases
//                          (map/combine/spill, sort/reduce);
//   * data_transfer      — reduce attempt time up to the shuffle end
//                          (fetching map output over the network);
//   * retry              — time burned by failed or killed predecessor
//                          attempts on the path;
//   * scheduler_overhead — the first heartbeat-period's worth of every
//                          launch gap (a task cannot launch before a
//                          tracker heartbeats) plus control-plane timing
//                          residue;
//   * wait_for_slot      — the rest of every launch gap: the task was
//                          runnable but no slot was free.
//
// The segments of one job sum to its makespan exactly (finish - submit),
// which is what makes diffs of two runs meaningful: a slot-policy change
// moves seconds between wait_for_slot and compute, a fault-rate change
// grows retry.  smr_sim emits the report via --critpath-out; smr_inspect
// diffs it between runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "smr/common/types.hpp"
#include "smr/obs/span_log.hpp"

namespace smr::obs {

struct CriticalPathSegments {
  double wait_for_slot = 0.0;
  double data_transfer = 0.0;
  double compute = 0.0;
  double retry = 0.0;
  double scheduler_overhead = 0.0;

  double total() const {
    return wait_for_slot + data_transfer + compute + retry + scheduler_overhead;
  }
  CriticalPathSegments& operator+=(const CriticalPathSegments& other) {
    wait_for_slot += other.wait_for_slot;
    data_transfer += other.data_transfer;
    compute += other.compute;
    retry += other.retry;
    scheduler_overhead += other.scheduler_overhead;
    return *this;
  }
};

struct JobCriticalPath {
  JobId job = kInvalidJob;
  std::string name;
  SimTime submit = 0.0;
  SimTime finish = 0.0;
  double makespan = 0.0;
  CriticalPathSegments segments;
  int attempts_on_path = 0;
  int retries_on_path = 0;
};

struct CriticalPathReport {
  std::vector<JobCriticalPath> jobs;
  CriticalPathSegments aggregate;
  /// Jobs in the log that could not be analyzed (failed, aborted, still
  /// open); their time is not in the aggregate.
  int skipped_jobs = 0;

  /// {"type":"critpath", "jobs":[...], "aggregate":{...}} on one stream.
  void write_json(std::ostream& out) const;
};

/// Walk every successfully finished job in `log`.  `heartbeat_period`
/// bounds the per-launch scheduler-overhead share of each gap.
CriticalPathReport analyze_critical_path(const SpanLog& log,
                                         SimTime heartbeat_period);

}  // namespace smr::obs
