#include "smr/obs/metrics_registry.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "smr/common/csv.hpp"
#include "smr/common/error.hpp"
#include "smr/common/json.hpp"

namespace smr::obs {

namespace {

void add_to_atomic_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SMR_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  SMR_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

namespace {

void atomic_min_double(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_to_atomic_double(sum_, value);
  atomic_min_double(min_, value);
  atomic_max_double(max_, value);
}

double Histogram::min() const {
  if (total_count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  if (total_count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return max_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::bucket_count(std::size_t i) const {
  SMR_CHECK(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  SMR_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  const std::int64_t total = total_count();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  // The exact-agreement points with stats::percentile: the edges and the
  // degenerate single-sample histogram (where every quantile IS the
  // sample).  Without these, smr_inspect run diffs flagged phantom p99
  // regressions whenever one side's tail landed in the overflow bucket.
  if (q == 0.0) return lo;
  if (q == 1.0 || total == 1) return hi;
  // Target rank in [1, total]; the smallest bucket whose cumulative count
  // reaches it holds the quantile.
  const double rank = q * static_cast<double>(total);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::int64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    const std::int64_t before = cumulative;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double into_bucket =
        (rank - static_cast<double>(before)) / static_cast<double>(in_bucket);
    const double estimate =
        lower + (upper - lower) * std::clamp(into_bucket, 0.0, 1.0);
    // Bucket edges can lie outside the observed range; never report a
    // value no sample could have had.
    return std::clamp(estimate, lo, hi);
  }
  // Rank landed in the overflow bucket: interpolate between the largest
  // finite bound and the observed max instead of flatlining at the bound
  // (which understated every tail quantile).
  const std::int64_t overflow = bucket_count(bounds_.size());
  const std::int64_t before = total - overflow;
  const double lower = std::clamp(bounds_.back(), lo, hi);
  const double into_bucket =
      (rank - static_cast<double>(before)) / static_cast<double>(overflow);
  return lower + (hi - lower) * std::clamp(into_bucket, 0.0, 1.0);
}

void Series::append(double time, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back({time, value});
}

std::vector<Series::Sample> Series::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

std::string labeled_name(const std::string& name,
                         const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key.push_back(',');
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key.push_back('"');
  }
  key.push_back('}');
  return key;
}

MetricsRegistry::Instrument& MetricsRegistry::slot(const std::string& name) {
  return instruments_[name];  // default-constructed on first use
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = slot(name);
  if (!inst.counter) {
    SMR_CHECK_MSG(!inst.gauge && !inst.histogram && !inst.series,
                  "metric '" << name << "' already registered with another kind");
    inst.counter = std::make_unique<Counter>();
  }
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = slot(name);
  if (!inst.gauge) {
    SMR_CHECK_MSG(!inst.counter && !inst.histogram && !inst.series,
                  "metric '" << name << "' already registered with another kind");
    inst.gauge = std::make_unique<Gauge>();
  }
  return *inst.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = slot(name);
  if (!inst.histogram) {
    SMR_CHECK_MSG(!inst.counter && !inst.gauge && !inst.series,
                  "metric '" << name << "' already registered with another kind");
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *inst.histogram;
}

Series& MetricsRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = slot(name);
  if (!inst.series) {
    SMR_CHECK_MSG(!inst.counter && !inst.gauge && !inst.histogram,
                  "metric '" << name << "' already registered with another kind");
    inst.series = std::make_unique<Series>();
  }
  return *inst.series;
}

Series& MetricsRegistry::series(const std::string& name,
                                const std::map<std::string, std::string>& labels) {
  return series(labeled_name(name, labels));
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(instruments_.size());
  for (const auto& [name, inst] : instruments_) out.push_back(name);
  return out;
}

void MetricsRegistry::write_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, inst] : instruments_) {
    if (inst.counter) {
      out << "{\"type\":\"counter\",\"name\":";
      write_json_string(out, name);
      out << ",\"value\":" << inst.counter->value() << "}\n";
    } else if (inst.gauge) {
      out << "{\"type\":\"gauge\",\"name\":";
      write_json_string(out, name);
      out << ",\"value\":" << inst.gauge->value() << "}\n";
    } else if (inst.histogram) {
      const Histogram& h = *inst.histogram;
      out << "{\"type\":\"histogram\",\"name\":";
      write_json_string(out, name);
      out << ",\"count\":" << h.total_count() << ",\"sum\":" << h.sum()
          << ",\"bounds\":[";
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        if (i) out << ',';
        out << h.bounds()[i];
      }
      out << "],\"buckets\":[";
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i) out << ',';
        out << h.bucket_count(i);
      }
      out << "]";
      if (h.total_count() > 0) {
        out << ",\"p50\":" << h.p50() << ",\"p95\":" << h.p95()
            << ",\"p99\":" << h.p99();
      }
      out << "}\n";
    } else if (inst.series) {
      for (const auto& sample : inst.series->samples()) {
        out << "{\"type\":\"series\",\"name\":";
        write_json_string(out, name);
        out << ",\"t\":" << sample.time << ",\"v\":" << sample.value << "}\n";
      }
    }
  }
}

void MetricsRegistry::write_series_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "name,time,value\n";
  for (const auto& [name, inst] : instruments_) {
    if (!inst.series) continue;
    for (const auto& sample : inst.series->samples()) {
      out << csv_quote(name) << ',' << sample.time << ',' << sample.value << '\n';
    }
  }
}

}  // namespace smr::obs
