// Causal span tree of one run: run -> job -> phase (map waves, shuffle,
// reduce) -> task attempt.
//
// Where the TraceLog is a flat event stream, the SpanLog is hierarchical
// and causally linked: every span knows its parent, every retry attempt
// points at the attempt whose failure caused it (`retry_of`), and every
// launch carries the id of the slot-policy decision that most recently
// changed the slot targets it launched under (`decision_id`).  The
// critical-path analyzer (critical_path.hpp) walks this DAG to attribute
// a job's makespan; the Chrome-trace writer renders it as nested slices
// with flow arrows.
//
// Attach with Runtime::set_spans(&log) before run().  Recording is purely
// observational: a run with and without a SpanLog attached is
// bit-identical, and with no log attached the runtime's span hooks reduce
// to a null-pointer test (guarded by the smr_perfbench span-overhead
// entries).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::obs {

using SpanId = std::int32_t;
inline constexpr SpanId kInvalidSpan = -1;

enum class SpanKind {
  kRun,      // the whole simulation
  kJob,      // submit -> finish of one job
  kPhase,    // "maps" (submit -> barrier), "shuffle", "reduce"
  kWave,     // one contiguous stretch of running map attempts
  kAttempt,  // one task attempt on one node
};

enum class SpanOutcome {
  kOpen,     // still running (only in logs cut off mid-run)
  kOk,       // completed
  kFailed,   // injected attempt failure / failed job
  kKilled,   // eager shrink, speculation race, node failure, job teardown
  kAborted,  // run aborted underneath it
};

const char* to_string(SpanKind kind);
const char* to_string(SpanOutcome outcome);

struct Span {
  SpanId id = kInvalidSpan;
  SpanId parent = kInvalidSpan;
  SpanKind kind = SpanKind::kAttempt;
  std::string name;

  SimTime start = 0.0;
  SimTime end = kTimeNever;  // kTimeNever while open
  SpanOutcome outcome = SpanOutcome::kOpen;

  JobId job = kInvalidJob;
  TaskId task = kInvalidTask;
  NodeId node = kInvalidNode;
  bool is_map = true;
  bool speculative = false;

  /// Id of the slot-policy decision (DecisionLog row) that most recently
  /// changed the slot targets this attempt launched under; -1 when the
  /// policy made no slot-changing decision yet (or keeps no log).
  int decision_id = -1;
  SimTime decision_time = kTimeNever;

  /// Attempt spans only: the earlier attempt of the same task whose
  /// failure/kill caused this launch.
  SpanId retry_of = kInvalidSpan;

  /// Reduce attempts: when the shuffle finished and compute began.
  SimTime shuffle_end = kTimeNever;

  /// Job spans: when map completion first crossed the reduce slow-start
  /// threshold, i.e. the earliest moment a reduce could launch.  The
  /// critical-path analyzer splits the makespan into a map chain before
  /// this point and a reduce chain after it.
  SimTime reduce_eligible = kTimeNever;

  bool closed() const { return end != kTimeNever; }
  SimTime duration() const { return closed() ? end - start : 0.0; }
};

/// Append-only span store.  Ids are dense indices into spans(); open() and
/// close() are O(1).  Not thread-safe (one log per runtime, like TraceLog).
class SpanLog {
 public:
  SpanId open(SpanKind kind, std::string name, SimTime start,
              SpanId parent = kInvalidSpan);
  /// Closing an already-closed span is a programming error and aborts.
  void close(SpanId id, SimTime end, SpanOutcome outcome = SpanOutcome::kOk);
  /// Mutable access for annotations (decision_id, retry_of, shuffle_end).
  Span& at(SpanId id);
  const Span& at(SpanId id) const;

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }

  /// Spans of one kind, in id (== creation) order.
  std::vector<Span> of_kind(SpanKind kind) const;
  /// Closed attempt spans belonging to `job`, in id order.
  std::vector<Span> attempts_of_job(JobId job) const;
  /// Number of spans still open (0 after a clean run).
  std::size_t open_count() const;

  /// Abort-path flush: close every open span at `end` with `outcome`.
  void close_open(SimTime end, SpanOutcome outcome = SpanOutcome::kAborted);

  /// JSON-lines export, one {"type":"span",...} object per span with the
  /// causal fields (parent, retry_of, decision_id) always present.
  void write_jsonl(std::ostream& out) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace smr::obs
