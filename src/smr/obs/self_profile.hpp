// Engine self-profiling: how much real work a simulation run cost.
//
// The simulator's own performance is a first-class metric (the ROADMAP's
// perf work needs a baseline to beat): wall-clock per run, simulated
// seconds covered, discrete events dispatched, events per wall second,
// peak event-queue depth and the heap footprint of an attached trace.
// Exported as a single-line JSON object so CLI runs (--metrics-out) and
// benches (SMR_PERF_JSON) produce machine-diffable numbers.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace smr::obs {

/// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct EngineProfile {
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  std::size_t peak_pending = 0;
  std::size_t trace_events = 0;
  std::size_t trace_bytes = 0;

  double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
  /// Simulated seconds per wall second (how much faster than real time).
  double speedup() const {
    return wall_seconds > 0.0 ? sim_seconds / wall_seconds : 0.0;
  }

  /// One-line JSON object: {"type":"engine","wall_seconds":...,...}.
  /// No trailing newline; callers embedding it in JSON-lines add their own.
  void write_json(std::ostream& out) const;
};

}  // namespace smr::obs
