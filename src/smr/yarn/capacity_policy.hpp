// YARN capacity-scheduler allocation policy.
//
// Models the scheduling behaviour the paper contrasts against (Sections I,
// II-A, VI):
//   * A shared, fungible container pool per node (no typed slots): map
//     tasks may use every container reduce tasks do not hold, so YARN runs
//     more concurrent maps than HadoopV1 early in a job and more concurrent
//     reduces in the tail.
//   * Map priority with a reduce ramp: reduce containers are admitted only
//     after the front job passes its slow-start fraction, then ramp
//     linearly up to max_reduce_fraction of cluster capacity while maps
//     remain, and are uncapped once no map work is left.
//   * One ApplicationMaster container per active job (hosted on the node
//     job_id % nodes), shrinking that node's task capacity.
//   * FIFO across jobs via the underlying task assignment order, matching
//     the paper's capacity-scheduler setup ("tries to schedule containers
//     for early submitted jobs first").
//
// Decisions surface as slot targets; the hard container capacity is
// enforced by never letting reduce admissions overlap containers that
// running maps still occupy (and vice versa), mirroring how a real RM
// waits for containers to be released.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "smr/mapreduce/policy.hpp"
#include "smr/yarn/container.hpp"
#include "smr/yarn/resources.hpp"

namespace smr::yarn {

class CapacityPolicy final : public mapreduce::AllocationPolicy {
 public:
  explicit CapacityPolicy(YarnConfig config);

  std::string name() const override { return "YARN"; }

  void on_start(std::span<mapreduce::TaskTracker> trackers) override;
  void on_heartbeat(mapreduce::TaskTracker& tracker,
                    const mapreduce::ClusterStats& stats) override;

  const YarnConfig& config() const { return config_; }

  /// Task containers available on `node` after AM reservations.
  int node_task_capacity(NodeId node, const mapreduce::ClusterStats& stats) const;

  /// Cluster-wide reduce containers currently admitted by the ramp.
  int admitted_reduces(const mapreduce::ClusterStats& stats) const;

  /// The live container ledger (nullptr before on_start).  Every running
  /// task and every ApplicationMaster of an active job occupies a Container
  /// here; NodeContainerPool throws if the capacity is ever exceeded, so a
  /// completed run proves the policy honoured the hard limits.
  const ResourceManager* resource_manager() const {
    return rm_ ? &*rm_ : nullptr;
  }

 private:
  void reconcile_ledger(const mapreduce::TaskTracker& tracker,
                        const mapreduce::ClusterStats& stats);

  YarnConfig config_;
  std::optional<ResourceManager> rm_;
  std::unordered_map<JobId, ContainerId> am_containers_;
  // Mirror of each node's running tasks, as container ids.
  std::vector<std::vector<ContainerId>> map_containers_;
  std::vector<std::vector<ContainerId>> reduce_containers_;
};

}  // namespace smr::yarn
