// Explicit container accounting: the bookkeeping half of YARN's resource
// manager.  Every concurrent task (and every ApplicationMaster) occupies a
// Container allocated against its node's advertised capacity; the pool
// enforces the capacity as a hard invariant — any attempt to oversubscribe
// throws, which is how the test suite proves the capacity policy never
// cheats.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "smr/common/types.hpp"
#include "smr/yarn/resources.hpp"

namespace smr::yarn {

using ContainerId = std::int64_t;
inline constexpr ContainerId kInvalidContainer = -1;

struct Container {
  ContainerId id = kInvalidContainer;
  NodeId node = kInvalidNode;
  Resource size;
  JobId owner = kInvalidJob;
  /// ApplicationMaster containers persist for the job's lifetime; task
  /// containers turn over per task.
  bool is_am = false;
};

/// Per-node container ledger against a fixed capacity.
class NodeContainerPool {
 public:
  NodeContainerPool(NodeId node, Resource capacity);

  NodeId node() const { return node_; }
  const Resource& capacity() const { return capacity_; }
  Resource used() const { return used_; }
  Resource available() const { return capacity_ - used_; }
  int container_count() const { return static_cast<int>(containers_.size()); }

  bool can_fit(const Resource& size) const { return size.fits_in(available()); }

  /// Record an allocation (id assigned by the ResourceManager).  Throws if
  /// the container does not fit — capacity is a hard invariant.
  void add(const Container& container);

  /// Release by id; throws on unknown id.  Returns the released container.
  Container release(ContainerId id);

  /// Containers currently held, in allocation order.
  std::vector<Container> containers() const;

 private:
  NodeId node_;
  Resource capacity_;
  Resource used_{0, 0.0};
  std::unordered_map<ContainerId, Container> containers_;
  std::vector<ContainerId> order_;
};

/// Cluster-wide allocator: assigns ids, routes to node pools, answers
/// occupancy queries.
class ResourceManager {
 public:
  ResourceManager(const YarnConfig& config, int nodes);

  int nodes() const { return static_cast<int>(pools_.size()); }
  const YarnConfig& config() const { return config_; }

  /// Allocate on a specific node; nullopt if it does not fit.
  std::optional<ContainerId> allocate(NodeId node, const Resource& size,
                                      JobId owner, bool is_am);

  void release(ContainerId id);

  bool contains(ContainerId id) const { return owner_node_.count(id) > 0; }
  const NodeContainerPool& pool(NodeId node) const;

  /// Total containers currently allocated (AM + task).
  int cluster_allocated() const { return static_cast<int>(owner_node_.size()); }

  /// Task containers (sized config().container) the node can still take.
  int node_free_task_containers(NodeId node) const;

 private:
  YarnConfig config_;
  std::vector<NodeContainerPool> pools_;
  std::unordered_map<ContainerId, NodeId> owner_node_;
  ContainerId next_id_ = 1;
};

}  // namespace smr::yarn
