// YARN resource vectors and container sizing.
//
// YARN abandons typed slots for fungible containers sized in memory and
// vcores (Section I / VI of the paper).  The node manager advertises a
// resource capacity; the scheduler hands out containers against it.  The
// user picks the container size — the guesswork the paper criticises: too
// small and tasks die, too large and a few containers fill the node.
#pragma once

#include <algorithm>
#include <limits>

#include "smr/common/error.hpp"
#include "smr/common/types.hpp"

namespace smr::yarn {

struct Resource {
  Bytes memory = 0;
  double vcores = 0.0;

  Resource operator+(const Resource& o) const { return {memory + o.memory, vcores + o.vcores}; }
  Resource operator-(const Resource& o) const { return {memory - o.memory, vcores - o.vcores}; }
  bool fits_in(const Resource& capacity) const {
    return memory <= capacity.memory && vcores <= capacity.vcores;
  }
  /// How many of `piece` fit into this resource.
  int count_of(const Resource& piece) const {
    SMR_CHECK(piece.memory > 0 || piece.vcores > 0);
    int by_mem = piece.memory > 0
                     ? static_cast<int>(memory / piece.memory)
                     : std::numeric_limits<int>::max();
    int by_cores = piece.vcores > 0
                       ? static_cast<int>(static_cast<double>(vcores) / piece.vcores)
                       : std::numeric_limits<int>::max();
    return std::max(0, std::min(by_mem, by_cores));
  }
};

struct YarnConfig {
  /// Uniform task container size (the paper's setup runs map and reduce
  /// containers of the same size).
  Resource container{2 * kGiB, 1.0};

  /// Per-node resources advertised by the node manager
  /// (yarn.nodemanager.resource.*).
  Resource node_capacity{10 * kGiB, 16.0};

  /// ApplicationMaster container per running job.
  Resource am_container{2 * kGiB, 1.0};

  /// Fraction of a job's maps that must complete before its reduces may be
  /// scheduled (mapreduce.job.reduce.slowstart.completedmaps).
  double reduce_slowstart = 0.05;

  /// Ceiling on the fraction of cluster task-container capacity reduce
  /// containers may hold while map tasks are still pending/running (the
  /// MRAppMaster's reduce ramp-up limit; realises the capacity scheduler's
  /// map priority the paper describes).
  double max_reduce_fraction = 0.4;

  /// Map-completion fraction at which the reduce ramp reaches
  /// max_reduce_fraction (linear ramp from slowstart).
  double ramp_full_at = 0.8;

  /// Per-node task-container capacity.
  int containers_per_node() const { return node_capacity.count_of(container); }

  void validate() const {
    SMR_CHECK(container.memory > 0 && container.vcores > 0);
    SMR_CHECK(node_capacity.memory > 0 && node_capacity.vcores > 0);
    SMR_CHECK(containers_per_node() >= 1);
    SMR_CHECK(reduce_slowstart >= 0.0 && reduce_slowstart <= 1.0);
    SMR_CHECK(max_reduce_fraction >= 0.0 && max_reduce_fraction <= 1.0);
    SMR_CHECK(ramp_full_at > 0.0 && ramp_full_at <= 1.0);
  }

  /// A configuration equivalent to a HadoopV1 cluster with `map_slots` +
  /// `reduce_slots` per node — the paper's "YARN is configured to be able
  /// to run 3 map containers and 2 reduce containers concurrently".
  static YarnConfig equivalent_slots(int map_slots, int reduce_slots) {
    SMR_CHECK(map_slots >= 1 && reduce_slots >= 0);
    YarnConfig cfg;
    const int total = map_slots + reduce_slots;
    cfg.node_capacity = {cfg.container.memory * total, static_cast<double>(total)};
    cfg.max_reduce_fraction =
        static_cast<double>(reduce_slots) / static_cast<double>(total);
    cfg.validate();
    return cfg;
  }
};

}  // namespace smr::yarn
