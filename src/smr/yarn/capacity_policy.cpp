#include "smr/yarn/capacity_policy.hpp"

#include <algorithm>
#include <cmath>

namespace smr::yarn {

CapacityPolicy::CapacityPolicy(YarnConfig config) : config_(config) {
  config_.validate();
}

void CapacityPolicy::on_start(std::span<mapreduce::TaskTracker> trackers) {
  rm_.emplace(config_, static_cast<int>(trackers.size()));
  am_containers_.clear();
  map_containers_.assign(trackers.size(), {});
  reduce_containers_.assign(trackers.size(), {});
  // Before the first job arrives every container is available to maps.
  for (auto& tracker : trackers) {
    tracker.set_map_target(config_.containers_per_node());
    tracker.set_reduce_target(0);
  }
}

void CapacityPolicy::reconcile_ledger(const mapreduce::TaskTracker& tracker,
                                      const mapreduce::ClusterStats& stats) {
  const NodeId node = tracker.node();
  const auto n = static_cast<std::size_t>(node);

  // Finished jobs release their ApplicationMaster containers (any heartbeat
  // may observe this; the ledger is cluster-global).
  for (auto it = am_containers_.begin(); it != am_containers_.end();) {
    const bool active = std::find(stats.active_jobs.begin(), stats.active_jobs.end(),
                                  it->first) != stats.active_jobs.end();
    if (!active) {
      rm_->release(it->second);
      it = am_containers_.erase(it);
    } else {
      ++it;
    }
  }

  // Task containers mirror this node's running tasks: release before
  // allocating so turnover within one heartbeat cannot overshoot.
  auto reconcile_kind = [&](std::vector<ContainerId>& held, int running) {
    while (static_cast<int>(held.size()) > running) {
      rm_->release(held.back());
      held.pop_back();
    }
    while (static_cast<int>(held.size()) < running) {
      const auto id = rm_->allocate(node, config_.container, kInvalidJob,
                                    /*is_am=*/false);
      SMR_CHECK_MSG(id.has_value(),
                    "node " << node << " runs more tasks than its containers");
      held.push_back(*id);
    }
  };
  reconcile_kind(map_containers_[n], tracker.running_maps());
  reconcile_kind(reduce_containers_[n], tracker.running_reduces());

  // Newly active jobs park an AM on node (job % nodes); if that node is
  // momentarily full the allocation retries on a later heartbeat (targets
  // already reserve the space, so tasks drain first).
  for (JobId job : stats.active_jobs) {
    if (job % stats.nodes != node || am_containers_.count(job) > 0) continue;
    if (const auto id = rm_->allocate(node, config_.am_container, job, true)) {
      am_containers_.emplace(job, *id);
    }
  }
}

int CapacityPolicy::node_task_capacity(NodeId node,
                                       const mapreduce::ClusterStats& stats) const {
  int capacity = config_.containers_per_node();
  // Each active job parks its ApplicationMaster on node (job_id % nodes).
  int am_containers = 0;
  for (JobId job : stats.active_jobs) {
    if (job % stats.nodes == node) ++am_containers;
  }
  if (am_containers > 0) {
    const int per_am = std::max(1, Resource{config_.am_container}.count_of(config_.container));
    capacity -= am_containers * per_am;
  }
  return std::max(0, capacity);
}

int CapacityPolicy::admitted_reduces(const mapreduce::ClusterStats& stats) const {
  if (!stats.has_active_job) return 0;
  const int total_capacity = config_.containers_per_node() * stats.nodes;
  const bool map_work_left = stats.pending_maps > 0 || stats.running_maps > 0;

  double fraction;
  if (!map_work_left) {
    fraction = 1.0;  // nothing to prioritise; reduces may take the cluster
  } else if (stats.front_job_map_fraction < config_.reduce_slowstart) {
    fraction = 0.0;
  } else {
    // Linear ramp from the slow-start point to ramp_full_at.
    const double span = std::max(1e-9, config_.ramp_full_at - config_.reduce_slowstart);
    const double t = std::clamp(
        (stats.front_job_map_fraction - config_.reduce_slowstart) / span, 0.0, 1.0);
    fraction = config_.max_reduce_fraction * t;
  }
  const int by_ramp = static_cast<int>(
      std::ceil(fraction * static_cast<double>(total_capacity)));
  const int needed = stats.running_reduces + stats.pending_reduces;
  return std::min(by_ramp, needed);
}

void CapacityPolicy::on_heartbeat(mapreduce::TaskTracker& tracker,
                                  const mapreduce::ClusterStats& stats) {
  if (rm_) reconcile_ledger(tracker, stats);
  const int capacity = node_task_capacity(tracker.node(), stats);
  const int admitted = admitted_reduces(stats);

  // Spread admitted reduce containers evenly; low node ids take remainders.
  const int base = admitted / stats.nodes;
  const int extra = (tracker.node() < admitted % stats.nodes) ? 1 : 0;
  int reduce_quota = base + extra;
  reduce_quota = std::min(reduce_quota, capacity);

  // Containers are hard: reduces may only grow into containers maps do not
  // currently occupy, and maps get everything reduces do not hold.
  const int reduce_target =
      std::max(std::min(reduce_quota, capacity - tracker.running_maps()),
               std::min(tracker.running_reduces(), capacity));
  const int map_target = std::max(0, capacity - std::max(reduce_quota, reduce_target));

  tracker.set_reduce_target(std::max(0, reduce_target));
  tracker.set_map_target(map_target);
}

}  // namespace smr::yarn
