#include "smr/yarn/container.hpp"

#include <algorithm>

#include "smr/common/error.hpp"

namespace smr::yarn {

NodeContainerPool::NodeContainerPool(NodeId node, Resource capacity)
    : node_(node), capacity_(capacity) {
  SMR_CHECK(node >= 0);
  SMR_CHECK(capacity.memory > 0 && capacity.vcores > 0);
}

void NodeContainerPool::add(const Container& container) {
  SMR_CHECK(container.id != kInvalidContainer);
  SMR_CHECK_MSG(container.node == node_,
                "container for node " << container.node << " added to pool " << node_);
  SMR_CHECK_MSG(can_fit(container.size),
                "node " << node_ << " capacity exceeded: "
                        << format_bytes(used_.memory + container.size.memory) << " of "
                        << format_bytes(capacity_.memory));
  SMR_CHECK_MSG(containers_.emplace(container.id, container).second,
                "duplicate container id " << container.id);
  order_.push_back(container.id);
  used_ = used_ + container.size;
}

Container NodeContainerPool::release(ContainerId id) {
  const auto it = containers_.find(id);
  SMR_CHECK_MSG(it != containers_.end(), "unknown container " << id);
  const Container released = it->second;
  used_ = used_ - released.size;
  containers_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), id));
  return released;
}

std::vector<Container> NodeContainerPool::containers() const {
  std::vector<Container> result;
  result.reserve(order_.size());
  for (ContainerId id : order_) result.push_back(containers_.at(id));
  return result;
}

ResourceManager::ResourceManager(const YarnConfig& config, int nodes)
    : config_(config) {
  config_.validate();
  SMR_CHECK(nodes >= 1);
  pools_.reserve(static_cast<std::size_t>(nodes));
  for (NodeId n = 0; n < nodes; ++n) {
    pools_.emplace_back(n, config_.node_capacity);
  }
}

std::optional<ContainerId> ResourceManager::allocate(NodeId node, const Resource& size,
                                                     JobId owner, bool is_am) {
  SMR_CHECK(node >= 0 && static_cast<std::size_t>(node) < pools_.size());
  auto& pool = pools_[static_cast<std::size_t>(node)];
  if (!pool.can_fit(size)) return std::nullopt;
  Container container;
  container.id = next_id_++;
  container.node = node;
  container.size = size;
  container.owner = owner;
  container.is_am = is_am;
  pool.add(container);
  owner_node_.emplace(container.id, node);
  return container.id;
}

void ResourceManager::release(ContainerId id) {
  const auto it = owner_node_.find(id);
  SMR_CHECK_MSG(it != owner_node_.end(), "unknown container " << id);
  pools_[static_cast<std::size_t>(it->second)].release(id);
  owner_node_.erase(it);
}

const NodeContainerPool& ResourceManager::pool(NodeId node) const {
  SMR_CHECK(node >= 0 && static_cast<std::size_t>(node) < pools_.size());
  return pools_[static_cast<std::size_t>(node)];
}

int ResourceManager::node_free_task_containers(NodeId node) const {
  return pool(node).available().count_of(config_.container);
}

}  // namespace smr::yarn
