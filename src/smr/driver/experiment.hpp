// Experiment harness: builds a cluster + engine + workload, runs it (over
// several trials, as the paper averages two), and returns the metrics.
// Every bench binary and example goes through this interface.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "smr/alloc/registry.hpp"
#include "smr/common/thread_pool.hpp"
#include "smr/core/slot_manager_config.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/job_metrics.hpp"
#include "smr/yarn/resources.hpp"

namespace smr::driver {

/// The three systems under comparison.
enum class EngineKind { kHadoopV1, kYarn, kSMapReduce };

const char* engine_name(EngineKind kind);
std::vector<EngineKind> all_engines();
/// Parse an engine name ("hadoopv1"/"yarn"/"smapreduce", case-insensitive).
std::optional<EngineKind> engine_from_name(const std::string& name);

/// Job ordering for slot assignment (Section V-F uses FIFO / capacity).
/// kDeadline is EDF over per-job SLO deadlines (the serving subsystem).
enum class SchedulerKind { kFifo, kFair, kDeadline };

const char* scheduler_name(SchedulerKind kind);
std::optional<SchedulerKind> scheduler_from_name(const std::string& name);

struct JobSubmission {
  mapreduce::JobSpec spec;
  SimTime submit_at = 0.0;
};

struct ExperimentConfig {
  EngineKind engine = EngineKind::kHadoopV1;

  /// Registry-backed policy selection (`--policy=<name>[:k=v,...]`).
  /// When non-empty it overrides `engine`: make_policy() builds this spec
  /// through alloc::AllocatorRegistry instead of the engine enum.  The
  /// legacy engines remain reachable both ways ("hadoopv1", "yarn",
  /// "smapreduce" are registered names).
  alloc::PolicySpec policy;

  mapreduce::RuntimeConfig runtime;

  /// SMapReduce slot-manager configuration (engine == kSMapReduce).
  core::SlotManagerConfig slot_manager;

  /// YARN configuration (engine == kYarn).  When unset, derived from the
  /// runtime's initial slot counts via YarnConfig::equivalent_slots, which
  /// is the paper's "equivalent containers" setup.
  std::optional<yarn::YarnConfig> yarn;

  /// Job scheduler for multi-job workloads (FIFO is the paper's default on
  /// HadoopV1/SMapReduce; YARN's capacity behaviour comes from its policy).
  SchedulerKind scheduler = SchedulerKind::kFifo;

  /// Trials to average (the paper reports the average of two).
  int trials = 2;

  /// The paper's standard single-job setup: `engine` on the 16-node
  /// testbed with 3 map + 2 reduce initial slots.
  static ExperimentConfig paper_default(EngineKind engine);
};

/// Build the allocation policy for `config`: `config.policy` through the
/// allocator registry when set, the `config.engine` enum otherwise (both
/// paths construct identical objects for the three legacy engines).
std::unique_ptr<mapreduce::AllocationPolicy> make_policy(const ExperimentConfig& config);

/// The registry construction context for `config` (cluster size, initial
/// targets, node speeds, SMR/YARN sub-configs).
alloc::PolicyContext policy_context(const ExperimentConfig& config);

/// Display label of the allocator `config` selects: the constructed
/// policy's name() ("Karma", "GameCapacity", ...), == engine_name(engine)
/// when no spec is set.  Reports and sweep CSVs use this.
std::string policy_label(const ExperimentConfig& config);

/// Build the job scheduler for `config`.
std::unique_ptr<mapreduce::JobScheduler> make_scheduler(const ExperimentConfig& config);

/// Run one trial with the given seed.  When `pool` is non-null and the
/// runtime config asks for shards, the sharded tick fans out on that pool
/// (nullptr falls back to the process default pool; the output is byte-
/// identical either way).
metrics::RunResult run_trial(const ExperimentConfig& config,
                             const std::vector<JobSubmission>& jobs,
                             std::uint64_t seed, ThreadPool* pool = nullptr);

/// Run `config.trials` trials (seeds seed, seed+1, ...) and average.
/// Trials are independent simulations; they run concurrently on `pool`
/// (trial t always uses seed + t and lands in result slot t, so the
/// averaged result is bit-identical for any pool size — including 1).
/// Safe to call from inside a pool task: the wait helps drain the queue.
metrics::RunResult run_experiment(const ExperimentConfig& config,
                                  const std::vector<JobSubmission>& jobs,
                                  ThreadPool& pool);

/// Convenience: run on the process-wide default pool.
metrics::RunResult run_experiment(const ExperimentConfig& config,
                                  const std::vector<JobSubmission>& jobs);

/// Convenience: run a single job submitted at t = 0.
metrics::RunResult run_single_job(const ExperimentConfig& config,
                                  const mapreduce::JobSpec& spec);

}  // namespace smr::driver
