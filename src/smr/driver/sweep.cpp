#include "smr/driver/sweep.hpp"

#include <cmath>
#include <ostream>

#include "smr/common/thread_pool.hpp"

namespace smr::driver {

const char* sweep_dimension_name(SweepDimension dimension) {
  switch (dimension) {
    case SweepDimension::kMapSlots: return "map-slots";
    case SweepDimension::kInputGib: return "input-gib";
    case SweepDimension::kNodes: return "nodes";
    case SweepDimension::kSeed: return "seed";
  }
  return "unknown";
}

std::optional<SweepDimension> sweep_dimension_from_name(const std::string& name) {
  for (SweepDimension dimension :
       {SweepDimension::kMapSlots, SweepDimension::kInputGib, SweepDimension::kNodes,
        SweepDimension::kSeed}) {
    if (name == sweep_dimension_name(dimension)) return dimension;
  }
  return std::nullopt;
}

void SweepConfig::validate() const {
  spec.validate();
  SMR_CHECK_MSG(!values.empty(), "sweep needs at least one value");
  SMR_CHECK_MSG(!engines.empty() || !policies.empty(),
                "sweep needs at least one engine or policy");
  for (double value : values) {
    switch (dimension) {
      case SweepDimension::kMapSlots:
      case SweepDimension::kNodes:
        SMR_CHECK_MSG(value >= 1.0 && value == std::floor(value),
                      sweep_dimension_name(dimension)
                          << " values must be positive integers");
        break;
      case SweepDimension::kInputGib:
        SMR_CHECK_MSG(value > 0.0, "input-gib values must be positive");
        break;
      case SweepDimension::kSeed:
        SMR_CHECK_MSG(value >= 0.0 && value == std::floor(value),
                      "seed values must be non-negative integers");
        break;
    }
  }
}

namespace {

SweepCell run_cell(const SweepConfig& config, double value, EngineKind engine,
                   const alloc::PolicySpec* policy, ThreadPool& pool) {
  ExperimentConfig experiment = config.base;
  if (policy != nullptr) {
    experiment.policy = *policy;
  } else {
    experiment.engine = engine;
  }
  mapreduce::JobSpec spec = config.spec;
  switch (config.dimension) {
    case SweepDimension::kMapSlots:
      experiment.runtime.initial_map_slots = static_cast<int>(value);
      // YARN capacity derives from the slot counts unless explicitly set.
      experiment.yarn.reset();
      break;
    case SweepDimension::kInputGib:
      spec.input_size = static_cast<Bytes>(value * static_cast<double>(kGiB));
      break;
    case SweepDimension::kNodes:
      experiment.runtime.cluster =
          cluster::ClusterSpec::paper_testbed(static_cast<int>(value));
      break;
    case SweepDimension::kSeed:
      experiment.runtime.seed = static_cast<std::uint64_t>(value);
      break;
  }
  SweepCell cell;
  cell.value = value;
  cell.engine = engine;
  cell.label = policy_label(experiment);
  metrics::RunResult run = run_experiment(experiment, {JobSubmission{spec, 0.0}}, pool);
  cell.job = run.jobs[0];
  cell.engine_events = run.engine_events;
  cell.solver_calls = run.solver_calls;
  cell.solver_full_solves = run.solver_full_solves;
  return cell;
}

}  // namespace

SweepResult run_sweep(const SweepConfig& config, ThreadPool& pool) {
  config.validate();
  // Surface bad policy specs (unknown name, typo'd option) on the caller
  // thread before fanning out: an exception thrown inside a pool task
  // never propagates, it would wedge the sweep instead of failing it.
  for (const alloc::PolicySpec& spec : config.policies) {
    ExperimentConfig probe = config.base;
    probe.policy = spec;
    make_policy(probe);
  }
  SweepResult result;
  result.dimension = config.dimension;
  const std::size_t columns = config.columns();
  result.cells.resize(config.values.size() * columns);
  // Cells fan out on the pool, and each cell's trials fan out again on the
  // same pool; TaskGroup's help-wait makes the nesting deadlock-free.
  parallel_for(pool, 0, result.cells.size(), [&](std::size_t i) {
    const double value = config.values[i / columns];
    const std::size_t column = i % columns;
    if (config.policies.empty()) {
      result.cells[i] =
          run_cell(config, value, config.engines[column], nullptr, pool);
    } else {
      result.cells[i] = run_cell(config, value, config.base.engine,
                                 &config.policies[column], pool);
    }
  });
  return result;
}

SweepResult run_sweep(const SweepConfig& config) {
  return run_sweep(config, default_thread_pool());
}

std::uint64_t SweepResult::total_engine_events() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells) total += cell.engine_events;
  return total;
}

std::uint64_t SweepResult::total_solver_calls() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells) total += cell.solver_calls;
  return total;
}

std::uint64_t SweepResult::total_solver_full_solves() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells) total += cell.solver_full_solves;
  return total;
}

void SweepResult::write_csv(std::ostream& out) const {
  // `completed` makes unfinished cells explicit (previously they were only
  // recognisable by their empty derived columns); `failed` separates a job
  // torn down by the fault path from one that merely hit the time limit.
  out << sweep_dimension_name(dimension)
      << ",engine,completed,failed,map_time_s,reduce_time_s,total_time_s,"
         "throughput_bytes_s\n";
  for (const auto& cell : cells) {
    out << cell.value << ','
        << (cell.label.empty() ? engine_name(cell.engine) : cell.label.c_str())
        << ','
        << (cell.job.finished() ? 1 : 0) << ',' << (cell.job.failed ? 1 : 0)
        << ',';
    if (cell.job.finished()) {
      out << cell.job.map_time() << ',' << cell.job.reduce_time() << ','
          << cell.job.total_time() << ',' << cell.job.throughput();
    } else {
      out << ",,,";
    }
    out << '\n';
  }
}

}  // namespace smr::driver
