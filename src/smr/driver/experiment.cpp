#include "smr/driver/experiment.hpp"

#include <cctype>

#include "smr/alloc/registry.hpp"

namespace smr::driver {

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHadoopV1: return "HadoopV1";
    case EngineKind::kYarn: return "YARN";
    case EngineKind::kSMapReduce: return "SMapReduce";
  }
  return "unknown";
}

std::vector<EngineKind> all_engines() {
  return {EngineKind::kHadoopV1, EngineKind::kYarn, EngineKind::kSMapReduce};
}

namespace {
std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}
}  // namespace

std::optional<EngineKind> engine_from_name(const std::string& name) {
  const std::string lower = to_lower(name);
  for (EngineKind kind : all_engines()) {
    if (lower == to_lower(engine_name(kind))) return kind;
  }
  return std::nullopt;
}

const char* scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kFair: return "fair";
    case SchedulerKind::kDeadline: return "deadline";
  }
  return "unknown";
}

std::optional<SchedulerKind> scheduler_from_name(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "fifo") return SchedulerKind::kFifo;
  if (lower == "fair") return SchedulerKind::kFair;
  if (lower == "deadline" || lower == "edf") return SchedulerKind::kDeadline;
  return std::nullopt;
}

std::unique_ptr<mapreduce::JobScheduler> make_scheduler(const ExperimentConfig& config) {
  switch (config.scheduler) {
    case SchedulerKind::kFifo: return std::make_unique<mapreduce::FifoScheduler>();
    case SchedulerKind::kFair: return std::make_unique<mapreduce::FairScheduler>();
    case SchedulerKind::kDeadline:
      return std::make_unique<mapreduce::DeadlineScheduler>();
  }
  SMR_CHECK_MSG(false, "unknown scheduler kind");
  return nullptr;
}

ExperimentConfig ExperimentConfig::paper_default(EngineKind engine) {
  ExperimentConfig config;
  config.engine = engine;
  config.runtime.cluster = cluster::ClusterSpec::paper_testbed(16);
  config.runtime.initial_map_slots = 3;
  config.runtime.initial_reduce_slots = 2;
  return config;
}

alloc::PolicyContext policy_context(const ExperimentConfig& config) {
  alloc::PolicyContext context;
  context.nodes = config.runtime.cluster.worker_count();
  context.initial_map_slots = config.runtime.initial_map_slots;
  context.initial_reduce_slots = config.runtime.initial_reduce_slots;
  context.slot_manager = config.slot_manager;
  context.yarn = config.yarn;
  if (config.slot_manager.per_node_targets) {
    context.node_speeds.reserve(config.runtime.cluster.workers.size());
    for (const auto& node : config.runtime.cluster.workers) {
      context.node_speeds.push_back(node.cpu_speed);
    }
  }
  return context;
}

std::unique_ptr<mapreduce::AllocationPolicy> make_policy(const ExperimentConfig& config) {
  alloc::PolicySpec spec = config.policy;
  if (spec.empty()) {
    // Legacy enum path: route through the registry under the engine name,
    // which constructs the exact same objects the old switch did.
    spec.name = engine_name(config.engine);
  }
  return alloc::AllocatorRegistry::instance().create(spec,
                                                     policy_context(config));
}

std::string policy_label(const ExperimentConfig& config) {
  if (config.policy.empty()) return engine_name(config.engine);
  return make_policy(config)->name();
}

metrics::RunResult run_trial(const ExperimentConfig& config,
                             const std::vector<JobSubmission>& jobs,
                             std::uint64_t seed, ThreadPool* pool) {
  SMR_CHECK(!jobs.empty());
  mapreduce::RuntimeConfig runtime_config = config.runtime;
  runtime_config.seed = seed;
  mapreduce::Runtime runtime(runtime_config, make_policy(config), make_scheduler(config));
  if (pool != nullptr) runtime.set_thread_pool(pool);
  for (const auto& submission : jobs) {
    runtime.submit(submission.spec, submission.submit_at);
  }
  return runtime.run();
}

metrics::RunResult run_experiment(const ExperimentConfig& config,
                                  const std::vector<JobSubmission>& jobs,
                                  ThreadPool& pool) {
  SMR_CHECK(config.trials >= 1);
  // Indexed result slots + fixed per-trial seeds (seed + t): the averaged
  // result is bit-identical whatever the pool size or completion order.
  std::vector<metrics::RunResult> trials(static_cast<std::size_t>(config.trials));
  if (config.trials == 1) {
    trials[0] = run_trial(config, jobs, config.runtime.seed, &pool);
  } else {
    TaskGroup group(pool);
    for (int t = 0; t < config.trials; ++t) {
      group.submit([&config, &jobs, &trials, &pool, t] {
        trials[static_cast<std::size_t>(t)] =
            run_trial(config, jobs, config.runtime.seed + static_cast<std::uint64_t>(t),
                      &pool);
      });
    }
    group.wait();
  }
  return metrics::average_trials(trials);
}

metrics::RunResult run_experiment(const ExperimentConfig& config,
                                  const std::vector<JobSubmission>& jobs) {
  return run_experiment(config, jobs, default_thread_pool());
}

metrics::RunResult run_single_job(const ExperimentConfig& config,
                                  const mapreduce::JobSpec& spec) {
  return run_experiment(config, {JobSubmission{spec, 0.0}});
}

}  // namespace smr::driver
