// Parallel parameter sweeps over independent simulations.
//
// A sweep varies one dimension (initial map slots, input size, worker
// count, or the seed) across a list of values and runs every (value,
// engine) cell — each cell deterministic, all cells concurrently on the
// process thread pool.  Used by the smr_sweep CLI and the capacity-planning
// example; the figure benches keep their own loops so each cell shows up as
// a google-benchmark entry.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "smr/driver/experiment.hpp"

namespace smr::driver {

enum class SweepDimension { kMapSlots, kInputGib, kNodes, kSeed };

const char* sweep_dimension_name(SweepDimension dimension);
std::optional<SweepDimension> sweep_dimension_from_name(const std::string& name);

struct SweepConfig {
  /// Template experiment; the swept dimension overrides its field per cell.
  ExperimentConfig base;
  /// Template job (input size overridden when sweeping kInputGib).
  mapreduce::JobSpec spec;

  SweepDimension dimension = SweepDimension::kMapSlots;
  std::vector<double> values;
  std::vector<EngineKind> engines = all_engines();
  /// Registry policy specs (`--policies=a;b:k=v;c`).  When non-empty they
  /// replace `engines` as the sweep's column set: each cell runs the spec
  /// through the allocator registry instead of the engine enum.
  std::vector<alloc::PolicySpec> policies;

  /// Number of columns in the sweep grid (policies when set, else engines).
  std::size_t columns() const {
    return policies.empty() ? engines.size() : policies.size();
  }

  void validate() const;
};

struct SweepCell {
  double value = 0.0;
  EngineKind engine = EngineKind::kHadoopV1;
  /// Display label of the cell's allocator: the policy name when the sweep
  /// runs registry specs, engine_name(engine) otherwise.
  std::string label;
  metrics::JobResult job;
  /// Engine/solver work done by this cell's trials (perf instrumentation,
  /// summed over trials; not part of the CSV output).
  std::uint64_t engine_events = 0;
  std::uint64_t solver_calls = 0;
  std::uint64_t solver_full_solves = 0;
};

struct SweepResult {
  SweepDimension dimension = SweepDimension::kMapSlots;
  /// Row-major: one cell per (value, engine), values outer, engines inner.
  std::vector<SweepCell> cells;

  /// Sum of per-cell engine events / solver calls (perf instrumentation).
  std::uint64_t total_engine_events() const;
  std::uint64_t total_solver_calls() const;
  std::uint64_t total_solver_full_solves() const;

  /// CSV: value,engine,map_time_s,reduce_time_s,total_time_s,throughput.
  void write_csv(std::ostream& out) const;
};

/// Run the sweep; cells execute concurrently and results are returned in
/// deterministic (value-major) order regardless of thread count.  Each
/// cell's trials also fan out on the same pool (nested, help-wait safe).
SweepResult run_sweep(const SweepConfig& config, ThreadPool& pool);

/// Convenience: run on the process-wide default pool.
SweepResult run_sweep(const SweepConfig& config);

}  // namespace smr::driver
