// Task-event tracing: a structured log of everything the cluster did,
// exportable as CSV or as a Chrome-trace-viewer JSON (load in
// chrome://tracing or Perfetto, one row per node, one slice per task
// phase).  Attach a TraceLog to a Runtime before run().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::metrics {

enum class TraceEventKind {
  kJobSubmitted,
  kTaskLaunched,
  kPhaseStarted,   // detail = phase name (MAP/SPILL/SHUFFLE/SORT/REDUCE)
  kTaskFinished,
  kTaskKilled,     // eager slot shrinking only
  kBarrierCrossed, // all maps of a job finished
  kJobFinished,
  kSlotTargetChanged,  // detail = "map" or "reduce"; value = new target
  kNodeFailed,         // node = the failed worker
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  SimTime time = 0.0;
  TraceEventKind kind = TraceEventKind::kTaskLaunched;
  JobId job = kInvalidJob;
  TaskId task = kInvalidTask;
  NodeId node = kInvalidNode;
  bool is_map = true;
  std::string detail;
  double value = 0.0;
};

class TraceLog {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Events of one kind, in time order (the log itself is time-ordered
  /// because the simulation is).
  std::vector<TraceEvent> of_kind(TraceEventKind kind) const;

  /// One CSV row per event: time,kind,job,task,node,is_map,detail,value.
  void write_csv(std::ostream& out) const;

  /// Chrome trace-viewer JSON: complete events ("ph":"X") per task phase,
  /// one trace-viewer process per node, instant events for barriers.
  /// Durations are in microseconds of simulated time.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace smr::metrics
