// Task-event tracing: a structured log of everything the cluster did,
// exportable as CSV or as a Chrome-trace-viewer JSON (load in
// chrome://tracing or Perfetto, one row per node, one slice per task
// phase).  Attach a TraceLog to a Runtime before run().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "smr/common/types.hpp"

namespace smr::obs {
class SpanLog;
}

namespace smr::metrics {

enum class TraceEventKind {
  kJobSubmitted,
  kTaskLaunched,
  kPhaseStarted,   // detail = phase name (MAP/SPILL/SHUFFLE/SORT/REDUCE)
  kTaskFinished,
  kTaskKilled,     // eager slot shrinking only
  kBarrierCrossed, // all maps of a job finished
  kJobFinished,
  kSlotTargetChanged,  // detail = "map" or "reduce"; value = new cluster target
  kNodeFailed,         // node = the failed worker
  kPolicyDecision,     // detail = action[: reason]; value = balance factor f
  kTaskAttemptFailed,  // injected attempt failure; value = failed attempts so far
  kNodeRecovered,      // node = the worker whose tracker rejoined
  kNodeBlacklisted,    // node = the tracker taken out of assignment rotation
  kJobFailed,          // a task exhausted max_attempts; detail = reason
  kSloAlert,           // serve burn-rate alert; detail = tenant; value = burn
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  SimTime time = 0.0;
  TraceEventKind kind = TraceEventKind::kTaskLaunched;
  JobId job = kInvalidJob;
  TaskId task = kInvalidTask;
  NodeId node = kInvalidNode;
  bool is_map = true;
  std::string detail;
  double value = 0.0;
};

class TraceLog {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Events of one kind, in time order (the log itself is time-ordered
  /// because the simulation is).
  std::vector<TraceEvent> of_kind(TraceEventKind kind) const;

  /// Approximate heap footprint of the log (self-profiling): vector
  /// capacity plus out-of-line detail strings.
  std::size_t memory_bytes() const;

  /// One CSV row per event: time,kind,job,task,node,is_map,detail,value.
  /// The detail field is RFC-4180 quoted so free-text details cannot
  /// corrupt rows.
  void write_csv(std::ostream& out) const;

  /// Chrome trace-viewer JSON (load in chrome://tracing or Perfetto):
  ///  * complete events ("ph":"X") per task phase, one trace-viewer
  ///    process per node, named via process_name metadata;
  ///  * a synthetic control-plane process carrying instant events
  ///    (barriers, job completions, policy decisions) and counter tracks
  ///    ("ph":"C") for the slot targets and the cluster's running-task
  ///    concurrency, so the control loop renders next to the task slices;
  ///  * phases still open at the end of the log (killed nodes, truncated
  ///    runs) are flushed as slices ending at the last event time.
  /// Durations are in microseconds of simulated time.
  void write_chrome_trace(std::ostream& out) const;

  /// Same, plus the causal span tree when `spans` is non-null:
  ///  * one extra trace-viewer process per job ("job-N-spans") with nested
  ///    slices — job on tid 0, map phase/waves on tid 1, shuffle on tid 2,
  ///    reduce on tid 3, attempts on tid 10+task;
  ///  * a "spans" process carrying the run span and one zero-duration
  ///    anchor slice per slot-policy decision cited by a launch;
  ///  * flow arrows from each failed/killed attempt to the retry it
  ///    caused, and from each decision anchor to the launches it enabled.
  void write_chrome_trace(std::ostream& out, const obs::SpanLog* spans) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace smr::metrics
