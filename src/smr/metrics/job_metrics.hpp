// Result containers produced by a simulation run.
//
// Timing definitions follow the paper's evaluation (Section V-A):
//   * "map time"    = from job start until the last map task finishes (the
//                     stretch where map tasks run in parallel with the first
//                     wave of shuffle phases).
//   * "reduce time" = from the barrier until the job finishes (only reduce
//                     tasks running).
//   * job throughput = input bytes / total execution time.
// For multi-job workloads (Figs. 8-9) execution time is measured from
// *submission* to finish, matching how Hadoop reports job runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smr/common/error.hpp"
#include "smr/common/types.hpp"

namespace smr::metrics {

struct JobResult {
  JobId id = kInvalidJob;
  std::string name;
  Bytes input_size = 0;
  Bytes shuffle_volume = 0;

  SimTime submit_time = kTimeNever;
  SimTime start_time = kTimeNever;
  SimTime maps_done_time = kTimeNever;
  SimTime finish_time = kTimeNever;

  /// Absolute SLO deadline (submit time + the spec's relative deadline);
  /// kTimeNever when the job carries no SLO.
  SimTime deadline = kTimeNever;

  /// SLO verdict: deadline-free jobs trivially meet their (absent) SLO.
  bool met_deadline() const {
    return finished() && (deadline == kTimeNever || finish_time <= deadline);
  }

  /// True when the job was torn down after a task exhausted its retry
  /// budget; finish_time then records the teardown, not a success.
  bool failed = false;

  /// Successful completion: a failed job is never "finished" even though
  /// its teardown stamped finish_time.
  bool finished() const { return finish_time != kTimeNever && !failed; }

  /// Map-phase execution time (start → barrier).
  SimTime map_time() const { return maps_done_time - start_time; }
  /// Reduce tail execution time (barrier → finish).
  SimTime reduce_time() const { return finish_time - maps_done_time; }
  /// Total running time (start → finish).
  SimTime total_time() const { return finish_time - start_time; }
  /// Submission-to-finish time (multi-job reporting).
  SimTime execution_time() const { return finish_time - submit_time; }

  /// Job throughput in bytes/second of input processed.
  Rate throughput() const {
    SMR_CHECK(finished());
    return static_cast<double>(input_size) / total_time();
  }
  /// Aggregate map throughput in bytes/second over the map phase.
  Rate map_throughput() const {
    SMR_CHECK(finished());
    return static_cast<double>(input_size) / map_time();
  }
};

/// One progress observation for a job (percentages; map and reduce each
/// count 100, so a finished job sits at 200 — the paper's Fig. 4 axis).
struct ProgressSample {
  SimTime time = 0.0;
  double map_pct = 0.0;
  double reduce_pct = 0.0;
  double total_pct() const { return map_pct + reduce_pct; }
};

/// Cluster-averaged slot counts over time (for the slot timeline and the
/// lazy-changer diagnostics).
struct SlotSample {
  SimTime time = 0.0;
  double map_target = 0.0;
  double reduce_target = 0.0;
  double running_maps = 0.0;
  double running_reduces = 0.0;
};

struct RunResult {
  std::vector<JobResult> jobs;
  /// progress[j] is job j's progress series.
  std::vector<std::vector<ProgressSample>> progress;
  std::vector<SlotSample> slots;
  SimTime makespan = 0.0;
  /// True when every submitted job completed successfully before the time
  /// limit; false on a timeout, a failed job, or a degraded run (e.g. every
  /// worker node failed) — `failure_reason` then says why.
  bool completed = false;
  /// Human-readable reason when completed == false; empty otherwise.
  std::string failure_reason;
  /// Jobs torn down after a task exhausted max_attempts.
  int failed_jobs() const {
    int n = 0;
    for (const auto& job : jobs) n += job.failed ? 1 : 0;
    return n;
  }
  /// Discrete events the sim engine dispatched for this run (summed over
  /// trials by average_trials) — the denominator of events/sec profiling.
  std::uint64_t engine_events = 0;
  /// Max-min solver calls made by the run's compute/network models, and how
  /// many actually ran the water-filling pass (the rest were answered from
  /// the incremental solver's cache).  Summed over trials by
  /// average_trials; perf instrumentation only, never part of report JSON.
  std::uint64_t solver_calls = 0;
  std::uint64_t solver_full_solves = 0;

  const JobResult& job(std::size_t index) const {
    SMR_CHECK(index < jobs.size());
    return jobs[index];
  }

  /// Mean submission-to-finish time over all jobs (Figs. 8-9).
  SimTime mean_execution_time() const;
  /// Finish time of the last job, relative to the first submission.
  SimTime last_finish_time() const;
};

/// Element-wise mean of per-trial job results (the paper averages two
/// trials).  Trials must contain the same jobs in the same order.
RunResult average_trials(const std::vector<RunResult>& trials);

}  // namespace smr::metrics
