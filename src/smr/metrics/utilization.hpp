// Utilization analysis over a task-event trace.
//
// The paper's thesis is that static slots leave resources idle ("resulting
// easily in underutilisation of available resources", §I); these helpers
// quantify that from a TraceLog: per-node task-residency over time and
// cluster-level occupancy summaries.
#pragma once

#include <vector>

#include "smr/common/types.hpp"
#include "smr/metrics/trace.hpp"

namespace smr::metrics {

struct NodeUtilization {
  NodeId node = kInvalidNode;
  /// Time-averaged number of resident task attempts over [0, horizon].
  double average_concurrency = 0.0;
  /// Fraction of [0, horizon] with at least one resident task.
  double busy_fraction = 0.0;
  /// Peak concurrent task attempts.
  int peak_concurrency = 0;
};

struct ClusterUtilization {
  std::vector<NodeUtilization> nodes;
  /// Mean of average_concurrency across nodes.
  double mean_concurrency = 0.0;
  /// Mean busy fraction across nodes.
  double mean_busy_fraction = 0.0;
};

/// Compute per-node utilization from launch/finish/kill events in `trace`,
/// over the window [0, horizon].  `node_count` sizes the result (nodes with
/// no events report zeros).  Attempts still resident at `horizon` count up
/// to the horizon.
ClusterUtilization utilization_from_trace(const TraceLog& trace, int node_count,
                                          SimTime horizon);

}  // namespace smr::metrics
