#include "smr/metrics/reporter.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "smr/common/error.hpp"

namespace smr::metrics {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SMR_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  SMR_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::write(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  write_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) write_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

TextTable job_summary_table(const RunResult& result) {
  TextTable table({"job", "name", "submit(s)", "start(s)", "map(s)", "reduce(s)",
                   "total(s)", "throughput"});
  for (const auto& job : result.jobs) {
    if (!job.finished()) {
      table.add_row({std::to_string(job.id), job.name,
                     format_fixed(job.submit_time), "-", "-", "-", "-",
                     job.failed ? "(failed)" : "(unfinished)"});
      continue;
    }
    table.add_row({std::to_string(job.id), job.name, format_fixed(job.submit_time),
                   format_fixed(job.start_time), format_fixed(job.map_time()),
                   format_fixed(job.reduce_time()), format_fixed(job.total_time()),
                   format_rate(job.throughput())});
  }
  return table;
}

void write_jobs_csv(const RunResult& result, std::ostream& out) {
  out << "job,name,input_bytes,shuffle_bytes,submit_s,start_s,maps_done_s,"
         "finish_s,map_time_s,reduce_time_s,total_time_s,throughput_bytes_s\n";
  for (const auto& job : result.jobs) {
    out << job.id << ',' << job.name << ',' << job.input_size << ','
        << job.shuffle_volume << ',' << job.submit_time << ',' << job.start_time
        << ',' << job.maps_done_time << ',' << job.finish_time << ',';
    if (job.finished()) {
      out << job.map_time() << ',' << job.reduce_time() << ',' << job.total_time()
          << ',' << job.throughput();
    } else {
      out << ",,,";
    }
    out << '\n';
  }
}

void write_progress_csv(const RunResult& result, std::ostream& out) {
  out << "job,time_s,map_pct,reduce_pct,total_pct\n";
  for (std::size_t j = 0; j < result.progress.size(); ++j) {
    for (const auto& sample : result.progress[j]) {
      out << j << ',' << sample.time << ',' << sample.map_pct << ','
          << sample.reduce_pct << ',' << sample.total_pct() << '\n';
    }
  }
}

void write_slots_csv(const RunResult& result, std::ostream& out) {
  out << "time_s,map_target,reduce_target,running_maps,running_reduces\n";
  for (const auto& sample : result.slots) {
    out << sample.time << ',' << sample.map_target << ',' << sample.reduce_target
        << ',' << sample.running_maps << ',' << sample.running_reduces << '\n';
  }
}

}  // namespace smr::metrics
