#include "smr/metrics/utilization.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "smr/common/error.hpp"

namespace smr::metrics {

ClusterUtilization utilization_from_trace(const TraceLog& trace, int node_count,
                                          SimTime horizon) {
  SMR_CHECK(node_count >= 1);
  SMR_CHECK(horizon > 0.0);

  // Per node: +1/-1 concurrency deltas at event times.
  std::vector<std::map<SimTime, int>> deltas(static_cast<std::size_t>(node_count));
  std::unordered_map<TaskId, std::pair<NodeId, SimTime>> open;  // attempt -> (node, start)

  auto close = [&](TaskId task, SimTime at) {
    const auto it = open.find(task);
    if (it == open.end()) return;  // e.g. launch before the window
    const auto [node, start] = it->second;
    open.erase(it);
    if (start >= horizon) return;
    deltas[static_cast<std::size_t>(node)][start] += 1;
    deltas[static_cast<std::size_t>(node)][std::min(at, horizon)] -= 1;
  };

  for (const auto& event : trace.events()) {
    switch (event.kind) {
      case TraceEventKind::kTaskLaunched:
        if (event.node >= 0 && event.node < node_count) {
          open[event.task] = {event.node, event.time};
        }
        break;
      case TraceEventKind::kTaskFinished:
      case TraceEventKind::kTaskKilled:
        close(event.task, event.time);
        break;
      default:
        break;
    }
  }
  // Attempts still resident at the end of the trace run to the horizon.
  for (const auto& [task, where] : open) {
    const auto [node, start] = where;
    if (start >= horizon) continue;
    deltas[static_cast<std::size_t>(node)][start] += 1;
    deltas[static_cast<std::size_t>(node)][horizon] -= 1;
  }

  ClusterUtilization result;
  result.nodes.resize(static_cast<std::size_t>(node_count));
  for (int n = 0; n < node_count; ++n) {
    auto& util = result.nodes[static_cast<std::size_t>(n)];
    util.node = n;
    int concurrency = 0;
    SimTime prev = 0.0;
    double busy_time = 0.0;
    double concurrency_time = 0.0;
    for (const auto& [time, delta] : deltas[static_cast<std::size_t>(n)]) {
      const SimTime clamped = std::clamp(time, 0.0, horizon);
      const SimTime span = clamped - prev;
      if (span > 0.0) {
        concurrency_time += span * concurrency;
        if (concurrency > 0) busy_time += span;
      }
      prev = clamped;
      concurrency += delta;
      util.peak_concurrency = std::max(util.peak_concurrency, concurrency);
    }
    // Tail after the last event (concurrency is zero there by construction
    // unless an open attempt ran to the horizon, already closed above).
    util.average_concurrency = concurrency_time / horizon;
    util.busy_fraction = busy_time / horizon;
    result.mean_concurrency += util.average_concurrency;
    result.mean_busy_fraction += util.busy_fraction;
  }
  result.mean_concurrency /= static_cast<double>(node_count);
  result.mean_busy_fraction /= static_cast<double>(node_count);
  return result;
}

}  // namespace smr::metrics
