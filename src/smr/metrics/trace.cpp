#include "smr/metrics/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

#include "smr/common/csv.hpp"
#include "smr/common/json.hpp"
#include "smr/obs/span_log.hpp"

namespace smr::metrics {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kJobSubmitted: return "JOB_SUBMITTED";
    case TraceEventKind::kTaskLaunched: return "TASK_LAUNCHED";
    case TraceEventKind::kPhaseStarted: return "PHASE_STARTED";
    case TraceEventKind::kTaskFinished: return "TASK_FINISHED";
    case TraceEventKind::kTaskKilled: return "TASK_KILLED";
    case TraceEventKind::kBarrierCrossed: return "BARRIER_CROSSED";
    case TraceEventKind::kJobFinished: return "JOB_FINISHED";
    case TraceEventKind::kSlotTargetChanged: return "SLOT_TARGET_CHANGED";
    case TraceEventKind::kNodeFailed: return "NODE_FAILED";
    case TraceEventKind::kPolicyDecision: return "POLICY_DECISION";
    case TraceEventKind::kTaskAttemptFailed: return "TASK_ATTEMPT_FAILED";
    case TraceEventKind::kNodeRecovered: return "NODE_RECOVERED";
    case TraceEventKind::kNodeBlacklisted: return "NODE_BLACKLISTED";
    case TraceEventKind::kJobFailed: return "JOB_FAILED";
    case TraceEventKind::kSloAlert: return "SLO_ALERT";
  }
  return "UNKNOWN";
}

std::vector<TraceEvent> TraceLog::of_kind(TraceEventKind kind) const {
  std::vector<TraceEvent> matching;
  for (const auto& event : events_) {
    if (event.kind == kind) matching.push_back(event);
  }
  return matching;
}

std::size_t TraceLog::memory_bytes() const {
  std::size_t bytes = events_.capacity() * sizeof(TraceEvent);
  for (const auto& event : events_) {
    // Only out-of-line string storage counts; SSO buffers are part of
    // sizeof(TraceEvent) already.
    if (event.detail.capacity() > sizeof(std::string)) {
      bytes += event.detail.capacity();
    }
  }
  return bytes;
}

void TraceLog::write_csv(std::ostream& out) const {
  out << "time,kind,job,task,node,is_map,detail,value\n";
  for (const auto& e : events_) {
    out << e.time << ',' << to_string(e.kind) << ',' << e.job << ',' << e.task
        << ',' << e.node << ',' << (e.is_map ? 1 : 0) << ','
        << csv_quote(e.detail) << ',' << e.value << '\n';
  }
}

namespace {

/// JSON string escaping for event details (free text may carry quotes);
/// the shared escaper keeps writers symmetric with the common/json parser.
std::string json_escape(const std::string& s) { return escape_json(s); }

}  // namespace

void TraceLog::write_chrome_trace(std::ostream& out) const {
  write_chrome_trace(out, nullptr);
}

void TraceLog::write_chrome_trace(std::ostream& out,
                                  const obs::SpanLog* spans) const {
  // The control plane (counters, instants, policy decisions) renders as
  // its own trace-viewer process, away from any real node pid.
  constexpr long long kControlPid = 1000000;
  // The span tree gets its own pid range, clear of node pids and the
  // control plane: the run span and decision anchors live on kSpanPid,
  // each job's subtree on kSpanJobPidBase + job.
  constexpr long long kSpanPid = 2000000;
  constexpr long long kSpanJobPidBase = 2000001;

  // Pair each phase start with the start of the next phase of the same
  // task, or with the task's finish/kill.
  struct OpenPhase {
    SimTime start = 0.0;
    std::string name;
    NodeId node = kInvalidNode;
    JobId job = kInvalidJob;
  };
  std::map<TaskId, OpenPhase> open;

  out << "[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };
  auto emit = [&](const OpenPhase& phase, TaskId task, SimTime end) {
    comma();
    out << "\n{\"name\":\"" << json_escape(phase.name) << "\",\"ph\":\"X\",\"pid\":"
        << phase.node << ",\"tid\":" << task << ",\"ts\":"
        << phase.start * 1e6 << ",\"dur\":" << (end - phase.start) * 1e6
        << ",\"args\":{\"job\":" << phase.job << "}}";
  };
  auto emit_instant = [&](const TraceEvent& e, const char* name) {
    comma();
    out << "\n{\"name\":\"" << name << "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":"
        << kControlPid << ",\"tid\":0,\"ts\":" << e.time * 1e6
        << ",\"args\":{\"job\":" << e.job << "}}";
  };
  auto emit_counter = [&](const char* name, SimTime time, const char* series,
                          double value) {
    comma();
    out << "\n{\"name\":\"" << name << "\",\"ph\":\"C\",\"pid\":" << kControlPid
        << ",\"ts\":" << time * 1e6 << ",\"args\":{\"" << series
        << "\":" << value << "}}";
  };

  // Process-name metadata: one process per node plus the control plane.
  std::set<NodeId> nodes;
  for (const auto& e : events_) {
    if (e.node != kInvalidNode) nodes.insert(e.node);
  }
  for (NodeId node : nodes) {
    comma();
    out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
        << ",\"args\":{\"name\":\"node-" << node << "\"}}";
  }
  comma();
  out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kControlPid
      << ",\"args\":{\"name\":\"control-plane\"}}";

  // Running-task concurrency, recomputed from launch/finish/kill events.
  int running_maps = 0;
  int running_reduces = 0;
  SimTime last_time = 0.0;

  for (const auto& e : events_) {
    last_time = std::max(last_time, e.time);
    switch (e.kind) {
      case TraceEventKind::kPhaseStarted: {
        if (auto it = open.find(e.task); it != open.end()) {
          emit(it->second, e.task, e.time);
        }
        open[e.task] = OpenPhase{e.time, e.detail, e.node, e.job};
        break;
      }
      case TraceEventKind::kTaskLaunched: {
        (e.is_map ? running_maps : running_reduces) += 1;
        emit_counter("running-tasks", e.time, e.is_map ? "maps" : "reduces",
                     e.is_map ? running_maps : running_reduces);
        break;
      }
      case TraceEventKind::kTaskFinished:
      case TraceEventKind::kTaskKilled: {
        if (auto it = open.find(e.task); it != open.end()) {
          emit(it->second, e.task, e.time);
          open.erase(it);
        }
        (e.is_map ? running_maps : running_reduces) -= 1;
        emit_counter("running-tasks", e.time, e.is_map ? "maps" : "reduces",
                     e.is_map ? running_maps : running_reduces);
        break;
      }
      case TraceEventKind::kSlotTargetChanged:
        emit_counter(e.is_map ? "map-slot-target" : "reduce-slot-target",
                     e.time, "target", e.value);
        break;
      case TraceEventKind::kPolicyDecision: {
        comma();
        out << "\n{\"name\":\"" << json_escape(e.detail)
            << "\",\"ph\":\"i\",\"s\":\"p\",\"pid\":" << kControlPid
            << ",\"tid\":1,\"ts\":" << e.time * 1e6
            << ",\"args\":{\"balance_factor\":" << e.value << "}}";
        break;
      }
      case TraceEventKind::kBarrierCrossed:
        emit_instant(e, "barrier");
        break;
      case TraceEventKind::kJobFinished:
        emit_instant(e, "job-finished");
        break;
      case TraceEventKind::kNodeFailed:
        emit_instant(e, "node-failed");
        break;
      case TraceEventKind::kNodeRecovered:
        emit_instant(e, "node-recovered");
        break;
      case TraceEventKind::kNodeBlacklisted:
        emit_instant(e, "node-blacklisted");
        break;
      case TraceEventKind::kJobFailed:
        emit_instant(e, "job-failed");
        break;
      case TraceEventKind::kTaskAttemptFailed:
        // An instant only: the attempt's slice is closed by the TASK_KILLED
        // the requeue emits, so the running-task counters stay balanced.
        emit_instant(e, "task-attempt-failed");
        break;
      case TraceEventKind::kSloAlert: {
        comma();
        out << "\n{\"name\":\"slo-alert\",\"ph\":\"i\",\"s\":\"g\",\"pid\":"
            << kControlPid << ",\"tid\":2,\"ts\":" << e.time * 1e6
            << ",\"args\":{\"tenant\":\"" << json_escape(e.detail)
            << "\",\"burn_rate\":" << e.value << "}}";
        break;
      }
      default:
        break;
    }
  }

  // Flush phases still open at the end of the log (tasks in flight on a
  // killed node, runs cut off by the time limit) as slices ending at the
  // last event time, so the viewer shows them instead of dropping them.
  for (const auto& [task, phase] : open) {
    emit(phase, task, std::max(last_time, phase.start));
  }

  if (spans != nullptr && !spans->empty()) {
    // Open spans (aborted/truncated logs) render up to the latest time
    // anything in either log saw.
    SimTime flush_time = last_time;
    for (const auto& s : spans->spans()) {
      flush_time = std::max(flush_time, s.start);
      if (s.closed()) flush_time = std::max(flush_time, s.end);
    }
    auto span_end = [&](const obs::Span& s) {
      return s.closed() ? s.end : flush_time;
    };
    auto span_pid = [&](const obs::Span& s) {
      return s.kind == obs::SpanKind::kRun || s.job == kInvalidJob
                 ? kSpanPid
                 : kSpanJobPidBase + s.job;
    };
    auto span_tid = [&](const obs::Span& s) -> long long {
      switch (s.kind) {
        case obs::SpanKind::kRun:
        case obs::SpanKind::kJob: return 0;
        case obs::SpanKind::kPhase:
          if (s.name.rfind("maps", 0) == 0) return 1;
          if (s.name == "shuffle") return 2;
          return 3;
        case obs::SpanKind::kWave: return 1;  // nested inside the map phase
        case obs::SpanKind::kAttempt: return 10 + s.task;
      }
      return 0;
    };

    // Process names for the span processes.
    comma();
    out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSpanPid
        << ",\"args\":{\"name\":\"spans\"}}";
    for (const auto& s : spans->spans()) {
      if (s.kind != obs::SpanKind::kJob) continue;
      comma();
      out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
          << kSpanJobPidBase + s.job << ",\"args\":{\"name\":\"job-" << s.job
          << "-spans\"}}";
    }

    // One zero-duration anchor slice per slot-policy decision cited by a
    // launch, on the spans process, so decision->launch flows have a
    // slice to start from.
    std::map<int, SimTime> decision_anchors;
    for (const auto& s : spans->spans()) {
      if (s.kind == obs::SpanKind::kAttempt && s.decision_id >= 0 &&
          s.decision_time != kTimeNever) {
        decision_anchors.emplace(s.decision_id, s.decision_time);
      }
    }
    for (const auto& [id, time] : decision_anchors) {
      comma();
      out << "\n{\"name\":\"decision-" << id
          << "\",\"ph\":\"X\",\"pid\":" << kSpanPid << ",\"tid\":1,\"ts\":"
          << time * 1e6 << ",\"dur\":0,\"args\":{\"decision_id\":" << id
          << "}}";
    }

    // The slices themselves, nested by (pid, tid, containment).
    for (const auto& s : spans->spans()) {
      comma();
      out << "\n{\"name\":\"" << json_escape(s.name)
          << "\",\"ph\":\"X\",\"pid\":" << span_pid(s)
          << ",\"tid\":" << span_tid(s) << ",\"ts\":" << s.start * 1e6
          << ",\"dur\":" << (span_end(s) - s.start) * 1e6
          << ",\"args\":{\"span\":" << s.id << ",\"outcome\":\""
          << obs::to_string(s.outcome) << "\"";
      if (s.kind == obs::SpanKind::kAttempt) {
        out << ",\"node\":" << s.node << ",\"decision_id\":" << s.decision_id
            << ",\"retry_of\":" << s.retry_of << ",\"speculative\":"
            << (s.speculative ? "true" : "false");
      }
      out << "}}";
    }

    // Flow arrows.  Ids must be unique per arrow; retry flows use the
    // retrying span's id, decision flows an offset range above every
    // span id.
    const long long decision_flow_base =
        static_cast<long long>(spans->size()) + 1;
    long long decision_flow = decision_flow_base;
    for (const auto& s : spans->spans()) {
      if (s.kind != obs::SpanKind::kAttempt) continue;
      if (s.retry_of != obs::kInvalidSpan) {
        const obs::Span& failed = spans->at(s.retry_of);
        comma();
        out << "\n{\"name\":\"retry\",\"ph\":\"s\",\"id\":" << s.id
            << ",\"pid\":" << span_pid(failed) << ",\"tid\":"
            << span_tid(failed) << ",\"ts\":" << span_end(failed) * 1e6
            << "}";
        comma();
        out << "\n{\"name\":\"retry\",\"ph\":\"f\",\"bp\":\"e\",\"id\":"
            << s.id << ",\"pid\":" << span_pid(s) << ",\"tid\":" << span_tid(s)
            << ",\"ts\":" << s.start * 1e6 << "}";
      }
      if (s.decision_id >= 0 && s.decision_time != kTimeNever) {
        comma();
        out << "\n{\"name\":\"decision\",\"ph\":\"s\",\"id\":" << decision_flow
            << ",\"pid\":" << kSpanPid << ",\"tid\":1,\"ts\":"
            << s.decision_time * 1e6 << "}";
        comma();
        out << "\n{\"name\":\"decision\",\"ph\":\"f\",\"bp\":\"e\",\"id\":"
            << decision_flow << ",\"pid\":" << span_pid(s) << ",\"tid\":"
            << span_tid(s) << ",\"ts\":" << s.start * 1e6 << "}";
        ++decision_flow;
      }
    }
  }

  out << "\n]\n";
}

}  // namespace smr::metrics
