#include "smr/metrics/trace.hpp"

#include <map>
#include <ostream>

namespace smr::metrics {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kJobSubmitted: return "JOB_SUBMITTED";
    case TraceEventKind::kTaskLaunched: return "TASK_LAUNCHED";
    case TraceEventKind::kPhaseStarted: return "PHASE_STARTED";
    case TraceEventKind::kTaskFinished: return "TASK_FINISHED";
    case TraceEventKind::kTaskKilled: return "TASK_KILLED";
    case TraceEventKind::kBarrierCrossed: return "BARRIER_CROSSED";
    case TraceEventKind::kJobFinished: return "JOB_FINISHED";
    case TraceEventKind::kSlotTargetChanged: return "SLOT_TARGET_CHANGED";
    case TraceEventKind::kNodeFailed: return "NODE_FAILED";
  }
  return "UNKNOWN";
}

std::vector<TraceEvent> TraceLog::of_kind(TraceEventKind kind) const {
  std::vector<TraceEvent> matching;
  for (const auto& event : events_) {
    if (event.kind == kind) matching.push_back(event);
  }
  return matching;
}

void TraceLog::write_csv(std::ostream& out) const {
  out << "time,kind,job,task,node,is_map,detail,value\n";
  for (const auto& e : events_) {
    out << e.time << ',' << to_string(e.kind) << ',' << e.job << ',' << e.task
        << ',' << e.node << ',' << (e.is_map ? 1 : 0) << ',' << e.detail << ','
        << e.value << '\n';
  }
}

void TraceLog::write_chrome_trace(std::ostream& out) const {
  // Pair each phase start with the start of the next phase of the same
  // task, or with the task's finish/kill.
  struct OpenPhase {
    SimTime start = 0.0;
    std::string name;
    NodeId node = kInvalidNode;
    JobId job = kInvalidJob;
  };
  std::map<TaskId, OpenPhase> open;

  out << "[";
  bool first = true;
  auto emit = [&](const OpenPhase& phase, TaskId task, SimTime end) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << phase.name << "\",\"ph\":\"X\",\"pid\":"
        << phase.node << ",\"tid\":" << task << ",\"ts\":"
        << phase.start * 1e6 << ",\"dur\":" << (end - phase.start) * 1e6
        << ",\"args\":{\"job\":" << phase.job << "}}";
  };
  auto emit_instant = [&](const TraceEvent& e, const char* name) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << name << "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,"
        << "\"tid\":0,\"ts\":" << e.time * 1e6 << ",\"args\":{\"job\":"
        << e.job << "}}";
  };

  for (const auto& e : events_) {
    switch (e.kind) {
      case TraceEventKind::kPhaseStarted: {
        if (auto it = open.find(e.task); it != open.end()) {
          emit(it->second, e.task, e.time);
        }
        open[e.task] = OpenPhase{e.time, e.detail, e.node, e.job};
        break;
      }
      case TraceEventKind::kTaskFinished:
      case TraceEventKind::kTaskKilled: {
        if (auto it = open.find(e.task); it != open.end()) {
          emit(it->second, e.task, e.time);
          open.erase(it);
        }
        break;
      }
      case TraceEventKind::kBarrierCrossed:
        emit_instant(e, "barrier");
        break;
      case TraceEventKind::kJobFinished:
        emit_instant(e, "job-finished");
        break;
      default:
        break;
    }
  }
  out << "\n]\n";
}

}  // namespace smr::metrics
