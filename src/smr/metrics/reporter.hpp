// Result reporting: fixed-width text tables and CSV exports of run
// results, shared by the CLI tool and the examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "smr/metrics/job_metrics.hpp"

namespace smr::metrics {

/// A simple fixed-width text table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with columns padded to the widest cell (+2 spaces gutter).
  void write(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by the report builders.
std::string format_fixed(double value, int decimals = 1);

/// Per-job summary table of a run: timings, throughput.
TextTable job_summary_table(const RunResult& result);

/// CSV of the per-job results (one row per job, header included).
void write_jobs_csv(const RunResult& result, std::ostream& out);

/// CSV of the progress series: job,time,map_pct,reduce_pct,total_pct.
void write_progress_csv(const RunResult& result, std::ostream& out);

/// CSV of the slot timeline: time,map_target,reduce_target,running_maps,
/// running_reduces (cluster averages).
void write_slots_csv(const RunResult& result, std::ostream& out);

}  // namespace smr::metrics
