#include "smr/metrics/job_metrics.hpp"

#include <algorithm>

namespace smr::metrics {

SimTime RunResult::mean_execution_time() const {
  if (jobs.empty()) return 0.0;
  SimTime sum = 0.0;
  for (const auto& job : jobs) {
    SMR_CHECK_MSG(job.finished(), "job " << job.name << " did not finish");
    sum += job.execution_time();
  }
  return sum / static_cast<double>(jobs.size());
}

SimTime RunResult::last_finish_time() const {
  SMR_CHECK(!jobs.empty());
  SimTime first_submit = kTimeNever;
  SimTime last_finish = 0.0;
  for (const auto& job : jobs) {
    SMR_CHECK(job.finished());
    first_submit = std::min(first_submit, job.submit_time);
    last_finish = std::max(last_finish, job.finish_time);
  }
  return last_finish - first_submit;
}

RunResult average_trials(const std::vector<RunResult>& trials) {
  SMR_CHECK(!trials.empty());
  RunResult avg = trials.front();
  const double n = static_cast<double>(trials.size());
  for (std::size_t t = 1; t < trials.size(); ++t) {
    const RunResult& trial = trials[t];
    SMR_CHECK_MSG(trial.jobs.size() == avg.jobs.size(),
                  "trials have different job counts");
    for (std::size_t j = 0; j < avg.jobs.size(); ++j) {
      SMR_CHECK(trial.jobs[j].name == avg.jobs[j].name);
      avg.jobs[j].submit_time += trial.jobs[j].submit_time;
      avg.jobs[j].start_time += trial.jobs[j].start_time;
      avg.jobs[j].maps_done_time += trial.jobs[j].maps_done_time;
      avg.jobs[j].finish_time += trial.jobs[j].finish_time;
      avg.jobs[j].failed = avg.jobs[j].failed || trial.jobs[j].failed;
    }
    avg.makespan += trial.makespan;
    avg.completed = avg.completed && trial.completed;
    if (avg.failure_reason.empty()) avg.failure_reason = trial.failure_reason;
    avg.engine_events += trial.engine_events;
    avg.solver_calls += trial.solver_calls;
    avg.solver_full_solves += trial.solver_full_solves;
  }
  for (auto& job : avg.jobs) {
    job.submit_time /= n;
    job.start_time /= n;
    job.maps_done_time /= n;
    job.finish_time /= n;
  }
  avg.makespan /= n;
  // Progress/slot series are kept from the first trial (the curves are for
  // shape plots; averaging unaligned time series would blur transitions).
  return avg;
}

}  // namespace smr::metrics
