#include "smr/dfs/block_store.hpp"

#include <algorithm>

#include "smr/common/error.hpp"

namespace smr::dfs {

BlockStore::BlockStore(int nodes, int replication, Rng rng)
    : nodes_(nodes), replication_(std::min(replication, nodes)), rng_(rng) {
  SMR_CHECK(nodes >= 1);
  SMR_CHECK(replication >= 1);
}

FileId BlockStore::add_file(Bytes size, Bytes block_size) {
  SMR_CHECK(size > 0);
  SMR_CHECK(block_size > 0);
  FileInfo info;
  info.size = size;
  Bytes remaining = size;
  while (remaining > 0) {
    Block block;
    block.size = std::min(remaining, block_size);
    remaining -= block.size;
    // Sample `replication_` distinct nodes uniformly (single-rack policy).
    block.replicas.reserve(static_cast<std::size_t>(replication_));
    while (static_cast<int>(block.replicas.size()) < replication_) {
      const NodeId candidate =
          static_cast<NodeId>(rng_.uniform_int(0, nodes_ - 1));
      if (!block.has_replica_on(candidate)) block.replicas.push_back(candidate);
    }
    info.blocks.push_back(std::move(block));
  }
  files_.push_back(std::move(info));
  return static_cast<FileId>(files_.size() - 1);
}

const FileInfo& BlockStore::file(FileId id) const {
  SMR_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < files_.size(),
                "unknown file id " << id);
  return files_[static_cast<std::size_t>(id)];
}

std::vector<Bytes> BlockStore::bytes_per_node() const {
  std::vector<Bytes> usage(static_cast<std::size_t>(nodes_), 0);
  for (const auto& f : files_) {
    for (const auto& b : f.blocks) {
      for (NodeId r : b.replicas) usage[static_cast<std::size_t>(r)] += b.size;
    }
  }
  return usage;
}

}  // namespace smr::dfs
