// HDFS-like block store: files are split into fixed-size blocks, each
// replicated on `replication` distinct nodes.  The MapReduce scheduler uses
// replica locations for locality-aware task placement (a node-local map task
// reads from local disk; a non-local one reads across the network).
//
// The paper's testbed hangs all 16 workers off one switch, i.e. a single
// rack, so the placement policy models HDFS's single-rack behaviour:
// `replication` distinct uniformly random nodes per block.
#pragma once

#include <cstdint>
#include <vector>

#include "smr/cluster/node.hpp"
#include "smr/common/rng.hpp"
#include "smr/common/types.hpp"

namespace smr::dfs {

using FileId = std::int32_t;
inline constexpr FileId kInvalidFile = -1;

struct Block {
  Bytes size = 0;
  /// Distinct nodes holding a replica; size == min(replication, nodes).
  std::vector<NodeId> replicas;

  bool has_replica_on(NodeId node) const {
    for (NodeId r : replicas) {
      if (r == node) return true;
    }
    return false;
  }
};

struct FileInfo {
  Bytes size = 0;
  std::vector<Block> blocks;
};

class BlockStore {
 public:
  /// `nodes` is the number of data nodes; `rng` seeds placement.
  BlockStore(int nodes, int replication, Rng rng);

  /// Create a file of `size` bytes split into `block_size` blocks (the last
  /// block holds the remainder).  Returns its id.
  FileId add_file(Bytes size, Bytes block_size);

  const FileInfo& file(FileId id) const;
  int node_count() const { return nodes_; }
  int replication() const { return replication_; }

  /// Bytes stored (all replicas) on each node; used to check placement
  /// balance.
  std::vector<Bytes> bytes_per_node() const;

 private:
  int nodes_;
  int replication_;
  Rng rng_;
  std::vector<FileInfo> files_;
};

}  // namespace smr::dfs
