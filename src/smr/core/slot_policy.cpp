#include "smr/core/slot_policy.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "smr/common/log.hpp"

namespace smr::core {

namespace {
constexpr double kRateEps = 1.0;  // bytes/s below which a rate counts as zero
}

SmrSlotPolicy::SmrSlotPolicy(SlotManagerConfig config)
    : SmrSlotPolicy(std::move(config), {}) {}

SmrSlotPolicy::SmrSlotPolicy(SlotManagerConfig config, std::vector<double> node_speeds)
    : config_(config),
      node_speeds_(std::move(node_speeds)),
      input_rate_(config.input_rate_window),
      output_rate_(config.rate_window),
      shuffle_rate_(config.rate_window),
      detector_(config) {
  config_.validate();
}

void SmrSlotPolicy::on_start(std::span<mapreduce::TaskTracker> trackers) {
  SMR_CHECK(!trackers.empty());
  // Start from the user's HadoopV1-style configuration (paper §IV-A3:
  // "Initially, the slot manager has a specific number of map slots and
  // reduce slots as configured by the user").
  initial_map_slots_ = trackers.front().map_target();
  initial_reduce_slots_ = trackers.front().reduce_target();
  map_slots_ = initial_map_slots_;
  reduce_slots_ = initial_reduce_slots_;
  if (!node_speeds_.empty()) {
    SMR_CHECK(node_speeds_.size() == trackers.size());
  }
}

void SmrSlotPolicy::reset_statistics() {
  input_rate_.reset();
  output_rate_.reset();
  shuffle_rate_.reset();
  detector_.reset();
  started_ = false;
  last_f_.reset();
  first_reduce_running_time_ = kTimeNever;
  node_input_rates_.clear();
  node_running_maps_.clear();
}

void SmrSlotPolicy::log_decision(const mapreduce::ClusterStats& stats,
                                 obs::SlotAction action, std::string reason,
                                 int map_slots_before, int reduce_slots_before) {
  if (decision_log_ == nullptr) return;
  obs::SlotDecision d;
  d.time = stats.now;
  d.map_output_rate = output_rate_.rate();
  d.shuffle_rate = shuffle_rate_.rate();
  d.running_reduces = stats.running_reduces;
  d.total_reduces = stats.total_reduces;
  d.balance_factor = last_f_;
  d.slow_start_passed = started_;
  d.thrash_suspected = detector_.suspicious();
  d.thrash_confirmed = detector_.confirmed();
  d.thrash_strikes = detector_.strikes();
  d.thrash_ceiling = detector_.confirmed() ? detector_.ceiling() : -1;
  d.map_slots_before = map_slots_before;
  d.map_slots_after = map_slots_;
  d.reduce_slots_before = reduce_slots_before;
  d.reduce_slots_after = reduce_slots_;
  d.action = action;
  d.reason = std::move(reason);
  decision_log_->record(std::move(d));
}

void SmrSlotPolicy::on_period(std::span<mapreduce::TaskTracker> trackers,
                              const mapreduce::ClusterStats& stats) {
  if (!stats.has_active_job) {
    if (front_job_ != kInvalidJob) {
      // Idle cluster: keep the adapted slot counts for the next job but
      // forget job-specific statistics.
      front_job_ = kInvalidJob;
      reset_statistics();
      apply_targets(trackers, stats);
    }
    return;
  }

  if (stats.active_jobs.front() != front_job_) {
    // New front job: its workload may differ, so statistics and the thrash
    // ceiling restart; the slot counts themselves carry over (they are a
    // good prior when consecutive jobs resemble each other).
    front_job_ = stats.active_jobs.front();
    reset_statistics();
  }

  // Feed the heartbeat-aggregated counters into the windowed rates.
  input_rate_.observe(stats.now, stats.cum_map_input);
  output_rate_.observe(stats.now, stats.cum_map_output);
  shuffle_rate_.observe(stats.now, stats.cum_shuffled);
  if (config_.per_node_targets && !stats.per_node.empty()) {
    if (node_input_rates_.empty()) {
      node_input_rates_.assign(stats.per_node.size(),
                               WindowedRate(config_.rate_window));
      node_running_maps_.assign(stats.per_node.size(), TrailingMean(4));
    }
    for (const auto& node : stats.per_node) {
      const auto i = static_cast<std::size_t>(node.node);
      node_input_rates_[i].observe(stats.now, node.cum_map_input);
      node_running_maps_[i].add(node.running_maps);
    }
  }

  // Audit baseline: the slot counts in force when this period began.
  const int maps_before = map_slots_;
  const int reduces_before = reduce_slots_;

  // --- Slow start (§IV-A1) ---------------------------------------------
  if (first_reduce_running_time_ == kTimeNever && stats.running_reduces > 0) {
    first_reduce_running_time_ = stats.now;
  }
  if (!started_) {
    // The paper's 10%-of-maps gate; we additionally require the shuffle
    // statistics to cover a full window once reduce tasks exist (fresh
    // reducers start with a catch-up backlog whose drain rate says nothing
    // about the balance of map and shuffle throughput).
    const bool maps_gate = stats.front_job_map_fraction >= config_.slow_start_fraction;
    const bool shuffle_gate =
        stats.total_reduces == 0 ||
        (first_reduce_running_time_ != kTimeNever &&
         stats.now >= first_reduce_running_time_ + config_.rate_window);
    if (!config_.slow_start || (maps_gate && shuffle_gate)) {
      started_ = true;
    } else {
      std::ostringstream reason;
      if (!maps_gate) {
        reason << "slow start: " << 100.0 * stats.front_job_map_fraction
               << "% of front job's maps finished, gate at "
               << 100.0 * config_.slow_start_fraction << '%';
      } else {
        reason << "slow start: shuffle statistics do not yet cover a full "
               << config_.rate_window << "s window";
      }
      log_decision(stats, obs::SlotAction::kHoldSlowStart, reason.str(),
                   maps_before, reduces_before);
      apply_targets(trackers, stats);
      return;
    }
  }

  const int remaining_maps = stats.pending_maps + stats.running_maps;

  // --- Tail stretch (§III-B3) --------------------------------------------
  if (remaining_maps == 0) {
    if (config_.tail_switching) {
      // Only reduce tasks remain: release map slots; grant extra reduce
      // slots only when the shuffle volume is small enough not to jam the
      // network.
      std::ostringstream reason;
      reason << "tail stretch: no unfinished maps, releasing map slots";
      if (stats.front_job_shuffle_volume <= config_.small_shuffle_threshold) {
        reduce_slots_ = std::min(config_.max_reduce_slots,
                                 initial_reduce_slots_ + config_.tail_reduce_boost);
        reason << ", small shuffle (" << stats.front_job_shuffle_volume
               << " B), reduce slots -> " << reduce_slots_;
      } else {
        reason << ", shuffle too large (" << stats.front_job_shuffle_volume
               << " B) for a reduce boost";
      }
      ++decisions_;
      log_decision(stats, obs::SlotAction::kTailStretch, reason.str(),
                   maps_before, reduces_before);
    }
    apply_targets(trackers, stats);
    return;
  }
  // Out of the tail: restore the front-stretch reduce allocation (kept
  // small to avoid too many concurrent copiers, §IV-A2).
  reduce_slots_ = initial_reduce_slots_;

  // --- Thrashing detection (§IV-A2) ---------------------------------------
  bool climb_held = false;
  if (config_.detect_thrashing) {
    const ThrashVerdict verdict =
        detector_.observe(stats.now, map_slots_, input_rate_.rate());
    if (verdict == ThrashVerdict::kConfirmed) {
      const int old = map_slots_;
      map_slots_ = std::clamp(detector_.revert_slots(), config_.min_map_slots,
                              config_.max_map_slots);
      detector_.on_slots_changed(old, map_slots_, stats.now);
      SMR_INFO("slot manager: thrashing confirmed at " << old
               << " map slots; reverting to " << map_slots_);
      ++decisions_;
      std::ostringstream reason;
      reason << "thrashing confirmed at " << old << " map slots, reverting to "
             << map_slots_ << " (new ceiling)";
      log_decision(stats, obs::SlotAction::kRevertThrash, reason.str(),
                   maps_before, reduces_before);
      apply_targets(trackers, stats);
      return;
    }
    // A pending suspicion freezes climbing (the paper "gives the system
    // another chance" before judging); decrements stay allowed.
    climb_held = (verdict == ThrashVerdict::kSuspected);
  }

  // --- Balance between map and shuffle throughput (§III-B1, §IV-A3) -------
  const double rt = output_rate_.rate();
  const double rs = shuffle_rate_.rate();
  const double n = static_cast<double>(stats.running_reduces);
  const double total_reduces = static_cast<double>(stats.total_reduces);

  bool map_heavy;
  bool reduce_heavy = false;
  if (total_reduces <= 0.0 || n <= 0.0) {
    // Nothing is shuffling (map-only job, or reduces not yet launched):
    // the shuffle side trivially keeps up.
    map_heavy = true;
    last_f_.reset();
  } else if (rt <= kRateEps) {
    // No map output landed inside the statistics window (e.g. a straggling
    // wave): no basis for a decision — hold everything.
    log_decision(stats, obs::SlotAction::kHoldNoStats,
                 "no map output landed in the statistics window, holding",
                 maps_before, reduces_before);
    apply_targets(trackers, stats);
    return;
  } else {
    const double rm = (n / total_reduces) * rt;  // §IV-A3
    const double f = rs / std::max(rm, kRateEps);
    last_f_ = f;
    map_heavy = f > config_.balance_upper;
    reduce_heavy = f < config_.balance_lower;
  }

  obs::SlotAction action = obs::SlotAction::kHoldBalanced;
  std::ostringstream reason;
  if (map_heavy) {
    const int proposed = map_slots_ + 1;
    if (!climb_held && proposed <= config_.max_map_slots &&
        proposed <= detector_.ceiling()) {
      detector_.on_slots_changed(map_slots_, proposed, stats.now);
      map_slots_ = proposed;
      ++decisions_;
      action = obs::SlotAction::kGrowMaps;
      if (last_f_) {
        reason << "map-heavy: f=" << *last_f_ << " > " << config_.balance_upper
               << ", map slots -> " << map_slots_;
      } else {
        reason << "map-heavy: nothing shuffling, map slots -> " << map_slots_;
      }
      SMR_DEBUG("slot manager: map-heavy (f="
                << (last_f_ ? *last_f_ : -1.0) << "); map slots -> " << map_slots_);
    } else if (climb_held) {
      reason << "map-heavy but climb held: thrashing suspected, strike "
             << detector_.strikes() << " of " << config_.suspect_threshold;
    } else if (proposed > detector_.ceiling()) {
      reason << "map-heavy but " << proposed << " slots would exceed the thrash ceiling "
             << detector_.ceiling();
    } else {
      reason << "map-heavy but already at max_map_slots=" << config_.max_map_slots;
    }
  } else if (reduce_heavy) {
    const int proposed = map_slots_ - 1;
    if (proposed >= config_.min_map_slots) {
      detector_.on_slots_changed(map_slots_, proposed, stats.now);
      map_slots_ = proposed;
      ++decisions_;
      action = obs::SlotAction::kShrinkMaps;
      reason << "reduce-heavy: f=" << *last_f_ << " < " << config_.balance_lower
             << ", map slots -> " << map_slots_;
      SMR_DEBUG("slot manager: reduce-heavy (f=" << *last_f_ << "); map slots -> "
                                                 << map_slots_);
    } else {
      reason << "reduce-heavy: f=" << *last_f_
             << ", but already at min_map_slots=" << config_.min_map_slots;
    }
  } else {
    // Balanced state: hold (§IV-A3).
    reason << "balanced: f=" << *last_f_ << " within [" << config_.balance_lower
           << ", " << config_.balance_upper << "]";
  }
  log_decision(stats, action, reason.str(), maps_before, reduces_before);

  apply_targets(trackers, stats);
}

double SmrSlotPolicy::node_relative_speed(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  const double prior = i < node_speeds_.size() ? node_speeds_[i] : 1.0;
  if (node_input_rates_.empty()) return prior;
  // Per-slot throughput of this node vs the fastest node's; both need a
  // full measurement window with maps actually running.
  const double occupancy = node_running_maps_[i].mean();
  const double rate = node_input_rates_[i].rate();
  if (occupancy < 0.5 || rate <= 0.0) return prior;
  double best = 0.0;
  for (std::size_t j = 0; j < node_input_rates_.size(); ++j) {
    const double occ_j = node_running_maps_[j].mean();
    const double rate_j = node_input_rates_[j].rate();
    if (occ_j >= 0.5 && rate_j > 0.0) best = std::max(best, rate_j / occ_j);
  }
  if (best <= 0.0) return prior;
  const double measured = std::clamp((rate / occupancy) / best, 0.1, 1.0);
  // Measurements are confounded while a node thrashes (its per-slot rate
  // collapses for reasons the slot count itself caused), so they refine the
  // configured prior rather than replace it.
  return std::clamp(measured, 0.6 * prior, std::min(1.0, 1.4 * prior));
}

void SmrSlotPolicy::apply_targets(std::span<mapreduce::TaskTracker> trackers,
                                  const mapreduce::ClusterStats& stats) const {
  // Dead and blacklisted trackers are not capacity: spreading the remaining
  // work over them would both under-provision the live nodes and resurrect
  // slot targets the runtime zeroed at failure time.  (Hand-built stats in
  // tests may omit per_node; treat every tracker as live then.)
  auto usable = [&](const mapreduce::TaskTracker& tracker) {
    const auto i = static_cast<std::size_t>(tracker.node());
    if (i >= stats.per_node.size()) return true;
    return stats.per_node[i].alive && !stats.per_node[i].blacklisted;
  };
  int nodes = 0;
  for (const auto& tracker : trackers) nodes += usable(tracker) ? 1 : 0;

  const int remaining_maps = stats.pending_maps + stats.running_maps;
  // Never keep more map slots open than there is map work to fill; this is
  // the "few map tasks" half of the tail-stretch rule and costs nothing in
  // the front stretch (remaining >> capacity there).
  const int needed_per_node =
      (remaining_maps + nodes - 1) / std::max(1, nodes);

  for (auto& tracker : trackers) {
    if (!usable(tracker)) continue;  // runtime manages its (zeroed) targets
    int map_target = map_slots_;
    if (config_.per_node_targets) {
      const double speed = node_relative_speed(tracker.node());
      map_target = std::max(config_.min_map_slots,
                            static_cast<int>(std::lround(map_slots_ * speed)));
    }
    if (config_.tail_switching) {
      map_target = std::min(map_target, std::max(needed_per_node, 0));
    }
    tracker.set_map_target(map_target);
    tracker.set_reduce_target(reduce_slots_);
  }
}

}  // namespace smr::core
