// SMapReduce's slot manager as an allocation policy (the paper's core
// contribution, Sections III and IV).
//
// Every policy period the manager:
//   1. Aggregates the heartbeat statistics into windowed rates: the map
//      input processing rate, the map output rate R_t and the shuffle rate
//      R_s (Section III-C).
//   2. Applies the slow-start gate: no decisions until 10% of the front
//      job's map tasks have finished (Section IV-A1; ablation flag).
//   3. Detects thrashing through the stabilisation window + two-strike
//      state machine and, on confirmation, reverts to the previous slot
//      count which becomes a ceiling (Sections III-B2, IV-A2).
//   4. Otherwise balances map and shuffle throughput: with n of N reduce
//      tasks running, the first-wave map output rate is R_m = (n/N)·R_t and
//      the balance factor f = R_s / R_m decides map-heavy (+1 map slot),
//      reduce-heavy (−1) or balanced (hold) (Sections III-B1, IV-A3).
//   5. In the tail stretch (few or no unfinished maps) it releases map
//      slots and, when the job's shuffle volume is small enough not to jam
//      the network, grants extra reduce slots (Section III-B3).
//
// Decisions are issued as tracker slot targets; the task trackers apply
// them through the lazy slot changer (Section III-D), so no running task is
// ever terminated.
#pragma once

#include <optional>
#include <vector>

#include "smr/common/stats.hpp"
#include "smr/common/types.hpp"
#include "smr/core/slot_manager_config.hpp"
#include "smr/core/thrash_detector.hpp"
#include "smr/mapreduce/policy.hpp"
#include "smr/obs/decision_log.hpp"

namespace smr::core {

class SmrSlotPolicy final : public mapreduce::AllocationPolicy {
 public:
  explicit SmrSlotPolicy(SlotManagerConfig config = {});
  /// Heterogeneous extension: per-node CPU speeds scale per-node targets
  /// when config.per_node_targets is set.
  SmrSlotPolicy(SlotManagerConfig config, std::vector<double> node_speeds);

  std::string name() const override { return "SMapReduce"; }

  /// The slot manager aggregates statistics per policy period (on_period);
  /// its on_heartbeat is the inherited no-op, so heartbeats need no
  /// snapshot.
  bool wants_heartbeat_stats() const override { return false; }

  void on_start(std::span<mapreduce::TaskTracker> trackers) override;
  void on_period(std::span<mapreduce::TaskTracker> trackers,
                 const mapreduce::ClusterStats& stats) override;

  // `set_decision_log` / `decision_log` are inherited from
  // AllocationPolicy; every on_period with an active job appends one
  // structured record: rates seen, gate state, action and reason.

  // --- Introspection (tests, benches, the slot timeline) ----------------
  const SlotManagerConfig& config() const { return config_; }
  int map_slots() const { return map_slots_; }
  int reduce_slots() const { return reduce_slots_; }
  const ThrashingDetector& detector() const { return detector_; }
  bool slow_start_passed() const { return started_; }
  /// Last balance factor computed (nullopt before any computation or when
  /// f was taken as infinite because nothing was shuffling).
  std::optional<double> last_balance_factor() const { return last_f_; }
  int decisions_made() const { return decisions_; }
  /// Heterogeneous extension: the relative speed currently assumed for a
  /// node (measured per-slot throughput ratio, or the configured prior).
  double node_relative_speed(NodeId node) const;

 private:
  void apply_targets(std::span<mapreduce::TaskTracker> trackers,
                     const mapreduce::ClusterStats& stats) const;
  void reset_statistics();
  /// Append one audit record for the period that just resolved.
  void log_decision(const mapreduce::ClusterStats& stats,
                    obs::SlotAction action, std::string reason,
                    int map_slots_before, int reduce_slots_before);

  SlotManagerConfig config_;
  std::vector<double> node_speeds_;

  int initial_map_slots_ = 3;
  int initial_reduce_slots_ = 2;
  int map_slots_ = 3;
  int reduce_slots_ = 2;

  WindowedRate input_rate_;
  WindowedRate output_rate_;
  WindowedRate shuffle_rate_;
  ThrashingDetector detector_;

  // Heterogeneous extension: per-node measured input rates and occupancy,
  // from the per-tracker heartbeat statistics.  The per-slot throughput
  // ratio between nodes scales their targets; the configured node_speeds_
  // act as the prior until measurements accumulate.
  std::vector<WindowedRate> node_input_rates_;
  std::vector<TrailingMean> node_running_maps_;

  JobId front_job_ = kInvalidJob;
  bool started_ = false;
  SimTime first_reduce_running_time_ = kTimeNever;
  std::optional<double> last_f_;
  int decisions_ = 0;
};

}  // namespace smr::core
