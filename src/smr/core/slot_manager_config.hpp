// Configuration of the SMapReduce slot manager (the paper's Sections III-IV).
#pragma once

#include <limits>

#include "smr/common/error.hpp"
#include "smr/common/types.hpp"

namespace smr::core {

struct SlotManagerConfig {
  // --- Slow start (paper §IV-A1) ---------------------------------------
  /// The slot manager only acts once this fraction of the front job's map
  /// tasks have finished and reported statistics; 10% by default, exactly
  /// as in the paper.
  double slow_start_fraction = 0.10;
  /// Ablation flag for Fig. 7: disable to let the manager act on the thin
  /// early statistics.
  bool slow_start = true;

  // --- Balance control (paper §III-B1, §IV-A3) --------------------------
  /// f = R_s / R_m.  f above the upper bound ⇒ shuffle keeps up ⇒
  /// map-heavy ⇒ +1 map slot; below the lower bound ⇒ shuffle lags ⇒
  /// reduce-heavy ⇒ −1 map slot; in between ⇒ balanced state, hold.
  double balance_upper = 0.95;
  double balance_lower = 0.85;

  /// Slot bounds the manager may move within.
  int min_map_slots = 1;
  int max_map_slots = 24;
  int min_reduce_slots = 1;
  int max_reduce_slots = 8;

  // --- Thrashing detection (paper §III-B2, §IV-A2) -----------------------
  bool detect_thrashing = true;  // ablation flag for Fig. 7
  /// After a slot change the processing rate dips, then recovers into a
  /// stable range; only observations after this long count.  Keep it below
  /// the policy period so a judgement lands between consecutive decisions.
  SimTime stabilize_time = 4.0;
  /// Consecutive "suspected thrashing" observations needed before the
  /// manager announces thrashing (two-strike rule in the paper).
  int suspect_threshold = 2;
  /// Relative rate drop that raises a suspicion; smaller dips are noise.
  double thrash_tolerance = 0.06;

  // --- Tail stretch (paper §III-B3) ---------------------------------------
  bool tail_switching = true;
  /// Extra reduce slots granted in the tail stretch, but only when the job's
  /// shuffle volume is small (a large shuffle would jam the network).
  int tail_reduce_boost = 2;
  Bytes small_shuffle_threshold = 4 * kGiB;

  // --- Extension: heterogeneous clusters (paper §VII future work) --------
  /// Scale per-node targets by each node's CPU speed instead of issuing one
  /// uniform target.
  bool per_node_targets = false;

  /// Statistics window for the bursty counters (map output, shuffle): long
  /// enough to smooth over discrete map completions.
  SimTime rate_window = 18.0;

  /// Statistics window for the map *input* rate, which is fluid: one policy
  /// period, so each thrashing observation reflects the slot count that was
  /// actually in force during the window.
  SimTime input_rate_window = 6.0;

  void validate() const {
    SMR_CHECK(slow_start_fraction >= 0.0 && slow_start_fraction <= 1.0);
    SMR_CHECK(balance_lower > 0.0 && balance_lower < balance_upper);
    SMR_CHECK(min_map_slots >= 0 && min_map_slots <= max_map_slots);
    SMR_CHECK(min_reduce_slots >= 0 && min_reduce_slots <= max_reduce_slots);
    SMR_CHECK(stabilize_time >= 0.0);
    SMR_CHECK(suspect_threshold >= 1);
    SMR_CHECK(thrash_tolerance >= 0.0);
    SMR_CHECK(tail_reduce_boost >= 0);
    SMR_CHECK(small_shuffle_threshold >= 0);
    SMR_CHECK(rate_window > 0.0);
    SMR_CHECK(input_rate_window > 0.0);
  }
};

}  // namespace smr::core
