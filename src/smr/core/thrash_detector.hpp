// Thrashing detection (paper §III-B2 and §IV-A2).
//
// The slot manager records the cluster's average map processing rate for
// each map-slot configuration it visits.  When the slot count has grown and
// the (stabilised) rate is *lower* than the rate recorded for the last
// known-good configuration, the system is only marked "suspected of
// thrashing" — distributed measurements are noisy, so the paper gives it
// another chance.  After `suspect_threshold` consecutive suspicions the
// detector announces thrashing: the last known-good slot count becomes a
// ceiling the balance controller may not climb past, and the manager
// reverts to it.
//
// Two measurement realities are modelled after the paper:
//   * Right after any slot change the processing rate dips while new JVMs
//     warm up, so observations within `stabilize_time` of a change are
//     discarded (§IV-A2 "will grow gradually to a stable range").
//   * A drop must exceed `thrash_tolerance` to count as a suspicion.
#pragma once

#include <limits>

#include "smr/common/types.hpp"
#include "smr/core/slot_manager_config.hpp"

namespace smr::core {

enum class ThrashVerdict {
  kStabilizing,   // too soon after a slot change; observation discarded
  kOk,            // rate recorded for the current configuration
  kSuspected,     // rate dropped after a climb; strike recorded
  kConfirmed,     // thrashing announced; revert to revert_slots()
};

class ThrashingDetector {
 public:
  explicit ThrashingDetector(const SlotManagerConfig& config);

  /// Report that the cluster map-slot target changed at `now`.
  void on_slots_changed(int old_slots, int new_slots, SimTime now);

  /// Feed one periodic observation: the slot count currently in force and
  /// the windowed aggregate map processing rate.
  ThrashVerdict observe(SimTime now, int slots, double map_rate);

  /// Max map slots the controller may use (INT_MAX until confirmed).
  int ceiling() const { return ceiling_; }
  bool confirmed() const { return ceiling_ != std::numeric_limits<int>::max(); }
  bool at_ceiling(int slots) const { return slots >= ceiling_; }

  /// Slot count to revert to after a kConfirmed verdict.
  int revert_slots() const { return good_slots_; }

  /// Suspicion is pending (hold further climbs until it resolves)?
  bool suspicious() const { return suspicions_ > 0; }
  /// Consecutive suspicion strikes recorded so far (audit telemetry).
  int strikes() const { return suspicions_; }

  /// Last known-good configuration, if any (tests).
  bool has_baseline() const { return has_good_; }
  int baseline_slots() const { return good_slots_; }
  double baseline_rate() const { return good_rate_; }

  /// Forget everything (workload change / new front job).
  void reset();

 private:
  SlotManagerConfig config_;

  bool has_good_ = false;
  int good_slots_ = 0;      // last configuration with a recorded stable rate
  double good_rate_ = 0.0;  // its rate
  SimTime stable_at_ = 0.0;  // observations before this are discarded
  int suspicions_ = 0;
  int ceiling_ = std::numeric_limits<int>::max();
};

}  // namespace smr::core
