#include "smr/core/thrash_detector.hpp"

#include "smr/common/error.hpp"

namespace smr::core {

ThrashingDetector::ThrashingDetector(const SlotManagerConfig& config)
    : config_(config) {
  config_.validate();
}

void ThrashingDetector::on_slots_changed(int old_slots, int new_slots, SimTime now) {
  SMR_CHECK(old_slots >= 0 && new_slots >= 0);
  if (new_slots == old_slots) return;
  // The processing rate right after any change is untrustworthy (§IV-A2);
  // discard observations until the system settles into its stable range.
  stable_at_ = now + config_.stabilize_time;
  if (new_slots < old_slots) {
    // Moving down needs no thrash judgement; pending strikes are void.
    suspicions_ = 0;
  }
}

ThrashVerdict ThrashingDetector::observe(SimTime now, int slots, double map_rate) {
  SMR_CHECK(slots >= 0);
  if (now < stable_at_) return ThrashVerdict::kStabilizing;

  if (!has_good_ || slots <= good_slots_) {
    // First stable reading, a revisit, or a configuration below the last
    // known-good one: (re)record the baseline for this configuration.
    has_good_ = true;
    good_slots_ = slots;
    good_rate_ = map_rate;
    suspicions_ = 0;
    return ThrashVerdict::kOk;
  }

  // The slot count climbed since the last good record: judge it.
  if (map_rate < good_rate_ * (1.0 - config_.thrash_tolerance)) {
    ++suspicions_;
    if (suspicions_ >= config_.suspect_threshold) {
      ceiling_ = good_slots_;
      suspicions_ = 0;
      return ThrashVerdict::kConfirmed;
    }
    return ThrashVerdict::kSuspected;
  }

  // The higher slot count sustained at least the known-good rate: it
  // becomes the new known-good configuration.
  has_good_ = true;
  good_slots_ = slots;
  good_rate_ = map_rate;
  suspicions_ = 0;
  return ThrashVerdict::kOk;
}

void ThrashingDetector::reset() {
  has_good_ = false;
  good_slots_ = 0;
  good_rate_ = 0.0;
  stable_at_ = 0.0;
  suspicions_ = 0;
  ceiling_ = std::numeric_limits<int>::max();
}

}  // namespace smr::core
