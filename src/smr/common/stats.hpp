// Streaming statistics used by the control plane (slot manager, heartbeat
// statistics) and by the reporters.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "smr/common/types.hpp"

namespace smr {

/// Welford online mean/variance with min/max tracking.
class OnlineStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially-weighted moving average of a sampled value.
class Ewma {
 public:
  /// `alpha` is the weight of the newest sample, in (0, 1].
  explicit Ewma(double alpha = 0.3);

  void add(double x);
  void reset();
  bool has_value() const { return has_value_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Windowed rate estimator over simulated time.
///
/// The control plane feeds it (time, cumulative-bytes) observations from
/// heartbeats; `rate()` returns bytes/second over a sliding window.  This is
/// what the paper's slot manager consumes as "the shuffle rate" / "the map
/// output rate": an average over the last few heartbeat periods, robust to
/// the burstiness of discrete map completions.
class WindowedRate {
 public:
  /// `window` is the averaging horizon in simulated seconds.
  explicit WindowedRate(SimTime window = 15.0);

  /// Record that the cumulative counter had value `cumulative` at `now`.
  /// Observations must be fed in nondecreasing time order.
  void observe(SimTime now, double cumulative);

  /// Average rate over (approximately) the last `window` seconds.
  /// Returns 0 until two observations spanning positive time exist.
  Rate rate() const;

  /// Rate between the two most recent observations (instantaneous view).
  Rate instantaneous() const;

  void reset();
  SimTime window() const { return window_; }

 private:
  struct Sample {
    SimTime t;
    double v;
  };
  SimTime window_;
  std::deque<Sample> samples_;
};

/// Simple fixed-capacity trailing mean of the last N samples.
class TrailingMean {
 public:
  explicit TrailingMean(std::size_t capacity = 8);

  void add(double x);
  void reset();
  std::size_t count() const { return samples_.size(); }
  bool full() const { return samples_.size() == capacity_; }
  double mean() const;

 private:
  std::size_t capacity_;
  std::deque<double> samples_;
};

/// Percentile over a snapshot of samples (copies + sorts; reporting only).
/// An empty sample set has no percentiles: returns quiet NaN, which callers
/// must handle (or test with std::isnan) before formatting.
double percentile(std::vector<double> samples, double p);

}  // namespace smr
