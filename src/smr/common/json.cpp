#include "smr/common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string_view>

#include "smr/common/error.hpp"

namespace smr {

JsonValue::JsonValue(JsonArray a)
    : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : type_(Type::kObject),
      object_(std::make_shared<JsonObject>(std::move(o))) {}

bool JsonValue::as_bool() const {
  SMR_CHECK_MSG(is_bool(), "json value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  SMR_CHECK_MSG(is_number(), "json value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  SMR_CHECK_MSG(is_string(), "json value is not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  SMR_CHECK_MSG(is_array(), "json value is not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  SMR_CHECK_MSG(is_object(), "json value is not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    auto value = parse_value();
    if (value.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        value.reset();
      }
    }
    if (!value.has_value() && error != nullptr) *error = error_;
    return value;
  }

 private:
  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        return parse_literal("true", JsonValue(true));
      case 'f':
        return parse_literal("false", JsonValue(false));
      case 'n':
        return parse_literal("null", JsonValue());
      default:
        return parse_number();
    }
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected object key");
      auto key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      auto value = parse_value();
      if (!value.has_value()) return std::nullopt;
      members.insert_or_assign(key->as_string(), std::move(*value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return JsonValue(std::move(members));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonArray elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(elements));
    }
    while (true) {
      auto value = parse_value();
      if (!value.has_value()) return std::nullopt;
      elements.push_back(std::move(*value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return JsonValue(std::move(elements));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<JsonValue> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return JsonValue(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(&code)) return fail("malformed \\u escape");
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be chained with \uDC00–\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired high surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(&low)) return fail("malformed \\u escape");
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            const unsigned cp =
                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            append_utf8(out, cp);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired low surrogate");
          } else {
            append_utf8(out, code);
          }
          break;
        }
        default:
          return fail("unsupported string escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      unsigned digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A') + 10;
      } else {
        return false;
      }
      value = (value << 4) | digit;
    }
    pos_ += 4;
    *code = value;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    return JsonValue(value);
  }

  std::optional<JsonValue> parse_literal(const char* literal, JsonValue value) {
    const std::string_view want(literal);
    if (text_.compare(pos_, want.size(), want) != 0) {
      return fail("malformed literal");
    }
    pos_ += want.size();
    return value;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  /// '\0' at end of input — never a valid structural character.
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::optional<JsonValue> fail(const std::string& message) {
    std::ostringstream oss;
    oss << message << " at offset " << pos_;
    error_ = oss.str();
    return std::nullopt;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error) {
  return Parser(text).parse(error);
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto byte = static_cast<unsigned char>(c);
        if (byte < 0x20) {
          // Remaining C0 controls have no named escape.
          out += "\\u00";
          out.push_back(kHex[byte >> 4]);
          out.push_back(kHex[byte & 0xF]);
        } else {
          // UTF-8 payload bytes pass through; the parser's \uXXXX decoder
          // produces the same bytes, so round-trips are exact.
          out.push_back(c);
        }
        break;
      }
    }
  }
  return out;
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"' << escape_json(s) << '"';
}

std::optional<std::vector<JsonValue>> parse_jsonl(const std::string& text,
                                                  std::string* error) {
  std::vector<JsonValue> values;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string line_error;
    auto value = parse_json(line, &line_error);
    if (!value.has_value()) {
      if (error != nullptr) {
        std::ostringstream oss;
        oss << "line " << lineno << ": " << line_error;
        *error = oss.str();
      }
      return std::nullopt;
    }
    values.push_back(std::move(*value));
  }
  return values;
}

}  // namespace smr
