#include "smr/common/types.hpp"

#include <cmath>
#include <cstdio>

namespace smr {

namespace {

std::string formatted(const char* fmt, double value, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value, unit);
  return buf;
}

}  // namespace

std::string format_bytes(Bytes b) {
  const double v = static_cast<double>(b);
  const double a = std::fabs(v);
  if (a >= static_cast<double>(kGiB)) return formatted("%.2f %s", v / static_cast<double>(kGiB), "GiB");
  if (a >= static_cast<double>(kMiB)) return formatted("%.2f %s", v / static_cast<double>(kMiB), "MiB");
  if (a >= static_cast<double>(kKiB)) return formatted("%.2f %s", v / static_cast<double>(kKiB), "KiB");
  return formatted("%.0f %s", v, "B");
}

std::string format_rate(Rate r) {
  const double a = std::fabs(r);
  if (a >= static_cast<double>(kGiB)) return formatted("%.2f %s", r / static_cast<double>(kGiB), "GiB/s");
  if (a >= static_cast<double>(kMiB)) return formatted("%.2f %s", r / static_cast<double>(kMiB), "MiB/s");
  if (a >= static_cast<double>(kKiB)) return formatted("%.2f %s", r / static_cast<double>(kKiB), "KiB/s");
  return formatted("%.1f %s", r, "B/s");
}

std::string format_duration(SimTime seconds) {
  if (!std::isfinite(seconds)) return "inf";
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 3600.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
    return buf;
  }
  const auto total = static_cast<long long>(seconds);
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lldh %02lldm %02llds", h, m, s);
  return buf;
}

}  // namespace smr
