// Fundamental value types and units used across the SMapReduce codebase.
//
// Conventions:
//   * Data volumes are in bytes, held in a signed 64-bit `Bytes`.  Signed so
//     that subtraction of volumes (backlogs, deficits) never wraps.
//   * Simulated time is `SimTime`, a double in seconds since simulation
//     start.  All durations are in seconds.
//   * Data rates are `Rate`, in bytes per second.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace smr {

/// Data volume in bytes (signed: differences of volumes are volumes).
using Bytes = std::int64_t;

/// Simulated time in seconds since the start of the simulation.
using SimTime = double;

/// Data rate in bytes per second.
using Rate = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Largest representable time; used as "never" for unscheduled deadlines.
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

constexpr Bytes operator""_KiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kKiB;
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kMiB;
}
constexpr Bytes operator""_GiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kGiB;
}

/// Bytes -> mebibytes as a double (for rate math and reporting).
constexpr double to_mib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }

/// Bytes -> gibibytes as a double.
constexpr double to_gib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }

/// Human-readable volume, e.g. "1.50 GiB"; used by reporters and logs.
std::string format_bytes(Bytes b);

/// Human-readable rate, e.g. "120.0 MiB/s".
std::string format_rate(Rate r);

/// Human-readable duration, e.g. "93.2 s" or "1h 02m 11s" for long spans.
std::string format_duration(SimTime seconds);

/// Identifier types.  Plain integers wrapped in distinct enums would be
/// heavier than the codebase needs; we use typed aliases plus a reserved
/// invalid value each.
using NodeId = std::int32_t;
using JobId = std::int32_t;
using TaskId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr JobId kInvalidJob = -1;
inline constexpr TaskId kInvalidTask = -1;

}  // namespace smr
