// Deterministic pseudo-random number generation.
//
// The simulator must be bit-for-bit reproducible across platforms, so we
// avoid std::mt19937/std::*_distribution (whose algorithms are unspecified
// for distributions) and implement SplitMix64 (for seeding) and
// xoshiro256** (for the stream), plus the handful of distributions the
// workload models need.
#pragma once

#include <array>
#include <cstdint>

#include "smr/common/error.hpp"

namespace smr {

/// SplitMix64: tiny, high-quality 64-bit generator; used to expand a single
/// user seed into the xoshiro256** state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the simulator's workhorse generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal();

  /// Normal with the given mean/stddev, truncated to [mean - 3*sd, mean + 3*sd]
  /// so task-duration perturbations can never go negative or explode.
  double normal(double mean, double stddev);

  /// Lognormal-ish multiplicative jitter: returns a factor with the given
  /// coefficient of variation, mean 1.  cv == 0 returns exactly 1.
  double jitter(double cv);

  /// Derive an independent child stream (for per-node / per-task streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace smr
