#include "smr/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "smr/common/error.hpp"

namespace smr {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  SMR_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double x) {
  if (!has_value_) {
    value_ = x;
    has_value_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  has_value_ = false;
}

WindowedRate::WindowedRate(SimTime window) : window_(window) {
  SMR_CHECK(window > 0.0);
}

void WindowedRate::observe(SimTime now, double cumulative) {
  if (!samples_.empty()) {
    SMR_CHECK_MSG(now >= samples_.back().t,
                  "observations out of order: " << now << " < " << samples_.back().t);
  }
  samples_.push_back({now, cumulative});
  // Keep one sample older than the window so rate() can span the full window.
  while (samples_.size() >= 2 && samples_[1].t <= now - window_) {
    samples_.pop_front();
  }
}

Rate WindowedRate::rate() const {
  if (samples_.size() < 2) return 0.0;
  const Sample& oldest = samples_.front();
  const Sample& newest = samples_.back();
  const SimTime dt = newest.t - oldest.t;
  if (dt <= 0.0) return 0.0;
  return (newest.v - oldest.v) / dt;
}

Rate WindowedRate::instantaneous() const {
  if (samples_.size() < 2) return 0.0;
  const Sample& a = samples_[samples_.size() - 2];
  const Sample& b = samples_.back();
  const SimTime dt = b.t - a.t;
  if (dt <= 0.0) return 0.0;
  return (b.v - a.v) / dt;
}

void WindowedRate::reset() { samples_.clear(); }

TrailingMean::TrailingMean(std::size_t capacity) : capacity_(capacity) {
  SMR_CHECK(capacity > 0);
}

void TrailingMean::add(double x) {
  samples_.push_back(x);
  if (samples_.size() > capacity_) samples_.pop_front();
}

void TrailingMean::reset() { samples_.clear(); }

double TrailingMean::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double percentile(std::vector<double> samples, double p) {
  SMR_CHECK(p >= 0.0 && p <= 100.0);
  // No samples means no percentile; NaN is the honest answer (0.0 would
  // silently read as "zero latency" in reports).
  if (samples.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double idx = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace smr
