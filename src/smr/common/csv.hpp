// Minimal RFC-4180 CSV field quoting, shared by every CSV writer in the
// repo.  A field containing a comma, double quote, CR or LF is wrapped in
// double quotes with embedded quotes doubled; anything else passes through
// unchanged, so existing numeric columns are byte-identical.
#pragma once

#include <string>
#include <string_view>

namespace smr {

inline std::string csv_quote(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace smr
