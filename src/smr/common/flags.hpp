// Minimal command-line flag parsing for the CLI tool and examples.
//
// Supports `--name=value`, `--name value` and boolean `--name` /
// `--no-name`.  Unknown flags are errors; positional arguments are
// collected.  No global state: each binary builds its own FlagSet.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smr {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description = "");

  /// Define flags (must precede parse()).  `help` appears in usage().
  void define_string(const std::string& name, std::string default_value,
                     std::string help);
  void define_int(const std::string& name, std::int64_t default_value,
                  std::string help);
  void define_double(const std::string& name, double default_value, std::string help);
  void define_bool(const std::string& name, bool default_value, std::string help);

  /// Parse argv (excluding argv[0]).  Returns false and sets error() on
  /// unknown flags, missing values or malformed numbers.
  bool parse(int argc, const char* const* argv);
  bool parse(const std::vector<std::string>& args);

  const std::string& error() const { return error_; }

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  bool is_set(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every flag with its default and help string.
  std::string usage(const std::string& program_name) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // canonical string form
    bool set = false;
  };

  const Flag& flag_of(const std::string& name, Type type) const;
  bool assign(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace smr
