#include "smr/common/flags.hpp"

#include <cstdlib>
#include <sstream>

#include "smr/common/error.hpp"

namespace smr {

namespace {

const char* type_name(int type) {
  switch (type) {
    case 0: return "string";
    case 1: return "int";
    case 2: return "double";
    case 3: return "bool";
  }
  return "?";
}

bool parse_int(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_bool(const std::string& text, bool& out) {
  if (text == "true" || text == "1" || text == "yes") {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagSet::define_string(const std::string& name, std::string default_value,
                            std::string help) {
  SMR_CHECK_MSG(flags_.emplace(name, Flag{Type::kString, std::move(help),
                                          std::move(default_value), false})
                    .second,
                "duplicate flag --" << name);
  order_.push_back(name);
}

void FlagSet::define_int(const std::string& name, std::int64_t default_value,
                         std::string help) {
  SMR_CHECK(flags_
                .emplace(name, Flag{Type::kInt, std::move(help),
                                    std::to_string(default_value), false})
                .second);
  order_.push_back(name);
}

void FlagSet::define_double(const std::string& name, double default_value,
                            std::string help) {
  std::ostringstream os;
  os << default_value;
  SMR_CHECK(flags_.emplace(name, Flag{Type::kDouble, std::move(help), os.str(), false})
                .second);
  order_.push_back(name);
}

void FlagSet::define_bool(const std::string& name, bool default_value,
                          std::string help) {
  SMR_CHECK(flags_
                .emplace(name, Flag{Type::kBool, std::move(help),
                                    default_value ? "true" : "false", false})
                .second);
  order_.push_back(name);
}

bool FlagSet::assign(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    error_ = "unknown flag --" + name;
    return false;
  }
  Flag& flag = it->second;
  // Validate by type.
  switch (flag.type) {
    case Type::kString:
      break;
    case Type::kInt: {
      std::int64_t v;
      if (!parse_int(value, v)) {
        error_ = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kDouble: {
      double v;
      if (!parse_double(value, v)) {
        error_ = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kBool: {
      bool v;
      if (!parse_bool(value, v)) {
        error_ = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
    }
  }
  flag.value = value;
  flag.set = true;
  return true;
}

bool FlagSet::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool FlagSet::parse(const std::vector<std::string>& args) {
  error_.clear();
  positional_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      if (!assign(body.substr(0, eq), body.substr(eq + 1))) return false;
      continue;
    }
    // --no-name for booleans.
    if (body.rfind("no-", 0) == 0) {
      const std::string name = body.substr(3);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        if (!assign(name, "false")) return false;
        continue;
      }
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + body;
      return false;
    }
    if (it->second.type == Type::kBool) {
      if (!assign(body, "true")) return false;
      continue;
    }
    if (i + 1 >= args.size()) {
      error_ = "flag --" + body + " is missing its value";
      return false;
    }
    if (!assign(body, args[++i])) return false;
  }
  return true;
}

const FlagSet::Flag& FlagSet::flag_of(const std::string& name, Type type) const {
  const auto it = flags_.find(name);
  SMR_CHECK_MSG(it != flags_.end(), "undefined flag --" << name);
  SMR_CHECK_MSG(it->second.type == type, "flag --" << name << " is not a "
                                                   << type_name(static_cast<int>(type)));
  return it->second;
}

std::string FlagSet::get_string(const std::string& name) const {
  return flag_of(name, Type::kString).value;
}

std::int64_t FlagSet::get_int(const std::string& name) const {
  std::int64_t v = 0;
  SMR_CHECK(parse_int(flag_of(name, Type::kInt).value, v));
  return v;
}

double FlagSet::get_double(const std::string& name) const {
  double v = 0.0;
  SMR_CHECK(parse_double(flag_of(name, Type::kDouble).value, v));
  return v;
}

bool FlagSet::get_bool(const std::string& name) const {
  bool v = false;
  SMR_CHECK(parse_bool(flag_of(name, Type::kBool).value, v));
  return v;
}

bool FlagSet::is_set(const std::string& name) const {
  const auto it = flags_.find(name);
  SMR_CHECK_MSG(it != flags_.end(), "undefined flag --" << name);
  return it->second.set;
}

std::string FlagSet::usage(const std::string& program_name) const {
  std::ostringstream os;
  os << "usage: " << program_name << " [flags]\n";
  if (!description_.empty()) os << description_ << "\n";
  os << "\nflags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name << " (default: " << flag.value << ")\n      " << flag.help
       << "\n";
  }
  return os.str();
}

}  // namespace smr
