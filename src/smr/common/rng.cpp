#include "smr/common/rng.hpp"

#include <cmath>

namespace smr {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SMR_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SMR_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  // Marsaglia polar method.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::normal(double mean, double stddev) {
  SMR_CHECK(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  double z = normal();
  if (z > 3.0) z = 3.0;
  if (z < -3.0) z = -3.0;
  return mean + stddev * z;
}

double Rng::jitter(double cv) {
  SMR_CHECK(cv >= 0.0);
  if (cv == 0.0) return 1.0;
  // Lognormal with E[X] = 1: sigma^2 = ln(1 + cv^2), mu = -sigma^2 / 2.
  const double sigma2 = std::log1p(cv * cv);
  const double sigma = std::sqrt(sigma2);
  return std::exp(normal() * sigma - sigma2 / 2.0);
}

Rng Rng::fork() {
  Rng child(0);
  // Seed the child from two draws of the parent so that forking advances the
  // parent (two forks from the same state would otherwise be identical).
  SplitMix64 sm(next() ^ rotl(next(), 32));
  for (auto& word : child.s_) word = sm.next();
  return child;
}

}  // namespace smr
