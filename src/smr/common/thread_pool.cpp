#include "smr/common/thread_pool.hpp"

#include <atomic>

#include "smr/common/error.hpp"

namespace smr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SMR_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SMR_CHECK(!stop_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t threads = pool.thread_count();
  const std::size_t chunks = std::min(n, threads * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  std::size_t launched = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    ++launched;
    remaining.fetch_add(1, std::memory_order_relaxed);
    pool.submit([lo, hi, &fn, &remaining, &done_mutex, &done_cv] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  (void)launched;
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&remaining] { return remaining.load(std::memory_order_acquire) == 0; });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(default_thread_pool(), begin, end, fn);
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace smr
