#include "smr/common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "smr/common/error.hpp"

namespace smr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_ = threads;
  // A 1-thread pool is fully inline: no workers, submit() executes the
  // task on the calling thread.  This makes SMR_THREADS=1 runs exactly
  // serial (FIFO at submission), which the determinism suite relies on.
  if (threads_ <= 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SMR_CHECK(task != nullptr);
  if (workers_.empty()) {
    // Inline pool: run synchronously, in submission order, on this thread.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SMR_CHECK(!stop_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
    ++active_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
  }
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void TaskGroup::submit(std::function<void()> task) {
  SMR_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++outstanding_;
  }
  pool_->submit([this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    if (--outstanding_ == 0) cv_done_.notify_all();
  });
}

void TaskGroup::wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (outstanding_ == 0) return;
    }
    // Help: run someone's queued task (possibly ours) instead of sleeping.
    // On a small pool this is what makes nested fan-out finish at all.
    if (pool_->try_run_one()) continue;
    // Queue empty but group tasks still running on other threads: sleep
    // until one of them signals.  Re-check under the lock to avoid a lost
    // wakeup between the empty-queue observation and the wait.
    std::unique_lock<std::mutex> lock(mutex_);
    if (outstanding_ == 0) return;
    cv_done_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t threads = pool.thread_count();
  const std::size_t chunks = std::min(n, threads * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  TaskGroup group(pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    group.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.wait();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(default_thread_pool(), begin, end, fn);
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("SMR_THREADS")) {
      const long value = std::strtol(env, nullptr, 10);
      if (value > 0) return static_cast<std::size_t>(value);
    }
    return static_cast<std::size_t>(0);  // hardware_concurrency
  }());
  return pool;
}

}  // namespace smr
