// SmallFn: a small-buffer replacement for std::function<void()> on the
// simulation hot path.
//
// Event callbacks are almost always tiny capture packs ([this], [this, i]);
// std::function heap-allocates many of them and deep-copies on every
// periodic dispatch.  SmallFn stores trivially-copyable callables up to
// kInlineSize bytes directly in the object (no allocation, copies are
// memcpy) and spills everything else to a shared_ptr, so copying a spilled
// callable is a refcount bump, never a second allocation.  The copy
// cheapness is load-bearing: the engine invokes periodic callbacks through
// a stack copy so a callback may cancel (and thereby destroy) its own
// registration mid-call without invalidating the frame it is running in.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace smr::common {

class SmallFn {
 public:
  /// Inline storage for the captured state.  48 bytes fits every callback
  /// the runtime schedules today with room to spare; bigger callables fall
  /// back to one shared heap block.
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](SmallFn& self) {
        (*std::launder(reinterpret_cast<Fn*>(self.buf_)))();
      };
    } else {
      heap_ = std::make_shared<Fn>(std::forward<F>(f));
      invoke_ = [](SmallFn& self) { (*static_cast<Fn*>(self.heap_.get()))(); };
    }
  }

  // Inline callables are restricted to trivially copyable + destructible
  // types, so byte-wise copies and the defaulted special members are
  // correct for both representations (rule of zero).
  SmallFn(const SmallFn&) = default;
  SmallFn(SmallFn&&) = default;
  SmallFn& operator=(const SmallFn&) = default;
  SmallFn& operator=(SmallFn&&) = default;

  void operator()() { invoke_(*this); }

  explicit operator bool() const { return invoke_ != nullptr; }
  bool operator==(std::nullptr_t) const { return invoke_ == nullptr; }
  bool operator!=(std::nullptr_t) const { return invoke_ != nullptr; }

  /// True when the callable lives in the inline buffer (tests/diagnostics).
  bool is_inline() const { return invoke_ != nullptr && heap_ == nullptr; }

 private:
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_trivially_copyable_v<Fn> &&
           std::is_trivially_destructible_v<Fn>;
  }

  using Invoke = void (*)(SmallFn&);

  Invoke invoke_ = nullptr;
  std::shared_ptr<void> heap_;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize] = {};
};

}  // namespace smr::common
