// Error handling: a library exception type plus lightweight invariant-check
// macros.  Invariant violations indicate programming errors inside the
// simulator (never user input errors), so they throw SmrError with source
// location, which the test suite can assert on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace smr {

/// Exception thrown on violated invariants and invalid configuration.
class SmrError : public std::runtime_error {
 public:
  explicit SmrError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!message.empty()) os << " — " << message;
  throw SmrError(os.str());
}

}  // namespace detail
}  // namespace smr

/// Always-on invariant check (simulation correctness depends on these and
/// they are never on hot enough paths to matter).
#define SMR_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::smr::detail::fail_check(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Invariant check with a streamed message:
///   SMR_CHECK_MSG(a < b, "a=" << a << " b=" << b)
#define SMR_CHECK_MSG(expr, stream_expr)                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream smr_check_os_;                                   \
      smr_check_os_ << stream_expr;                                       \
      ::smr::detail::fail_check(#expr, __FILE__, __LINE__,                \
                                smr_check_os_.str());                     \
    }                                                                     \
  } while (false)
