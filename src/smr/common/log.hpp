// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but benches
// run many simulations in parallel on a thread pool, so emission is
// serialised with a mutex.  Logging defaults to Warn so tests and benches
// stay quiet; examples turn it up to show the control plane at work.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace smr {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

const char* log_level_name(LogLevel level);

}  // namespace smr

#define SMR_LOG(level, stream_expr)                                   \
  do {                                                                \
    if (::smr::Logger::instance().enabled(level)) {                   \
      std::ostringstream smr_log_os_;                                 \
      smr_log_os_ << stream_expr;                                     \
      ::smr::Logger::instance().write(level, smr_log_os_.str());      \
    }                                                                 \
  } while (false)

#define SMR_TRACE(stream_expr) SMR_LOG(::smr::LogLevel::kTrace, stream_expr)
#define SMR_DEBUG(stream_expr) SMR_LOG(::smr::LogLevel::kDebug, stream_expr)
#define SMR_INFO(stream_expr) SMR_LOG(::smr::LogLevel::kInfo, stream_expr)
#define SMR_WARN(stream_expr) SMR_LOG(::smr::LogLevel::kWarn, stream_expr)
#define SMR_ERROR(stream_expr) SMR_LOG(::smr::LogLevel::kError, stream_expr)
