// A small work-stealing-free thread pool plus TaskGroup and parallel_for.
//
// The simulator itself is single-threaded and deterministic; the pool exists
// so that benches and sweeps can run *independent* simulations concurrently
// (one simulation per task).  parallel_for partitions an index range into
// contiguous chunks, which keeps per-simulation memory locality and gives
// deterministic results regardless of thread count because the tasks do not
// share mutable state.
//
// Nesting: a task running on the pool may itself fan out through TaskGroup
// or parallel_for on the *same* pool.  The waiting task helps — it drains
// queued pool work via try_run_one() instead of sleeping — so nested waits
// cannot deadlock even on a single-threaded pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace smr {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).  A pool of one
  /// thread spawns *no* workers: it runs every task inline on the submitting
  /// thread (see submit()), so a 1-thread pool is exactly serial execution.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  /// Number of tasks the pool can execute simultaneously (>= 1).  An inline
  /// pool reports 1: the submitting thread is the only executor.
  std::size_t concurrency() const { return threads_; }

  /// True when the pool spawned no workers and submit() executes the task
  /// synchronously on the calling thread, in submission order.
  bool inline_mode() const { return workers_.empty(); }

  /// Enqueue a task.  Tasks must not throw; exceptions escaping a task
  /// terminate the process (same policy as std::thread).  On an inline pool
  /// the task runs to completion before submit() returns.
  void submit(std::function<void()> task);

  /// Pop and run one queued task on the calling thread.  Returns false if
  /// the queue was empty.  This is the help-wait primitive: a thread
  /// blocked on a TaskGroup keeps the pool moving instead of sleeping.
  bool try_run_one();

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// A group of tasks whose completion can be awaited independently of the
/// rest of the pool.  Unlike ThreadPool::wait_idle(), wait() only blocks on
/// *this group's* tasks, and the waiting thread helps run pool work while
/// it waits — safe to use from inside another pool task (nested fan-out).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue a task belonging to this group.
  void submit(std::function<void()> task);

  /// Block until every task submitted to this group has finished.  Runs
  /// queued pool tasks on the calling thread while waiting.
  void wait();

 private:
  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable cv_done_;
  std::size_t outstanding_ = 0;
};

/// Run `fn(i)` for every i in [begin, end) using `pool`, blocking until all
/// iterations complete.  Iterations must be independent.  Safe to call from
/// inside a pool task (the wait helps drain the queue).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: run with a process-wide default pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// The process-wide default pool (lazily constructed).  Honours the
/// SMR_THREADS environment variable (positive integer) on first use;
/// unset or invalid falls back to hardware_concurrency.
ThreadPool& default_thread_pool();

}  // namespace smr
