// A small work-stealing-free thread pool plus parallel_for.
//
// The simulator itself is single-threaded and deterministic; the pool exists
// so that benches and sweeps can run *independent* simulations concurrently
// (one simulation per task).  parallel_for partitions an index range into
// contiguous chunks, which keeps per-simulation memory locality and gives
// deterministic results regardless of thread count because the tasks do not
// share mutable state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace smr {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task.  Tasks must not throw; exceptions escaping a task
  /// terminate the process (same policy as std::thread).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Run `fn(i)` for every i in [begin, end) using `pool`, blocking until all
/// iterations complete.  Iterations must be independent.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: run with a process-wide default pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// The process-wide default pool (lazily constructed).
ThreadPool& default_thread_pool();

}  // namespace smr
