// Arena: a page-pool bump allocator for the simulation hot path, after the
// Galois PagePool/SharedMemRuntime pattern.
//
// The simulator's steady state churns through many small, same-shaped
// records (shadow task attempts, span bookkeeping, scratch rows) whose
// lifetimes are bounded by a run.  Routing them through malloc costs a
// lock-free-list walk per record and scatters them across the heap; the
// arena instead carves them out of large pages with a pointer bump, and
// returns whole pages to a process-wide pool on reset so repeated runs
// (perfbench sweeps, parameter studies) stop touching the system allocator
// entirely.
//
//   * Arena — bump allocator over pooled pages.  allocate<T>() is a pointer
//     bump; there is no per-object free.  reset() recycles every page.
//     Destructors are NOT run: only trivially-destructible types may be
//     placed in an arena (enforced at compile time).
//   * Pool<T> — a typed free-list object pool on top of Arena for records
//     with individual acquire/release lifetimes (e.g. speculative shadow
//     attempts).  release() pushes onto an intrusive free list; acquire()
//     pops or bump-allocates.  O(1) both ways, no malloc after warm-up.
//
// Neither type is thread-safe; each simulation thread owns its arenas
// (the parallel sweep runner already gives every run its own Runtime).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "smr/common/error.hpp"

namespace smr::common {

class Arena {
 public:
  /// Page size: large enough that even a 4k-task job's shadow records fit
  /// in a handful of pages, small enough to not bloat tiny test runs.
  static constexpr std::size_t kPageSize = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() {
    for (Page* page : pages_) ::operator delete(page);
  }

  /// Allocate `bytes` with `align` alignment (align must be a power of
  /// two and at most alignof(std::max_align_t)).
  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    SMR_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two");
    SMR_CHECK_MSG(align <= alignof(std::max_align_t),
                  "over-aligned arena allocation");
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (p + bytes > limit_) {
      new_page(bytes + align);
      p = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Allocate and default-construct one T.  T must be trivially
  /// destructible — the arena never runs destructors.
  template <typename T, typename... Args>
  T* allocate(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-placed types must be trivially destructible");
    void* p = allocate_bytes(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Allocate an uninitialised array of n Ts (same triviality rule).
  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-placed types must be trivially destructible");
    return static_cast<T*>(allocate_bytes(n * sizeof(T), alignof(T)));
  }

  /// Recycle every page for reuse.  All outstanding pointers die.
  void reset() {
    page_index_ = 0;
    if (!pages_.empty()) {
      cursor_ = payload(pages_[0]);
      limit_ = cursor_ + pages_[0]->payload_size;
      ++page_index_;
    } else {
      cursor_ = 0;
      limit_ = 0;
    }
  }

  /// Bytes currently reserved from the system (diagnostics).
  std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const Page* page : pages_) total += page->payload_size;
    return total;
  }

  /// Pages held (diagnostics; a warm steady state stops growing this).
  std::size_t page_count() const { return pages_.size(); }

 private:
  struct Page {
    std::size_t payload_size;
  };

  static std::uintptr_t payload(Page* page) {
    return reinterpret_cast<std::uintptr_t>(page) + payload_offset();
  }
  static constexpr std::size_t payload_offset() {
    return (sizeof(Page) + alignof(std::max_align_t) - 1) &
           ~(alignof(std::max_align_t) - 1);
  }

  void new_page(std::size_t min_bytes) {
    // Reuse a recycled page when the next one fits; oversized requests get
    // a dedicated page of their own (rare: big scratch arrays only).
    while (page_index_ < pages_.size()) {
      Page* page = pages_[page_index_++];
      if (page->payload_size >= min_bytes) {
        cursor_ = payload(page);
        limit_ = cursor_ + page->payload_size;
        return;
      }
    }
    const std::size_t payload_bytes =
        min_bytes > kPageSize ? min_bytes : kPageSize;
    auto* page = static_cast<Page*>(
        ::operator new(payload_offset() + payload_bytes));
    page->payload_size = payload_bytes;
    pages_.push_back(page);
    page_index_ = pages_.size();
    cursor_ = payload(page);
    limit_ = cursor_ + payload_bytes;
  }

  std::vector<Page*> pages_;
  std::size_t page_index_ = 0;  // pages [0, page_index_) are in use
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
};

/// Typed object pool with individual acquire/release on top of Arena.
/// Objects are value-initialised on first allocation and returned to an
/// intrusive free list on release; a released object's storage is reused
/// verbatim, so acquire() always re-initialises the record it hands out.
template <typename T>
class Pool {
  static_assert(std::is_trivially_destructible_v<T>,
                "pooled types must be trivially destructible");
  static_assert(sizeof(T) >= sizeof(void*),
                "pooled types must fit a free-list link");

 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Hand out a record constructed from `args` (default: value-init).
  template <typename... Args>
  T* acquire(Args&&... args) {
    if (free_ != nullptr) {
      void* slot = free_;
      free_ = *static_cast<void**>(slot);
      --free_count_;
      return ::new (slot) T(std::forward<Args>(args)...);
    }
    void* slot = arena_.allocate_bytes(sizeof(T), alignof(T));
    return ::new (slot) T(std::forward<Args>(args)...);
  }

  /// Return a record to the pool.  The pointer must have come from this
  /// pool's acquire() and must not be used afterwards.
  void release(T* obj) {
    void* slot = obj;
    *static_cast<void**>(slot) = free_;
    free_ = slot;
    ++free_count_;
  }

  /// Records currently sitting on the free list (diagnostics/tests).
  std::size_t free_count() const { return free_count_; }

  /// Bytes reserved by the backing arena (diagnostics/tests).
  std::size_t reserved_bytes() const { return arena_.reserved_bytes(); }

 private:
  Arena arena_;
  void* free_ = nullptr;
  std::size_t free_count_ = 0;
};

}  // namespace smr::common
