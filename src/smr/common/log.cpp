#include "smr/common/log.hpp"

#include <cstdio>

namespace smr {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace smr
