// Minimal JSON value + recursive-descent parser, plus the one string
// escaper every writer shares.
//
// The obs sinks *write* JSON with hand-rolled streaming code; the parser
// is the other direction, used by smr_inspect (and its tests) to load the
// artifacts back: metrics.jsonl, spans.jsonl, critpath.json, report.json,
// alerts.jsonl.  It parses the full JSON grammar the writers emit —
// objects, arrays, strings (all escapes, including \uXXXX with surrogate
// pairs, decoded to UTF-8), numbers (as double), booleans, null — and no
// extensions (no comments, no trailing commas).
//
// escape_json/write_json_string are the symmetric writer half: named
// escapes for the common controls, \uXXXX for the rest of the C0 range,
// raw pass-through for UTF-8 payload bytes.  Every sink routes through
// them so non-ASCII tenant and job names survive a write→inspect
// round-trip byte-for-byte.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace smr {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a);
  explicit JsonValue(JsonObject o);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors abort (SMR_CHECK) on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Member's number, or `fallback` when absent/null/not a number.
  double number_or(const std::string& key, double fallback) const;
  /// Member's string, or `fallback` when absent/not a string.
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so JsonValue stays movable while self-referential.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses exactly one JSON document from `text` (trailing whitespace
/// allowed).  Returns nullopt with a message in *error on malformed input.
std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error = nullptr);

/// Parses one JSON value per non-empty line (JSONL); stops and returns
/// nullopt on the first malformed line.
std::optional<std::vector<JsonValue>> parse_jsonl(const std::string& text,
                                                  std::string* error = nullptr);

/// Returns `s` with JSON string escaping applied (no surrounding quotes):
/// named escapes for " \ and \n \r \t \b \f, \u00XX for remaining control
/// characters, all other bytes (UTF-8 payload included) passed through.
std::string escape_json(std::string_view s);

/// Streams `"` + escape_json(s) + `"` — the shared writer for every sink.
void write_json_string(std::ostream& out, std::string_view s);

}  // namespace smr
