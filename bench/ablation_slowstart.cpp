// Design-choice ablation: the slow-start threshold (paper §IV-A1 fixes it
// at 10% "by default" without justification).
//
// Sweep the fraction of finished maps the slot manager waits for before
// acting, on one reduce-heavy and one map-heavy benchmark.  Expected
// shape: a U — too low (especially 0 = disabled) risks wrong early
// decisions on the reduce-heavy job, too high wastes adaptation time on
// both; the paper's 10% sits in the flat bottom.
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Slow-start ablation: SMapReduce map time (s) vs start threshold");
  return t;
}

void BM_SlowStart(benchmark::State& state, workload::Puma bench_id,
                  double fraction, bool enabled) {
  metrics::JobResult job;
  for (auto _ : state) {
    auto config = bench::paper_config(driver::EngineKind::kSMapReduce, /*trials=*/3);
    config.slot_manager.slow_start = enabled;
    if (enabled) config.slot_manager.slow_start_fraction = fraction;
    job = bench::run_job(config, workload::make_puma_job(bench_id, 30 * kGiB));
  }
  state.counters["map_time_s"] = job.map_time();
  char row[32];
  if (enabled) {
    std::snprintf(row, sizeof(row), "threshold=%2.0f%%", 100.0 * fraction);
  } else {
    std::snprintf(row, sizeof(row), "disabled");
  }
  table().set(row, workload::puma_name(bench_id), job.map_time());
}

void register_all() {
  const struct {
    double fraction;
    bool enabled;
    const char* label;
  } settings[] = {
      {0.0, false, "off"},   {0.02, true, "2pct"}, {0.05, true, "5pct"},
      {0.10, true, "10pct"}, {0.20, true, "20pct"}, {0.40, true, "40pct"},
  };
  for (workload::Puma bench_id :
       {workload::Puma::kTerasort, workload::Puma::kHistogramRatings}) {
    for (const auto& setting : settings) {
      benchmark::RegisterBenchmark(
          (std::string("SlowStart/") + workload::puma_name(bench_id) + "/" +
           setting.label)
              .c_str(),
          [bench_id, setting](benchmark::State& state) {
            BM_SlowStart(state, bench_id, setting.fraction, setting.enabled);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
