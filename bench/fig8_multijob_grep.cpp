// Figure 8: mean and last-finished execution time of a multiple concurrent
// job workload of 4 Grep jobs (5 s submission stagger).
//
// Expected shape (paper §V-F): SMapReduce's mean execution time and
// last-finish time are both ≈60% of HadoopV1's and ≈70% of YARN's — later
// jobs inherit the already-adapted slot configuration, so the whole batch
// runs near the optimum.
#include "multijob_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 8: 4 concurrent Grep jobs (s)");
  return t;
}

const bool registered =
    (bench::register_multi_job_bench(workload::Puma::kGrep, 30 * kGiB, table()),
     true);

}  // namespace

SMR_BENCH_MAIN(table().print())
