// Shared infrastructure for the figure benches.
//
// Each bench binary reproduces one figure of the paper: every
// google-benchmark entry runs the corresponding simulation(s) and exports
// the figure's y-values as counters; the collected values are additionally
// printed as a figure-shaped table after the benchmark run, which is the
// output EXPERIMENTS.md quotes.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "smr/driver/experiment.hpp"
#include "smr/obs/self_profile.hpp"
#include "smr/workload/puma.hpp"

namespace smr::bench {

/// Collects (row, column) -> value cells while benchmarks run and prints
/// them as a fixed-width table afterwards.
class FigureTable {
 public:
  explicit FigureTable(std::string title) : title_(std::move(title)) {}

  void set(const std::string& row, const std::string& column, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cells_[row].emplace(column, value).second) {
      if (std::find(rows_.begin(), rows_.end(), row) == rows_.end()) {
        rows_.push_back(row);
      }
      if (std::find(columns_.begin(), columns_.end(), column) == columns_.end()) {
        columns_.push_back(column);
      }
    } else {
      cells_[row][column] = value;
    }
  }

  void print(const char* value_format = "%12.1f") const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%-28s", "");
    for (const auto& column : columns_) std::printf("%12s", column.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%-28s", row.c_str());
      const auto& row_cells = cells_.at(row);
      for (const auto& column : columns_) {
        const auto it = row_cells.find(column);
        if (it == row_cells.end()) {
          std::printf("%12s", "-");
        } else {
          std::printf(value_format, it->second);
        }
      }
      std::printf("\n");
    }
    std::fflush(stdout);
  }

 private:
  std::string title_;
  mutable std::mutex mutex_;
  std::vector<std::string> rows_;
  std::vector<std::string> columns_;
  std::map<std::string, std::map<std::string, double>> cells_;
};

/// The paper's standard experiment for `engine` with `trials` averaged
/// trials (2, like the evaluation).
inline driver::ExperimentConfig paper_config(driver::EngineKind engine, int trials = 2) {
  driver::ExperimentConfig config = driver::ExperimentConfig::paper_default(engine);
  config.trials = trials;
  return config;
}

/// Accumulates wall-clock/event costs of the simulations a bench binary
/// ran, keyed by job name, and can dump them as machine-readable
/// JSON-lines.  Enabled by setting SMR_PERF_JSON=<path> in the
/// environment; see docs/OBSERVABILITY.md.
class PerfLog {
 public:
  static PerfLog& instance() {
    static PerfLog log;
    return log;
  }

  void record(const std::string& name, const obs::EngineProfile& profile,
              std::uint64_t solver_calls = 0, std::uint64_t solver_full_solves = 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_[name];
    ++entry.runs;
    entry.wall_seconds += profile.wall_seconds;
    entry.sim_seconds += profile.sim_seconds;
    entry.events += profile.events;
    entry.solver_calls += solver_calls;
    entry.solver_full_solves += solver_full_solves;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.empty();
  }

  /// One JSON object per line: {"type":"bench","name":...,...}.
  void write_json(std::ostream& out) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, e] : entries_) {
      const double eps =
          e.wall_seconds > 0.0
              ? static_cast<double>(e.events) / e.wall_seconds
              : 0.0;
      out << "{\"type\":\"bench\",\"name\":\"" << name
          << "\",\"runs\":" << e.runs << ",\"wall_seconds\":" << e.wall_seconds
          << ",\"sim_seconds\":" << e.sim_seconds << ",\"events\":" << e.events
          << ",\"events_per_sec\":" << eps
          << ",\"solver_calls\":" << e.solver_calls
          << ",\"solver_full_solves\":" << e.solver_full_solves << "}\n";
    }
  }

 private:
  struct Entry {
    int runs = 0;
    double wall_seconds = 0.0;
    double sim_seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t solver_calls = 0;
    std::uint64_t solver_full_solves = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Run one single-job experiment and return the averaged job result.
/// Also times the run and feeds the PerfLog, so any bench binary can emit
/// per-simulation perf JSON via SMR_PERF_JSON.
inline metrics::JobResult run_job(const driver::ExperimentConfig& config,
                                  const mapreduce::JobSpec& spec) {
  obs::Stopwatch stopwatch;
  metrics::RunResult result = driver::run_single_job(config, spec);
  obs::EngineProfile profile;
  profile.wall_seconds = stopwatch.seconds();
  profile.sim_seconds = result.makespan;
  profile.events = result.engine_events;
  PerfLog::instance().record(spec.name, profile, result.solver_calls,
                             result.solver_full_solves);
  return result.jobs[0];
}

/// Write the PerfLog to $SMR_PERF_JSON if set (and anything was recorded).
inline void maybe_write_perf_json() {
  const char* path = std::getenv("SMR_PERF_JSON");
  if (path == nullptr || PerfLog::instance().empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path);
    return;
  }
  PerfLog::instance().write_json(out);
  std::printf("perf json written to %s\n", path);
}

/// A standard custom main: run benchmarks, then print the tables that the
/// binary registered via `tables()`.
#define SMR_BENCH_MAIN(...)                                            \
  int main(int argc, char** argv) {                                   \
    ::benchmark::Initialize(&argc, argv);                             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {       \
      return 1;                                                       \
    }                                                                 \
    ::benchmark::RunSpecifiedBenchmarks();                            \
    ::benchmark::Shutdown();                                          \
    __VA_ARGS__;                                                      \
    ::smr::bench::maybe_write_perf_json();                            \
    return 0;                                                         \
  }

}  // namespace smr::bench
