// Figure 4: progress percentage over time of the HistogramMovies benchmark
// (map progress + reduce progress, 0-200%).
//
// Expected shape: all three systems start at the same speed; SMapReduce's
// curve bends upward as the slot manager approaches the optimal
// configuration; HadoopV1 and YARN progress at a constant slope; every
// curve has a sharp turn slightly above the 100% mark when the map tasks
// finish.
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Fig 4: total progress (%) of HistogramMovies over time (s)");
  return t;
}

void BM_Fig4(benchmark::State& state, driver::EngineKind engine) {
  metrics::RunResult result;
  for (auto _ : state) {
    auto config = bench::paper_config(engine, /*trials=*/1);
    result = driver::run_experiment(
        config,
        {{workload::make_puma_job(workload::Puma::kHistogramMovies, 30 * kGiB), 0.0}});
  }
  state.counters["total_time_s"] = result.jobs[0].total_time();
  // Sample the curve on a fixed grid so the three systems share rows.
  const auto& series = result.progress[0];
  const double grid = 25.0;
  std::size_t i = 0;
  for (double t = 0.0; t <= result.jobs[0].finish_time + grid; t += grid) {
    while (i + 1 < series.size() && series[i + 1].time <= t) ++i;
    const double pct = series.empty()
                           ? 0.0
                           : (t >= result.jobs[0].finish_time
                                  ? 200.0
                                  : series[std::min(i, series.size() - 1)].total_pct());
    char row[32];
    std::snprintf(row, sizeof(row), "t=%6.0fs", t);
    table().set(row, driver::engine_name(engine), pct);
  }
}

void register_all() {
  for (driver::EngineKind engine : driver::all_engines()) {
    benchmark::RegisterBenchmark(
        (std::string("Fig4/histogram-movies/") + driver::engine_name(engine)).c_str(),
        [engine](benchmark::State& state) { BM_Fig4(state, engine); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
