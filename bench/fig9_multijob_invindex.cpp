// Figure 9: mean and last-finished execution time of a multiple concurrent
// job workload of 4 InvertedIndex jobs (5 s submission stagger).
//
// Expected shape (paper §V-F): like Fig. 8 with a medium-shuffle workload —
// SMapReduce clearly ahead of both HadoopV1 (FIFO) and YARN (capacity
// scheduler) on both metrics.
#include "multijob_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 9: 4 concurrent InvertedIndex jobs (s)");
  return t;
}

const bool registered = (bench::register_multi_job_bench(
                             workload::Puma::kInvertedIndex, 30 * kGiB, table()),
                         true);

}  // namespace

SMR_BENCH_MAIN(table().print())
