// Substrate ablation: speculative execution under straggler-heavy
// workloads, and its interaction with slot management.
//
// Hadoop's backup tasks occupy working slots, so they compete with the
// slot manager's allocation decisions.  Expected shape: with high per-task
// variance, speculation shortens the map tail on every engine; SMapReduce
// still wins overall, and speculation's benefit is largest on the static
// engine (whose final waves otherwise idle most slots waiting for
// stragglers).
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Speculation ablation: total time (s), straggler-heavy grep (cv=0.6)");
  return t;
}

enum class Mode { kPlain, kMapOnly, kMapAndReduce };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kPlain: return "plain";
    case Mode::kMapOnly: return "map-spec";
    case Mode::kMapAndReduce: return "map+red-spec";
  }
  return "?";
}

void BM_Speculation(benchmark::State& state, driver::EngineKind engine, Mode mode) {
  metrics::JobResult job;
  for (auto _ : state) {
    auto config = bench::paper_config(engine, /*trials=*/3);
    config.runtime.speculative_execution = mode != Mode::kPlain;
    config.runtime.speculative_reduce_execution = mode == Mode::kMapAndReduce;
    auto spec = workload::make_puma_job(workload::Puma::kGrep, 30 * kGiB);
    spec.duration_cv = 0.6;  // heavy straggling
    job = bench::run_job(config, spec);
  }
  state.counters["map_time_s"] = job.map_time();
  state.counters["total_time_s"] = job.total_time();
  table().set(driver::engine_name(engine), mode_name(mode), job.total_time());
}

void register_all() {
  for (driver::EngineKind engine : driver::all_engines()) {
    for (Mode mode : {Mode::kPlain, Mode::kMapOnly, Mode::kMapAndReduce}) {
      benchmark::RegisterBenchmark(
          (std::string("Speculation/") + driver::engine_name(engine) + "/" +
           mode_name(mode))
              .c_str(),
          [engine, mode](benchmark::State& state) {
            BM_Speculation(state, engine, mode);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
