// Future-work extension (paper §VII): heterogeneous clusters.
//
// "Currently, SMapReduce only considers the case where the cluster is
// homogeneous ... We are working to extend SMapReduce to the heterogeneous
// environment."
//
// Cluster: 8 full-speed nodes + 8 nodes at half CPU speed with half the
// memory.  Compared: HadoopV1 (static 3+2 everywhere), SMapReduce with one
// uniform cluster-wide target (the paper's system), and the extension with
// per-node targets scaled by node speed.  Expected shape: per-node targets
// beat the uniform target (slow nodes thrash at counts the fast nodes
// tolerate), and both beat static slots.
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Extension: heterogeneous cluster (8 fast + 8 half-speed), total time (s)");
  return t;
}

enum class Variant { kHadoopV1, kUniform, kPerNode };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kHadoopV1: return "HadoopV1";
    case Variant::kUniform: return "SMR-uniform";
    case Variant::kPerNode: return "SMR-pernode";
  }
  return "?";
}

void BM_Hetero(benchmark::State& state, workload::Puma bench_id, Variant variant) {
  metrics::JobResult job;
  for (auto _ : state) {
    auto config = bench::paper_config(variant == Variant::kHadoopV1
                                          ? driver::EngineKind::kHadoopV1
                                          : driver::EngineKind::kSMapReduce);
    config.runtime.cluster = cluster::ClusterSpec::heterogeneous(8, 8, 0.5);
    config.slot_manager.per_node_targets = (variant == Variant::kPerNode);
    job = bench::run_job(config, workload::make_puma_job(bench_id, 30 * kGiB));
  }
  state.counters["total_time_s"] = job.total_time();
  table().set(workload::puma_name(bench_id), variant_name(variant), job.total_time());
}

void register_all() {
  for (workload::Puma bench_id :
       {workload::Puma::kHistogramRatings, workload::Puma::kTermVector,
        workload::Puma::kTerasort}) {
    for (Variant variant :
         {Variant::kHadoopV1, Variant::kUniform, Variant::kPerNode}) {
      benchmark::RegisterBenchmark(
          (std::string("Hetero/") + workload::puma_name(bench_id) + "/" +
              variant_name(variant)).c_str(),
          [bench_id, variant](benchmark::State& state) {
            BM_Hetero(state, bench_id, variant);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
