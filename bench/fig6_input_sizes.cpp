// Figure 6: HistogramRatings job throughput with different input sizes
// (the paper sweeps up to 250 GB).
//
// Expected shape: HadoopV1 and YARN stay flat as the input grows;
// SMapReduce's throughput climbs with input size because a longer job gives
// the slot manager more time at the optimal configuration (paper: ~2.0x
// HadoopV1 and ~1.3x YARN at 250 GB).
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Fig 6: HistogramRatings job throughput (MiB/s) vs input size");
  return t;
}

void BM_Fig6(benchmark::State& state, driver::EngineKind engine) {
  const auto input = static_cast<Bytes>(state.range(0)) * kGiB;
  metrics::JobResult job;
  for (auto _ : state) {
    job = bench::run_job(
        bench::paper_config(engine),
        workload::make_puma_job(workload::Puma::kHistogramRatings, input));
  }
  const double throughput_mib = job.throughput() / static_cast<double>(kMiB);
  state.counters["throughput_MiB_s"] = throughput_mib;
  state.counters["total_time_s"] = job.total_time();
  char row[32];
  std::snprintf(row, sizeof(row), "input=%3lld GiB",
                static_cast<long long>(state.range(0)));
  table().set(row, driver::engine_name(engine), throughput_mib);
}

void register_all() {
  for (driver::EngineKind engine : driver::all_engines()) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig6/histogram-ratings/") + driver::engine_name(engine)).c_str(),
        [engine](benchmark::State& state) { BM_Fig6(state, engine); });
    for (long long gib : {50, 100, 150, 200, 250}) b->Arg(gib);
    b->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
