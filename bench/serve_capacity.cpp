// Serving capacity: rate-vs-p99 curves and the capacity knee per engine.
//
// The serving-mode analogue of the paper's Fig. 8: instead of a fixed
// 4-job batch, an open-loop Poisson stream of Grep-class jobs arrives at
// a swept aggregate rate, and we measure the steady-state p99 sojourn
// time behind each slot policy.  The knee — the highest rate with p99
// under the bound and no shedding — is the headline capacity number.
// Expected shape: SMapReduce's faster per-job completion (Fig. 8) turns
// into a higher sustainable arrival rate than HadoopV1's static slots.
//
// Set SMR_CAPACITY_JSON=<path> to also dump the machine-readable
// rate-vs-p99 report (the same JSON smr_serve --capacity-out writes).
#include <cstdlib>
#include <fstream>

#include "bench_common.hpp"
#include "smr/serve/capacity.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t("Serving capacity: p99 sojourn (s) by offered rate");
  return t;
}

serve::CapacityConfig capacity_config() {
  serve::CapacityConfig config;
  config.base.experiment = bench::paper_config(driver::EngineKind::kSMapReduce);
  config.base.experiment.scheduler = driver::SchedulerKind::kDeadline;

  workload::SyntheticMixConfig shape;
  shape.candidates = {workload::Puma::kGrep};
  shape.min_input = 4 * kGiB;
  shape.max_input = 12 * kGiB;
  shape.reduce_tasks = 30;
  workload::SyntheticMixConfig::SloClass slo;
  slo.base_deadline_s = 600.0;
  slo.per_gib_s = 60.0;
  shape.slo_classes.push_back(slo);

  for (int i = 0; i < 2; ++i) {
    serve::TenantConfig tenant;
    tenant.name = "tenant" + std::to_string(i);
    tenant.jobs_per_hour = 1.0;  // scaled to each grid rate by the sweep
    tenant.shape = shape;
    config.base.tenants.push_back(std::move(tenant));
  }

  config.base.admission.max_in_system = 12;
  config.base.admission.policy = serve::AdmissionPolicy::kShed;
  config.base.horizon = 3600.0;
  config.base.warmup = 600.0;
  config.base.drain_limit = 3600.0;
  config.base.seed = 7;

  config.rates = {30.0, 60.0, 90.0, 120.0, 150.0, 180.0};
  config.p99_bound_s = 1200.0;
  config.max_shed_fraction = 0.0;
  return config;
}

std::vector<serve::CapacityCurve>& curves() {
  static std::vector<serve::CapacityCurve> c;
  return c;
}

char rate_row[64];

void register_engine(driver::EngineKind engine) {
  benchmark::RegisterBenchmark(
      (std::string("ServeCapacity/") + driver::engine_name(engine)).c_str(),
      [engine](benchmark::State& state) {
        serve::CapacityCurve curve;
        const serve::CapacityConfig config = capacity_config();
        for (auto _ : state) {
          curve = serve::sweep_capacity(config, engine);
        }
        for (const auto& point : curve.points) {
          std::snprintf(rate_row, sizeof(rate_row), "p99 @ %4.0f jobs/h",
                        point.jobs_per_hour);
          table().set(rate_row, curve.engine,
                      point.report.aggregate.latency.p99);
        }
        table().set("knee (jobs/h)", curve.engine, curve.knee_jobs_per_hour);
        state.counters["knee_jobs_per_hour"] = curve.knee_jobs_per_hour;
        curves().push_back(std::move(curve));
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

const bool registered = [] {
  for (driver::EngineKind engine : driver::all_engines()) {
    register_engine(engine);
  }
  return true;
}();

void maybe_write_capacity_json() {
  const char* path = std::getenv("SMR_CAPACITY_JSON");
  if (path == nullptr || curves().empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path);
    return;
  }
  serve::write_capacity_json(capacity_config(), curves(), out);
  std::printf("capacity json written to %s\n", path);
}

}  // namespace

SMR_BENCH_MAIN(table().print("%12.1f"); maybe_write_capacity_json())
