// Figure 1: the thrashing phenomenon.
//
// "In the Terasort, TermVector, and Grep benchmarks, the curves of the
// throughput of the map slots versus the number of map slots in each node
// begins to fall when the number of map slots reaches the thrashing point."
//
// Each (benchmark, slots) point runs HadoopV1 with a static configuration
// of `slots` map slots per node and reports the aggregate map throughput
// (input bytes / map time).  Expected shape: throughput rises roughly
// proportionally, then stalls/falls past a per-workload thrashing point,
// ordered Grep > TermVector > Terasort.
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 1: map throughput (MiB/s) vs map slots per node");
  return t;
}

void BM_Fig1(benchmark::State& state, workload::Puma bench_id) {
  const int slots = static_cast<int>(state.range(0));
  metrics::JobResult job;
  for (auto _ : state) {
    auto config = bench::paper_config(driver::EngineKind::kHadoopV1);
    config.runtime.initial_map_slots = slots;
    job = bench::run_job(config, workload::make_puma_job(bench_id, 30 * kGiB));
  }
  const double throughput_mib = job.map_throughput() / static_cast<double>(kMiB);
  state.counters["map_throughput_MiB_s"] = throughput_mib;
  state.counters["map_time_s"] = job.map_time();
  table().set(std::string("map_slots=") + std::to_string(slots),
              workload::puma_name(bench_id), throughput_mib);
}

void register_all() {
  for (workload::Puma bench_id : workload::fig1_benchmarks()) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Fig1/") + workload::puma_name(bench_id)).c_str(),
        [bench_id](benchmark::State& state) { BM_Fig1(state, bench_id); });
    b->DenseRange(1, 14, 1)->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
