// Substrate ablation: delay scheduling (paper reference [13]) and data
// locality.
//
// A small job's splits live on only a handful of nodes, so a greedy
// scheduler assigns most of its maps remotely, paying network reads that
// compete with the shuffle.  Delay scheduling declines a bounded number of
// non-local offers instead.
//
// Expected shape: node-local launch fraction climbs with the wait bound
// (steeply on replication 1, from a higher baseline on replication 3) while
// job time stays flat or improves — the "wait a little, win a lot" result
// of the delay-scheduling paper.
#include "bench_common.hpp"

#include "smr/mapreduce/runtime.hpp"

namespace {

using namespace smr;

bench::FigureTable& locality_table() {
  static bench::FigureTable t(
      "Locality ablation: node-local map launches (%), small grep job");
  return t;
}
bench::FigureTable& time_table() {
  static bench::FigureTable t("Locality ablation: total job time (s)");
  return t;
}

void BM_Locality(benchmark::State& state, int replication) {
  const int wait = static_cast<int>(state.range(0));
  double local_pct = 0.0;
  double total_time = 0.0;
  for (auto _ : state) {
    mapreduce::RuntimeConfig config;
    config.cluster = cluster::ClusterSpec::paper_testbed(16);
    config.cluster.dfs_replication = replication;
    config.locality_wait_offers = wait;
    config.seed = 5;
    mapreduce::Runtime runtime(config,
                               std::make_unique<mapreduce::StaticSlotPolicy>());
    auto spec = workload::make_puma_job(workload::Puma::kGrep, 1 * kGiB);
    spec.reduce_tasks = 4;
    runtime.submit(spec, 0.0);
    const auto result = runtime.run();
    total_time = result.jobs[0].total_time();
    local_pct = 100.0 * runtime.local_map_launches() /
                (runtime.local_map_launches() + runtime.remote_map_launches());
  }
  state.counters["local_pct"] = local_pct;
  state.counters["total_time_s"] = total_time;
  char row[32];
  std::snprintf(row, sizeof(row), "wait=%d offers", wait);
  char column[32];
  std::snprintf(column, sizeof(column), "repl=%d", replication);
  locality_table().set(row, column, local_pct);
  time_table().set(row, column, total_time);
}

void register_all() {
  for (int replication : {1, 3}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Locality/replication-") + std::to_string(replication))
            .c_str(),
        [replication](benchmark::State& state) { BM_Locality(state, replication); });
    for (int wait : {0, 1, 2, 4, 8, 16}) b->Arg(wait);
    b->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(locality_table().print(); time_table().print())
