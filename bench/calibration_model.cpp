// Calibration check: the analytic contention model vs the end-to-end
// simulation.
//
// The Fig. 1 thrashing curves can be computed two ways: (a) directly from
// ComputeModel::solve for n identical map tasks on one node (no control
// plane, no waves, no shuffle), and (b) by actually running the full
// HadoopV1 engine at a static n and measuring input/map-time.  If the
// stack is wired correctly, (b) tracks (a) up to wave-quantisation and
// shuffle interference — this bench prints both so drift is visible.
//
// Expected shape: end-to-end sits at or below the analytic curve (waves
// round up, heartbeats idle slots, reducers steal resources), with the
// same hump position ±1 slot.
#include "bench_common.hpp"

#include "smr/cluster/compute_model.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Calibration: analytic vs end-to-end map throughput (MiB/s), terasort");
  return t;
}

double analytic_rate(const cluster::NodeSpec& node, const mapreduce::JobSpec& spec,
                     int n) {
  cluster::Occupancy occ;
  occ.threads = n;
  occ.io_streams = n;
  occ.memory_demand = spec.map_task_memory * n;
  std::vector<cluster::PhaseLoad> loads(
      static_cast<std::size_t>(n),
      cluster::PhaseLoad{spec.map_cpu_per_mib / static_cast<double>(kMiB),
                         1.0 + spec.map_selectivity * spec.spill_disk_factor,
                         cluster::kNoCap, 1.0});
  double total = 0.0;
  for (double r : cluster::ComputeModel::solve(node, occ, {}, loads)) total += r;
  return total;
}

void BM_Calibration(benchmark::State& state, workload::Puma bench_id) {
  const int slots = static_cast<int>(state.range(0));
  const auto spec = workload::make_puma_job(bench_id, 30 * kGiB);
  double measured = 0.0;
  for (auto _ : state) {
    auto config = bench::paper_config(driver::EngineKind::kHadoopV1);
    config.runtime.initial_map_slots = slots;
    measured = bench::run_job(config, spec).map_throughput() /
               static_cast<double>(kMiB) / 16.0;  // per node
  }
  const double analytic =
      analytic_rate(cluster::NodeSpec{}, spec, slots) / static_cast<double>(kMiB);
  state.counters["analytic_MiB_s"] = analytic;
  state.counters["measured_MiB_s"] = measured;
  char row[32];
  std::snprintf(row, sizeof(row), "map_slots=%d", slots);
  const std::string prefix = workload::puma_name(bench_id);
  table().set(row, prefix + "/model", analytic);
  table().set(row, prefix + "/sim", measured);
}

void register_all() {
  for (workload::Puma bench_id : {workload::Puma::kTerasort, workload::Puma::kGrep}) {
    auto* b = benchmark::RegisterBenchmark(
        (std::string("Calibration/") + workload::puma_name(bench_id)).c_str(),
        [bench_id](benchmark::State& state) { BM_Calibration(state, bench_id); });
    b->DenseRange(1, 10, 1)->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print("%12.1f"))
