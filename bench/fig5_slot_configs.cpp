// Figure 5: map time of the HistogramRatings benchmark under different
// initial map-slot configurations (YARN: equivalent container capacity).
//
// Expected shape: HadoopV1 traces a deep U (terrible at 1-2 slots, optimal
// near its sweet spot); YARN tracks V1 but shallower (shared container
// pool); SMapReduce stays near-flat and close to the static optimum from
// any starting configuration, and matches V1/YARN where their static
// choice happens to be optimal (paper: 10-18% over YARN, 30-160% over V1
// across 2-6 slots).
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Fig 5: HistogramRatings map time (s) vs initial map slots per node");
  return t;
}

void BM_Fig5(benchmark::State& state, driver::EngineKind engine) {
  const int slots = static_cast<int>(state.range(0));
  metrics::JobResult job;
  for (auto _ : state) {
    auto config = bench::paper_config(engine);
    config.runtime.initial_map_slots = slots;
    job = bench::run_job(config,
                         workload::make_puma_job(workload::Puma::kHistogramRatings,
                                                 30 * kGiB));
  }
  state.counters["map_time_s"] = job.map_time();
  table().set(std::string("map_slots=") + std::to_string(slots),
              driver::engine_name(engine), job.map_time());
}

void register_all() {
  for (driver::EngineKind engine : driver::all_engines()) {
    benchmark::RegisterBenchmark(
        (std::string("Fig5/histogram-ratings/") + driver::engine_name(engine)).c_str(),
        [engine](benchmark::State& state) { BM_Fig5(state, engine); })
        ->DenseRange(1, 8, 1)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
