// Figure 7: map time with and without thrashing detection and with and
// without the slow-start policy, on two benchmarks.
//
// Expected shape (paper §V-E): without detecting thrashing SMapReduce's map
// time blows up well past HadoopV1 and YARN (the balance controller climbs
// into paging); without slow start the result depends on whether the early
// noisy statistics happened to steer the right way — sometimes better,
// usually worse; full SMapReduce is the fastest configuration.
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t("Fig 7: map time (s) ablations");
  return t;
}

enum class Variant { kHadoopV1, kYarn, kFull, kNoThrashDetect, kNoSlowStart };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kHadoopV1: return "HadoopV1";
    case Variant::kYarn: return "YARN";
    case Variant::kFull: return "SMR";
    case Variant::kNoThrashDetect: return "SMR-nodetect";
    case Variant::kNoSlowStart: return "SMR-noslow";
  }
  return "?";
}

driver::ExperimentConfig config_for(Variant v) {
  switch (v) {
    case Variant::kHadoopV1:
      return bench::paper_config(driver::EngineKind::kHadoopV1);
    case Variant::kYarn:
      return bench::paper_config(driver::EngineKind::kYarn);
    case Variant::kFull:
      return bench::paper_config(driver::EngineKind::kSMapReduce);
    case Variant::kNoThrashDetect: {
      auto config = bench::paper_config(driver::EngineKind::kSMapReduce);
      config.slot_manager.detect_thrashing = false;
      return config;
    }
    case Variant::kNoSlowStart: {
      auto config = bench::paper_config(driver::EngineKind::kSMapReduce);
      config.slot_manager.slow_start = false;
      return config;
    }
  }
  return bench::paper_config(driver::EngineKind::kSMapReduce);
}

void BM_Fig7(benchmark::State& state, Variant variant, workload::Puma bench_id) {
  metrics::JobResult job;
  for (auto _ : state) {
    job = bench::run_job(config_for(variant),
                         workload::make_puma_job(bench_id, 30 * kGiB));
  }
  state.counters["map_time_s"] = job.map_time();
  table().set(workload::puma_name(bench_id), variant_name(variant), job.map_time());
}

void register_all() {
  // One reduce-heavy benchmark (where climbing unchecked is catastrophic)
  // and one map-heavy benchmark (where the early statistics mislead).
  const workload::Puma benches[] = {workload::Puma::kTerasort,
                                    workload::Puma::kHistogramRatings};
  for (workload::Puma bench_id : benches) {
    for (Variant variant : {Variant::kHadoopV1, Variant::kYarn, Variant::kFull,
                            Variant::kNoThrashDetect, Variant::kNoSlowStart}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig7/") + workload::puma_name(bench_id) + "/" +
              variant_name(variant)).c_str(),
          [variant, bench_id](benchmark::State& state) {
            BM_Fig7(state, variant, bench_id);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
