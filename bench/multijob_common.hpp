// Shared driver for the multi-job figures (Figs. 8 and 9): 4 jobs of the
// same benchmark, each submitted 5 s after the previous one; FIFO scheduler
// on HadoopV1/SMapReduce, capacity scheduler on YARN (the defaults).
#pragma once

#include "bench_common.hpp"

namespace smr::bench {

struct MultiJobResult {
  double mean_execution_s = 0.0;
  double last_finish_s = 0.0;
};

inline MultiJobResult run_multi_job(driver::EngineKind engine, workload::Puma bench_id,
                                    Bytes input_per_job, int jobs = 4,
                                    SimTime stagger = 5.0, int trials = 2) {
  auto config = paper_config(engine, trials);
  std::vector<driver::JobSubmission> submissions;
  for (int i = 0; i < jobs; ++i) {
    submissions.push_back(
        {workload::make_puma_job(bench_id, input_per_job), stagger * i});
  }
  const auto result = driver::run_experiment(config, submissions);
  return {result.mean_execution_time(), result.last_finish_time()};
}

inline void register_multi_job_bench(workload::Puma bench_id, Bytes input_per_job,
                                     FigureTable& table) {
  for (driver::EngineKind engine : driver::all_engines()) {
    benchmark::RegisterBenchmark(
        (std::string("MultiJob/") + workload::puma_name(bench_id) + "/" +
            driver::engine_name(engine)).c_str(),
        [engine, bench_id, input_per_job, &table](benchmark::State& state) {
          MultiJobResult result;
          for (auto _ : state) {
            result = run_multi_job(engine, bench_id, input_per_job);
          }
          state.counters["mean_execution_s"] = result.mean_execution_s;
          state.counters["last_finish_s"] = result.last_finish_s;
          table.set("mean execution time", driver::engine_name(engine),
                    result.mean_execution_s);
          table.set("last job finish time", driver::engine_name(engine),
                    result.last_finish_s);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace smr::bench
