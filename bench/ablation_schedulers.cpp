// Design-choice ablation: FIFO vs Fair job scheduling under each engine.
//
// The paper evaluates multi-job workloads under FIFO (HadoopV1/SMapReduce)
// and the capacity scheduler (YARN) only.  The Fair scheduler — reference
// [13] of the paper — trades batch efficiency for per-job turnaround; this
// bench runs a mixed-size batch (a big reduce-heavy job followed by
// progressively smaller jobs: the FIFO-unfriendly arrival pattern).
//
// Measured shape: Fair rescues the small jobs (grep and histogram
// turn around 15-35% faster) by making the big jobs pay (terasort +40%),
// so the *mean* and the makespan favour FIFO while tail-latency fairness
// favours Fair — the classic fairness/efficiency trade-off.  Note that
// plain FIFO is already gentler than a naive queue: once a job's maps are
// all assigned, its map slots flow to the next job even while its reduce
// phase runs (the barrier structure releases resources early).
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Scheduler ablation: per-job turnaround (s), mixed 4-job batch");
  return t;
}

std::vector<driver::JobSubmission> mixed_batch() {
  std::vector<driver::JobSubmission> jobs;
  jobs.push_back({workload::make_puma_job(workload::Puma::kTerasort, 30 * kGiB), 0.0});
  jobs.push_back({workload::make_puma_job(workload::Puma::kInvertedIndex, 15 * kGiB), 10.0});
  jobs.push_back({workload::make_puma_job(workload::Puma::kGrep, 8 * kGiB), 20.0});
  jobs.push_back({workload::make_puma_job(workload::Puma::kHistogramRatings, 4 * kGiB), 30.0});
  return jobs;
}

void BM_Schedulers(benchmark::State& state, driver::EngineKind engine,
                   driver::SchedulerKind scheduler) {
  metrics::RunResult result;
  for (auto _ : state) {
    auto config = bench::paper_config(engine);
    config.scheduler = scheduler;
    result = driver::run_experiment(config, mixed_batch());
  }
  state.counters["mean_execution_s"] = result.mean_execution_time();
  state.counters["last_finish_s"] = result.last_finish_time();
  const std::string column = std::string(driver::engine_name(engine)) + "/" +
                             driver::scheduler_name(scheduler);
  for (const auto& job : result.jobs) {
    char row[64];
    std::snprintf(row, sizeof(row), "%d: %s", job.id, job.name.c_str());
    table().set(row, column, job.execution_time());
  }
  table().set("mean execution", column, result.mean_execution_time());
  table().set("last finish", column, result.last_finish_time());
}

void register_all() {
  for (driver::EngineKind engine :
       {driver::EngineKind::kHadoopV1, driver::EngineKind::kSMapReduce}) {
    for (driver::SchedulerKind scheduler :
         {driver::SchedulerKind::kFifo, driver::SchedulerKind::kFair}) {
      benchmark::RegisterBenchmark(
          (std::string("Schedulers/") + driver::engine_name(engine) + "/" +
           driver::scheduler_name(scheduler))
              .c_str(),
          [engine, scheduler](benchmark::State& state) {
            BM_Schedulers(state, engine, scheduler);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
