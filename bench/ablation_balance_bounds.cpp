// Design-choice ablation: sensitivity to the balance-factor bounds
// (paper §IV-A3 leaves the upper/lower bounds unspecified; DESIGN.md fixes
// them at 0.85/0.95).
//
// Expected shape: a too-low lower bound never flags reduce-heavy (terasort
// over-climbs); a band pushed up to ~1.0 flaps between increments and
// decrements; the default band is at or near the best cell for both a
// map-heavy and a reduce-heavy benchmark.
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Ablation: SMapReduce total time (s) vs balance bounds [lower,upper]");
  return t;
}

struct Bounds {
  double lower;
  double upper;
  const char* label;
};

constexpr Bounds kBounds[] = {
    {0.50, 0.60, "[.50,.60]"},
    {0.70, 0.80, "[.70,.80]"},
    {0.85, 0.95, "[.85,.95]"},  // the default
    {0.93, 0.99, "[.93,.99]"},
};

void BM_Bounds(benchmark::State& state, workload::Puma bench_id, Bounds bounds) {
  metrics::JobResult job;
  for (auto _ : state) {
    auto config = bench::paper_config(driver::EngineKind::kSMapReduce);
    config.slot_manager.balance_lower = bounds.lower;
    config.slot_manager.balance_upper = bounds.upper;
    job = bench::run_job(config, workload::make_puma_job(bench_id, 30 * kGiB));
  }
  state.counters["total_time_s"] = job.total_time();
  table().set(std::string(workload::puma_name(bench_id)) + " " + bounds.label,
              "total_s", job.total_time());
}

void register_all() {
  for (workload::Puma bench_id :
       {workload::Puma::kHistogramRatings, workload::Puma::kTerasort}) {
    for (const Bounds& bounds : kBounds) {
      benchmark::RegisterBenchmark(
          (std::string("BalanceBounds/") + workload::puma_name(bench_id) + "/" +
              bounds.label).c_str(),
          [bench_id, bounds](benchmark::State& state) {
            BM_Bounds(state, bench_id, bounds);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print())
