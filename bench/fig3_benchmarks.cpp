// Figure 3: execution time of each benchmark on HadoopV1, YARN and
// SMapReduce (stacked map time + reduce time, 30 GB inputs, 3 map + 2
// reduce initial slots, 30 reduce tasks).
//
// Expected shape: SMapReduce shortest on (almost) every benchmark, with the
// largest wins on map-heavy jobs (HistogramRatings ≈ +140% throughput vs
// HadoopV1, +72% vs YARN); YARN between the two; Terasort the lone
// exception where SMapReduce is slightly slower than both.
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& map_table() {
  static bench::FigureTable t("Fig 3a: map time (s)");
  return t;
}
bench::FigureTable& reduce_table() {
  static bench::FigureTable t("Fig 3b: reduce time (s)");
  return t;
}
bench::FigureTable& total_table() {
  static bench::FigureTable t("Fig 3c: total execution time (s)");
  return t;
}

void BM_Fig3(benchmark::State& state, driver::EngineKind engine,
             workload::Puma bench_id) {
  metrics::JobResult job;
  for (auto _ : state) {
    job = bench::run_job(bench::paper_config(engine),
                         workload::make_puma_job(bench_id, 30 * kGiB));
  }
  state.counters["map_time_s"] = job.map_time();
  state.counters["reduce_time_s"] = job.reduce_time();
  state.counters["total_time_s"] = job.total_time();
  state.counters["throughput_MiB_s"] = job.throughput() / static_cast<double>(kMiB);
  const std::string row = workload::puma_name(bench_id);
  const std::string column = driver::engine_name(engine);
  map_table().set(row, column, job.map_time());
  reduce_table().set(row, column, job.reduce_time());
  total_table().set(row, column, job.total_time());
}

void register_all() {
  for (workload::Puma bench_id : workload::fig3_benchmarks()) {
    for (driver::EngineKind engine : driver::all_engines()) {
      benchmark::RegisterBenchmark(
          (std::string("Fig3/") + workload::puma_name(bench_id) + "/" +
              driver::engine_name(engine)).c_str(),
          [engine, bench_id](benchmark::State& state) {
            BM_Fig3(state, engine, bench_id);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(map_table().print(); reduce_table().print(); total_table().print())
