// Design-choice ablation: the lazy slot changer (paper §III-D) vs an eager
// kill-and-reschedule changer.
//
// "If the task launcher shuts down one slot immediately, the running task
// ... must be terminated and rescheduled ... If the slot changing action is
// frequent, the rescheduling cost can be substantial."
//
// Expected shape: identical behaviour on map-heavy jobs (the manager mostly
// climbs, so no shrink happens), and a visible penalty plus a nonzero kill
// count on reduce-heavy jobs where the balance controller pulls map slots
// back down mid-flight.
#include "bench_common.hpp"

namespace {

using namespace smr;

bench::FigureTable& table() {
  static bench::FigureTable t(
      "Ablation: lazy vs eager slot shrinking, SMapReduce total time (s)");
  return t;
}
bench::FigureTable& kills_table() {
  static bench::FigureTable t("Ablation: map tasks killed by eager shrinking");
  return t;
}

void BM_Lazy(benchmark::State& state, workload::Puma bench_id, bool eager) {
  metrics::JobResult job;
  double killed = 0.0;
  for (auto _ : state) {
    auto config = bench::paper_config(driver::EngineKind::kSMapReduce, /*trials=*/1);
    config.runtime.eager_slot_shrink = eager;
    mapreduce::Runtime runtime(config.runtime, driver::make_policy(config));
    runtime.submit(workload::make_puma_job(bench_id, 30 * kGiB), 0.0);
    job = runtime.run().jobs[0];
    killed = runtime.killed_map_tasks();
  }
  state.counters["total_time_s"] = job.total_time();
  state.counters["killed_maps"] = killed;
  const char* column = eager ? "eager" : "lazy";
  table().set(workload::puma_name(bench_id), column, job.total_time());
  kills_table().set(workload::puma_name(bench_id), column, killed);
}

void register_all() {
  for (workload::Puma bench_id :
       {workload::Puma::kHistogramRatings, workload::Puma::kInvertedIndex,
        workload::Puma::kAdjacencyList, workload::Puma::kTerasort}) {
    for (bool eager : {false, true}) {
      benchmark::RegisterBenchmark(
          (std::string("LazySlots/") + workload::puma_name(bench_id) + "/" +
              (eager ? "eager" : "lazy")).c_str(),
          [bench_id, eager](benchmark::State& state) {
            BM_Lazy(state, bench_id, eager);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace

SMR_BENCH_MAIN(table().print(); kills_table().print("%12.0f"))
