// White-box decision sequences of the slot manager: full scenarios driven
// through synthetic statistics, checking the *sequence* of decisions, not
// just single steps.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "smr/core/slot_policy.hpp"

namespace smr::core {
namespace {

using mapreduce::ClusterStats;
using mapreduce::TaskTracker;

std::vector<TaskTracker> make_trackers(int nodes, int maps = 3, int reduces = 2) {
  std::vector<TaskTracker> trackers;
  for (int n = 0; n < nodes; ++n) trackers.emplace_back(n, maps, reduces);
  return trackers;
}

/// Richer driver than the one in slot_policy_test: the map input rate is a
/// *function of the current slot count*, so thrashing scenarios emerge from
/// the interaction instead of being scripted.
class ScenarioDriver {
 public:
  explicit ScenarioDriver(SmrSlotPolicy& policy, std::vector<TaskTracker>& trackers)
      : policy_(policy), trackers_(trackers) {}

  /// Rate curve: throughput per period as a function of slots.
  void set_rate_curve(std::function<double(int)> curve) { curve_ = std::move(curve); }

  /// Shuffle keeps up with a fixed fraction of the output rate.
  void set_shuffle_fraction(double fraction) { shuffle_fraction_ = fraction; }

  void step() {
    now_ += 6.0;
    const double rate = curve_(policy_.map_slots());
    cum_in_ += rate * 6.0;
    cum_out_ += rate * 6.0;  // selectivity 1 for simplicity
    cum_shuf_ += rate * shuffle_fraction_ * 6.0;
    ClusterStats stats;
    stats.now = now_;
    stats.nodes = static_cast<int>(trackers_.size());
    stats.has_active_job = true;
    stats.active_jobs = {0};
    stats.pending_maps = 500;
    stats.running_maps = policy_.map_slots() * stats.nodes;
    stats.finished_maps = 100;
    stats.total_maps = 600 + stats.running_maps;
    stats.running_reduces = 8;
    stats.total_reduces = 8;
    stats.cum_map_input = cum_in_;
    stats.cum_map_output = cum_out_;
    stats.cum_shuffled = cum_shuf_;
    stats.front_job_map_fraction = 0.3;
    stats.front_job_shuffle_volume = 10 * kGiB;
    policy_.on_period(trackers_, stats);
  }

  void run_periods(int count) {
    for (int i = 0; i < count; ++i) step();
  }

 private:
  SmrSlotPolicy& policy_;
  std::vector<TaskTracker>& trackers_;
  std::function<double(int)> curve_ = [](int) { return 1e6; };
  double shuffle_fraction_ = 1.0;
  SimTime now_ = 0.0;
  double cum_in_ = 0.0, cum_out_ = 0.0, cum_shuf_ = 0.0;
};

SlotManagerConfig scenario_config() {
  SlotManagerConfig config;
  config.slow_start = false;  // scenarios control their own statistics
  config.rate_window = 12.0;
  config.input_rate_window = 6.0;
  return config;
}

TEST(SlotPolicyScenario, ClimbsToHumpAndConfirmsThrashing) {
  SmrSlotPolicy policy(scenario_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  ScenarioDriver driver(policy, trackers);
  // Hump at 7 slots: throughput collapses 30% per slot beyond it.
  driver.set_rate_curve([](int slots) {
    const double per_slot = 10.0 * static_cast<double>(kMiB);
    if (slots <= 7) return per_slot * slots;
    return per_slot * 7 * std::pow(0.7, slots - 7);
  });
  driver.run_periods(30);
  EXPECT_TRUE(policy.detector().confirmed());
  EXPECT_GE(policy.detector().ceiling(), 6);
  EXPECT_LE(policy.detector().ceiling(), 8);
  EXPECT_LE(policy.map_slots(), policy.detector().ceiling());
  // ... and it stays pinned there.
  const int settled = policy.map_slots();
  driver.run_periods(10);
  EXPECT_EQ(policy.map_slots(), settled);
}

TEST(SlotPolicyScenario, ReduceHeavyFindsBalancedState) {
  SmrSlotPolicy policy(scenario_config());
  auto trackers = make_trackers(4, 6, 2);  // start over-provisioned
  policy.on_start(trackers);
  ScenarioDriver driver(policy, trackers);
  // Cluster map output scales 8 MiB/s per slot; the shuffle service is
  // capacity-limited at 40 MiB/s total.  f = min(1, 40 / (8·slots)):
  // above 5 slots the shuffle falls behind (f < 0.85 at 6 slots), at 5 it
  // exactly keeps up (f = 1) — so the controller hunts the 5-6 boundary,
  // the paper's Balanced State.
  driver.set_rate_curve(
      [](int slots) { return 8.0 * static_cast<double>(kMiB) * slots; });
  SmrSlotPolicy* policy_ptr = &policy;
  for (int i = 0; i < 30; ++i) {
    const double out = 8.0 * policy_ptr->map_slots();
    driver.set_shuffle_fraction(std::min(1.0, 40.0 / out));
    driver.step();
  }
  EXPECT_GE(policy.map_slots(), 4);
  EXPECT_LE(policy.map_slots(), 6);
}

TEST(SlotPolicyScenario, FlatCurveClimbsToConfiguredMax) {
  SlotManagerConfig config = scenario_config();
  config.max_map_slots = 10;
  config.detect_thrashing = true;
  SmrSlotPolicy policy(config);
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  ScenarioDriver driver(policy, trackers);
  // Perfectly linear scaling: no thrashing exists; the bound must stop it.
  driver.set_rate_curve(
      [](int slots) { return 5.0 * static_cast<double>(kMiB) * slots; });
  driver.run_periods(30);
  EXPECT_EQ(policy.map_slots(), 10);
  EXPECT_FALSE(policy.detector().confirmed());
}

TEST(SlotPolicyScenario, NoisyPlateauNeedsTwoStrikes) {
  // A plateau with ±4% noise around the mean must not trigger a (2-strike,
  // 6%-tolerance) thrashing confirmation.
  SlotManagerConfig config = scenario_config();
  config.max_map_slots = 8;
  SmrSlotPolicy policy(config);
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  ScenarioDriver driver(policy, trackers);
  int step = 0;
  driver.set_rate_curve([&step](int slots) {
    const double wobble = (step++ % 2 == 0) ? 1.04 : 0.96;
    return 6.0 * static_cast<double>(kMiB) * std::min(slots, 6) * wobble;
  });
  driver.run_periods(40);
  // It may stop climbing (rate plateaus at 6), but must not confirm a
  // ceiling *below* the plateau.
  if (policy.detector().confirmed()) {
    EXPECT_GE(policy.detector().ceiling(), 5);
  }
  EXPECT_GE(policy.map_slots(), 5);
}

TEST(SlotPolicyScenario, FrontJobChangeResetsCeiling) {
  SmrSlotPolicy policy(scenario_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  ScenarioDriver driver(policy, trackers);
  driver.set_rate_curve([](int slots) {
    const double per_slot = 10.0 * static_cast<double>(kMiB);
    return slots <= 5 ? per_slot * slots : per_slot * 5 * std::pow(0.6, slots - 5);
  });
  driver.run_periods(25);
  ASSERT_TRUE(policy.detector().confirmed());

  // A new front job arrives: ceiling must be forgotten (workload changed).
  ClusterStats stats;
  stats.now = 1000.0;
  stats.nodes = 4;
  stats.has_active_job = true;
  stats.active_jobs = {1};  // different job id
  stats.pending_maps = 100;
  stats.running_maps = 12;
  stats.total_maps = 112;
  stats.total_reduces = 8;
  policy.on_period(trackers, stats);
  EXPECT_FALSE(policy.detector().confirmed());
}

}  // namespace
}  // namespace smr::core
