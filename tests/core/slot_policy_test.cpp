#include "smr/core/slot_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <memory>
#include <vector>

#include "smr/mapreduce/runtime.hpp"
#include "smr/workload/puma.hpp"

namespace smr::core {
namespace {

using mapreduce::ClusterStats;
using mapreduce::TaskTracker;

std::vector<TaskTracker> make_trackers(int nodes, int maps = 3, int reduces = 2) {
  std::vector<TaskTracker> trackers;
  for (int n = 0; n < nodes; ++n) trackers.emplace_back(n, maps, reduces);
  return trackers;
}

/// Drives a policy with synthetic statistics, simulating a steady map
/// output rate `rt`, shuffle rate `rs` and task census.
struct StatsDriver {
  SimTime now = 0.0;
  double cum_in = 0.0, cum_out = 0.0, cum_shuf = 0.0;

  ClusterStats step(double in_rate, double out_rate, double shuffle_rate,
                    int pending_maps, int running_maps, int running_reduces,
                    int total_reduces, double front_fraction,
                    Bytes shuffle_volume = 10 * kGiB) {
    now += 6.0;
    cum_in += in_rate * 6.0;
    cum_out += out_rate * 6.0;
    cum_shuf += shuffle_rate * 6.0;
    ClusterStats stats;
    stats.now = now;
    stats.nodes = 4;
    stats.has_active_job = true;
    stats.active_jobs = {0};
    stats.pending_maps = pending_maps;
    stats.running_maps = running_maps;
    stats.finished_maps = 50;
    stats.total_maps = pending_maps + running_maps + 50;
    stats.running_reduces = running_reduces;
    stats.total_reduces = total_reduces;
    stats.pending_reduces = total_reduces - running_reduces;
    stats.cum_map_input = cum_in;
    stats.cum_map_output = cum_out;
    stats.cum_shuffled = cum_shuf;
    stats.front_job_map_fraction = front_fraction;
    stats.front_job_shuffle_volume = shuffle_volume;
    return stats;
  }
};

SlotManagerConfig fast_config() {
  SlotManagerConfig config;
  config.rate_window = 12.0;
  config.input_rate_window = 6.0;
  return config;
}

TEST(SlotPolicy, OnStartAdoptsUserConfiguration) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4, 5, 3);
  policy.on_start(trackers);
  EXPECT_EQ(policy.map_slots(), 5);
  EXPECT_EQ(policy.reduce_slots(), 3);
}

TEST(SlotPolicy, SlowStartHoldsEarlyDecisions) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  // 5% of maps done: below the 10% slow-start threshold.
  auto stats = driver.step(100.0, 100.0, 100.0, 200, 12, 8, 8, 0.05);
  policy.on_period(trackers, stats);
  EXPECT_FALSE(policy.slow_start_passed());
  EXPECT_EQ(policy.map_slots(), 3);
  EXPECT_EQ(policy.decisions_made(), 0);
}

TEST(SlotPolicy, SlowStartDisabledActsImmediately) {
  SlotManagerConfig config = fast_config();
  config.slow_start = false;
  SmrSlotPolicy policy(config);
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  auto stats = driver.step(100.0, 100.0, 100.0, 200, 12, 8, 8, 0.05);
  policy.on_period(trackers, stats);
  EXPECT_TRUE(policy.slow_start_passed());
}

TEST(SlotPolicy, SlowStartWaitsForShuffleStatistics) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  // 20% of maps done but reducers only just appeared: the shuffle gate
  // holds until a full rate window of shuffle statistics exists.
  auto stats = driver.step(100.0, 100.0, 0.0, 160, 12, 8, 8, 0.20);
  policy.on_period(trackers, stats);
  EXPECT_FALSE(policy.slow_start_passed());
  // Three more periods (18 s = rate window at reduces-running): gate opens.
  policy.on_period(trackers, driver.step(100.0, 100.0, 50.0, 150, 12, 8, 8, 0.22));
  policy.on_period(trackers, driver.step(100.0, 100.0, 50.0, 140, 12, 8, 8, 0.25));
  policy.on_period(trackers, driver.step(100.0, 100.0, 50.0, 130, 12, 8, 8, 0.28));
  EXPECT_TRUE(policy.slow_start_passed());
}

TEST(SlotPolicy, MapHeavyClimbsOneSlotPerPeriod) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  // Shuffle keeps up exactly (f = 1 > upper bound): map-heavy.
  const double rate = 100.0 * static_cast<double>(kMiB);
  // Pass slow start first (several periods with reduces running).
  for (int i = 0; i < 4; ++i) {
    policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  }
  const int before = policy.map_slots();
  policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  EXPECT_EQ(policy.map_slots(), before + 1);
  policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  EXPECT_EQ(policy.map_slots(), before + 2);
  for (const auto& t : trackers) EXPECT_EQ(t.map_target(), policy.map_slots());
}

TEST(SlotPolicy, ReduceHeavyDecrements) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4, 5, 2);
  policy.on_start(trackers);
  StatsDriver driver;
  const double out = 100.0 * static_cast<double>(kMiB);
  const double shuf = 50.0 * static_cast<double>(kMiB);  // f = 0.5 < lower
  // Persistent shuffle lag: the controller walks map slots down, one per
  // period, until the floor.
  std::vector<int> trajectory;
  for (int i = 0; i < 10; ++i) {
    policy.on_period(trackers, driver.step(out, out, shuf, 200, 12, 8, 8, 0.3));
    trajectory.push_back(policy.map_slots());
  }
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    EXPECT_LE(trajectory[i], trajectory[i - 1]);  // never climbs
  }
  EXPECT_EQ(policy.map_slots(), 1);  // reached the floor
  ASSERT_TRUE(policy.last_balance_factor().has_value());
  EXPECT_LT(*policy.last_balance_factor(), 0.85);
  EXPECT_GE(policy.decisions_made(), 4);
}

TEST(SlotPolicy, BalancedStateHolds) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double out = 100.0 * static_cast<double>(kMiB);
  const double shuf = 0.90 * out;  // f = 0.90 in (0.85, 0.95): balanced
  for (int i = 0; i < 8; ++i) {
    policy.on_period(trackers, driver.step(out, out, shuf, 200, 12, 8, 8, 0.3));
  }
  EXPECT_EQ(policy.map_slots(), 3);
}

TEST(SlotPolicy, BalanceFactorUsesFirstWaveShare) {
  // With n of N reduce tasks running, R_m = (n/N) R_t: only half the map
  // output belongs to the running wave, so a shuffle rate of half the
  // output rate is balanced, not reduce-heavy.
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double out = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 6; ++i) {
    policy.on_period(trackers,
                     driver.step(out, out, 0.45 * out, 200, 12, 4, 8, 0.3));
  }
  ASSERT_TRUE(policy.last_balance_factor().has_value());
  EXPECT_NEAR(*policy.last_balance_factor(), 0.9, 0.05);
  EXPECT_EQ(policy.map_slots(), 3);
}

TEST(SlotPolicy, MapOnlyWindowHoldsInsteadOfClimbing) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double rate = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 4; ++i) {
    policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  }
  const int before = policy.map_slots();
  // A straggler window: no map output landed at all.
  policy.on_period(trackers, driver.step(rate, 0.0, 0.0, 200, 12, 8, 8, 0.3));
  policy.on_period(trackers, driver.step(rate, 0.0, 0.0, 200, 12, 8, 8, 0.3));
  policy.on_period(trackers, driver.step(rate, 0.0, 0.0, 200, 12, 8, 8, 0.3));
  EXPECT_LE(policy.map_slots(), before + 1);  // at most the first climb landed
}

TEST(SlotPolicy, TailReleasesMapSlotsAndBoostsSmallShuffleReduces) {
  SlotManagerConfig config = fast_config();
  config.tail_reduce_boost = 2;
  config.small_shuffle_threshold = 1 * kGiB;
  SmrSlotPolicy policy(config);
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double rate = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 4; ++i) {
    policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  }
  // Tail: no unfinished maps, small shuffle volume.
  auto stats = driver.step(0.0, 0.0, rate, 0, 0, 8, 8, 1.0, 512 * kMiB);
  policy.on_period(trackers, stats);
  for (const auto& t : trackers) {
    EXPECT_EQ(t.map_target(), 0);          // nothing left to map
    EXPECT_EQ(t.reduce_target(), 2 + 2);   // boosted
  }
}

TEST(SlotPolicy, TailKeepsReducesSmallWhenShuffleLarge) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double rate = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 4; ++i) {
    policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  }
  // Tail with a 30 GiB shuffle: boosting copiers would jam the network.
  auto stats = driver.step(0.0, 0.0, rate, 0, 0, 8, 8, 1.0, 30 * kGiB);
  policy.on_period(trackers, stats);
  for (const auto& t : trackers) EXPECT_EQ(t.reduce_target(), 2);
}

TEST(SlotPolicy, FewRemainingMapsShrinkTargets) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double rate = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 4; ++i) {
    policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  }
  // Only 5 maps remain on 4 nodes: two slots per node suffice.
  auto stats = driver.step(rate, rate, rate, 2, 3, 8, 8, 0.97);
  policy.on_period(trackers, stats);
  for (const auto& t : trackers) EXPECT_LE(t.map_target(), 2);
}

TEST(SlotPolicy, MinimumSlotBoundsRespected) {
  SlotManagerConfig config = fast_config();
  config.min_map_slots = 2;
  SmrSlotPolicy policy(config);
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double out = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 20; ++i) {
    policy.on_period(trackers,
                     driver.step(out, out, 0.1 * out, 200, 12, 8, 8, 0.3));
  }
  EXPECT_EQ(policy.map_slots(), 2);  // floor, despite persistent f < lower
}

TEST(SlotPolicy, MaximumSlotBoundRespected) {
  SlotManagerConfig config = fast_config();
  config.max_map_slots = 5;
  config.detect_thrashing = false;
  SmrSlotPolicy policy(config);
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double rate = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 20; ++i) {
    policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  }
  EXPECT_EQ(policy.map_slots(), 5);
}

TEST(SlotPolicy, HeterogeneousTargetsScaleWithNodeSpeed) {
  SlotManagerConfig config = fast_config();
  config.per_node_targets = true;
  config.detect_thrashing = false;
  SmrSlotPolicy policy(config, {1.0, 1.0, 0.5, 0.5});
  auto trackers = make_trackers(4, 4, 2);
  policy.on_start(trackers);
  StatsDriver driver;
  const double rate = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 5; ++i) {
    policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  }
  EXPECT_GT(trackers[0].map_target(), trackers[2].map_target());
  EXPECT_EQ(trackers[2].map_target(),
            std::max(1, static_cast<int>(std::lround(policy.map_slots() * 0.5))));
}

TEST(SlotPolicy, IdleClusterKeepsAdaptedSlotsAndResetsStatistics) {
  SmrSlotPolicy policy(fast_config());
  auto trackers = make_trackers(4);
  policy.on_start(trackers);
  StatsDriver driver;
  const double rate = 100.0 * static_cast<double>(kMiB);
  for (int i = 0; i < 8; ++i) {
    policy.on_period(trackers, driver.step(rate, rate, rate, 200, 12, 8, 8, 0.3));
  }
  const int adapted = policy.map_slots();
  EXPECT_GT(adapted, 3);
  // Cluster goes idle.
  ClusterStats idle;
  idle.now = driver.now + 6.0;
  idle.nodes = 4;
  idle.has_active_job = false;
  policy.on_period(trackers, idle);
  EXPECT_EQ(policy.map_slots(), adapted);  // carried over as a prior
  EXPECT_FALSE(policy.slow_start_passed());  // statistics reset
}

// End-to-end on the real runtime: the policy climbs on a map-heavy job and
// beats the static configuration.
TEST(SlotPolicyEndToEnd, BeatsStaticSlotsOnMapHeavyJob) {
  mapreduce::RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.initial_map_slots = 3;
  config.initial_reduce_slots = 2;
  config.seed = 11;
  auto spec = workload::make_puma_job(workload::Puma::kHistogramRatings, 8 * kGiB);
  spec.reduce_tasks = 8;

  mapreduce::Runtime v1(config, std::make_unique<mapreduce::StaticSlotPolicy>());
  v1.submit(spec, 0.0);
  const auto v1_result = v1.run();

  mapreduce::Runtime smr(config, std::make_unique<SmrSlotPolicy>());
  smr.submit(spec, 0.0);
  const auto smr_result = smr.run();

  ASSERT_TRUE(v1_result.completed && smr_result.completed);
  EXPECT_LT(smr_result.jobs[0].map_time(), v1_result.jobs[0].map_time() * 0.85);
}

TEST(SlotPolicyEndToEnd, NeverTerminatesRunningTasks) {
  // Lazy changer through the real runtime: running tasks never exceed the
  // *actual* slots, and every launched task finishes (none disappears).
  mapreduce::RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.seed = 13;
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, 4 * kGiB);
  spec.reduce_tasks = 8;
  mapreduce::Runtime smr(config, std::make_unique<SmrSlotPolicy>());
  smr.submit(spec, 0.0);
  const auto result = smr.run();
  ASSERT_TRUE(result.completed);
  const auto& job = smr.jobs()[0];
  for (const auto& m : job.maps) {
    EXPECT_EQ(m.phase, mapreduce::MapPhase::kDone);
    EXPECT_NE(m.finish_time, kTimeNever);
  }
  for (const auto& r : job.reduces) {
    EXPECT_EQ(r.phase, mapreduce::ReducePhase::kDone);
  }
}

}  // namespace
}  // namespace smr::core
