#include "smr/core/thrash_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smr::core {
namespace {

SlotManagerConfig config_with(double tolerance = 0.06, int strikes = 2,
                              SimTime stabilize = 4.0) {
  SlotManagerConfig config;
  config.thrash_tolerance = tolerance;
  config.suspect_threshold = strikes;
  config.stabilize_time = stabilize;
  return config;
}

TEST(ThrashDetector, NoCeilingInitially) {
  ThrashingDetector detector(config_with());
  EXPECT_FALSE(detector.confirmed());
  EXPECT_FALSE(detector.at_ceiling(1000));
}

TEST(ThrashDetector, FirstStableObservationBecomesBaseline) {
  ThrashingDetector detector(config_with());
  EXPECT_EQ(detector.observe(10.0, 3, 100.0), ThrashVerdict::kOk);
  EXPECT_TRUE(detector.has_baseline());
  EXPECT_EQ(detector.baseline_slots(), 3);
  EXPECT_DOUBLE_EQ(detector.baseline_rate(), 100.0);
}

TEST(ThrashDetector, StabilizationWindowDiscardsObservations) {
  ThrashingDetector detector(config_with());
  detector.observe(0.0, 3, 100.0);
  detector.on_slots_changed(3, 4, 10.0);
  // Rates dip right after a change; within the window nothing is judged.
  EXPECT_EQ(detector.observe(12.0, 4, 10.0), ThrashVerdict::kStabilizing);
  EXPECT_FALSE(detector.suspicious());
  // After the window, a recovered rate is accepted.
  EXPECT_EQ(detector.observe(15.0, 4, 120.0), ThrashVerdict::kOk);
}

TEST(ThrashDetector, ImprovedRatePromotesBaseline) {
  ThrashingDetector detector(config_with());
  detector.observe(0.0, 3, 100.0);
  detector.on_slots_changed(3, 4, 1.0);
  EXPECT_EQ(detector.observe(10.0, 4, 130.0), ThrashVerdict::kOk);
  EXPECT_EQ(detector.baseline_slots(), 4);
  EXPECT_DOUBLE_EQ(detector.baseline_rate(), 130.0);
}

TEST(ThrashDetector, TwoStrikesConfirmAndSetCeiling) {
  ThrashingDetector detector(config_with(0.06, 2));
  detector.observe(0.0, 4, 100.0);
  detector.on_slots_changed(4, 5, 1.0);
  EXPECT_EQ(detector.observe(10.0, 5, 80.0), ThrashVerdict::kSuspected);
  EXPECT_TRUE(detector.suspicious());
  EXPECT_FALSE(detector.confirmed());
  EXPECT_EQ(detector.observe(16.0, 5, 82.0), ThrashVerdict::kConfirmed);
  EXPECT_TRUE(detector.confirmed());
  EXPECT_EQ(detector.ceiling(), 4);
  EXPECT_EQ(detector.revert_slots(), 4);
  EXPECT_TRUE(detector.at_ceiling(4));
  EXPECT_FALSE(detector.at_ceiling(3));
}

TEST(ThrashDetector, RecoveryBetweenStrikesClearsSuspicion) {
  // The paper: a single bad reading only *suspects* thrashing; the system
  // gets another chance.
  ThrashingDetector detector(config_with(0.06, 2));
  detector.observe(0.0, 4, 100.0);
  detector.on_slots_changed(4, 5, 1.0);
  EXPECT_EQ(detector.observe(10.0, 5, 80.0), ThrashVerdict::kSuspected);
  EXPECT_EQ(detector.observe(16.0, 5, 105.0), ThrashVerdict::kOk);  // recovered
  EXPECT_FALSE(detector.suspicious());
  EXPECT_FALSE(detector.confirmed());
  EXPECT_EQ(detector.baseline_slots(), 5);
}

TEST(ThrashDetector, SmallDipsWithinToleranceIgnored) {
  ThrashingDetector detector(config_with(0.10, 2));
  detector.observe(0.0, 4, 100.0);
  detector.on_slots_changed(4, 5, 1.0);
  // 5% below baseline, tolerance 10%: accepted and promoted.
  EXPECT_EQ(detector.observe(10.0, 5, 95.0), ThrashVerdict::kOk);
}

TEST(ThrashDetector, DecreaseNeedsNoJudgement) {
  ThrashingDetector detector(config_with());
  detector.observe(0.0, 5, 100.0);
  detector.on_slots_changed(5, 4, 1.0);
  // After stabilisation, the lower config re-baselines even at lower rate.
  EXPECT_EQ(detector.observe(10.0, 4, 70.0), ThrashVerdict::kOk);
  EXPECT_EQ(detector.baseline_slots(), 4);
  EXPECT_FALSE(detector.confirmed());
}

TEST(ThrashDetector, DecreaseCancelsPendingSuspicion) {
  ThrashingDetector detector(config_with(0.06, 2));
  detector.observe(0.0, 4, 100.0);
  detector.on_slots_changed(4, 5, 1.0);
  EXPECT_EQ(detector.observe(10.0, 5, 80.0), ThrashVerdict::kSuspected);
  detector.on_slots_changed(5, 4, 12.0);  // balance pulled slots back down
  EXPECT_FALSE(detector.suspicious());
  EXPECT_EQ(detector.observe(20.0, 4, 80.0), ThrashVerdict::kOk);
  EXPECT_FALSE(detector.confirmed());
}

TEST(ThrashDetector, ResetForgetsCeilingAndBaseline) {
  ThrashingDetector detector(config_with(0.06, 1));
  detector.observe(0.0, 4, 100.0);
  detector.on_slots_changed(4, 5, 1.0);
  EXPECT_EQ(detector.observe(10.0, 5, 50.0), ThrashVerdict::kConfirmed);
  detector.reset();
  EXPECT_FALSE(detector.confirmed());
  EXPECT_FALSE(detector.has_baseline());
  EXPECT_FALSE(detector.at_ceiling(1000));
}

TEST(ThrashDetector, PipelinedClimbJudgesAgainstLastGoodConfig) {
  // The controller may climb every period; the judgement always compares
  // against the last configuration whose stable rate was recorded.
  ThrashingDetector detector(config_with(0.06, 2, 4.0));
  detector.observe(0.0, 3, 90.0);
  detector.on_slots_changed(3, 4, 0.0);
  EXPECT_EQ(detector.observe(6.0, 4, 120.0), ThrashVerdict::kOk);
  detector.on_slots_changed(4, 5, 6.0);
  EXPECT_EQ(detector.observe(12.0, 5, 150.0), ThrashVerdict::kOk);
  detector.on_slots_changed(5, 6, 12.0);
  EXPECT_EQ(detector.observe(18.0, 6, 140.0), ThrashVerdict::kSuspected);
  EXPECT_EQ(detector.observe(24.0, 6, 138.0), ThrashVerdict::kConfirmed);
  EXPECT_EQ(detector.revert_slots(), 5);  // the last good configuration
}

// Property sweep: feed the detector a synthetic hump-shaped rate curve and
// verify it always confirms at (or just past) the hump, never below it.
class HumpSweep : public ::testing::TestWithParam<int> {};

TEST_P(HumpSweep, CeilingLandsNearTheHump) {
  const int hump = GetParam();
  ThrashingDetector detector(config_with(0.05, 2, 4.0));
  auto rate_at = [hump](int slots) {
    // Rises linearly to the hump, falls 25% per slot beyond it.
    if (slots <= hump) return 100.0 * slots;
    return 100.0 * hump * std::pow(0.75, slots - hump);
  };
  int slots = 2;
  SimTime now = 0.0;
  detector.observe(now, slots, rate_at(slots));
  for (int step = 0; step < 40 && !detector.confirmed(); ++step) {
    now += 6.0;
    const auto verdict = detector.observe(now, slots, rate_at(slots));
    if (verdict == ThrashVerdict::kOk && !detector.at_ceiling(slots + 1)) {
      detector.on_slots_changed(slots, slots + 1, now);
      ++slots;
    }
  }
  ASSERT_TRUE(detector.confirmed());
  EXPECT_GE(detector.ceiling(), hump - 1);
  EXPECT_LE(detector.ceiling(), hump + 1);
}

INSTANTIATE_TEST_SUITE_P(Humps, HumpSweep, ::testing::Values(3, 5, 8, 12));

}  // namespace
}  // namespace smr::core
