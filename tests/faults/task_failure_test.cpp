// Probabilistic per-attempt task failures: Hadoop-faithful retry semantics
// (max_attempts, default 4), job teardown on exhaustion, and tracker
// blacklisting — all visible in the metrics registry and the trace.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/obs/metrics_registry.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig faulty_config(double rate, int max_attempts = 4, int nodes = 4) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(nodes);
  config.task_fail_rate = rate;
  config.max_attempts = max_attempts;
  config.seed = 31;
  return config;
}

JobSpec small_job() {
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, kGiB);
  spec.reduce_tasks = 4;
  return spec;
}

TEST(TaskFailure, RetriesEventuallyComplete) {
  // A moderate failure rate with a generous attempt budget: the job limps
  // home through retries.
  RuntimeConfig config = faulty_config(0.2, 50);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  obs::MetricsRegistry registry;
  runtime.set_trace(&trace);
  runtime.set_metrics(&registry);
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_GT(runtime.task_attempt_failures(), 0);
  EXPECT_GT(runtime.task_retries(), 0);
  EXPECT_EQ(runtime.failed_jobs(), 0);
  // Registry counters mirror the runtime's.
  EXPECT_EQ(registry.counter("tasks.retries").value(), runtime.task_retries());
  EXPECT_EQ(registry.counter("tasks.map_attempt_failures").value() +
                registry.counter("tasks.reduce_attempt_failures").value(),
            runtime.task_attempt_failures());
  // And the trace carries one TASK_ATTEMPT_FAILED per injected failure.
  EXPECT_EQ(
      trace.of_kind(metrics::TraceEventKind::kTaskAttemptFailed).size(),
      static_cast<std::size_t>(runtime.task_attempt_failures()));
}

TEST(TaskFailure, JobFailsAfterMaxAttemptsExhausted) {
  // Every attempt is doomed: some task burns its 4 attempts and the job is
  // torn down with JobResult.failed set.
  RuntimeConfig config = faulty_config(1.0, 4);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  obs::MetricsRegistry registry;
  runtime.set_trace(&trace);
  runtime.set_metrics(&registry);
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_FALSE(result.completed);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].failed);
  EXPECT_FALSE(result.jobs[0].finished());
  EXPECT_EQ(result.failed_jobs(), 1);
  EXPECT_EQ(runtime.failed_jobs(), 1);
  EXPECT_EQ(registry.counter("jobs.failed").value(), 1);
  EXPECT_NE(result.failure_reason.find("failed"), std::string::npos);
  // The engine stopped at the teardown instead of idling to the limit.
  EXPECT_LT(result.makespan, config.time_limit);
  // Teardown is visible in the trace.
  ASSERT_EQ(trace.of_kind(metrics::TraceEventKind::kJobFailed).size(), 1u);
  // The exhausted task logged exactly max_attempts failures: the trace
  // events carry the running attempt count in `value`.
  double max_value = 0.0;
  for (const auto& e :
       trace.of_kind(metrics::TraceEventKind::kTaskAttemptFailed)) {
    max_value = std::max(max_value, e.value);
  }
  EXPECT_DOUBLE_EQ(max_value, 4.0);
}

TEST(TaskFailure, FailedJobTearsDownCleanly) {
  RuntimeConfig config = faulty_config(1.0, 2);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(small_job(), 0.0);
  ASSERT_FALSE(runtime.run().completed);
  // No attempt is left running: launches balance finishes + kills.
  int launches = 0;
  int retired = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == metrics::TraceEventKind::kTaskLaunched) ++launches;
    if (e.kind == metrics::TraceEventKind::kTaskFinished ||
        e.kind == metrics::TraceEventKind::kTaskKilled) {
      ++retired;
    }
  }
  EXPECT_EQ(launches, retired);
  for (const auto& tracker : runtime.trackers()) {
    EXPECT_EQ(tracker.running_maps(), 0);
    EXPECT_EQ(tracker.running_reduces(), 0);
  }
}

TEST(TaskFailure, BlacklistsFaultyTrackersButNeverTheLast) {
  RuntimeConfig config = faulty_config(1.0, 8);
  config.blacklist_after = 2;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  obs::MetricsRegistry registry;
  runtime.set_trace(&trace);
  runtime.set_metrics(&registry);
  runtime.submit(small_job(), 0.0);
  runtime.run();
  // With every attempt failing and a threshold of 2, trackers blacklist
  // quickly — but at least one must always stay in rotation.
  EXPECT_GE(runtime.nodes_blacklisted(), 1);
  EXPECT_LE(runtime.nodes_blacklisted(), 3);
  int blacklisted = 0;
  for (NodeId n = 0; n < 4; ++n) {
    blacklisted += runtime.node_blacklisted(n) ? 1 : 0;
  }
  EXPECT_EQ(blacklisted, runtime.nodes_blacklisted());
  EXPECT_LT(blacklisted, 4);
  EXPECT_EQ(registry.counter("nodes.blacklisted").value(),
            runtime.nodes_blacklisted());
  // No task may launch on a tracker after its blacklisting.
  for (const auto& b :
       trace.of_kind(metrics::TraceEventKind::kNodeBlacklisted)) {
    for (const auto& e :
         trace.of_kind(metrics::TraceEventKind::kTaskLaunched)) {
      if (e.node == b.node) EXPECT_LE(e.time, b.time);
    }
  }
}

TEST(TaskFailure, SingleNodeClusterNeverBlacklistsItself) {
  RuntimeConfig config = faulty_config(1.0, 3, /*nodes=*/1);
  config.blacklist_after = 1;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  // The job fails (every attempt dies) but the lone tracker must stay
  // assignable throughout — no wedge, no blacklist.
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(runtime.nodes_blacklisted(), 0);
  EXPECT_FALSE(runtime.node_blacklisted(0));
}

TEST(TaskFailure, ZeroRateLeavesRunByteIdentical) {
  // task_fail_rate == 0 must not touch any RNG stream: the run is
  // bit-for-bit the run of a config that never heard of fault injection.
  RuntimeConfig plain;
  plain.cluster = cluster::ClusterSpec::paper_testbed(4);
  plain.seed = 31;
  Runtime a(plain, std::make_unique<StaticSlotPolicy>());
  a.submit(small_job(), 0.0);
  const auto ra = a.run();

  RuntimeConfig zeroed = plain;
  zeroed.task_fail_rate = 0.0;
  zeroed.max_attempts = 7;       // retry config is inert without failures
  zeroed.blacklist_after = 1;
  Runtime b(zeroed, std::make_unique<StaticSlotPolicy>());
  b.submit(small_job(), 0.0);
  const auto rb = b.run();

  ASSERT_TRUE(ra.completed && rb.completed);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.jobs[0].finish_time, rb.jobs[0].finish_time);
}

TEST(TaskFailure, InjectionIsDeterministic) {
  const auto run_once = [] {
    Runtime runtime(faulty_config(0.3, 20), std::make_unique<StaticSlotPolicy>());
    runtime.submit(small_job(), 0.0);
    const auto result = runtime.run();
    return std::make_tuple(result.makespan, runtime.task_attempt_failures(),
                           runtime.task_retries());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TaskFailure, SpeculativeShadowsShareTheAttemptBudget) {
  RuntimeConfig config = faulty_config(0.3, 50);
  config.speculative_execution = true;
  config.speculative_reduce_execution = true;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  // Attempt accounting stays balanced with shadows in the mix.
  int launches = 0;
  int retired = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == metrics::TraceEventKind::kTaskLaunched) ++launches;
    if (e.kind == metrics::TraceEventKind::kTaskFinished ||
        e.kind == metrics::TraceEventKind::kTaskKilled) {
      ++retired;
    }
  }
  EXPECT_EQ(launches, retired);
}

TEST(TaskFailure, ChromeTraceRendersFaultEvents) {
  RuntimeConfig config = faulty_config(1.0, 4);
  config.blacklist_after = 2;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(small_job(), 0.0);
  ASSERT_FALSE(runtime.run().completed);
  std::ostringstream out;
  trace.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("task-attempt-failed"), std::string::npos);
  EXPECT_NE(json.find("job-failed"), std::string::npos);
}

TEST(TaskFailure, ValidationRejectsBadFaultConfig) {
  RuntimeConfig config = faulty_config(1.5);
  EXPECT_THROW(config.validate(), SmrError);
  config = faulty_config(-0.1);
  EXPECT_THROW(config.validate(), SmrError);
  config = faulty_config(0.5, 0);
  EXPECT_THROW(config.validate(), SmrError);
  config = faulty_config(0.5);
  config.blacklist_after = -1;
  EXPECT_THROW(config.validate(), SmrError);
}

}  // namespace
}  // namespace smr::mapreduce
