// Graceful degradation: losing every worker node must terminate the run
// cleanly (completed == false, a failure reason, an early stop) instead of
// aborting via SMR_CHECK or wedging until the time limit.
#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig small_cluster(int nodes = 3) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(nodes);
  config.seed = 31;
  return config;
}

JobSpec small_job() {
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, kGiB);
  spec.reduce_tasks = 4;
  return spec;
}

TEST(GracefulDegradation, EveryNodeFailingEndsRunCleanly) {
  RuntimeConfig config = small_cluster(3);
  config.failures.push_back({0, 20.0});
  config.failures.push_back({1, 30.0});
  config.failures.push_back({2, 40.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure_reason.find("all worker nodes"), std::string::npos);
  // The run stopped at the final failure, not at the 48 h time limit.
  EXPECT_DOUBLE_EQ(result.makespan, 40.0);
  for (NodeId n = 0; n < 3; ++n) EXPECT_FALSE(runtime.node_alive(n));
}

TEST(GracefulDegradation, NoEventsAfterAbort) {
  RuntimeConfig config = small_cluster(2);
  config.failures.push_back({0, 15.0});
  config.failures.push_back({1, 25.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_FALSE(result.completed);
  // The trace must go quiet at the abort: no launches, phases or
  // completions after the last failure.
  for (const auto& e : trace.events()) {
    EXPECT_LE(e.time, 25.0) << "event " << metrics::to_string(e.kind)
                            << " after the run aborted";
  }
}

TEST(GracefulDegradation, SurvivingNodeKeepsTheRunAlive) {
  RuntimeConfig config = small_cluster(3);
  config.failures.push_back({0, 20.0});
  config.failures.push_back({2, 35.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.failure_reason.empty());
  EXPECT_TRUE(runtime.node_alive(1));
}

TEST(GracefulDegradation, FailedJobsAreNotCompletedRuns) {
  // completed means "every job succeeded": a failed job must flip it even
  // though the engine drained normally.
  RuntimeConfig config = small_cluster(3);
  config.task_fail_rate = 1.0;  // every attempt dies mid-phase
  config.max_attempts = 2;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.failed_jobs(), 1);
  EXPECT_NE(result.failure_reason.find("failed"), std::string::npos);
  // The teardown stamped a finish time, so the makespan is real.
  EXPECT_LT(result.makespan, config.time_limit);
}

TEST(GracefulDegradation, TimeLimitStillReportsReason) {
  RuntimeConfig config = small_cluster(2);
  config.time_limit = 10.0;  // far too short for the job
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.failure_reason, "time limit reached");
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

}  // namespace
}  // namespace smr::mapreduce
