// Transient node failures: a tracker that fails at t and recovers at t'
// rejoins with no running tasks, its initial slot targets, a clean
// blacklist record and a resumed heartbeat — and then takes work again.
#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig transient_config(NodeId node, SimTime at, SimTime recover_at,
                               int nodes = 4) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(nodes);
  config.failures.push_back({node, at, recover_at});
  config.seed = 31;
  return config;
}

JobSpec shuffle_job() {
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, 2 * kGiB);
  spec.reduce_tasks = 6;
  return spec;
}

TEST(TransientFailure, NodeRecoversAndFinishesTheJob) {
  Runtime runtime(transient_config(1, 30.0, 60.0),
                  std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(runtime.node_alive(1));
  EXPECT_EQ(runtime.nodes_recovered(), 1);
  const auto recoveries = trace.of_kind(metrics::TraceEventKind::kNodeRecovered);
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_EQ(recoveries[0].node, 1);
  EXPECT_DOUBLE_EQ(recoveries[0].time, 60.0);
}

TEST(TransientFailure, RecoveredTrackerTakesWorkAgain) {
  // A short outage early in the map phase: the maps requeued at the
  // failure are still pending when the node comes back, so it must pick
  // them up again.
  Runtime runtime(transient_config(1, 10.0, 20.0),
                  std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(), 0.0);
  ASSERT_TRUE(runtime.run().completed);
  // During the outage no task may launch on the node; after recovery (plus
  // a heartbeat) it must take assignments again.
  bool launched_after_recovery = false;
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kTaskLaunched)) {
    if (e.node != 1) continue;
    EXPECT_TRUE(e.time <= 10.0 || e.time > 20.0)
        << "task launched on node 1 during its outage at t=" << e.time;
    launched_after_recovery = launched_after_recovery || e.time > 20.0;
  }
  EXPECT_TRUE(launched_after_recovery);
}

TEST(TransientFailure, SlotTargetsDropAndReturn) {
  Runtime runtime(transient_config(1, 30.0, 60.0),
                  std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(), 0.0);
  ASSERT_TRUE(runtime.run().completed);
  // 4 nodes at 3 map slots each: 12 -> 9 at the failure, back to 12 at the
  // recovery.
  bool dropped = false;
  bool restored = false;
  for (const auto& e :
       trace.of_kind(metrics::TraceEventKind::kSlotTargetChanged)) {
    if (!e.is_map) continue;
    if (e.time == 30.0 && e.value == 9.0) dropped = true;
    if (e.time == 60.0 && e.value == 12.0) restored = true;
  }
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(restored);
}

TEST(TransientFailure, WholeClusterOutageWaitsForRecovery) {
  // Every node down at once — but recoveries are scheduled, so the run
  // must wait them out rather than aborting, then finish.
  RuntimeConfig config = transient_config(0, 30.0, 50.0, 2);
  config.failures.push_back({1, 35.0, 55.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(shuffle_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(runtime.nodes_recovered(), 2);
  EXPECT_GT(result.makespan, 50.0);
}

TEST(TransientFailure, RepeatedFailureAndRecoveryCycles) {
  RuntimeConfig config = transient_config(2, 20.0, 40.0);
  config.failures.push_back({2, 80.0, 100.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(shuffle_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(runtime.nodes_recovered(), 2);
  EXPECT_TRUE(runtime.node_alive(2));
}

TEST(TransientFailure, RecoveryClearsBlacklistRecord) {
  // Bounce a node on a run with injected attempt failures: a recovered
  // tracker starts with a clean blacklist record, so it may end the run
  // blacklisted only if it was blacklisted *again* after the recovery.
  RuntimeConfig config = transient_config(1, 120.0, 150.0);
  config.task_fail_rate = 0.25;
  config.max_attempts = 50;  // retries must not exhaust any job here
  config.blacklist_after = 2;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(runtime.nodes_recovered(), 1);
  if (runtime.node_blacklisted(1)) {
    bool reblacklisted_after_recovery = false;
    for (const auto& e :
         trace.of_kind(metrics::TraceEventKind::kNodeBlacklisted)) {
      if (e.node == 1 && e.time > 150.0) reblacklisted_after_recovery = true;
    }
    EXPECT_TRUE(reblacklisted_after_recovery)
        << "node 1 ended blacklisted without a post-recovery blacklisting";
  }
}

TEST(TransientFailure, ValidationRejectsRecoveryBeforeFailure) {
  RuntimeConfig config = transient_config(1, 50.0, 40.0);
  EXPECT_THROW(config.validate(), SmrError);
  config = transient_config(1, 50.0, 50.0);
  EXPECT_THROW(config.validate(), SmrError);
}

}  // namespace
}  // namespace smr::mapreduce
