// Abort-path observability: when the run dies (all worker nodes lost),
// every attached sink must still be flushed — spans closed as kAborted,
// a final metrics sample stamped at the abort time, and the slot-decision
// annotations caught up — so a post-mortem of a crashed run sees the
// state at the moment of death, not a truncated stream.
#include <gtest/gtest.h>

#include <memory>

#include "smr/core/slot_policy.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/obs/decision_log.hpp"
#include "smr/obs/metrics_registry.hpp"
#include "smr/obs/span_log.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig doomed_config() {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(3);
  config.seed = 31;
  config.failures.push_back({0, 20.0});
  config.failures.push_back({1, 30.0});
  config.failures.push_back({2, 40.0});
  return config;
}

JobSpec small_job() {
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, kGiB);
  spec.reduce_tasks = 4;
  return spec;
}

TEST(AbortFlush, SpansAreClosedAtTheAbortTime) {
  obs::SpanLog spans;
  Runtime runtime(doomed_config(), std::make_unique<StaticSlotPolicy>());
  runtime.set_spans(&spans);
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_FALSE(result.completed);
  EXPECT_DOUBLE_EQ(result.makespan, 40.0);

  // Nothing is left open, and nothing outlived the abort.
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.open_count(), 0u);
  for (const obs::Span& span : spans.spans()) {
    EXPECT_TRUE(span.closed());
    EXPECT_LE(span.end, 40.0);
  }
  // The run and job spans report the aborted outcome at the abort time.
  const auto runs = spans.of_kind(obs::SpanKind::kRun);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].outcome, obs::SpanOutcome::kAborted);
  EXPECT_DOUBLE_EQ(runs[0].end, 40.0);
  const auto jobs = spans.of_kind(obs::SpanKind::kJob);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].outcome, obs::SpanOutcome::kAborted);
  // Attempts on the dead nodes were killed (node failure) or flushed as
  // aborted; none claim to have completed after the cluster died.
  for (const obs::Span& span : spans.of_kind(obs::SpanKind::kAttempt)) {
    EXPECT_NE(span.outcome, obs::SpanOutcome::kOpen);
  }
}

TEST(AbortFlush, MetricsGetAFinalSampleAtAbort) {
  obs::MetricsRegistry registry;
  Runtime runtime(doomed_config(), std::make_unique<StaticSlotPolicy>());
  runtime.set_metrics(&registry);
  runtime.submit(small_job(), 0.0);
  ASSERT_FALSE(runtime.run().completed);

  // The abort path stamps one last sample at the abort time, so the
  // series do not end at the previous sampling tick.
  const auto samples = registry.series("tasks.running_maps").samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_DOUBLE_EQ(samples.back().time, 40.0);
  const auto pending = registry.series("queue.pending_maps").samples();
  ASSERT_FALSE(pending.empty());
  EXPECT_DOUBLE_EQ(pending.back().time, 40.0);
}

TEST(AbortFlush, DecisionAnnotationsSurviveTheAbort) {
  // A policy that keeps a decision log: the flush refreshes the span
  // annotations so decisions from the final period are not lost.
  auto policy = std::make_unique<core::SmrSlotPolicy>();
  obs::DecisionLog decisions;
  policy->set_decision_log(&decisions);
  obs::SpanLog spans;
  Runtime runtime(doomed_config(), std::move(policy));
  runtime.set_spans(&spans);
  runtime.submit(small_job(), 0.0);
  ASSERT_FALSE(runtime.run().completed);

  EXPECT_EQ(spans.open_count(), 0u);
  // Any decision annotation on a span indexes a real decision row.
  for (const obs::Span& span : spans.of_kind(obs::SpanKind::kAttempt)) {
    if (span.decision_id < 0) continue;
    ASSERT_LT(static_cast<std::size_t>(span.decision_id), decisions.size());
  }
}

TEST(AbortFlush, FlushIsIdempotentAcrossSinks) {
  // Both sinks attached at once: the abort flush must handle spans and
  // metrics in one pass without double-closing anything (close() of a
  // closed span aborts the process, so surviving this run is the test).
  obs::SpanLog spans;
  obs::MetricsRegistry registry;
  Runtime runtime(doomed_config(), std::make_unique<StaticSlotPolicy>());
  runtime.set_spans(&spans);
  runtime.set_metrics(&registry);
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(spans.open_count(), 0u);
  EXPECT_FALSE(registry.names().empty());
}

}  // namespace
}  // namespace smr::mapreduce
