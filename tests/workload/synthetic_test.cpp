#include "smr/workload/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace smr::workload {
namespace {

TEST(SyntheticMix, GeneratesRequestedJobCount) {
  SyntheticMixConfig config;
  config.jobs = 12;
  const auto mix = make_synthetic_mix(config);
  EXPECT_EQ(mix.size(), 12u);
}

TEST(SyntheticMix, DeterministicPerSeed) {
  SyntheticMixConfig config;
  config.jobs = 10;
  config.seed = 42;
  const auto a = make_synthetic_mix(config);
  const auto b = make_synthetic_mix(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.name, b[i].spec.name);
    EXPECT_EQ(a[i].spec.input_size, b[i].spec.input_size);
    EXPECT_DOUBLE_EQ(a[i].submit_at, b[i].submit_at);
  }
}

TEST(SyntheticMix, DifferentSeedsDiffer) {
  SyntheticMixConfig config;
  config.jobs = 10;
  config.seed = 1;
  const auto a = make_synthetic_mix(config);
  config.seed = 2;
  const auto b = make_synthetic_mix(config);
  int differences = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].spec.name != b[i].spec.name ||
        a[i].spec.input_size != b[i].spec.input_size) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(SyntheticMix, ArrivalsAreNondecreasingStartingAtZero) {
  SyntheticMixConfig config;
  config.jobs = 20;
  const auto mix = make_synthetic_mix(config);
  EXPECT_DOUBLE_EQ(mix.front().submit_at, 0.0);
  for (std::size_t i = 1; i < mix.size(); ++i) {
    EXPECT_GE(mix[i].submit_at, mix[i - 1].submit_at);
  }
}

TEST(SyntheticMix, ZeroInterarrivalSubmitsEverythingAtOnce) {
  SyntheticMixConfig config;
  config.jobs = 5;
  config.mean_interarrival = 0.0;
  for (const auto& job : make_synthetic_mix(config)) {
    EXPECT_DOUBLE_EQ(job.submit_at, 0.0);
  }
}

TEST(SyntheticMix, MeanInterarrivalApproximatelyHonoured) {
  SyntheticMixConfig config;
  config.jobs = 2000;
  config.mean_interarrival = 30.0;
  config.seed = 9;
  const auto mix = make_synthetic_mix(config);
  const double mean = mix.back().submit_at / static_cast<double>(mix.size() - 1);
  EXPECT_NEAR(mean, 30.0, 3.0);
}

TEST(SyntheticMix, InputSizesWithinBounds) {
  SyntheticMixConfig config;
  config.jobs = 200;
  config.min_input = 2 * kGiB;
  config.max_input = 16 * kGiB;
  for (const auto& job : make_synthetic_mix(config)) {
    EXPECT_GE(job.spec.input_size, config.min_input);
    EXPECT_LE(job.spec.input_size, config.max_input);
  }
}

TEST(SyntheticMix, CandidateRestrictionHonoured) {
  SyntheticMixConfig config;
  config.jobs = 50;
  config.candidates = {Puma::kGrep, Puma::kTerasort};
  std::set<std::string> names;
  for (const auto& job : make_synthetic_mix(config)) {
    names.insert(job.spec.name);
  }
  EXPECT_LE(names.size(), 2u);
  for (const auto& name : names) {
    EXPECT_TRUE(name == "grep" || name == "terasort");
  }
}

TEST(SyntheticMix, ReduceTasksApplied) {
  SyntheticMixConfig config;
  config.jobs = 3;
  config.reduce_tasks = 12;
  for (const auto& job : make_synthetic_mix(config)) {
    EXPECT_EQ(job.spec.reduce_tasks, 12);
  }
}

TEST(SyntheticMix, ValidationRejectsNonsense) {
  SyntheticMixConfig config;
  config.jobs = 0;
  EXPECT_THROW(make_synthetic_mix(config), SmrError);
  config = SyntheticMixConfig{};
  config.min_input = 10 * kGiB;
  config.max_input = 1 * kGiB;
  EXPECT_THROW(make_synthetic_mix(config), SmrError);
  config = SyntheticMixConfig{};
  config.mean_interarrival = -1.0;
  EXPECT_THROW(make_synthetic_mix(config), SmrError);
}

}  // namespace
}  // namespace smr::workload
