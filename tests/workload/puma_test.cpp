#include "smr/workload/puma.hpp"

#include <gtest/gtest.h>

#include <set>

namespace smr::workload {
namespace {

TEST(Puma, CatalogueHasThirteenBenchmarks) {
  EXPECT_EQ(all_puma_benchmarks().size(), 13u);
}

TEST(Puma, NamesRoundTrip) {
  for (Puma b : all_puma_benchmarks()) {
    const auto parsed = puma_from_name(puma_name(b));
    ASSERT_TRUE(parsed.has_value()) << puma_name(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(puma_from_name("not-a-benchmark").has_value());
}

TEST(Puma, NamesAreUnique) {
  std::set<std::string> names;
  for (Puma b : all_puma_benchmarks()) names.insert(puma_name(b));
  EXPECT_EQ(names.size(), 13u);
}

TEST(Puma, EverySpecValidatesWithPaperDefaults) {
  for (Puma b : all_puma_benchmarks()) {
    const JobSpec spec = make_puma_job(b);
    EXPECT_NO_THROW(spec.validate()) << spec.name;
    EXPECT_EQ(spec.input_size, 30 * kGiB);
    EXPECT_EQ(spec.split_size, 128 * kMiB);  // the paper's block size
    EXPECT_EQ(spec.reduce_tasks, 30);        // 99% of 32 reduce slots
    EXPECT_EQ(spec.name, puma_name(b));
  }
}

TEST(Puma, InputSizeParameterHonoured) {
  const JobSpec spec = make_puma_job(Puma::kGrep, 250 * kGiB);
  EXPECT_EQ(spec.input_size, 250 * kGiB);
  EXPECT_EQ(spec.map_task_count(), 2000);
}

TEST(Puma, ClassificationIntoHeavinessBands) {
  // Map-heavy: shuffle volume well under 20% of input.
  for (Puma b : {Puma::kGrep, Puma::kHistogramMovies, Puma::kHistogramRatings,
                 Puma::kWordCount, Puma::kClassification, Puma::kKMeans}) {
    EXPECT_TRUE(make_puma_job(b).map_heavy()) << puma_name(b);
  }
  // Reduce-heavy: shuffle comparable to input.
  for (Puma b : {Puma::kTerasort, Puma::kRankedInvertedIndex, Puma::kAdjacencyList}) {
    const auto spec = make_puma_job(b);
    EXPECT_FALSE(spec.map_heavy()) << puma_name(b);
    EXPECT_GE(spec.map_selectivity, 0.8) << puma_name(b);
  }
}

TEST(Puma, ReduceHeavyJobsCarryFatterWorkingSets) {
  // The driver of the paper's Fig. 1 thrashing-point ordering.
  const auto grep = make_puma_job(Puma::kGrep);
  const auto termvector = make_puma_job(Puma::kTermVector);
  const auto terasort = make_puma_job(Puma::kTerasort);
  EXPECT_LT(grep.map_task_memory, termvector.map_task_memory);
  EXPECT_LT(termvector.map_task_memory, terasort.map_task_memory);
  EXPECT_LT(grep.reduce_task_memory, terasort.reduce_task_memory);
}

TEST(Puma, TerasortShufflesItsWholeInput) {
  const auto spec = make_puma_job(Puma::kTerasort, 30 * kGiB);
  EXPECT_EQ(spec.map_output_total(), 30 * kGiB);
  EXPECT_EQ(spec.partition_size(), 1 * kGiB);
}

TEST(Puma, AdjacencyListAmplifiesInput) {
  const auto spec = make_puma_job(Puma::kAdjacencyList);
  EXPECT_GT(spec.map_output_total(), spec.input_size);
}

TEST(Puma, FigureBenchmarkSetsAreFromCatalogue) {
  EXPECT_EQ(fig1_benchmarks().size(), 3u);   // Terasort, TermVector, Grep
  EXPECT_EQ(fig3_benchmarks().size(), 10u);
  const auto all = all_puma_benchmarks();
  const std::set<Puma> catalogue(all.begin(), all.end());
  for (Puma b : fig1_benchmarks()) EXPECT_TRUE(catalogue.count(b));
  for (Puma b : fig3_benchmarks()) EXPECT_TRUE(catalogue.count(b));
}

TEST(Puma, RecommendedReduceTasksFollows99PercentRule) {
  // The paper states the rule as "99% of the number of reduce slots" and
  // then uses 30 on its 32 slots (93.75%) — the rule as stated gives
  // floor(0.99 * 32) = 31; we implement the stated rule and keep 30 as the
  // paper-setup default in make_puma_job.
  EXPECT_EQ(recommended_reduce_tasks(16, 2), 31);
  EXPECT_EQ(recommended_reduce_tasks(16, 2), static_cast<int>(0.99 * 32));
  EXPECT_EQ(recommended_reduce_tasks(4, 2), 7);
  EXPECT_EQ(recommended_reduce_tasks(1, 1), 1);   // never below one
  EXPECT_EQ(recommended_reduce_tasks(1, 0), 1);
  EXPECT_THROW(recommended_reduce_tasks(0, 2), SmrError);
}

TEST(Puma, KMeansHasHeaviestMapCompute) {
  const double kmeans = make_puma_job(Puma::kKMeans).map_cpu_per_mib;
  for (Puma b : all_puma_benchmarks()) {
    EXPECT_LE(make_puma_job(b).map_cpu_per_mib, kmeans) << puma_name(b);
  }
}

}  // namespace
}  // namespace smr::workload
