#include "smr/workload/jobs_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace smr::workload {
namespace {

TEST(JobsCsv, ParsesRowsWithHeader) {
  std::istringstream in(
      "benchmark,input_gib,submit_at,reduce_tasks\n"
      "terasort,30,0\n"
      "grep,8,15,12\n");
  const auto jobs = parse_jobs_csv(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].spec.name, "terasort");
  EXPECT_EQ(jobs[0].spec.input_size, 30 * kGiB);
  EXPECT_DOUBLE_EQ(jobs[0].submit_at, 0.0);
  EXPECT_EQ(jobs[0].spec.reduce_tasks, 30);  // default kept
  EXPECT_EQ(jobs[1].spec.name, "grep");
  EXPECT_DOUBLE_EQ(jobs[1].submit_at, 15.0);
  EXPECT_EQ(jobs[1].spec.reduce_tasks, 12);  // overridden
}

TEST(JobsCsv, HeaderOptionalCommentsAndBlanksIgnored) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "word-count,4,5\n"
      "  # indented comment\n"
      "self-join,2.5,30\n");
  const auto jobs = parse_jobs_csv(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].spec.name, "word-count");
  EXPECT_EQ(jobs[1].spec.input_size,
            static_cast<Bytes>(2.5 * static_cast<double>(kGiB)));
}

TEST(JobsCsv, WhitespaceAroundFieldsTolerated) {
  std::istringstream in(" grep , 8 , 15 \n");
  const auto jobs = parse_jobs_csv(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].spec.name, "grep");
}

TEST(JobsCsv, RejectsUnknownBenchmark) {
  std::istringstream in("frobnicate,8,0\n");
  EXPECT_THROW(parse_jobs_csv(in), SmrError);
}

TEST(JobsCsv, RejectsMalformedNumbers) {
  std::istringstream bad_input("grep,lots,0\n");
  EXPECT_THROW(parse_jobs_csv(bad_input), SmrError);
  std::istringstream bad_submit("grep,8,soon\n");
  EXPECT_THROW(parse_jobs_csv(bad_submit), SmrError);
  std::istringstream negative("grep,8,-5\n");
  EXPECT_THROW(parse_jobs_csv(negative), SmrError);
  std::istringstream zero_input("grep,0,0\n");
  EXPECT_THROW(parse_jobs_csv(zero_input), SmrError);
}

TEST(JobsCsv, RejectsWrongFieldCount) {
  std::istringstream too_few("grep,8\n");
  EXPECT_THROW(parse_jobs_csv(too_few), SmrError);
  std::istringstream too_many("grep,8,0,12,extra\n");
  EXPECT_THROW(parse_jobs_csv(too_many), SmrError);
}

TEST(JobsCsv, EmptyStreamGivesEmptyList) {
  std::istringstream in("");
  EXPECT_TRUE(parse_jobs_csv(in).empty());
}

TEST(JobsCsv, RoundTripsThroughWriter) {
  std::istringstream in(
      "terasort,30,0,30\n"
      "grep,8,15,12\n");
  const auto jobs = parse_jobs_csv(in);
  std::ostringstream out;
  write_jobs_csv(jobs, out);
  std::istringstream again(out.str());
  const auto reparsed = parse_jobs_csv(again);
  ASSERT_EQ(reparsed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(reparsed[i].spec.name, jobs[i].spec.name);
    EXPECT_EQ(reparsed[i].spec.input_size, jobs[i].spec.input_size);
    EXPECT_DOUBLE_EQ(reparsed[i].submit_at, jobs[i].submit_at);
    EXPECT_EQ(reparsed[i].spec.reduce_tasks, jobs[i].spec.reduce_tasks);
  }
}

TEST(JobsCsv, MissingFileThrows) {
  EXPECT_THROW(load_jobs_csv("/no/such/file.csv"), SmrError);
}

}  // namespace
}  // namespace smr::workload
