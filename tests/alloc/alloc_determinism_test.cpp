// Determinism harness for the registry allocators: every new policy must
// produce bit-identical results across --shards=N and thread-pool sizes,
// with multi-tenant contention keeping its caps actually binding.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "smr/alloc/registry.hpp"
#include "smr/common/thread_pool.hpp"
#include "smr/driver/experiment.hpp"
#include "smr/workload/puma.hpp"

namespace smr::driver {
namespace {

/// A contended three-tenant batch: demands skew so Karma's pool and the
/// GameCapacity equilibrium both engage every period.
std::vector<JobSubmission> tenant_jobs() {
  const struct {
    const char* tenant;
    int gib;
    double at;
  } mix[] = {{"alice", 4, 0.0}, {"bob", 2, 5.0}, {"carol", 1, 10.0}};
  std::vector<JobSubmission> jobs;
  for (const auto& job : mix) {
    mapreduce::JobSpec spec =
        workload::make_puma_job(workload::Puma::kTerasort, job.gib * kGiB);
    spec.reduce_tasks = 8;
    spec.tenant = job.tenant;
    jobs.push_back({std::move(spec), job.at});
  }
  return jobs;
}

void expect_bitwise_equal(const metrics::RunResult& a,
                          const metrics::RunResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.engine_events, b.engine_events);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].submit_time, b.jobs[j].submit_time);
    EXPECT_EQ(a.jobs[j].start_time, b.jobs[j].start_time);
    EXPECT_EQ(a.jobs[j].maps_done_time, b.jobs[j].maps_done_time);
    EXPECT_EQ(a.jobs[j].finish_time, b.jobs[j].finish_time);
    EXPECT_EQ(a.jobs[j].failed, b.jobs[j].failed);
  }
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t s = 0; s < a.slots.size(); ++s) {
    EXPECT_EQ(a.slots[s].time, b.slots[s].time);
    EXPECT_EQ(a.slots[s].map_target, b.slots[s].map_target);
    EXPECT_EQ(a.slots[s].reduce_target, b.slots[s].reduce_target);
    EXPECT_EQ(a.slots[s].running_maps, b.slots[s].running_maps);
    EXPECT_EQ(a.slots[s].running_reduces, b.slots[s].running_reduces);
  }
}

class AllocDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(AllocDeterminism, ShardedBitIdenticalToSerialAcrossPoolSizes) {
  ExperimentConfig config =
      ExperimentConfig::paper_default(EngineKind::kHadoopV1);
  config.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.trials = 1;
  config.policy = alloc::parse_policy_spec(GetParam());
  const std::vector<JobSubmission> jobs = tenant_jobs();

  ThreadPool one(1);
  ThreadPool many(16);
  const metrics::RunResult serial = run_experiment(config, jobs, one);
  ASSERT_TRUE(serial.completed);
  for (int shards : {2, 4}) {
    config.runtime.shard_count = shards;
    for (ThreadPool* pool : {&one, &many}) {
      SCOPED_TRACE(std::string(GetParam()) + " shards=" +
                   std::to_string(shards) +
                   " threads=" + std::to_string(pool->thread_count()));
      expect_bitwise_equal(serial, run_experiment(config, jobs, *pool));
    }
  }
  config.runtime.shard_count = 1;
  expect_bitwise_equal(serial, run_experiment(config, jobs, many));
}

INSTANTIATE_TEST_SUITE_P(RegistryPolicies, AllocDeterminism,
                         ::testing::Values("karma", "gamecapacity",
                                           "hybridjobdriven",
                                           "karma:decay=0.99,init_credits=10",
                                           "gamecapacity:deadline_weight=2"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace smr::driver
