// GameCapacityAllocator: equilibrium convergence under contention,
// termination on a tiny iteration budget, and the no-scarcity degenerate
// case (caps lifted, single-job runs untouched).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "smr/alloc/game_capacity.hpp"
#include "smr/alloc/registry.hpp"
#include "smr/driver/experiment.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/workload/puma.hpp"

namespace smr::alloc {
namespace {

struct GameRun {
  metrics::RunResult result;
  const GameCapacityAllocator* game = nullptr;
  std::unique_ptr<mapreduce::Runtime> runtime;
};

/// Four simultaneous terasorts on 4 nodes: Σ demand far exceeds the 20-slot
/// pool, so every early period is a contended equilibrium.
GameRun run_contended(GameCapacityConfig config) {
  driver::ExperimentConfig base =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  base.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);

  auto game = std::make_unique<GameCapacityAllocator>(config);
  GameRun run;
  run.game = game.get();
  run.runtime = std::make_unique<mapreduce::Runtime>(
      base.runtime, std::move(game), driver::make_scheduler(base));
  for (int j = 0; j < 4; ++j) {
    mapreduce::JobSpec spec =
        workload::make_puma_job(workload::Puma::kTerasort, 2 * kGiB);
    spec.reduce_tasks = 8;
    run.runtime->submit(spec, 0.0);
  }
  run.result = run.runtime->run();
  return run;
}

TEST(GameCapacity, ConvergesUnderContention) {
  GameCapacityConfig config;
  const GameRun run = run_contended(config);
  ASSERT_TRUE(run.result.completed);
  EXPECT_GT(run.game->equilibria_computed(), 0);
  EXPECT_LE(run.game->last_iterations(), config.max_iterations);
  // The default budget (64 bisections for a 1e-6 relative tolerance) must
  // actually reach the clearing tolerance, not run out of iterations.
  EXPECT_TRUE(run.game->last_converged());
  EXPECT_GT(run.game->last_price(), 0.0);
}

TEST(GameCapacity, TerminatesOnTinyIterationBudget) {
  // Starving the bisection must still yield a feasible allocation and a
  // finished batch — the budget bounds work, it never wedges the run.
  GameCapacityConfig config;
  config.max_iterations = 2;
  const GameRun run = run_contended(config);
  ASSERT_TRUE(run.result.completed);
  EXPECT_GT(run.game->equilibria_computed(), 0);
  EXPECT_LE(run.game->last_iterations(), 2);
}

TEST(GameCapacity, DeadlineWeightAcceptsUrgentJobs) {
  GameCapacityConfig config;
  config.deadline_weight = 2.0;
  const GameRun run = run_contended(config);
  ASSERT_TRUE(run.result.completed);
  EXPECT_GT(run.game->equilibria_computed(), 0);
}

TEST(GameCapacity, NoScarcityLeavesSingleJobUntouched) {
  // A small grep's demand fits inside the 20-slot pool, so the game is
  // degenerate: no equilibrium is solved and the run matches HadoopV1
  // exactly.
  driver::ExperimentConfig config =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  config.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.trials = 1;
  mapreduce::JobSpec spec = workload::make_puma_job(workload::Puma::kGrep, kGiB);
  spec.reduce_tasks = 4;
  const std::vector<driver::JobSubmission> jobs = {{spec, 0.0}};

  const metrics::RunResult hadoop = driver::run_experiment(config, jobs);
  config.policy = parse_policy_spec("gamecapacity");
  const metrics::RunResult game = driver::run_experiment(config, jobs);
  EXPECT_EQ(hadoop.makespan, game.makespan);
  EXPECT_EQ(hadoop.engine_events, game.engine_events);
}

}  // namespace
}  // namespace smr::alloc
