// KarmaAllocator: credit conservation, decay, and the single-tenant
// HadoopV1 identity (caps never bind with one tenant).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "smr/alloc/karma.hpp"
#include "smr/alloc/registry.hpp"
#include "smr/driver/experiment.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/workload/puma.hpp"

namespace smr::alloc {
namespace {

/// A contended three-tenant batch on the small testbed: tenant demands are
/// deliberately skewed so entitlements both over- and under-shoot demand,
/// which exercises the donate/borrow pool every period.
struct KarmaRun {
  metrics::RunResult result;
  const KarmaAllocator* karma = nullptr;
  std::unique_ptr<mapreduce::Runtime> runtime;
};

KarmaRun run_multi_tenant(KarmaConfig config) {
  driver::ExperimentConfig base =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  base.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);

  auto karma = std::make_unique<KarmaAllocator>(config);
  KarmaRun run;
  run.karma = karma.get();
  run.runtime = std::make_unique<mapreduce::Runtime>(
      base.runtime, std::move(karma), driver::make_scheduler(base));

  const struct {
    const char* tenant;
    int gib;
    double at;
  } jobs[] = {{"alice", 6, 0.0}, {"bob", 2, 5.0}, {"carol", 1, 10.0}};
  for (const auto& job : jobs) {
    mapreduce::JobSpec spec =
        workload::make_puma_job(workload::Puma::kTerasort, job.gib * kGiB);
    spec.reduce_tasks = 8;
    spec.tenant = job.tenant;
    run.runtime->submit(spec, job.at);
  }
  run.result = run.runtime->run();
  return run;
}

TEST(Karma, ConservesCreditsWithEqualRatesAndNoDecay) {
  KarmaConfig config;
  config.init_credits = 100.0;
  config.donate_rate = 1.0;
  config.borrow_rate = 1.0;
  config.decay = 1.0;
  const KarmaRun run = run_multi_tenant(config);

  ASSERT_TRUE(run.result.completed);
  ASSERT_GT(run.karma->periods(), 0);
  // The skewed mix must actually exercise the pool, or conservation is
  // vacuous.
  EXPECT_GT(run.karma->borrowed_slot_periods(), 0);
  EXPECT_GT(run.karma->donated_slot_periods(), 0);

  // Only borrowed slot-periods mint credit, and they mint exactly what the
  // borrowers burn: the total balance is conserved.
  EXPECT_NEAR(run.karma->credits_minted(), run.karma->credits_burned(), 1e-9);
  EXPECT_NEAR(run.karma->total_balance(), 3 * config.init_credits, 1e-6);

  // Generic accounting identity (any rates): Δtotal == minted − burned.
  EXPECT_NEAR(run.karma->total_balance() - 3 * config.init_credits,
              run.karma->credits_minted() - run.karma->credits_burned(), 1e-6);

  const auto balances = run.karma->credit_balances();
  ASSERT_EQ(balances.size(), 3u);
  EXPECT_EQ(balances[0].first, "alice");
  EXPECT_EQ(balances[1].first, "bob");
  EXPECT_EQ(balances[2].first, "carol");
}

TEST(Karma, DecayShrinksTheTotalBalance) {
  KarmaConfig config;
  config.init_credits = 100.0;
  config.decay = 0.5;
  const KarmaRun run = run_multi_tenant(config);
  ASSERT_TRUE(run.result.completed);
  ASSERT_GT(run.karma->periods(), 0);
  EXPECT_LT(run.karma->total_balance(), 3 * config.init_credits);
}

TEST(Karma, UnequalRatesBreakConservationAsAccounted) {
  KarmaConfig config;
  config.donate_rate = 0.5;  // donors earn half of what borrowers pay
  config.borrow_rate = 1.0;
  config.decay = 1.0;
  const KarmaRun run = run_multi_tenant(config);
  ASSERT_TRUE(run.result.completed);
  ASSERT_GT(run.karma->borrowed_slot_periods(), 0);
  EXPECT_LT(run.karma->credits_minted(), run.karma->credits_burned());
  EXPECT_NEAR(run.karma->total_balance() - 3 * 100.0,
              run.karma->credits_minted() - run.karma->credits_burned(), 1e-6);
}

TEST(Karma, SingleTenantIsBitIdenticalToHadoopV1) {
  // With one tenant there is nobody to donate to or borrow from: the caps
  // equal demand and never bind, so the run must reproduce HadoopV1's
  // result exactly — the identity smr_perfbench gates on.
  driver::ExperimentConfig config =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  config.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.trials = 2;
  mapreduce::JobSpec spec =
      workload::make_puma_job(workload::Puma::kTerasort, 2 * kGiB);
  spec.reduce_tasks = 8;
  const std::vector<driver::JobSubmission> jobs = {{spec, 0.0}};

  const metrics::RunResult hadoop = driver::run_experiment(config, jobs);
  config.policy = parse_policy_spec("karma");
  const metrics::RunResult karma = driver::run_experiment(config, jobs);

  EXPECT_EQ(hadoop.makespan, karma.makespan);
  EXPECT_EQ(hadoop.engine_events, karma.engine_events);
  ASSERT_EQ(hadoop.jobs.size(), karma.jobs.size());
  for (std::size_t j = 0; j < hadoop.jobs.size(); ++j) {
    EXPECT_EQ(hadoop.jobs[j].start_time, karma.jobs[j].start_time);
    EXPECT_EQ(hadoop.jobs[j].maps_done_time, karma.jobs[j].maps_done_time);
    EXPECT_EQ(hadoop.jobs[j].finish_time, karma.jobs[j].finish_time);
  }
}

}  // namespace
}  // namespace smr::alloc
