// Allocator registry: CLI spec parsing, option validation, catalogue and
// construction parity with the legacy engine-enum path.
#include <gtest/gtest.h>

#include <algorithm>

#include "smr/alloc/registry.hpp"
#include "smr/common/error.hpp"
#include "smr/driver/experiment.hpp"

namespace smr::alloc {
namespace {

TEST(PolicySpec, ParsesBareName) {
  const PolicySpec spec = parse_policy_spec("Karma");
  EXPECT_EQ(spec.name, "karma");  // lowercased
  EXPECT_TRUE(spec.options.empty());
  EXPECT_EQ(spec.to_string(), "karma");
}

TEST(PolicySpec, ParsesOptionsInDeclarationOrder) {
  const PolicySpec spec = parse_policy_spec("karma:init_credits=50,decay=0.99");
  EXPECT_EQ(spec.name, "karma");
  ASSERT_EQ(spec.options.size(), 2u);
  EXPECT_EQ(spec.options[0].first, "init_credits");
  EXPECT_EQ(spec.options[0].second, "50");
  EXPECT_EQ(spec.options[1].first, "decay");
  EXPECT_EQ(spec.options[1].second, "0.99");
  EXPECT_EQ(spec.to_string(), "karma:init_credits=50,decay=0.99");
}

TEST(PolicySpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_policy_spec(""), SmrError);
  EXPECT_THROW(parse_policy_spec(":k=v"), SmrError);
  EXPECT_THROW(parse_policy_spec("karma:novalue"), SmrError);
  EXPECT_THROW(parse_policy_spec("karma:=5"), SmrError);
}

TEST(PolicySpec, ParsesSemicolonSeparatedList) {
  const std::vector<PolicySpec> specs =
      parse_policy_list("hadoopv1;karma:decay=0.99;gamecapacity");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "hadoopv1");
  EXPECT_EQ(specs[1].name, "karma");
  ASSERT_EQ(specs[1].options.size(), 1u);
  EXPECT_EQ(specs[2].name, "gamecapacity");
  EXPECT_TRUE(parse_policy_list("").empty());
  EXPECT_EQ(parse_policy_list("karma;;hadoopv1").size(), 2u);  // blanks skipped
}

TEST(PolicyOptions, TypedGettersConsumeKeys) {
  PolicyOptions options(parse_policy_spec("x:a=1.5,b=3,c=true,d=hello"));
  EXPECT_EQ(options.get_double("a", 0.0), 1.5);
  EXPECT_EQ(options.get_int("b", 0), 3);
  EXPECT_TRUE(options.get_bool("c", false));
  EXPECT_EQ(options.get_string("d", ""), "hello");
  EXPECT_EQ(options.get_double("missing", 7.0), 7.0);  // fallback
  EXPECT_NO_THROW(options.finish());
}

TEST(PolicyOptions, FinishRejectsUnknownKeys) {
  PolicyOptions options(parse_policy_spec("karma:decay=0.9,typo_key=1"));
  options.get_double("decay", 1.0);
  EXPECT_THROW(options.finish(), SmrError);
}

TEST(AllocatorRegistry, CatalogueListsAllBuiltins) {
  const std::vector<std::string> names = AllocatorRegistry::instance().catalogue();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected : {"gamecapacity", "hadoopv1", "hybridjobdriven",
                               "karma", "smapreduce", "yarn"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << "catalogue is missing " << expected;
  }
}

TEST(AllocatorRegistry, CreatesEveryCatalogueEntry) {
  const driver::ExperimentConfig base =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  const PolicyContext context = driver::policy_context(base);
  for (const std::string& name : AllocatorRegistry::instance().catalogue()) {
    PolicySpec spec;
    spec.name = name;
    const auto policy = AllocatorRegistry::instance().create(spec, context);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_FALSE(policy->name().empty()) << name;
  }
}

TEST(AllocatorRegistry, CreateIsCaseInsensitiveAndRejectsUnknownNames) {
  const driver::ExperimentConfig base =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  const PolicyContext context = driver::policy_context(base);
  EXPECT_NE(AllocatorRegistry::instance().create(parse_policy_spec("KARMA"),
                                                 context),
            nullptr);
  EXPECT_THROW(AllocatorRegistry::instance().create(
                   parse_policy_spec("no-such-policy"), context),
               SmrError);
  EXPECT_FALSE(AllocatorRegistry::instance().known("no-such-policy"));
  EXPECT_TRUE(AllocatorRegistry::instance().known("smapreduce"));
}

TEST(AllocatorRegistry, UnknownOptionKeyIsAnError) {
  const driver::ExperimentConfig base =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  EXPECT_THROW(AllocatorRegistry::instance().create(
                   parse_policy_spec("karma:bogus_option=1"),
                   driver::policy_context(base)),
               SmrError);
}

TEST(AllocatorRegistry, RegistrySpecMatchesEngineEnumLabels) {
  // The legacy engines must be reachable both ways with identical display
  // labels, so sweep curves keep their names when the driver routes
  // through the registry.
  for (driver::EngineKind engine : driver::all_engines()) {
    driver::ExperimentConfig config = driver::ExperimentConfig::paper_default(engine);
    const std::string via_enum = driver::policy_label(config);
    config.policy = parse_policy_spec(driver::engine_name(engine));
    EXPECT_EQ(driver::policy_label(config), via_enum);
  }
}

}  // namespace
}  // namespace smr::alloc
