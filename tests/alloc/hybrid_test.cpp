// HybridJobDrivenAllocator: slot targets migrate toward the data, total
// capacity is preserved, and map locality does not regress versus the
// static HadoopV1 slot layout.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "smr/alloc/hybrid_job_driven.hpp"
#include "smr/driver/experiment.hpp"
#include "smr/mapreduce/policy.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/workload/puma.hpp"

namespace smr::alloc {
namespace {

struct HybridRun {
  metrics::RunResult result;
  int local_maps = 0;
  int remote_maps = 0;
  long long slots_moved = 0;
};

/// One terasort on 8 nodes, run either under the hybrid allocator or the
/// static baseline; both see the same cluster, seed and job.
HybridRun run_terasort(bool hybrid) {
  driver::ExperimentConfig base =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  base.runtime.cluster = cluster::ClusterSpec::paper_testbed(8);

  std::unique_ptr<mapreduce::AllocationPolicy> policy;
  const HybridJobDrivenAllocator* raw = nullptr;
  if (hybrid) {
    auto owned = std::make_unique<HybridJobDrivenAllocator>();
    raw = owned.get();
    policy = std::move(owned);
  } else {
    policy = std::make_unique<mapreduce::StaticSlotPolicy>();
  }
  mapreduce::Runtime runtime(base.runtime, std::move(policy),
                             driver::make_scheduler(base));
  mapreduce::JobSpec spec =
      workload::make_puma_job(workload::Puma::kTerasort, 8 * kGiB);
  spec.reduce_tasks = 16;
  runtime.submit(spec, 0.0);

  HybridRun run;
  run.result = runtime.run();
  run.local_maps = runtime.local_map_launches();
  run.remote_maps = runtime.remote_map_launches();
  run.slots_moved = raw != nullptr ? raw->slots_moved() : 0;
  return run;
}

double local_fraction(const HybridRun& run) {
  const int total = run.local_maps + run.remote_maps;
  return total > 0 ? static_cast<double>(run.local_maps) / total : 0.0;
}

TEST(HybridJobDriven, MovesSlotsAndFinishesTheJob) {
  const HybridRun run = run_terasort(/*hybrid=*/true);
  ASSERT_TRUE(run.result.completed);
  EXPECT_GT(run.slots_moved, 0);
}

TEST(HybridJobDriven, MapLocalityNoWorseThanStaticSlots) {
  // Moving map targets toward nodes holding pending-split replicas must
  // not lose node-local launches versus the uniform static layout.
  const HybridRun hybrid = run_terasort(/*hybrid=*/true);
  const HybridRun baseline = run_terasort(/*hybrid=*/false);
  ASSERT_TRUE(hybrid.result.completed);
  ASSERT_TRUE(baseline.result.completed);
  EXPECT_GT(hybrid.local_maps, 0);
  EXPECT_GE(local_fraction(hybrid), local_fraction(baseline));
}

TEST(HybridJobDriven, RepeatedRunsAreDeterministic) {
  const HybridRun first = run_terasort(/*hybrid=*/true);
  const HybridRun second = run_terasort(/*hybrid=*/true);
  EXPECT_EQ(first.result.makespan, second.result.makespan);
  EXPECT_EQ(first.result.engine_events, second.result.engine_events);
  EXPECT_EQ(first.local_maps, second.local_maps);
  EXPECT_EQ(first.slots_moved, second.slots_moved);
}

}  // namespace
}  // namespace smr::alloc
