// FairnessTracker math: left-Riemann integration, entitlement splitting,
// Jain/envy/welfare condensation and the JSON serialisation shape.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "smr/alloc/fairness.hpp"

namespace smr::alloc {
namespace {

std::vector<TenantUsageSample> samples(
    std::initializer_list<TenantUsageSample> list) {
  return list;
}

TEST(Fairness, SingleSatisfiedTenantIsPerfectlyFair) {
  FairnessTracker tracker;
  tracker.record(0.0, 10.0, samples({{"a", 4.0, 4.0}}), {});
  tracker.record(10.0, 10.0, samples({{"a", 4.0, 4.0}}), {});
  const FairnessReport report = tracker.report();
  EXPECT_DOUBLE_EQ(report.duration, 10.0);
  EXPECT_DOUBLE_EQ(report.capacity_slot_seconds, 100.0);
  EXPECT_DOUBLE_EQ(report.jain, 1.0);
  EXPECT_DOUBLE_EQ(report.max_envy, 0.0);
  EXPECT_DOUBLE_EQ(report.utilitarian_welfare, 1.0);
  EXPECT_DOUBLE_EQ(report.nash_welfare, 1.0);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_DOUBLE_EQ(report.tenants[0].used_slot_seconds, 40.0);
  EXPECT_DOUBLE_EQ(report.tenants[0].entitlement_slot_seconds, 100.0);
}

TEST(Fairness, SkewedAllocationMatchesHandComputedIndices) {
  // Capacity 10 over [0, 10]; tenant a runs 8 of its 8 demanded slots,
  // tenant b runs 2 of 6.  Entitlements split capacity equally (50 each).
  //   a: used 80, claim min(80, 50) = 50 -> x = 1 (clamped), envy 0, sat 1
  //   b: used 20, claim 50 -> x = 0.4, envy (50-20)/50 = 0.6, sat 1/3
  FairnessTracker tracker;
  tracker.set_policy("TestPolicy");
  tracker.record(0.0, 10.0, samples({{"a", 8.0, 8.0}, {"b", 2.0, 6.0}}), {});
  tracker.record(10.0, 10.0, samples({{"a", 8.0, 8.0}, {"b", 2.0, 6.0}}), {});
  const FairnessReport report = tracker.report();

  EXPECT_EQ(report.policy, "TestPolicy");
  ASSERT_EQ(report.tenants.size(), 2u);
  const TenantFairness& a = report.tenants[0];
  const TenantFairness& b = report.tenants[1];
  EXPECT_DOUBLE_EQ(a.normalized_allocation, 1.0);
  EXPECT_DOUBLE_EQ(a.envy, 0.0);
  EXPECT_DOUBLE_EQ(b.normalized_allocation, 0.4);
  EXPECT_DOUBLE_EQ(b.envy, 0.6);
  EXPECT_NEAR(b.satisfaction, 1.0 / 3.0, 1e-12);

  // Jain over {1.0, 0.4}: 1.96 / (2 * 1.16).
  EXPECT_NEAR(report.jain, 1.96 / 2.32, 1e-12);
  EXPECT_DOUBLE_EQ(report.max_envy, 0.6);
  EXPECT_NEAR(report.utilitarian_welfare, (1.0 + 1.0 / 3.0) / 2.0, 1e-12);
  EXPECT_NEAR(report.nash_welfare, std::sqrt(1.0 / 3.0), 1e-12);
}

TEST(Fairness, LeftRiemannIgnoresTheClosingSampleRates) {
  // The last sample only closes the final interval; its rates are never
  // integrated, so a run's integrals do not depend on the stopping state.
  FairnessTracker tracker;
  tracker.record(0.0, 10.0, samples({{"a", 5.0, 5.0}}), {});
  tracker.record(10.0, 10.0, samples({{"a", 999.0, 999.0}}), {});
  const FairnessReport report = tracker.report();
  EXPECT_DOUBLE_EQ(report.tenants.at(0).used_slot_seconds, 50.0);
}

TEST(Fairness, IdleTenantIsExcludedFromTheIndices) {
  FairnessTracker tracker;
  tracker.record(0.0, 10.0, samples({{"busy", 5.0, 5.0}, {"idle", 0.0, 0.0}}), {});
  tracker.record(10.0, 10.0, samples({{"busy", 5.0, 5.0}, {"idle", 0.0, 0.0}}), {});
  const FairnessReport report = tracker.report();
  // The idle tenant demanded nothing: fairness indices ignore it and the
  // busy tenant's entitlement is the whole capacity.
  EXPECT_DOUBLE_EQ(report.jain, 1.0);
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_DOUBLE_EQ(report.tenants[0].entitlement_slot_seconds, 100.0);
  EXPECT_DOUBLE_EQ(report.tenants[1].entitlement_slot_seconds, 0.0);
}

TEST(Fairness, CreditSeriesAreRecordedPerTenant) {
  FairnessTracker tracker;
  tracker.record(0.0, 4.0, samples({{"a", 1.0, 1.0}}), {{"a", 100.0}});
  tracker.record(6.0, 4.0, samples({{"a", 1.0, 1.0}}), {{"a", 97.0}});
  const FairnessReport report = tracker.report();
  ASSERT_EQ(report.credit_series.size(), 1u);
  EXPECT_EQ(report.credit_series[0].first, "a");
  ASSERT_EQ(report.credit_series[0].second.size(), 2u);
  EXPECT_DOUBLE_EQ(report.credit_series[0].second[1].second, 97.0);
  EXPECT_DOUBLE_EQ(report.tenants.at(0).final_credits, 97.0);
  EXPECT_TRUE(report.tenants.at(0).has_credits);
}

TEST(Fairness, JsonSerialisationHasTheExpectedShape) {
  FairnessTracker tracker;
  tracker.set_policy("Karma");
  tracker.record(0.0, 4.0, samples({{"a", 2.0, 3.0}}), {{"a", 100.0}});
  tracker.record(5.0, 4.0, samples({{"a", 2.0, 3.0}}), {{"a", 99.0}});

  std::ostringstream single;
  write_fairness_json(tracker.report(), single);
  EXPECT_NE(single.str().find("\"policy\":\"Karma\""), std::string::npos);
  EXPECT_NE(single.str().find("\"jain\":"), std::string::npos);
  EXPECT_NE(single.str().find("\"credit_trajectories\":{\"a\":["), std::string::npos);
  EXPECT_EQ(single.str().back(), '\n');
  // Fixed precision — no scientific notation anywhere.
  EXPECT_EQ(single.str().find('e' + std::string("+")), std::string::npos);

  std::ostringstream multi;
  write_fairness_json(std::vector<FairnessReport>{tracker.report(),
                                                  tracker.report()},
                      multi);
  EXPECT_NE(multi.str().find("{\"tool\":\"smr_serve\",\"reports\":["),
            std::string::npos);
}

TEST(Fairness, TrajectoryThinningKeepsTheFinalPoint) {
  FairnessTracker tracker;
  for (int i = 0; i <= 500; ++i) {
    tracker.record(static_cast<double>(i), 4.0, samples({{"a", 1.0, 1.0}}),
                   {{"a", 1000.0 - i}});
  }
  std::ostringstream out;
  write_fairness_json(tracker.report(), out, /*max_trajectory_points=*/10);
  // The last recorded balance must survive thinning.
  EXPECT_NE(out.str().find("[500.000000,500.000000]"), std::string::npos);
}

}  // namespace
}  // namespace smr::alloc
