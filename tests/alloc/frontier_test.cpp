// Frontier driver: adversarial mixes are well-formed and deterministic,
// every (policy, mix) run lands one point with sane coordinates, and the
// CSV artifact has one row per point.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "smr/alloc/frontier.hpp"
#include "smr/common/error.hpp"

namespace smr::alloc {
namespace {

FrontierConfig small_config() {
  FrontierConfig config;
  config.experiment =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  config.experiment.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.offered_jobs_per_hour = 24.0;
  config.horizon = 1800.0;
  config.warmup = 300.0;
  config.drain_limit = 1800.0;
  config.seed = 7;
  return config;
}

TEST(Frontier, BuiltinMixesAreSortedAndMultiTenant) {
  const FrontierConfig config = small_config();
  ASSERT_EQ(frontier_mix_names().size(), 3u);
  for (const std::string& name : frontier_mix_names()) {
    SCOPED_TRACE(name);
    const FrontierMix mix = make_frontier_mix(name, config);
    EXPECT_EQ(mix.name, name);
    ASSERT_FALSE(mix.trace.arrivals.empty());
    EXPECT_GE(mix.trace.tenants.size(), 2u);
    for (std::size_t i = 1; i < mix.trace.arrivals.size(); ++i) {
      EXPECT_LE(mix.trace.arrivals[i - 1].job.submit_at,
                mix.trace.arrivals[i].job.submit_at);
    }
    for (const auto& arrival : mix.trace.arrivals) {
      EXPECT_GE(arrival.job.submit_at, 0.0);
      EXPECT_LT(arrival.job.submit_at, config.horizon);
    }
  }
  EXPECT_THROW(make_frontier_mix("no_such_mix", config), SmrError);
}

TEST(Frontier, OnePointPerPolicyPerMixWithSaneCoordinates) {
  const FrontierConfig config = small_config();
  const std::vector<PolicySpec> policies = {parse_policy_spec("hadoopv1"),
                                            parse_policy_spec("karma")};
  const FrontierResult result = run_frontier(config, policies);

  const std::size_t expected = policies.size() * frontier_mix_names().size();
  ASSERT_EQ(result.points.size(), expected);
  ASSERT_EQ(result.reports.size(), expected);
  for (const FrontierPoint& point : result.points) {
    SCOPED_TRACE(point.policy + "/" + point.mix);
    EXPECT_GE(point.goodput_per_hour, 0.0);
    EXPECT_GE(point.jain, 0.0);
    EXPECT_LE(point.jain, 1.0 + 1e-9);
    EXPECT_GE(point.max_envy, 0.0);
    EXPECT_GE(point.utilization, 0.0);
    EXPECT_GE(point.shed_fraction, 0.0);
    EXPECT_LE(point.shed_fraction, 1.0);
  }
  // Policy-major ordering with labels from the constructed policies.
  EXPECT_EQ(result.points[0].policy, "HadoopV1");
  EXPECT_EQ(result.points[frontier_mix_names().size()].policy, "Karma");
  EXPECT_EQ(result.reports[0].policy,
            result.points[0].policy + "/" + result.points[0].mix);
}

TEST(Frontier, RepeatedRunsAreDeterministic) {
  const FrontierConfig config = small_config();
  const std::vector<PolicySpec> policies = {parse_policy_spec("karma")};
  const FrontierResult first = run_frontier(config, policies);
  const FrontierResult second = run_frontier(config, policies);
  ASSERT_EQ(first.points.size(), second.points.size());
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    EXPECT_EQ(first.points[i].goodput_per_hour, second.points[i].goodput_per_hour);
    EXPECT_EQ(first.points[i].jain, second.points[i].jain);
    EXPECT_EQ(first.points[i].max_envy, second.points[i].max_envy);
    // p99 may be NaN when nothing completed; NaN != NaN, so compare bits
    // via the string the CSV would print.
    EXPECT_EQ(std::isnan(first.points[i].p99_latency_s),
              std::isnan(second.points[i].p99_latency_s));
  }
}

TEST(Frontier, CsvHasOneRowPerPoint) {
  const FrontierConfig config = small_config();
  const FrontierResult result =
      run_frontier(config, {parse_policy_spec("hadoopv1")});
  std::ostringstream out;
  write_frontier_csv(result, out);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, result.points.size() + 1);  // header + rows
  EXPECT_EQ(text.rfind("policy,mix,offered_jobs_per_hour,", 0), 0u);
}

}  // namespace
}  // namespace smr::alloc
