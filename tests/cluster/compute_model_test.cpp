#include "smr/cluster/compute_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "smr/workload/puma.hpp"

namespace smr::cluster {
namespace {

NodeSpec paper_node() { return NodeSpec{}; }

// Aggregate map-input throughput of one node running `n` identical map
// tasks of the given workload — the quantity plotted in the paper's Fig. 1.
double aggregate_map_rate(const NodeSpec& node, const mapreduce::JobSpec& spec, int n) {
  Occupancy occ;
  occ.threads = n;
  occ.io_streams = n;
  occ.memory_demand = spec.map_task_memory * n;
  std::vector<PhaseLoad> loads(
      static_cast<std::size_t>(n),
      PhaseLoad{spec.map_cpu_per_mib / static_cast<double>(kMiB),
                1.0 + spec.map_selectivity * spec.spill_disk_factor, kNoCap, 1.0});
  const auto rates = ComputeModel::solve(node, occ, {}, loads);
  double total = 0.0;
  for (double r : rates) total += r;
  return total;
}

int hump_position(const NodeSpec& node, const mapreduce::JobSpec& spec, int max_slots) {
  int best = 1;
  double best_rate = 0.0;
  for (int n = 1; n <= max_slots; ++n) {
    const double rate = aggregate_map_rate(node, spec, n);
    if (rate > best_rate) {
      best_rate = rate;
      best = n;
    }
  }
  return best;
}

TEST(ThreadEfficiency, MonotoneNonIncreasing) {
  const NodeSpec node = paper_node();
  double prev = ComputeModel::thread_efficiency(node, 0);
  for (int t = 1; t <= 64; ++t) {
    const double e = ComputeModel::thread_efficiency(node, t);
    EXPECT_LE(e, prev + 1e-12);
    prev = e;
  }
}

TEST(ThreadEfficiency, OneThreadIsPerfect) {
  EXPECT_DOUBLE_EQ(ComputeModel::thread_efficiency(paper_node(), 1), 1.0);
  EXPECT_DOUBLE_EQ(ComputeModel::thread_efficiency(paper_node(), 0), 1.0);
}

TEST(ThreadEfficiency, SteeperBeyondCoreCount) {
  const NodeSpec node = paper_node();
  const double drop_below =
      ComputeModel::thread_efficiency(node, node.cores - 1) -
      ComputeModel::thread_efficiency(node, node.cores);
  const double drop_above =
      ComputeModel::thread_efficiency(node, node.cores + 1) -
      ComputeModel::thread_efficiency(node, node.cores + 2);
  EXPECT_GT(drop_above, drop_below);
}

TEST(PagingFactor, UnityWhileMemoryFits) {
  const NodeSpec node = paper_node();
  EXPECT_DOUBLE_EQ(ComputeModel::paging_factor(node, 0), 1.0);
  EXPECT_DOUBLE_EQ(ComputeModel::paging_factor(node, node.available_memory()), 1.0);
}

TEST(PagingFactor, QuadraticCollapseBeyondMemory) {
  const NodeSpec node = paper_node();
  const Bytes avail = node.available_memory();
  const double slight = ComputeModel::paging_factor(node, avail + avail / 10);
  const double heavy = ComputeModel::paging_factor(node, 2 * avail);
  EXPECT_LT(slight, 1.0);
  EXPECT_GT(slight, 0.5);
  EXPECT_LT(heavy, 0.1);
}

TEST(DiskEfficiency, SeekPenaltyPerStream) {
  const NodeSpec node = paper_node();
  EXPECT_DOUBLE_EQ(ComputeModel::disk_efficiency(node, 1), 1.0);
  EXPECT_LT(ComputeModel::disk_efficiency(node, 8), 1.0);
  EXPECT_LT(ComputeModel::disk_efficiency(node, 16),
            ComputeModel::disk_efficiency(node, 8));
}

TEST(Solve, EmptyLoadsGiveEmptyRates) {
  EXPECT_TRUE(ComputeModel::solve(paper_node(), {}, {}, {}).empty());
}

TEST(Solve, SingleCpuBoundTaskRunsAtOneCore) {
  const NodeSpec node = paper_node();
  Occupancy occ{1, 1, 1 * kGiB};
  // 0.35 cpu-s/MiB -> one core sustains 1/0.35 MiB/s.
  std::vector<PhaseLoad> loads{
      {0.35 / static_cast<double>(kMiB), 1.0, kNoCap, 1.0}};
  const auto rates = ComputeModel::solve(node, occ, {}, loads);
  EXPECT_NEAR(rates[0], static_cast<double>(kMiB) / 0.35, 1.0);
}

TEST(Solve, ExternalRateCapRespected) {
  const NodeSpec node = paper_node();
  Occupancy occ{1, 1, 1 * kGiB};
  std::vector<PhaseLoad> loads{
      {0.35 / static_cast<double>(kMiB), 1.0, 1000.0, 1.0}};
  const auto rates = ComputeModel::solve(node, occ, {}, loads);
  EXPECT_DOUBLE_EQ(rates[0], 1000.0);
}

TEST(Solve, BackgroundLoadShrinksForeground) {
  const NodeSpec node = paper_node();
  // Disk-hungry mix: 8 streams whose disk demand exceeds what remains once
  // the background claims half the disk.
  Occupancy occ{8, 8, 16 * kGiB};
  std::vector<PhaseLoad> loads(
      8, PhaseLoad{0.18 / static_cast<double>(kMiB), 2.3, kNoCap, 1.0});
  const auto free_rates = ComputeModel::solve(node, occ, {}, loads);
  BackgroundLoad bg;
  bg.disk_rate = node.disk_bandwidth * 0.5;
  const auto loaded_rates = ComputeModel::solve(node, occ, bg, loads);
  double free_total = 0.0, loaded_total = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    free_total += free_rates[i];
    loaded_total += loaded_rates[i];
  }
  EXPECT_LT(loaded_total, free_total);
}

TEST(Solve, ForegroundNeverFullyStarved) {
  const NodeSpec node = paper_node();
  Occupancy occ{1, 1, 1 * kGiB};
  BackgroundLoad bg;
  bg.cpu_cores = 1000.0;  // absurd background
  bg.disk_rate = 1e12;
  std::vector<PhaseLoad> loads{
      {0.35 / static_cast<double>(kMiB), 1.0, kNoCap, 1.0}};
  const auto rates = ComputeModel::solve(node, occ, bg, loads);
  EXPECT_GT(rates[0], 0.0);
}

TEST(Solve, SlowNodeScalesWithCpuSpeed) {
  NodeSpec slow = paper_node();
  slow.cpu_speed = 0.5;
  Occupancy occ{1, 1, 1 * kGiB};
  std::vector<PhaseLoad> loads{
      {0.35 / static_cast<double>(kMiB), 0.0, kNoCap, 1.0}};
  const auto fast_rate = ComputeModel::solve(paper_node(), occ, {}, loads)[0];
  const auto slow_rate = ComputeModel::solve(slow, occ, {}, loads)[0];
  EXPECT_NEAR(slow_rate, fast_rate * 0.5, 1.0);
}

// ---------------------------------------------------------------------------
// The paper's Fig. 1 properties: a thrashing hump exists, and its position
// orders Grep > TermVector > Terasort.
// ---------------------------------------------------------------------------

class ThrashingHump : public ::testing::TestWithParam<workload::Puma> {};

TEST_P(ThrashingHump, ThroughputRisesThenFalls) {
  const NodeSpec node = paper_node();
  const auto spec = workload::make_puma_job(GetParam());
  const int hump = hump_position(node, spec, 16);
  EXPECT_GT(hump, 1) << "throughput must improve beyond one slot";
  // Past the hump the curve must genuinely fall, not merely flatten.
  const double at_hump = aggregate_map_rate(node, spec, hump);
  const double past = aggregate_map_rate(node, spec, std::min(16, hump + 3));
  EXPECT_LT(past, at_hump * 0.98)
      << spec.name << ": no fall after the hump at " << hump;
}

TEST_P(ThrashingHump, RisesMonotonicallyBeforeHump) {
  const NodeSpec node = paper_node();
  const auto spec = workload::make_puma_job(GetParam());
  const int hump = hump_position(node, spec, 16);
  double prev = 0.0;
  for (int n = 1; n <= hump; ++n) {
    const double rate = aggregate_map_rate(node, spec, n);
    EXPECT_GE(rate, prev - 1e-6) << spec.name << " dipped before hump at n=" << n;
    prev = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig1Benchmarks, ThrashingHump,
    ::testing::Values(workload::Puma::kTerasort, workload::Puma::kTermVector,
                      workload::Puma::kGrep, workload::Puma::kHistogramRatings,
                      workload::Puma::kInvertedIndex),
    [](const auto& info) {
      std::string name = workload::puma_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';  // gtest parameter names must be identifiers
      }
      return name;
    });

TEST(ThrashingOrder, GrepAboveTermVectorAboveTerasort) {
  // Paper §II-B: "map-heavy jobs have a higher thrashing point than
  // reduce-heavy jobs".
  const NodeSpec node = paper_node();
  const int grep =
      hump_position(node, workload::make_puma_job(workload::Puma::kGrep), 16);
  const int termvector =
      hump_position(node, workload::make_puma_job(workload::Puma::kTermVector), 16);
  const int terasort =
      hump_position(node, workload::make_puma_job(workload::Puma::kTerasort), 16);
  EXPECT_GT(grep, termvector);
  EXPECT_GT(termvector, terasort);
  EXPECT_GE(terasort, 2);  // still above the 1-slot floor
}

TEST(ThrashingOrder, ResidentReducersLowerTheMapHump) {
  // Paper §II-B: reduce-heavy jobs "suffer an early map thrashing point"
  // because shuffling/reducing consumes resources.  Adding resident reduce
  // tasks to the occupancy must not raise the hump.
  const NodeSpec node = paper_node();
  const auto spec = workload::make_puma_job(workload::Puma::kTerasort);
  auto hump_with_reducers = [&](int reducers) {
    int best = 1;
    double best_rate = 0.0;
    for (int n = 1; n <= 12; ++n) {
      Occupancy occ;
      occ.threads = n + 2 * reducers;
      occ.io_streams = n + reducers;
      occ.memory_demand = spec.map_task_memory * n + spec.reduce_task_memory * reducers;
      std::vector<PhaseLoad> loads(
          static_cast<std::size_t>(n),
          PhaseLoad{spec.map_cpu_per_mib / static_cast<double>(kMiB),
                    1.0 + spec.map_selectivity * spec.spill_disk_factor, kNoCap, 1.0});
      const auto rates = ComputeModel::solve(node, occ, {}, loads);
      double total = 0.0;
      for (double r : rates) total += r;
      if (total > best_rate) {
        best_rate = total;
        best = n;
      }
    }
    return best;
  };
  EXPECT_LE(hump_with_reducers(2), hump_with_reducers(0));
}

}  // namespace
}  // namespace smr::cluster
