// Property tests for the max-min allocator, and a differential suite that
// drives MaxMinSolver through randomized mutation sequences checking every
// answer bit-for-bit against the max_min_allocate oracle.
//
// Properties checked on random instances:
//   * feasibility: no resource over capacity, no flow over its cap,
//     no negative rate;
//   * max-min fairness: every flow is either at its cap or uses at least
//     one saturated resource (otherwise its rate could be raised, which
//     contradicts max-min optimality);
//   * the solver's fast paths (exact-repeat and cap-slack) never diverge
//     from a fresh oracle solve — not even in the last bit.
#include "smr/cluster/maxmin.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "smr/common/rng.hpp"

namespace smr::cluster {
namespace {

// Mirrors the allocator's internal saturation threshold: resource r counts
// as saturated when less than kEps * (1 + capacity) remains.
constexpr double kEps = 1e-9;

struct Problem {
  std::vector<double> capacities;
  std::vector<FlowDemand> flows;
};

bool bounded_by_use(const FlowDemand& flow) {
  for (const ResourceUse& use : flow.uses) {
    if (use.weight > 0.0) return true;
  }
  return false;
}

Problem random_problem(Rng& rng) {
  Problem p;
  const int resources = static_cast<int>(rng.uniform_int(1, 6));
  const int flows = static_cast<int>(rng.uniform_int(0, 12));
  p.capacities.resize(static_cast<std::size_t>(resources));
  for (double& c : p.capacities) {
    // ~10% zero-capacity resources to exercise the freeze-at-zero edge.
    c = rng.uniform() < 0.1 ? 0.0 : rng.uniform(0.1, 1000.0);
  }
  p.flows.resize(static_cast<std::size_t>(flows));
  for (FlowDemand& flow : p.flows) {
    // ~15% capped flows, ~10% use-less (cap-only) flows.
    flow.rate_cap = rng.uniform() < 0.15 ? rng.uniform(0.0, 200.0) : kNoCap;
    const int uses = rng.uniform() < 0.1 ? 0 : static_cast<int>(rng.uniform_int(1, 3));
    for (int u = 0; u < uses; ++u) {
      ResourceUse use;
      use.resource = static_cast<int>(rng.uniform_int(0, resources - 1));
      use.weight = rng.uniform() < 0.1 ? 0.0 : rng.uniform(0.01, 4.0);
      flow.uses.push_back(use);
    }
    // The allocator requires every flow bounded: a cap, or at least one
    // positive-weight use.  Cap the unbounded ones.
    if (flow.rate_cap == kNoCap && !bounded_by_use(flow)) {
      flow.rate_cap = rng.uniform(0.0, 200.0);
    }
  }
  return p;
}

void check_feasible_and_maxmin(const Problem& p, const std::vector<double>& rates) {
  ASSERT_EQ(rates.size(), p.flows.size());
  std::vector<double> used(p.capacities.size(), 0.0);
  for (std::size_t i = 0; i < p.flows.size(); ++i) {
    ASSERT_GE(rates[i], 0.0);
    if (p.flows[i].rate_cap != kNoCap) {
      ASSERT_LE(rates[i], p.flows[i].rate_cap * (1.0 + 1e-12) + 1e-12);
    }
    for (const ResourceUse& use : p.flows[i].uses) {
      used[static_cast<std::size_t>(use.resource)] += rates[i] * use.weight;
    }
  }
  // Conservation: consumption never exceeds capacity (beyond fp slop
  // proportional to the number of additions).
  for (std::size_t r = 0; r < p.capacities.size(); ++r) {
    ASSERT_LE(used[r], p.capacities[r] + 1e-6 * (1.0 + p.capacities[r]))
        << "resource " << r << " over capacity";
  }
  // Max-min: a flow below its cap must touch a saturated resource, or have
  // no positive-weight use at all and no cap (the unbounded-degenerate
  // case, where the allocator freezes everything at 0).
  for (std::size_t i = 0; i < p.flows.size(); ++i) {
    const double cap = p.flows[i].rate_cap;
    if (cap != kNoCap && rates[i] >= cap - kEps * (1.0 + cap)) continue;
    bool has_weighted_use = false;
    bool touches_saturated = false;
    for (const ResourceUse& use : p.flows[i].uses) {
      if (use.weight <= 0.0) continue;
      has_weighted_use = true;
      const auto r = static_cast<std::size_t>(use.resource);
      if (p.capacities[r] - used[r] <= 1e-6 * (1.0 + p.capacities[r])) {
        touches_saturated = true;
      }
    }
    if (has_weighted_use) {
      ASSERT_TRUE(touches_saturated)
          << "flow " << i << " is below its cap (" << rates[i]
          << ") but uses no saturated resource — rate could be raised";
    }
  }
}

TEST(MaxMinProperty, RandomInstancesAreFeasibleAndMaxMin) {
  Rng rng(0xfeedULL);
  for (int trial = 0; trial < 1000; ++trial) {
    const Problem p = random_problem(rng);
    const auto rates = max_min_allocate(p.capacities, p.flows);
    SCOPED_TRACE("trial " + std::to_string(trial));
    check_feasible_and_maxmin(p, rates);
  }
}

TEST(MaxMinProperty, ZeroCapacityFreezesUsersAtZero) {
  const std::vector<double> caps{0.0, 100.0};
  std::vector<FlowDemand> flows(2);
  flows[0].rate_cap = kNoCap;
  flows[0].uses = {{0, 1.0}, {1, 1.0}};
  flows[1].rate_cap = kNoCap;
  flows[1].uses = {{1, 1.0}};
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(MaxMinProperty, EmptyUsesWithCapStopsAtCap) {
  const std::vector<double> caps{50.0};
  std::vector<FlowDemand> flows(1);
  flows[0].rate_cap = 7.5;
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 7.5);
}

TEST(MaxMinProperty, ZeroWeightUseDoesNotConsume) {
  const std::vector<double> caps{10.0};
  std::vector<FlowDemand> flows(2);
  flows[0].rate_cap = 3.0;
  flows[0].uses = {{0, 0.0}};  // weightless: only the cap binds
  flows[1].rate_cap = kNoCap;
  flows[1].uses = {{0, 1.0}};
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 3.0);
  EXPECT_DOUBLE_EQ(rates[1], 10.0);
}

// Differential harness: every solve() answer must equal a fresh oracle run
// bit-for-bit, across mutation patterns chosen to hit all three solver
// paths (exact repeat, cap-slack fast path, full re-solve).
class SolverDifferential {
 public:
  explicit SolverDifferential(Rng& rng) : rng_(&rng), problem_(random_problem(rng)) {}

  void check_once() {
    const std::vector<double> expected =
        max_min_allocate(problem_.capacities, problem_.flows);
    const std::vector<double>& actual =
        solver_.solve(problem_.capacities, problem_.flows);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // Bitwise comparison: 0.0 == -0.0 would pass EXPECT_EQ, so compare
      // through memcmp-equivalent double equality + signbit.
      ASSERT_EQ(actual[i], expected[i]) << "flow " << i;
      ASSERT_EQ(std::signbit(actual[i]), std::signbit(expected[i])) << "flow " << i;
    }
  }

  void mutate() {
    const double which = rng_->uniform();
    if (which < 0.25) {
      // Repeat unchanged (exact cache hit path).
      return;
    }
    if (which < 0.55 && !problem_.flows.empty()) {
      // Move a random flow's cap only — sometimes slack, sometimes binding.
      // Dropping the cap entirely is only legal when a use bounds the flow.
      FlowDemand& flow =
          problem_.flows[static_cast<std::size_t>(rng_->uniform_int(
              0, static_cast<std::int64_t>(problem_.flows.size()) - 1))];
      flow.rate_cap = rng_->uniform() < 0.3 && bounded_by_use(flow)
                          ? kNoCap
                          : rng_->uniform(0.0, 400.0);
      return;
    }
    if (which < 0.75 && !problem_.capacities.empty()) {
      // Nudge a capacity (always a full re-solve).
      problem_.capacities[static_cast<std::size_t>(rng_->uniform_int(
          0, static_cast<std::int64_t>(problem_.capacities.size()) - 1))] =
          rng_->uniform(0.0, 1000.0);
      return;
    }
    // Fresh problem (shape change).
    problem_ = random_problem(*rng_);
  }

  const MaxMinSolver::Stats& stats() const { return solver_.stats(); }

 private:
  Rng* rng_;
  Problem problem_;
  MaxMinSolver solver_;
};

TEST(MaxMinSolverDifferential, RandomMutationSequencesMatchOracleBitwise) {
  Rng rng(0xa110cULL);
  int total_checks = 0;
  for (int sequence = 0; sequence < 50; ++sequence) {
    SolverDifferential diff(rng);
    for (int step = 0; step < 40; ++step) {
      SCOPED_TRACE("sequence " + std::to_string(sequence) + " step " +
                   std::to_string(step));
      diff.check_once();
      ++total_checks;
      diff.mutate();
    }
    // Every path should be reachable across the suite; assert per-sequence
    // only that the counters are consistent.
    const auto& stats = diff.stats();
    EXPECT_EQ(stats.calls, stats.cache_hits + stats.cap_fast_hits + stats.full_solves);
  }
  EXPECT_GE(total_checks, 2000);
}

TEST(MaxMinSolverDifferential, ExactRepeatHitsCache) {
  MaxMinSolver solver;
  const std::vector<double> caps{100.0};
  std::vector<FlowDemand> flows(2);
  flows[0].rate_cap = kNoCap;
  flows[0].uses = {{0, 1.0}};
  flows[1].rate_cap = kNoCap;
  flows[1].uses = {{0, 1.0}};
  const auto first = solver.solve(caps, flows);
  EXPECT_DOUBLE_EQ(first[0], 50.0);
  solver.solve(caps, flows);
  solver.solve(caps, flows);
  EXPECT_EQ(solver.stats().calls, 3u);
  EXPECT_EQ(solver.stats().full_solves, 1u);
  EXPECT_EQ(solver.stats().cache_hits, 2u);
}

TEST(MaxMinSolverDifferential, SlackCapMoveHitsFastPath) {
  MaxMinSolver solver;
  const std::vector<double> caps{100.0};
  std::vector<FlowDemand> flows(2);
  flows[0].rate_cap = 90.0;  // far above the 50/50 fair share
  flows[0].uses = {{0, 1.0}};
  flows[1].rate_cap = kNoCap;
  flows[1].uses = {{0, 1.0}};
  solver.solve(caps, flows);
  flows[0].rate_cap = 80.0;  // still far above; provably non-binding
  const auto rates = solver.solve(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
  EXPECT_EQ(solver.stats().cap_fast_hits, 1u);
  EXPECT_EQ(solver.stats().full_solves, 1u);
  // Cap moving below the rate must force a re-solve, and bind.
  flows[0].rate_cap = 20.0;
  const auto rebound = solver.solve(caps, flows);
  EXPECT_DOUBLE_EQ(rebound[0], 20.0);
  EXPECT_DOUBLE_EQ(rebound[1], 80.0);
  EXPECT_EQ(solver.stats().full_solves, 2u);
}

TEST(MaxMinSolverDifferential, BindingCapFlowNeverFastPaths) {
  MaxMinSolver solver;
  const std::vector<double> caps{100.0};
  std::vector<FlowDemand> flows(2);
  flows[0].rate_cap = 10.0;  // binds: frozen by cap, not by the resource
  flows[0].uses = {{0, 1.0}};
  flows[1].rate_cap = kNoCap;
  flows[1].uses = {{0, 1.0}};
  solver.solve(caps, flows);
  flows[0].rate_cap = 15.0;  // above the old rate, but flow was cap-frozen
  const auto rates = solver.solve(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 15.0);
  EXPECT_DOUBLE_EQ(rates[1], 85.0);
  EXPECT_EQ(solver.stats().cap_fast_hits, 0u);
  EXPECT_EQ(solver.stats().full_solves, 2u);
}

TEST(MaxMinSolverDifferential, InvalidateForcesResolve) {
  MaxMinSolver solver;
  const std::vector<double> caps{60.0};
  std::vector<FlowDemand> flows(1);
  flows[0].rate_cap = kNoCap;
  flows[0].uses = {{0, 2.0}};
  solver.solve(caps, flows);
  solver.invalidate();
  const auto rates = solver.solve(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 30.0);
  EXPECT_EQ(solver.stats().full_solves, 2u);
  EXPECT_EQ(solver.stats().cache_hits, 0u);
}

TEST(MaxMinSolverDifferential, EmptyProblemRoundTrips) {
  MaxMinSolver solver;
  const auto rates = solver.solve({}, {});
  EXPECT_TRUE(rates.empty());
  solver.solve({}, {});
  EXPECT_EQ(solver.stats().cache_hits, 1u);
}

}  // namespace
}  // namespace smr::cluster
