#include "smr/cluster/network_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smr::cluster {
namespace {

ClusterSpec small_cluster(int nodes = 4) { return ClusterSpec::paper_testbed(nodes); }

TEST(NetworkModel, EmptyFlows) {
  const auto spec = small_cluster();
  NetworkModel net(spec);
  EXPECT_TRUE(net.allocate({}, {}).empty());
}

TEST(NetworkModel, SingleDiffuseFlowBoundByReceiverNic) {
  const auto spec = small_cluster();
  NetworkModel net(spec);
  std::vector<NetFlow> flows{{0, kInvalidNode, kNoCap}};
  const auto rates = net.allocate(flows, {});
  EXPECT_NEAR(rates[0], spec.workers[0].nic_bandwidth, 1.0);
}

TEST(NetworkModel, PerFlowCapRespected) {
  const auto spec = small_cluster();
  NetworkModel net(spec);
  std::vector<NetFlow> flows{{0, kInvalidNode, 5.0 * static_cast<double>(kMiB)}};
  const auto rates = net.allocate(flows, {});
  EXPECT_DOUBLE_EQ(rates[0], 5.0 * static_cast<double>(kMiB));
}

TEST(NetworkModel, TwoFlowsSameReceiverSharePort) {
  const auto spec = small_cluster();
  NetworkModel net(spec);
  std::vector<NetFlow> flows{{0, kInvalidNode, kNoCap}, {0, kInvalidNode, kNoCap}};
  const auto rates = net.allocate(flows, {});
  EXPECT_NEAR(rates[0], spec.workers[0].nic_bandwidth / 2.0, 1.0);
  EXPECT_NEAR(rates[1], spec.workers[0].nic_bandwidth / 2.0, 1.0);
}

TEST(NetworkModel, FlowsOnDistinctReceiversIndependent) {
  const auto spec = small_cluster();
  NetworkModel net(spec);
  std::vector<NetFlow> flows{{0, kInvalidNode, kNoCap}, {1, kInvalidNode, kNoCap}};
  const auto rates = net.allocate(flows, {});
  EXPECT_NEAR(rates[0], spec.workers[0].nic_bandwidth, 1.0);
  EXPECT_NEAR(rates[1], spec.workers[1].nic_bandwidth, 1.0);
}

TEST(NetworkModel, PointToPointLoadsSenderPort) {
  const auto spec = small_cluster();
  NetworkModel net(spec);
  // Two point-to-point flows from the same sender to different receivers
  // split the sender's transmit port.
  std::vector<NetFlow> flows{{0, 2, kNoCap}, {1, 2, kNoCap}};
  const auto rates = net.allocate(flows, {});
  EXPECT_NEAR(rates[0], spec.workers[2].nic_bandwidth / 2.0, 1.0);
  EXPECT_NEAR(rates[1], spec.workers[2].nic_bandwidth / 2.0, 1.0);
}

TEST(NetworkModel, FabricCapsAggregate) {
  ClusterSpec spec = small_cluster(4);
  spec.network.fabric_bandwidth = 100.0;  // tiny fabric
  NetworkModel net(spec);
  std::vector<NetFlow> flows{{0, kInvalidNode, kNoCap},
                             {1, kInvalidNode, kNoCap},
                             {2, kInvalidNode, kNoCap}};
  const auto rates = net.allocate(flows, {});
  double total = 0.0;
  for (double r : rates) total += r;
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(NetworkModel, IncastReducesReceiverGoodput) {
  const auto spec = small_cluster();
  NetworkModel net(spec);
  std::vector<NetFlow> flows{{0, kInvalidNode, kNoCap}};
  std::vector<int> calm{1, 0, 0, 0};
  std::vector<int> jammed{60, 0, 0, 0};
  const double calm_rate = net.allocate(flows, calm)[0];
  const double jam_rate = net.allocate(flows, jammed)[0];
  EXPECT_LT(jam_rate, calm_rate);
  // With the default knee of 12 and 0.08/stream decay, 60 streams lose
  // roughly 4.8x.
  EXPECT_NEAR(jam_rate, calm_rate / (1.0 + 0.08 * (60 - 12)), calm_rate * 0.01);
}

TEST(NetworkModel, IncastBelowKneeIsFree) {
  NetworkSpec net_spec;
  EXPECT_DOUBLE_EQ(net_spec.incast_efficiency(1), 1.0);
  EXPECT_DOUBLE_EQ(net_spec.incast_efficiency(net_spec.incast_knee_streams), 1.0);
  EXPECT_LT(net_spec.incast_efficiency(net_spec.incast_knee_streams + 1), 1.0);
}

TEST(NetworkModel, InvalidDstThrows) {
  const auto spec = small_cluster();
  NetworkModel net(spec);
  std::vector<NetFlow> flows{{99, kInvalidNode, kNoCap}};
  EXPECT_THROW(net.allocate(flows, {}), SmrError);
}

TEST(NetworkModel, ManyDiffuseFlowsBoundBySenderAggregate) {
  // 16 receivers each hosting 2 uncapped diffuse flows: the binding
  // constraint is each receiver's port; totals stay within the fabric.
  const auto spec = small_cluster(16);
  NetworkModel net(spec);
  std::vector<NetFlow> flows;
  for (int d = 0; d < 16; ++d) {
    flows.push_back({d, kInvalidNode, kNoCap});
    flows.push_back({d, kInvalidNode, kNoCap});
  }
  const auto rates = net.allocate(flows, {});
  double total = 0.0;
  for (double r : rates) total += r;
  EXPECT_LE(total, spec.network.fabric_bandwidth * (1.0 + 1e-6));
  // Each receiver's two flows split its port.
  EXPECT_NEAR(rates[0], spec.workers[0].nic_bandwidth / 2.0,
              spec.workers[0].nic_bandwidth * 0.05);
}

}  // namespace
}  // namespace smr::cluster
