#include "smr/cluster/maxmin.hpp"

#include <gtest/gtest.h>

#include <array>

#include "smr/common/error.hpp"

namespace smr::cluster {
namespace {

FlowDemand flow(double cap, std::vector<ResourceUse> uses) {
  FlowDemand f;
  f.rate_cap = cap;
  f.uses = std::move(uses);
  return f;
}

TEST(MaxMin, EmptyInputs) {
  EXPECT_TRUE(max_min_allocate(std::array<double, 0>{}, std::array<FlowDemand, 0>{}).empty());
}

TEST(MaxMin, SingleFlowTakesWholeResource) {
  const std::array<double, 1> caps{100.0};
  const std::array<FlowDemand, 1> flows{flow(kNoCap, {{0, 1.0}})};
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(MaxMin, EqualFlowsShareEqually) {
  const std::array<double, 1> caps{90.0};
  const std::array<FlowDemand, 3> flows{
      flow(kNoCap, {{0, 1.0}}), flow(kNoCap, {{0, 1.0}}), flow(kNoCap, {{0, 1.0}})};
  const auto rates = max_min_allocate(caps, flows);
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 30.0);
}

TEST(MaxMin, CappedFlowReleasesShareToOthers) {
  const std::array<double, 1> caps{100.0};
  const std::array<FlowDemand, 2> flows{flow(10.0, {{0, 1.0}}),
                                        flow(kNoCap, {{0, 1.0}})};
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);
}

TEST(MaxMin, WeightsScaleConsumption) {
  // Flow 0 consumes 2 units per unit rate; both saturate the resource at
  // equal rates r where 2r + r = 90 -> r = 30.
  const std::array<double, 1> caps{90.0};
  const std::array<FlowDemand, 2> flows{flow(kNoCap, {{0, 2.0}}),
                                        flow(kNoCap, {{0, 1.0}})};
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 30.0);
  EXPECT_DOUBLE_EQ(rates[1], 30.0);
}

TEST(MaxMin, BottleneckFreezesOnlyItsUsers) {
  // Resource 0 is scarce and shared by flows 0,1; flow 2 uses only the
  // plentiful resource 1 and should grow past them to its cap.
  const std::array<double, 2> caps{20.0, 1000.0};
  const std::array<FlowDemand, 3> flows{
      flow(kNoCap, {{0, 1.0}, {1, 1.0}}),
      flow(kNoCap, {{0, 1.0}, {1, 1.0}}),
      flow(500.0, {{1, 1.0}}),
  };
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 10.0);
  EXPECT_DOUBLE_EQ(rates[2], 500.0);
}

TEST(MaxMin, ZeroCapacityResourceFreezesUsersAtZero) {
  const std::array<double, 2> caps{0.0, 100.0};
  const std::array<FlowDemand, 2> flows{flow(kNoCap, {{0, 1.0}}),
                                        flow(kNoCap, {{1, 1.0}})};
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(MaxMin, ZeroCapFlowStaysAtZero) {
  const std::array<double, 1> caps{100.0};
  const std::array<FlowDemand, 2> flows{flow(0.0, {{0, 1.0}}),
                                        flow(kNoCap, {{0, 1.0}})};
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(MaxMin, CapOnlyFlowNeedsNoResources) {
  const std::array<double, 1> caps{100.0};
  const std::array<FlowDemand, 1> flows{flow(42.0, {})};
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_DOUBLE_EQ(rates[0], 42.0);
}

TEST(MaxMin, UnboundedFlowThrows) {
  const std::array<double, 1> caps{100.0};
  const std::array<FlowDemand, 1> flows{flow(kNoCap, {})};
  EXPECT_THROW(max_min_allocate(caps, flows), SmrError);
}

TEST(MaxMin, UnknownResourceThrows) {
  const std::array<double, 1> caps{100.0};
  const std::array<FlowDemand, 1> flows{flow(kNoCap, {{3, 1.0}})};
  EXPECT_THROW(max_min_allocate(caps, flows), SmrError);
}

TEST(MaxMin, NoCapacityOverrun) {
  // Random-ish mixed scenario; verify feasibility: total consumption per
  // resource never exceeds capacity (within tolerance).
  const std::array<double, 3> caps{100.0, 57.0, 23.0};
  const std::array<FlowDemand, 5> flows{
      flow(kNoCap, {{0, 1.0}, {1, 0.5}}),
      flow(40.0, {{0, 0.2}, {2, 1.0}}),
      flow(kNoCap, {{1, 1.0}}),
      flow(kNoCap, {{2, 0.1}, {0, 0.7}}),
      flow(5.0, {{0, 1.0}, {1, 1.0}, {2, 1.0}}),
  };
  const auto rates = max_min_allocate(caps, flows);
  std::array<double, 3> used{};
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (const auto& u : flows[i].uses) {
      used[static_cast<std::size_t>(u.resource)] += u.weight * rates[i];
    }
  }
  for (std::size_t r = 0; r < caps.size(); ++r) {
    EXPECT_LE(used[r], caps[r] * (1.0 + 1e-6)) << "resource " << r;
  }
}

TEST(MaxMin, ParetoEfficientOnSingleResource) {
  // With one shared resource and no caps, the allocation exhausts it.
  const std::array<double, 1> caps{77.0};
  const std::array<FlowDemand, 4> flows{
      flow(kNoCap, {{0, 1.0}}), flow(kNoCap, {{0, 2.0}}),
      flow(kNoCap, {{0, 0.5}}), flow(kNoCap, {{0, 1.5}})};
  const auto rates = max_min_allocate(caps, flows);
  double used = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) used += rates[i] * flows[i].uses[0].weight;
  EXPECT_NEAR(used, 77.0, 1e-6);
}

TEST(MaxMin, LargeMagnitudeCapacitiesNumericallyStable) {
  // Regression: saturation checks must be relative to resource scale, or
  // the allocator spins on ~1e-4 residues of ~1e8 capacities.
  const std::array<double, 2> caps{1.23e8, 9.7e8};
  std::vector<FlowDemand> flows;
  for (int i = 0; i < 50; ++i) {
    flows.push_back(flow(3.7e6 + 1e3 * i, {{0, 1.0}, {1, 0.37}}));
  }
  const auto rates = max_min_allocate(caps, flows);
  EXPECT_EQ(rates.size(), flows.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_GT(rates[i], 0.0);
    EXPECT_LE(rates[i], flows[i].rate_cap * (1.0 + 1e-9));
  }
}

// Property sweep: max-min fairness means no flow can be increased without
// decreasing a flow with a smaller-or-equal rate.  We check the weaker but
// sweep-friendly property that uncapped flows sharing one resource get
// identical rates.
class MaxMinFairness : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinFairness, UncappedPeersGetEqualRates) {
  const int n = GetParam();
  const std::array<double, 1> caps{1000.0};
  std::vector<FlowDemand> flows;
  for (int i = 0; i < n; ++i) flows.push_back(flow(kNoCap, {{0, 1.0}}));
  const auto rates = max_min_allocate(caps, flows);
  for (double r : rates) EXPECT_NEAR(r, 1000.0 / n, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaxMinFairness, ::testing::Values(1, 2, 3, 7, 16, 64));

}  // namespace
}  // namespace smr::cluster
