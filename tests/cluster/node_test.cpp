#include "smr/cluster/node.hpp"

#include <gtest/gtest.h>

namespace smr::cluster {
namespace {

TEST(NodeSpec, DefaultsMatchPaperTestbed) {
  NodeSpec node;
  EXPECT_EQ(node.cores, 16);           // 4 quad-core CPUs
  EXPECT_EQ(node.memory, 32 * kGiB);   // 32 GB DDR3
  EXPECT_NO_THROW(node.validate());
}

TEST(NodeSpec, AvailableMemoryExcludesOsReservation) {
  NodeSpec node;
  EXPECT_EQ(node.available_memory(), node.memory - node.os_reserved);
}

TEST(NodeSpec, ValidateRejectsNonsense) {
  NodeSpec node;
  node.cores = 0;
  EXPECT_THROW(node.validate(), SmrError);
  node = NodeSpec{};
  node.os_reserved = node.memory;
  EXPECT_THROW(node.validate(), SmrError);
  node = NodeSpec{};
  node.cpu_speed = 0.0;
  EXPECT_THROW(node.validate(), SmrError);
}

TEST(ClusterSpec, PaperTestbedShape) {
  const auto spec = ClusterSpec::paper_testbed();
  EXPECT_EQ(spec.worker_count(), 16);
  EXPECT_EQ(spec.dfs_block_size, 128 * kMiB);
  EXPECT_EQ(spec.dfs_replication, 3);
  // Non-blocking switch: fabric equals the sum of NIC bandwidths.
  EXPECT_DOUBLE_EQ(spec.network.fabric_bandwidth,
                   16.0 * spec.workers[0].nic_bandwidth);
}

TEST(ClusterSpec, PaperTestbedCustomSize) {
  const auto spec = ClusterSpec::paper_testbed(4);
  EXPECT_EQ(spec.worker_count(), 4);
  EXPECT_DOUBLE_EQ(spec.network.fabric_bandwidth, 4.0 * spec.workers[0].nic_bandwidth);
}

TEST(ClusterSpec, HeterogeneousSlowNodesScaled) {
  const auto spec = ClusterSpec::heterogeneous(2, 3, 0.5);
  ASSERT_EQ(spec.worker_count(), 5);
  EXPECT_DOUBLE_EQ(spec.workers[0].cpu_speed, 1.0);
  EXPECT_DOUBLE_EQ(spec.workers[1].cpu_speed, 1.0);
  for (int i = 2; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(spec.workers[static_cast<std::size_t>(i)].cpu_speed, 0.5);
    EXPECT_EQ(spec.workers[static_cast<std::size_t>(i)].memory, 16 * kGiB);
  }
}

TEST(ClusterSpec, HeterogeneousRejectsEmptyAndBadFactor) {
  EXPECT_THROW(ClusterSpec::heterogeneous(0, 0), SmrError);
  EXPECT_THROW(ClusterSpec::heterogeneous(1, 1, 0.0), SmrError);
  EXPECT_THROW(ClusterSpec::heterogeneous(1, 1, 1.5), SmrError);
}

TEST(NetworkSpec, ValidateRejectsNonsense) {
  NetworkSpec net;
  net.fabric_bandwidth = 0.0;
  EXPECT_THROW(net.validate(), SmrError);
  net = NetworkSpec{};
  net.incast_knee_streams = 0;
  EXPECT_THROW(net.validate(), SmrError);
}

}  // namespace
}  // namespace smr::cluster
