// Parameter-direction properties of the contention model: how the
// thrashing hump and aggregate throughput respond to hardware changes.
// These pin the *mechanism* docs/MODEL.md describes, so recalibration that
// silently breaks a direction fails here.
#include <gtest/gtest.h>

#include <vector>

#include "smr/cluster/compute_model.hpp"
#include "smr/workload/puma.hpp"

namespace smr::cluster {
namespace {

double aggregate_rate(const NodeSpec& node, const mapreduce::JobSpec& spec, int n) {
  Occupancy occ;
  occ.threads = n;
  occ.io_streams = n;
  occ.memory_demand = spec.map_task_memory * n;
  std::vector<PhaseLoad> loads(
      static_cast<std::size_t>(n),
      PhaseLoad{spec.map_cpu_per_mib / static_cast<double>(kMiB),
                1.0 + spec.map_selectivity * spec.spill_disk_factor, kNoCap, 1.0});
  double total = 0.0;
  for (double r : ComputeModel::solve(node, occ, {}, loads)) total += r;
  return total;
}

int hump(const NodeSpec& node, const mapreduce::JobSpec& spec, int max_n = 20) {
  int best = 1;
  double best_rate = 0.0;
  for (int n = 1; n <= max_n; ++n) {
    const double rate = aggregate_rate(node, spec, n);
    if (rate > best_rate) {
      best_rate = rate;
      best = n;
    }
  }
  return best;
}

TEST(ModelSweeps, MoreMemoryMovesHumpRight) {
  const auto spec = workload::make_puma_job(workload::Puma::kTerasort);
  NodeSpec small = NodeSpec{};
  NodeSpec big = NodeSpec{};
  big.memory = 64 * kGiB;
  EXPECT_GT(hump(big, spec), hump(small, spec));
}

TEST(ModelSweeps, SmallerWorkingSetsMoveHumpRight) {
  const NodeSpec node;
  auto fat = workload::make_puma_job(workload::Puma::kTerasort);
  auto lean = fat;
  lean.map_task_memory = fat.map_task_memory / 2;
  EXPECT_GT(hump(node, lean), hump(node, fat));
}

TEST(ModelSweeps, HarsherPagingDeepensTheFall) {
  const auto spec = workload::make_puma_job(workload::Puma::kTerasort);
  NodeSpec mild = NodeSpec{};
  mild.paging_penalty = 4.0;
  NodeSpec harsh = NodeSpec{};
  harsh.paging_penalty = 40.0;
  const int n_past = hump(mild, spec) + 3;
  EXPECT_LT(aggregate_rate(harsh, spec, n_past), aggregate_rate(mild, spec, n_past));
}

TEST(ModelSweeps, CpuSpeedScalesThroughputBelowHump) {
  const auto spec = workload::make_puma_job(workload::Puma::kKMeans);  // CPU-bound
  NodeSpec fast = NodeSpec{};
  NodeSpec slow = NodeSpec{};
  slow.cpu_speed = 0.5;
  const double fast_rate = aggregate_rate(fast, spec, 3);
  const double slow_rate = aggregate_rate(slow, spec, 3);
  EXPECT_NEAR(slow_rate, fast_rate * 0.5, fast_rate * 0.02);
}

TEST(ModelSweeps, DiskBandwidthBindsIoHeavyWorkloads) {
  // Terasort at moderate concurrency is disk-bound: halving disk bandwidth
  // cuts throughput, while KMeans (CPU-bound) barely notices.
  NodeSpec fast_disk = NodeSpec{};
  NodeSpec slow_disk = NodeSpec{};
  slow_disk.disk_bandwidth /= 2.0;
  const auto terasort = workload::make_puma_job(workload::Puma::kTerasort);
  const auto kmeans = workload::make_puma_job(workload::Puma::kKMeans);
  const double terasort_drop = aggregate_rate(slow_disk, terasort, 6) /
                               aggregate_rate(fast_disk, terasort, 6);
  const double kmeans_drop =
      aggregate_rate(slow_disk, kmeans, 6) / aggregate_rate(fast_disk, kmeans, 6);
  EXPECT_LT(terasort_drop, 0.95);
  EXPECT_GT(kmeans_drop, 0.99);
}

TEST(ModelSweeps, ZeroOverheadsGiveIdealScalingUntilResourceBind) {
  NodeSpec ideal = NodeSpec{};
  ideal.thread_overhead = 0.0;
  ideal.sched_overhead = 0.0;
  ideal.seek_overhead = 0.0;
  auto spec = workload::make_puma_job(workload::Puma::kGrep);
  spec.map_task_memory = 1 * kGiB;  // memory never binds up to 20 tasks
  // Below every bind, aggregate is exactly linear in n.
  const double r1 = aggregate_rate(ideal, spec, 1);
  for (int n = 2; n <= 8; ++n) {
    EXPECT_NEAR(aggregate_rate(ideal, spec, n), r1 * n, r1 * 0.01) << "n=" << n;
  }
}

TEST(ModelSweeps, AggregateNeverNegativeOrExplosive) {
  // Robustness sweep across extreme parameter corners.
  const auto spec = workload::make_puma_job(workload::Puma::kAdjacencyList);
  for (double penalty : {0.0, 1.0, 100.0}) {
    for (Bytes memory : {8 * kGiB, 32 * kGiB, 256 * kGiB}) {
      NodeSpec node;
      node.paging_penalty = penalty;
      node.memory = memory;
      for (int n = 1; n <= 32; ++n) {
        const double rate = aggregate_rate(node, spec, n);
        ASSERT_GE(rate, 0.0);
        // Never exceeds the no-contention bound: n tasks at one core each.
        const double per_task_cpu_bound =
            static_cast<double>(kMiB) / spec.map_cpu_per_mib;
        ASSERT_LE(rate, n * per_task_cpu_bound * 1.01);
      }
    }
  }
}

class IncastSweep : public ::testing::TestWithParam<int> {};

TEST_P(IncastSweep, EfficiencyMonotoneInStreams) {
  NetworkSpec net;
  net.incast_knee_streams = GetParam();
  double prev = 1.0;
  for (int streams = 1; streams <= 100; ++streams) {
    const double eff = net.incast_efficiency(streams);
    ASSERT_LE(eff, prev + 1e-12);
    ASSERT_GT(eff, 0.0);
    prev = eff;
  }
  EXPECT_DOUBLE_EQ(net.incast_efficiency(GetParam()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Knees, IncastSweep, ::testing::Values(1, 4, 12, 40));

}  // namespace
}  // namespace smr::cluster
