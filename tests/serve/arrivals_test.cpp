#include "smr/serve/arrivals.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "smr/common/error.hpp"

namespace smr::serve {
namespace {

TenantConfig grep_tenant(const std::string& name, double jobs_per_hour) {
  TenantConfig tenant;
  tenant.name = name;
  tenant.jobs_per_hour = jobs_per_hour;
  tenant.shape.candidates = {workload::Puma::kGrep};
  tenant.shape.min_input = 1 * kGiB;
  tenant.shape.max_input = 4 * kGiB;
  tenant.shape.reduce_tasks = 4;
  return tenant;
}

TEST(GenerateArrivals, DeterministicInSeed) {
  const std::vector<TenantConfig> tenants = {grep_tenant("a", 30.0),
                                             grep_tenant("b", 10.0)};
  const ArrivalTrace one = generate_arrivals(tenants, 7200.0, 7);
  const ArrivalTrace two = generate_arrivals(tenants, 7200.0, 7);
  ASSERT_EQ(one.arrivals.size(), two.arrivals.size());
  for (std::size_t i = 0; i < one.arrivals.size(); ++i) {
    EXPECT_EQ(one.arrivals[i].tenant, two.arrivals[i].tenant);
    EXPECT_DOUBLE_EQ(one.arrivals[i].job.submit_at, two.arrivals[i].job.submit_at);
    EXPECT_EQ(one.arrivals[i].job.spec.input_size, two.arrivals[i].job.spec.input_size);
  }
  const ArrivalTrace other = generate_arrivals(tenants, 7200.0, 8);
  ASSERT_FALSE(other.arrivals.empty());
  EXPECT_NE(other.arrivals[0].job.submit_at, one.arrivals[0].job.submit_at);
}

TEST(GenerateArrivals, AddingATenantDoesNotPerturbEarlierStreams) {
  const ArrivalTrace solo = generate_arrivals({grep_tenant("a", 20.0)}, 3600.0, 3);
  const ArrivalTrace duo = generate_arrivals(
      {grep_tenant("a", 20.0), grep_tenant("b", 40.0)}, 3600.0, 3);

  std::vector<const Arrival*> tenant0;
  for (const auto& arrival : duo.arrivals) {
    if (arrival.tenant == 0) tenant0.push_back(&arrival);
  }
  ASSERT_EQ(tenant0.size(), solo.arrivals.size());
  for (std::size_t i = 0; i < tenant0.size(); ++i) {
    EXPECT_DOUBLE_EQ(tenant0[i]->job.submit_at, solo.arrivals[i].job.submit_at);
    EXPECT_EQ(tenant0[i]->job.spec.input_size,
              solo.arrivals[i].job.spec.input_size);
  }
}

TEST(GenerateArrivals, SortedAndInsideHorizon) {
  const ArrivalTrace trace = generate_arrivals(
      {grep_tenant("a", 60.0), grep_tenant("b", 60.0)}, 1800.0, 1);
  ASSERT_FALSE(trace.arrivals.empty());
  for (std::size_t i = 0; i < trace.arrivals.size(); ++i) {
    EXPECT_GE(trace.arrivals[i].job.submit_at, 0.0);
    EXPECT_LT(trace.arrivals[i].job.submit_at, 1800.0);
    if (i > 0) {
      EXPECT_GE(trace.arrivals[i].job.submit_at,
                trace.arrivals[i - 1].job.submit_at);
    }
  }
}

TEST(GenerateArrivals, RateControlsVolume) {
  const auto slow = generate_arrivals({grep_tenant("a", 10.0)}, 7200.0, 2);
  const auto fast = generate_arrivals({grep_tenant("a", 100.0)}, 7200.0, 2);
  // 20 vs 200 expected arrivals; any sane draw keeps these far apart.
  EXPECT_GT(fast.arrivals.size(), slow.arrivals.size() * 3);
}

TEST(GenerateArrivals, SloClassesStampDeadlines) {
  TenantConfig tenant = grep_tenant("a", 30.0);
  workload::SyntheticMixConfig::SloClass slo;
  slo.name = "gold";
  slo.base_deadline_s = 100.0;
  slo.per_gib_s = 10.0;
  tenant.shape.slo_classes = {slo};
  const auto trace = generate_arrivals({tenant}, 3600.0, 4);
  ASSERT_FALSE(trace.arrivals.empty());
  for (const auto& arrival : trace.arrivals) {
    EXPECT_EQ(arrival.job.spec.slo_class, "gold");
    EXPECT_GE(arrival.job.spec.relative_deadline, 100.0);
    EXPECT_NE(arrival.job.spec.relative_deadline, kTimeNever);
  }
}

TEST(GenerateArrivals, RejectsBadConfigs) {
  EXPECT_THROW(generate_arrivals({}, 3600.0, 1), SmrError);
  EXPECT_THROW(generate_arrivals({grep_tenant("a", 0.0)}, 3600.0, 1), SmrError);
  EXPECT_THROW(generate_arrivals({grep_tenant("a", 30.0)}, 0.0, 1), SmrError);
}

TEST(ArrivalsCsv, RoundTripsThroughWriteAndParse) {
  TenantConfig tenant = grep_tenant("a", 30.0);
  workload::SyntheticMixConfig::SloClass slo;
  tenant.shape.slo_classes = {slo};
  const ArrivalTrace trace =
      generate_arrivals({tenant, grep_tenant("b", 15.0)}, 3600.0, 5);

  std::stringstream csv;
  write_arrivals_csv(trace, csv);
  const ArrivalTrace parsed = parse_arrivals_csv(csv);

  ASSERT_EQ(parsed.tenants.size(), trace.tenants.size());
  ASSERT_EQ(parsed.arrivals.size(), trace.arrivals.size());
  for (std::size_t i = 0; i < trace.arrivals.size(); ++i) {
    const Arrival& a = trace.arrivals[i];
    const Arrival& b = parsed.arrivals[i];
    EXPECT_EQ(trace.tenants[static_cast<std::size_t>(a.tenant)],
              parsed.tenants[static_cast<std::size_t>(b.tenant)]);
    EXPECT_EQ(a.job.spec.name, b.job.spec.name);
    EXPECT_EQ(a.job.spec.slo_class, b.job.spec.slo_class);
    // Sizes and times pass through decimal text; allow formatting slack.
    EXPECT_NEAR(static_cast<double>(b.job.spec.input_size),
                static_cast<double>(a.job.spec.input_size),
                0.001 * static_cast<double>(a.job.spec.input_size));
    EXPECT_NEAR(b.job.submit_at, a.job.submit_at, 0.01 * (a.job.submit_at + 1.0));
    if (a.job.spec.relative_deadline == kTimeNever) {
      EXPECT_EQ(b.job.spec.relative_deadline, kTimeNever);
    } else {
      EXPECT_NEAR(b.job.spec.relative_deadline, a.job.spec.relative_deadline,
                  0.01 * a.job.spec.relative_deadline);
    }
  }
}

TEST(ArrivalsCsv, ParsesOptionalSloColumnsAndInf) {
  std::stringstream csv(
      "tenant,benchmark,input_gib,arrive_at,slo_class,deadline_s\n"
      "alpha,grep,2.5,10\n"
      "beta,terasort,1.0,5,gold,300\n"
      "alpha,grep,1.5,20,,inf\n");
  const ArrivalTrace trace = parse_arrivals_csv(csv);
  ASSERT_EQ(trace.tenants.size(), 2u);
  EXPECT_EQ(trace.tenants[0], "alpha");
  EXPECT_EQ(trace.tenants[1], "beta");
  ASSERT_EQ(trace.arrivals.size(), 3u);
  // Sorted by time: beta@5, alpha@10, alpha@20.
  EXPECT_EQ(trace.arrivals[0].tenant, 1);
  EXPECT_EQ(trace.arrivals[0].job.spec.slo_class, "gold");
  EXPECT_DOUBLE_EQ(trace.arrivals[0].job.spec.relative_deadline, 300.0);
  EXPECT_EQ(trace.arrivals[1].tenant, 0);
  EXPECT_EQ(trace.arrivals[1].job.spec.relative_deadline, kTimeNever);
  EXPECT_EQ(trace.arrivals[2].job.spec.relative_deadline, kTimeNever);
}

TEST(ArrivalsCsv, RejectsMalformedRows) {
  {
    std::stringstream csv("alpha,not-a-benchmark,2,10\n");
    EXPECT_THROW(parse_arrivals_csv(csv), SmrError);
  }
  {
    std::stringstream csv("alpha,grep,2\n");
    EXPECT_THROW(parse_arrivals_csv(csv), SmrError);
  }
  {
    std::stringstream csv("alpha,grep,-2,10\n");
    EXPECT_THROW(parse_arrivals_csv(csv), SmrError);
  }
  {
    std::stringstream csv("alpha,grep,2,-10\n");
    EXPECT_THROW(parse_arrivals_csv(csv), SmrError);
  }
}

}  // namespace
}  // namespace smr::serve
