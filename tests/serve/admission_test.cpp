#include "smr/serve/admission.hpp"

#include <gtest/gtest.h>

#include "smr/common/error.hpp"

namespace smr::serve {
namespace {

TEST(AdmissionController, UnlimitedAdmitsEverything) {
  AdmissionConfig config;  // max_in_system = 0 means no limit
  AdmissionController controller(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kAdmit);
  }
  EXPECT_EQ(controller.in_system(), 100);
  EXPECT_EQ(controller.admitted(), 100);
  EXPECT_EQ(controller.shed(), 0);
}

TEST(AdmissionController, ShedsBeyondTheLimit) {
  AdmissionConfig config;
  config.max_in_system = 2;
  config.policy = AdmissionPolicy::kShed;
  AdmissionController controller(config);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kAdmit);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kAdmit);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kShed);
  EXPECT_EQ(controller.in_system(), 2);
  EXPECT_EQ(controller.shed(), 1);
  EXPECT_EQ(controller.peak_in_system(), 2);

  // A departure frees a slot for the next arrival (shed jobs are gone).
  EXPECT_FALSE(controller.on_departure());
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kAdmit);
  EXPECT_EQ(controller.admitted(), 3);
}

TEST(AdmissionController, DefersThenShedsAtPendingBound) {
  AdmissionConfig config;
  config.max_in_system = 1;
  config.max_pending = 2;
  config.policy = AdmissionPolicy::kDefer;
  AdmissionController controller(config);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kAdmit);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kDefer);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kDefer);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kShed);
  EXPECT_EQ(controller.pending(), 2);
  EXPECT_EQ(controller.peak_pending(), 2);
  EXPECT_EQ(controller.deferred(), 2);
  EXPECT_EQ(controller.shed(), 1);
}

TEST(AdmissionController, DepartureReleasesDeferredJobs) {
  AdmissionConfig config;
  config.max_in_system = 1;
  config.policy = AdmissionPolicy::kDefer;
  AdmissionController controller(config);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kAdmit);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kDefer);

  EXPECT_TRUE(controller.on_departure());
  controller.on_deferred_admitted();
  EXPECT_EQ(controller.in_system(), 1);
  EXPECT_EQ(controller.pending(), 0);
  EXPECT_EQ(controller.admitted(), 2);

  // No pending jobs left: the next departure releases nothing.
  EXPECT_FALSE(controller.on_departure());
  EXPECT_EQ(controller.in_system(), 0);
}

TEST(AdmissionController, UnboundedPendingNeverSheds) {
  AdmissionConfig config;
  config.max_in_system = 1;
  config.max_pending = 0;  // unbounded
  config.policy = AdmissionPolicy::kDefer;
  AdmissionController controller(config);
  EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kAdmit);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(controller.on_arrival(), AdmissionDecision::kDefer);
  }
  EXPECT_EQ(controller.shed(), 0);
  EXPECT_EQ(controller.pending(), 50);
}

TEST(AdmissionController, MisuseAborts) {
  AdmissionController controller(AdmissionConfig{});
  EXPECT_THROW(controller.on_departure(), SmrError);
  EXPECT_THROW(controller.on_deferred_admitted(), SmrError);
}

TEST(AdmissionPolicyName, Names) {
  EXPECT_STREQ(admission_policy_name(AdmissionPolicy::kShed), "shed");
  EXPECT_STREQ(admission_policy_name(AdmissionPolicy::kDefer), "defer");
}

}  // namespace
}  // namespace smr::serve
