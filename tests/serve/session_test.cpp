#include "smr/serve/session.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "smr/common/error.hpp"

namespace smr::serve {
namespace {

// Small, fast serving setup: 4 nodes, small Grep jobs, ~25 arrivals/hour.
ServeConfig small_config(driver::EngineKind engine = driver::EngineKind::kHadoopV1) {
  ServeConfig config;
  config.experiment = driver::ExperimentConfig::paper_default(engine);
  config.experiment.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.experiment.scheduler = driver::SchedulerKind::kDeadline;
  config.horizon = 1800.0;
  config.warmup = 300.0;
  config.drain_limit = 3600.0;
  config.seed = 11;

  TenantConfig tenant;
  tenant.name = "t0";
  tenant.jobs_per_hour = 25.0;
  tenant.shape.candidates = {workload::Puma::kGrep};
  tenant.shape.min_input = 1 * kGiB;
  tenant.shape.max_input = 2 * kGiB;
  tenant.shape.reduce_tasks = 4;
  workload::SyntheticMixConfig::SloClass slo;
  slo.base_deadline_s = 600.0;
  slo.per_gib_s = 60.0;
  tenant.shape.slo_classes = {slo};
  config.tenants.push_back(tenant);

  TenantConfig other = config.tenants[0];
  other.name = "t1";
  other.jobs_per_hour = 10.0;
  config.tenants.push_back(other);
  return config;
}

std::string report_json(const ServeReport& report) {
  std::stringstream out;
  report.write_json(out);
  return out.str();
}

TEST(ServeSession, ServesOpenLoopArrivalsToCompletion) {
  ServeSession session(small_config());
  const ServeReport report = session.run();

  EXPECT_TRUE(report.completed) << report.failure_reason;
  EXPECT_EQ(report.unfinished, 0);
  EXPECT_GT(report.aggregate.arrived, 0);
  // No admission limit: every measured arrival completes (generous drain).
  EXPECT_EQ(report.aggregate.completed, report.aggregate.arrived);
  EXPECT_EQ(report.aggregate.shed, 0);
  EXPECT_EQ(report.aggregate.failed, 0);
  ASSERT_GT(report.aggregate.latency.count, 0u);
  EXPECT_GT(report.aggregate.latency.p50, 0.0);
  EXPECT_GE(report.aggregate.latency.p99, report.aggregate.latency.p50);
  EXPECT_GE(report.aggregate.mean_slowdown, 1.0);
  EXPECT_GT(report.utilization, 0.0);
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].name, "t0");
  // Makespan covers the horizon (jobs keep arriving until its end) but
  // respects the drain limit.
  EXPECT_GE(report.makespan, 1500.0);
  EXPECT_LE(report.makespan, 1800.0 + 3600.0);
}

TEST(ServeSession, DeterministicForFixedSeed) {
  ServeSession one(small_config());
  ServeSession two(small_config());
  EXPECT_EQ(report_json(one.run()), report_json(two.run()));

  ServeConfig reseeded = small_config();
  reseeded.seed = 12;
  ServeSession three(reseeded);
  EXPECT_NE(report_json(three.run()), report_json(ServeSession(small_config()).run()));
}

TEST(ServeSession, RunMatchesReplayOfItsOwnTrace) {
  // run() is exactly replay() over the generated stream.
  ServeConfig config = small_config();
  const ArrivalTrace trace =
      generate_arrivals(config.tenants, config.horizon, config.seed ^ 0xa11a5eedULL);
  ServeSession generated(config);
  ServeSession replayed(config);
  EXPECT_EQ(report_json(generated.run()),
            report_json(replayed.replay(trace)));
}

TEST(ServeSession, ShedPolicyBoundsJobsInSystem) {
  ServeConfig config = small_config();
  config.admission.max_in_system = 1;
  config.admission.policy = AdmissionPolicy::kShed;
  ServeSession session(config);

  obs::MetricsRegistry registry;
  const ServeReport report = session.replay(
      generate_arrivals(config.tenants, config.horizon, 99), &registry);

  EXPECT_GT(report.aggregate.shed, 0);
  // Every arrival is either admitted (completed) or shed; nothing lingers.
  EXPECT_EQ(report.aggregate.completed + report.aggregate.shed,
            report.aggregate.arrived);
  // The serve counters cover the whole run (warmup included), so they are
  // at least the measured-window counts.
  EXPECT_GE(registry.counter("serve.jobs_shed").value(), report.aggregate.shed);
  EXPECT_GE(registry.counter("serve.jobs_arrived").value(),
            report.aggregate.arrived);
  EXPECT_EQ(registry.counter("serve.jobs_arrived").value(),
            registry.counter("serve.jobs_admitted").value() +
                registry.counter("serve.jobs_shed").value() +
                registry.counter("serve.jobs_deferred").value());
}

TEST(ServeSession, DeferPolicyQueuesInsteadOfShedding) {
  ServeConfig config = small_config();
  config.admission.max_in_system = 1;
  config.admission.max_pending = 0;  // unbounded queue
  config.admission.policy = AdmissionPolicy::kDefer;
  ServeSession session(config);
  const ServeReport report = session.run();

  EXPECT_TRUE(report.completed) << report.failure_reason;
  EXPECT_EQ(report.aggregate.shed, 0);
  EXPECT_GT(report.aggregate.deferred, 0);
  // Deferred jobs eventually run; latency then includes the queue wait on
  // top of service time under a 1-job limit.
  EXPECT_EQ(report.aggregate.completed, report.aggregate.arrived);
  EXPECT_GT(report.aggregate.mean_slowdown, 1.05);
}

TEST(ServeSession, EmitsServeTelemetry) {
  obs::MetricsRegistry registry;
  ServeSession session(small_config());
  session.run(&registry);

  EXPECT_GT(registry.counter("serve.jobs_arrived").value(), 0);
  EXPECT_GT(registry.counter("serve.jobs_completed").value(), 0);
  EXPECT_GT(registry.histogram("serve.latency_s", {}).total_count(), 0);
  EXPECT_GT(registry.series("serve.jobs_in_system").size(), 0u);
  // SLO verdicts are tracked for deadline-carrying jobs.
  EXPECT_GT(registry.counter("serve.slo_met").value() +
                registry.counter("serve.slo_missed").value(),
            0);
  // The runtime's own telemetry shares the registry.
  EXPECT_GT(registry.counter("heartbeats.processed").value(), 0);
}

TEST(ServeSession, SingleUse) {
  ServeSession session(small_config());
  session.run();
  EXPECT_THROW(session.run(), SmrError);
}

TEST(ServeSession, RejectsEmptyTraces) {
  ServeSession session(small_config());
  EXPECT_THROW(session.replay(ArrivalTrace{}), SmrError);
}

TEST(ServeConfig, ValidatesWindows) {
  ServeConfig config = small_config();
  config.warmup = config.horizon;
  EXPECT_THROW(config.validate(), SmrError);
  config = small_config();
  config.horizon = 0.0;
  EXPECT_THROW(config.validate(), SmrError);
}

}  // namespace
}  // namespace smr::serve
