#include "smr/serve/slo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace smr::serve {
namespace {

TEST(SummarizeLatency, EmptyHasNaNPercentiles) {
  const LatencyStats stats = summarize_latency({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_TRUE(std::isnan(stats.mean));
  EXPECT_TRUE(std::isnan(stats.p50));
  EXPECT_TRUE(std::isnan(stats.p99));
  EXPECT_TRUE(std::isnan(stats.max));
}

TEST(SummarizeLatency, ComputesMomentsAndPercentiles) {
  const LatencyStats stats = summarize_latency({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.mean, 30.0);
  EXPECT_DOUBLE_EQ(stats.p50, 30.0);
  EXPECT_DOUBLE_EQ(stats.max, 50.0);
  EXPECT_GE(stats.p99, stats.p95);
  EXPECT_GE(stats.p95, stats.p50);
}

SloTracker make_tracker() {
  return SloTracker(/*warmup_end=*/100.0, /*measure_end=*/1100.0, {"a", "b"});
}

TEST(SloTracker, ExcludesWarmupAndPostHorizonArrivals) {
  SloTracker tracker = make_tracker();
  tracker.record_arrival(0, 50.0);     // warmup: excluded
  tracker.record_arrival(0, 100.0);    // window start: included
  tracker.record_arrival(0, 1099.0);   // included
  tracker.record_arrival(0, 1100.0);   // past measure end: excluded
  tracker.record_outcome(0, 50.0, 80.0, 20.0, kTimeNever, false);  // excluded

  ServeReport report;
  tracker.fill(report);
  EXPECT_EQ(report.aggregate.arrived, 2);
  EXPECT_EQ(report.aggregate.completed, 0);
}

TEST(SloTracker, CountsOutcomesByArrivalTime) {
  SloTracker tracker = make_tracker();
  tracker.record_arrival(0, 200.0);
  // Arrived inside the window, finished long after the horizon: still a
  // measured completion (steady state measures by arrival cohort).
  tracker.record_outcome(0, 200.0, 2200.0, 500.0, kTimeNever, false);
  ServeReport report;
  tracker.fill(report);
  EXPECT_EQ(report.aggregate.completed, 1);
  ASSERT_EQ(report.aggregate.latency.count, 1u);
  EXPECT_DOUBLE_EQ(report.aggregate.latency.p50, 2000.0);
  // Slowdown = sojourn / service = 2000 / 500.
  EXPECT_DOUBLE_EQ(report.aggregate.mean_slowdown, 4.0);
}

TEST(SloTracker, SloAccountingAndGoodput) {
  SloTracker tracker = make_tracker();  // window = 1000 s
  tracker.record_arrival(0, 200.0);
  tracker.record_arrival(0, 300.0);
  tracker.record_arrival(1, 400.0);
  tracker.record_outcome(0, 200.0, 250.0, 50.0, /*deadline=*/260.0, false);  // met
  tracker.record_outcome(0, 300.0, 500.0, 50.0, /*deadline=*/400.0, false);  // missed
  tracker.record_outcome(1, 400.0, 450.0, 50.0, kTimeNever, false);  // no SLO

  ServeReport report;
  tracker.fill(report);
  EXPECT_EQ(report.aggregate.completed, 3);
  EXPECT_EQ(report.aggregate.with_deadline, 2);
  // Deadline-free completions count as met (goodput for SLO-less mixes).
  EXPECT_EQ(report.aggregate.slo_met, 2);
  // 2 SLO-met jobs in a 1000 s window = 7.2 jobs/hour.
  EXPECT_NEAR(report.aggregate.goodput_per_hour, 7.2, 1e-9);

  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].name, "a");
  EXPECT_EQ(report.tenants[0].slo_met, 1);
  EXPECT_EQ(report.tenants[1].slo_met, 1);
}

TEST(SloTracker, FailedJobsCountSeparately) {
  SloTracker tracker = make_tracker();
  tracker.record_arrival(0, 200.0);
  tracker.record_outcome(0, 200.0, 400.0, 100.0, kTimeNever, /*failed=*/true);
  ServeReport report;
  tracker.fill(report);
  EXPECT_EQ(report.aggregate.failed, 1);
  EXPECT_EQ(report.aggregate.completed, 0);
  EXPECT_EQ(report.aggregate.latency.count, 0u);
}

TEST(SloTracker, AggregateSumsTenants) {
  SloTracker tracker = make_tracker();
  tracker.record_arrival(0, 200.0);
  tracker.record_arrival(1, 300.0);
  tracker.record_shed(1, 350.0);
  tracker.record_deferred(0, 200.0);
  ServeReport report;
  tracker.fill(report);
  EXPECT_EQ(report.aggregate.arrived,
            report.tenants[0].arrived + report.tenants[1].arrived);
  EXPECT_EQ(report.aggregate.shed, 1);
  EXPECT_EQ(report.aggregate.deferred, 1);
}

TEST(ServeReport, JsonWritesNullForMissingPercentiles) {
  SloTracker tracker = make_tracker();
  ServeReport report;
  tracker.fill(report);
  report.engine = "SMapReduce";
  report.scheduler = "deadline";
  report.admission = "shed";

  std::stringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"engine\":\"SMapReduce\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_s\":null"), std::string::npos);
  // No bare non-JSON number tokens ("tenants"/"unfinished" contain the
  // letters, so anchor on the value position).
  EXPECT_EQ(json.find(":nan"), std::string::npos);
  EXPECT_EQ(json.find(":-nan"), std::string::npos);
  EXPECT_EQ(json.find(":inf"), std::string::npos);
  EXPECT_EQ(json.find(":-inf"), std::string::npos);
}

TEST(ServeReport, JsonCarriesCountsAndTenants) {
  SloTracker tracker = make_tracker();
  tracker.record_arrival(0, 200.0);
  tracker.record_outcome(0, 200.0, 260.0, 30.0, 300.0, false);
  ServeReport report;
  tracker.fill(report);

  std::stringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_s\":60"), std::string::npos);
}

}  // namespace
}  // namespace smr::serve
