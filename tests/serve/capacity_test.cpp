#include "smr/serve/capacity.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "smr/common/error.hpp"

namespace smr::serve {
namespace {

// The bench grid (bench/serve_capacity.cpp) trimmed to the rates that
// separate the engines: at 90 jobs/h every engine keeps up, at 120 the
// static-slot engine starts shedding while SMapReduce still clears the
// queue within the p99 bound.
CapacityConfig knee_config() {
  CapacityConfig config;
  config.base.experiment =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kSMapReduce);
  config.base.experiment.scheduler = driver::SchedulerKind::kDeadline;

  workload::SyntheticMixConfig shape;
  shape.candidates = {workload::Puma::kGrep};
  shape.min_input = 4 * kGiB;
  shape.max_input = 12 * kGiB;
  shape.reduce_tasks = 30;
  workload::SyntheticMixConfig::SloClass slo;
  slo.base_deadline_s = 600.0;
  slo.per_gib_s = 60.0;
  shape.slo_classes.push_back(slo);

  for (int i = 0; i < 2; ++i) {
    TenantConfig tenant;
    tenant.name = "tenant" + std::to_string(i);
    tenant.jobs_per_hour = 1.0;
    tenant.shape = shape;
    config.base.tenants.push_back(std::move(tenant));
  }

  config.base.admission.max_in_system = 12;
  config.base.admission.policy = AdmissionPolicy::kShed;
  config.base.horizon = 3600.0;
  config.base.warmup = 600.0;
  config.base.drain_limit = 3600.0;
  config.base.seed = 7;

  config.rates = {90.0, 120.0};
  config.p99_bound_s = 1200.0;
  config.max_shed_fraction = 0.0;
  return config;
}

TEST(ScaleTenants, ScalesProportionally) {
  TenantConfig a;
  a.name = "a";
  a.jobs_per_hour = 1.0;
  TenantConfig b = a;
  b.name = "b";
  b.jobs_per_hour = 3.0;
  const auto scaled = scale_tenants({a, b}, 120.0);
  ASSERT_EQ(scaled.size(), 2u);
  EXPECT_DOUBLE_EQ(scaled[0].jobs_per_hour, 30.0);
  EXPECT_DOUBLE_EQ(scaled[1].jobs_per_hour, 90.0);
}

TEST(CapacityConfigValidate, RejectsBadGrids) {
  CapacityConfig config = knee_config();
  config.rates = {};
  EXPECT_THROW(config.validate(), SmrError);
  config = knee_config();
  config.rates = {120.0, 90.0};  // not ascending
  EXPECT_THROW(config.validate(), SmrError);
  config = knee_config();
  config.rates = {0.0, 90.0};
  EXPECT_THROW(config.validate(), SmrError);
  config = knee_config();
  config.p99_bound_s = 0.0;
  EXPECT_THROW(config.validate(), SmrError);
}

// The acceptance claim for the serving subsystem: dynamic slot management
// sustains a strictly higher arrival rate than static slots at the same
// p99 bound.  Also pins the sweep's determinism: two sweeps with the same
// seed produce byte-identical JSON.
TEST(CapacitySweep, SMapReduceKneeBeatsHadoopV1) {
  const CapacityConfig config = knee_config();
  const std::vector<driver::EngineKind> engines = {
      driver::EngineKind::kHadoopV1, driver::EngineKind::kSMapReduce};

  const auto curves = sweep_engines(config, engines);
  ASSERT_EQ(curves.size(), 2u);
  const CapacityCurve& hadoop = curves[0];
  const CapacityCurve& smr = curves[1];
  EXPECT_EQ(hadoop.engine, "HadoopV1");
  EXPECT_EQ(smr.engine, "SMapReduce");

  // Both engines sustain the low rate; only SMapReduce sustains the high
  // one, so its knee is strictly higher.
  ASSERT_EQ(hadoop.points.size(), 2u);
  EXPECT_TRUE(hadoop.points[0].sustainable);
  EXPECT_FALSE(hadoop.points[1].sustainable);
  EXPECT_TRUE(smr.points[0].sustainable);
  EXPECT_TRUE(smr.points[1].sustainable);
  EXPECT_GT(smr.knee_jobs_per_hour, hadoop.knee_jobs_per_hour);
  EXPECT_DOUBLE_EQ(smr.knee_jobs_per_hour, 120.0);
  EXPECT_DOUBLE_EQ(hadoop.knee_jobs_per_hour, 90.0);

  // At the contested rate the static engine sheds; SMapReduce does not.
  EXPECT_GT(hadoop.points[1].report.aggregate.shed, 0);
  EXPECT_EQ(smr.points[1].report.aggregate.shed, 0);

  // Deterministic: rerunning the sweep reproduces the JSON byte for byte.
  std::stringstream first, second;
  write_capacity_json(config, curves, first);
  write_capacity_json(config, sweep_engines(config, engines), second);
  ASSERT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());

  // The JSON report carries the grid and both curves.
  const std::string json = first.str();
  EXPECT_NE(json.find("\"p99_bound_s\":1200"), std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"HadoopV1\""), std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"SMapReduce\""), std::string::npos);
  EXPECT_NE(json.find("\"knee_jobs_per_hour\":120"), std::string::npos);
}

}  // namespace
}  // namespace smr::serve
