#include "smr/serve/burn_rate.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "smr/common/error.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/obs/metrics_registry.hpp"
#include "smr/serve/session.hpp"

namespace smr::serve {
namespace {

BurnRateConfig fast_config() {
  BurnRateConfig config;
  config.window = 100.0;
  config.target = 0.9;  // budget 0.1: fraction >= 0.2 alerts at threshold 2
  config.threshold = 2.0;
  config.min_samples = 5;
  config.cooldown = 50.0;
  return config;
}

TEST(BurnRateTracker, NoAlertBelowMinSamples) {
  BurnRateTracker tracker(fast_config(), {"t0"});
  for (int i = 1; i <= 4; ++i) {
    EXPECT_FALSE(tracker.record(0, static_cast<double>(i), false).has_value());
  }
  // The fifth outcome reaches min_samples with a 100% miss fraction.
  const auto alert = tracker.record(0, 5.0, false);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->tenant, 0);
  EXPECT_EQ(alert->tenant_name, "t0");
  EXPECT_DOUBLE_EQ(alert->miss_fraction, 1.0);
  EXPECT_DOUBLE_EQ(alert->burn_rate, 10.0);  // 1.0 / (1 - 0.9)
  EXPECT_EQ(alert->window_samples, 5u);
  EXPECT_EQ(tracker.alerts().size(), 1u);
}

TEST(BurnRateTracker, MetOutcomesKeepBurnBelowThreshold) {
  BurnRateTracker tracker(fast_config(), {"t0"});
  // 1 miss in 10 outcomes: fraction 0.1, burn 1.0 < threshold 2.0.
  for (int i = 1; i <= 9; ++i) tracker.record(0, static_cast<double>(i), true);
  EXPECT_FALSE(tracker.record(0, 10.0, false).has_value());
  EXPECT_DOUBLE_EQ(tracker.burn_rate(0), 1.0);
  EXPECT_TRUE(tracker.alerts().empty());
}

TEST(BurnRateTracker, CooldownBoundsAlertStream) {
  BurnRateTracker tracker(fast_config(), {"t0"});
  int alerts = 0;
  // A sustained 100% burn for 120 s of one miss per second: the first
  // alert fires at min_samples, then one more after each 50 s cooldown.
  for (int i = 1; i <= 120; ++i) {
    if (tracker.record(0, static_cast<double>(i), false)) ++alerts;
  }
  EXPECT_EQ(alerts, 3);  // t=5, t=55, t=105
  ASSERT_EQ(tracker.alerts().size(), 3u);
  EXPECT_DOUBLE_EQ(tracker.alerts()[0].time, 5.0);
  EXPECT_DOUBLE_EQ(tracker.alerts()[1].time, 55.0);
  EXPECT_DOUBLE_EQ(tracker.alerts()[2].time, 105.0);
}

TEST(BurnRateTracker, WindowEvictsOldOutcomes) {
  BurnRateTracker tracker(fast_config(), {"t0"});
  for (int i = 0; i < 5; ++i) tracker.record(0, static_cast<double>(i), false);
  EXPECT_DOUBLE_EQ(tracker.burn_rate(0), 10.0);
  // 200 s later every miss has aged out of the 100 s window.
  tracker.record(0, 200.0, true);
  EXPECT_DOUBLE_EQ(tracker.burn_rate(0), 0.0);
}

TEST(BurnRateTracker, TenantsAreIsolated) {
  BurnRateTracker tracker(fast_config(), {"t0", "t1"});
  for (int i = 1; i <= 10; ++i) {
    tracker.record(0, static_cast<double>(i), false);
    tracker.record(1, static_cast<double>(i), true);
  }
  EXPECT_GT(tracker.burn_rate(0), 2.0);
  EXPECT_DOUBLE_EQ(tracker.burn_rate(1), 0.0);
  for (const BurnAlert& alert : tracker.alerts()) {
    EXPECT_EQ(alert.tenant, 0);
  }
  EXPECT_FALSE(tracker.alerts().empty());
}

TEST(BurnRateTracker, WritesAlertsAsJsonl) {
  BurnRateTracker tracker(fast_config(), {"gold"});
  for (int i = 1; i <= 5; ++i) tracker.record(0, static_cast<double>(i), false);
  std::ostringstream out;
  tracker.write_alerts_jsonl(out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"type\":\"slo_alert\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"tenant_name\":\"gold\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"burn_rate\":10"), std::string::npos);
  EXPECT_NE(jsonl.find("\"threshold\":2"), std::string::npos);
}

TEST(BurnRateConfig, ValidatesBounds) {
  BurnRateConfig config = fast_config();
  config.target = 1.0;
  EXPECT_THROW(config.validate(), SmrError);
  config = fast_config();
  config.window = 0.0;
  EXPECT_THROW(config.validate(), SmrError);
  config = fast_config();
  config.min_samples = 0;
  EXPECT_THROW(config.validate(), SmrError);
  config = fast_config();
  config.cooldown = -1.0;
  EXPECT_THROW(config.validate(), SmrError);
}

// --- ServeSession integration --------------------------------------------

/// Deadlines far tighter than service time: every measured job misses,
/// so the burn rate saturates and alerts must fire.
ServeConfig missing_config() {
  ServeConfig config;
  config.experiment =
      driver::ExperimentConfig::paper_default(driver::EngineKind::kHadoopV1);
  config.experiment.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.experiment.scheduler = driver::SchedulerKind::kDeadline;
  config.horizon = 1800.0;
  config.warmup = 300.0;
  config.drain_limit = 3600.0;
  config.seed = 11;

  TenantConfig tenant;
  tenant.name = "t0";
  tenant.jobs_per_hour = 40.0;
  tenant.shape.candidates = {workload::Puma::kGrep};
  tenant.shape.min_input = 1 * kGiB;
  tenant.shape.max_input = 2 * kGiB;
  tenant.shape.reduce_tasks = 4;
  workload::SyntheticMixConfig::SloClass slo;
  slo.base_deadline_s = 30.0;  // impossible: service time is minutes
  slo.per_gib_s = 0.0;
  tenant.shape.slo_classes = {slo};
  config.tenants.push_back(tenant);

  config.burn.window = 600.0;
  config.burn.target = 0.9;
  config.burn.threshold = 2.0;
  config.burn.min_samples = 3;
  config.burn.cooldown = 300.0;
  return config;
}

TEST(ServeBurnRate, SessionFiresAlertsOnSustainedMisses) {
  obs::MetricsRegistry registry;
  metrics::TraceLog trace;
  ServeSession session(missing_config());
  session.set_trace(&trace);
  const ServeReport report = session.run(&registry);
  ASSERT_TRUE(report.completed) << report.failure_reason;
  EXPECT_GT(report.aggregate.arrived, 0);

  ASSERT_FALSE(session.burn_alerts().empty());
  EXPECT_EQ(registry.counter("serve.slo_alerts").value(),
            static_cast<std::int64_t>(session.burn_alerts().size()));
  // Alerts respect the cooldown: consecutive alerts of one tenant are
  // at least `cooldown` apart.
  const auto& alerts = session.burn_alerts();
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_GE(alerts[i].time - alerts[i - 1].time, 300.0);
  }
  // The burn-rate series tracks the degradation per tenant label.
  EXPECT_GT(registry.series("serve.burn_rate", {{"tenant", "t0"}}).size(), 0u);
  // Every alert landed in the trace as an SLO_ALERT instant.
  std::size_t instants = 0;
  for (const auto& event : trace.events()) {
    if (event.kind == metrics::TraceEventKind::kSloAlert) ++instants;
  }
  EXPECT_EQ(instants, alerts.size());

  std::ostringstream out;
  session.write_burn_alerts_jsonl(out);
  EXPECT_NE(out.str().find("\"type\":\"slo_alert\""), std::string::npos);
}

TEST(ServeBurnRate, AlertsAreDeterministic) {
  ServeSession one(missing_config());
  ServeSession two(missing_config());
  one.run();
  two.run();
  ASSERT_EQ(one.burn_alerts().size(), two.burn_alerts().size());
  for (std::size_t i = 0; i < one.burn_alerts().size(); ++i) {
    EXPECT_DOUBLE_EQ(one.burn_alerts()[i].time, two.burn_alerts()[i].time);
    EXPECT_DOUBLE_EQ(one.burn_alerts()[i].burn_rate,
                     two.burn_alerts()[i].burn_rate);
  }
}

}  // namespace
}  // namespace smr::serve
