// Multi-wave reduce execution: more reduce tasks than reduce slots, so
// later waves wait for slots — the regime where the paper's tail-stretch
// reduce-slot boost (§III-B3) actually pays off.
#include <gtest/gtest.h>

#include <memory>

#include "smr/core/slot_policy.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig four_nodes() {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.seed = 91;
  return config;
}

/// Small shuffle volume but many reduce tasks: 24 reducers on 8 slots.
JobSpec many_reduces_job() {
  auto spec = workload::make_puma_job(workload::Puma::kWordCount, 4 * kGiB);
  spec.reduce_tasks = 24;
  return spec;
}

TEST(ReduceWaves, AllWavesCompleteWithCorrectPartitions) {
  Runtime runtime(four_nodes(), std::make_unique<StaticSlotPolicy>());
  const JobSpec spec = many_reduces_job();
  runtime.submit(spec, 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  const Job& job = runtime.jobs()[0];
  EXPECT_EQ(job.reduces_finished, 24);
  for (const auto& r : job.reduces) {
    EXPECT_EQ(r.phase, ReducePhase::kDone);
    EXPECT_NEAR(r.fetched, static_cast<double>(r.partition_size), 1.0);
  }
}

TEST(ReduceWaves, LaterWavesStartAfterEarlierOnesFinish) {
  Runtime runtime(four_nodes(), std::make_unique<StaticSlotPolicy>());
  runtime.submit(many_reduces_job(), 0.0);
  ASSERT_TRUE(runtime.run().completed);
  const Job& job = runtime.jobs()[0];
  // With 8 slots, at most 8 reducers can ever have been started before the
  // first completion.
  SimTime first_finish = kTimeNever;
  for (const auto& r : job.reduces) {
    first_finish = std::min(first_finish, r.finish_time);
  }
  int started_before_first_finish = 0;
  for (const auto& r : job.reduces) {
    if (r.start_time < first_finish) ++started_before_first_finish;
  }
  EXPECT_LE(started_before_first_finish, 8);
  EXPECT_GE(started_before_first_finish, 7);  // slots were actually full
}

TEST(ReduceWaves, SecondWaveShufflesAfterBarrierInstantAvailability) {
  Runtime runtime(four_nodes(), std::make_unique<StaticSlotPolicy>());
  runtime.submit(many_reduces_job(), 0.0);
  ASSERT_TRUE(runtime.run().completed);
  const Job& job = runtime.jobs()[0];
  for (const auto& r : job.reduces) {
    // Any reducer started after the barrier has its full partition
    // available at launch; its shuffle still takes time (fetch caps).
    if (r.start_time > job.maps_done_time) {
      EXPECT_GE(r.shuffle_end_time, r.start_time);
      EXPECT_LE(r.shuffle_end_time, r.finish_time);
    }
  }
}

TEST(ReduceWaves, TailBoostShortensMultiWaveReduceTime) {
  // §III-B3: in the tail stretch the slot manager grants extra reduce slots
  // when the shuffle volume is small.  With 3 waves of reducers pending,
  // that directly shortens the reduce tail vs the static configuration.
  const JobSpec spec = many_reduces_job();  // wordcount: small shuffle

  Runtime v1(four_nodes(), std::make_unique<StaticSlotPolicy>());
  v1.submit(spec, 0.0);
  const auto v1_result = v1.run();

  core::SlotManagerConfig manager;
  manager.tail_reduce_boost = 4;
  manager.small_shuffle_threshold = 4 * kGiB;
  Runtime smr(four_nodes(), std::make_unique<core::SmrSlotPolicy>(manager));
  smr.submit(spec, 0.0);
  const auto smr_result = smr.run();

  ASSERT_TRUE(v1_result.completed && smr_result.completed);
  EXPECT_LT(smr_result.jobs[0].reduce_time(), v1_result.jobs[0].reduce_time() * 0.9);
}

TEST(ReduceWaves, NoTailBoostForLargeShuffles) {
  // A large shuffle keeps the reduce slots at their configured count even
  // in the tail ("increasing the reduce slots will ... jam the network").
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, 4 * kGiB);
  spec.reduce_tasks = 24;

  core::SlotManagerConfig manager;
  manager.tail_reduce_boost = 4;
  manager.small_shuffle_threshold = 1 * kGiB;  // terasort shuffles 4 GiB
  Runtime smr(four_nodes(), std::make_unique<core::SmrSlotPolicy>(manager));
  smr.submit(spec, 0.0);
  const auto result = smr.run();
  ASSERT_TRUE(result.completed);
  // Reduce targets never exceeded the initial configuration.
  for (const auto& sample : result.slots) {
    EXPECT_LE(sample.reduce_target, 2.0 + 1e-9);
  }
}

TEST(ReduceWaves, WavesInteractSafelyWithFailure) {
  RuntimeConfig config = four_nodes();
  config.failures.push_back({1, 80.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(many_reduces_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(runtime.jobs()[0].reduces_finished, 24);
}

}  // namespace
}  // namespace smr::mapreduce
