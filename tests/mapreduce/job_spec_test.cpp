#include "smr/mapreduce/job_spec.hpp"

#include <gtest/gtest.h>

namespace smr::mapreduce {
namespace {

TEST(JobSpec, MapTaskCountRoundsUp) {
  JobSpec spec;
  spec.input_size = 30 * kGiB;
  spec.split_size = 128 * kMiB;
  EXPECT_EQ(spec.map_task_count(), 240);
  spec.input_size = 30 * kGiB + 1;
  EXPECT_EQ(spec.map_task_count(), 241);
}

TEST(JobSpec, MapOutputScalesWithSelectivity) {
  JobSpec spec;
  spec.input_size = 10 * kGiB;
  spec.map_selectivity = 0.5;
  EXPECT_EQ(spec.map_output_total(), 5 * kGiB);
  spec.map_selectivity = 0.0;
  EXPECT_EQ(spec.map_output_total(), 0);
}

TEST(JobSpec, PartitionSizeIsUniformShare) {
  JobSpec spec;
  spec.input_size = 30 * kGiB;
  spec.map_selectivity = 1.0;
  spec.reduce_tasks = 30;
  EXPECT_EQ(spec.partition_size(), 1 * kGiB);
}

TEST(JobSpec, MapHeavyClassification) {
  JobSpec spec;
  spec.map_selectivity = 0.001;
  EXPECT_TRUE(spec.map_heavy());
  spec.map_selectivity = 1.0;
  EXPECT_FALSE(spec.map_heavy());
}

TEST(JobSpec, DefaultsValidate) {
  EXPECT_NO_THROW(JobSpec{}.validate());
}

TEST(JobSpec, ValidateCatchesBadFields) {
  JobSpec spec;
  spec.input_size = 0;
  EXPECT_THROW(spec.validate(), SmrError);

  spec = JobSpec{};
  spec.reduce_tasks = 0;
  EXPECT_THROW(spec.validate(), SmrError);

  spec = JobSpec{};
  spec.map_cpu_per_mib = 0.0;
  EXPECT_THROW(spec.validate(), SmrError);

  spec = JobSpec{};
  spec.map_selectivity = -0.1;
  EXPECT_THROW(spec.validate(), SmrError);

  spec = JobSpec{};
  spec.shuffle_fetch_cap = 0.0;
  EXPECT_THROW(spec.validate(), SmrError);

  spec = JobSpec{};
  spec.duration_cv = -1.0;
  EXPECT_THROW(spec.validate(), SmrError);
}

}  // namespace
}  // namespace smr::mapreduce
