// Delay scheduling (Zaharia et al., paper reference [13]): a job may
// decline a bounded number of non-local slot offers while waiting for a
// node that holds one of its splits.
#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig locality_config(int wait_offers, int replication = 1) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(16);
  config.cluster.dfs_replication = replication;  // locality is scarce
  config.locality_wait_offers = wait_offers;
  config.seed = 51;
  return config;
}

// Delay scheduling matters for *small* jobs: with only 6 splits on a
// 16-node cluster, most slot offers come from nodes holding none of them,
// so a greedy scheduler runs most maps remotely.
JobSpec locality_job() {
  auto spec = workload::make_puma_job(workload::Puma::kGrep, 768 * kMiB);
  spec.reduce_tasks = 4;
  return spec;
}

double locality_fraction(const Runtime& runtime) {
  const int local = runtime.local_map_launches();
  const int remote = runtime.remote_map_launches();
  return static_cast<double>(local) / static_cast<double>(local + remote);
}

TEST(DelayScheduling, ImprovesLocalityOnScarceReplication) {
  Runtime greedy(locality_config(0), std::make_unique<StaticSlotPolicy>());
  greedy.submit(locality_job(), 0.0);
  ASSERT_TRUE(greedy.run().completed);

  Runtime delayed(locality_config(8), std::make_unique<StaticSlotPolicy>());
  delayed.submit(locality_job(), 0.0);
  ASSERT_TRUE(delayed.run().completed);

  EXPECT_GT(locality_fraction(delayed), locality_fraction(greedy));
}

TEST(DelayScheduling, ZeroWaitMatchesGreedyBaseline) {
  // wait == 0 must be byte-identical to the original greedy behaviour.
  auto run_fraction = [](int wait) {
    Runtime runtime(locality_config(wait), std::make_unique<StaticSlotPolicy>());
    runtime.submit(locality_job(), 0.0);
    runtime.run();
    return locality_fraction(runtime);
  };
  EXPECT_DOUBLE_EQ(run_fraction(0), run_fraction(0));
}

TEST(DelayScheduling, BoundedWaitNeverDeadlocks) {
  // Even with an absurd wait bound the job finishes: skips are counted per
  // offer, so after `wait` declined offers the job takes a remote slot.
  Runtime runtime(locality_config(1000), std::make_unique<StaticSlotPolicy>());
  runtime.submit(locality_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
}

TEST(DelayScheduling, CostsLittleTimeForModestWaits) {
  auto total_time = [](int wait) {
    Runtime runtime(locality_config(wait), std::make_unique<StaticSlotPolicy>());
    runtime.submit(locality_job(), 0.0);
    return runtime.run().jobs[0].total_time();
  };
  // A modest wait should not blow the runtime up; it usually helps (local
  // reads do not queue on the shared network).
  EXPECT_LT(total_time(8), total_time(0) * 1.15);
}

TEST(DelayScheduling, RichReplicationHelpsBothAndDelayStillWins) {
  // Triple replication triples the chance an offer is local, lifting the
  // greedy baseline; the wait closes the remaining gap to (near) 100%.
  Runtime greedy(locality_config(0, 3), std::make_unique<StaticSlotPolicy>());
  greedy.submit(locality_job(), 0.0);
  greedy.run();
  Runtime greedy1(locality_config(0, 1), std::make_unique<StaticSlotPolicy>());
  greedy1.submit(locality_job(), 0.0);
  greedy1.run();
  Runtime delayed(locality_config(8, 3), std::make_unique<StaticSlotPolicy>());
  delayed.submit(locality_job(), 0.0);
  delayed.run();
  EXPECT_GE(locality_fraction(greedy), locality_fraction(greedy1));
  EXPECT_GE(locality_fraction(delayed), locality_fraction(greedy) - 1e-9);
  EXPECT_GE(locality_fraction(delayed), 0.9);
}

TEST(DelayScheduling, RejectsNegativeWait) {
  RuntimeConfig config = locality_config(0);
  config.locality_wait_offers = -1;
  EXPECT_THROW(config.validate(), SmrError);
}

// Sweep: locality is monotone-ish in the wait bound (never collapses).
class WaitSweep : public ::testing::TestWithParam<int> {};

TEST_P(WaitSweep, LocalityAtLeastGreedy) {
  Runtime greedy(locality_config(0), std::make_unique<StaticSlotPolicy>());
  greedy.submit(locality_job(), 0.0);
  greedy.run();
  Runtime delayed(locality_config(GetParam()), std::make_unique<StaticSlotPolicy>());
  delayed.submit(locality_job(), 0.0);
  const auto result = delayed.run();
  ASSERT_TRUE(result.completed);
  EXPECT_GE(locality_fraction(delayed), locality_fraction(greedy) - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Waits, WaitSweep, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace smr::mapreduce
