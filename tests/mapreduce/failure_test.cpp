// Fault tolerance: injected node failures.  MapReduce's defining property
// (paper §I: "easy programming, high performance and fault tolerance") —
// the runtime must requeue running tasks, re-execute completed maps whose
// outputs died with the node, and still finish every job correctly.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "smr/core/slot_policy.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig failing_config(NodeId node, SimTime at, int nodes = 4) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(nodes);
  config.failures.push_back({node, at});
  config.seed = 31;
  return config;
}

JobSpec shuffle_job(double selectivity = 1.0) {
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, 2 * kGiB);
  spec.map_selectivity = selectivity;
  spec.reduce_tasks = 6;
  return spec;
}

TEST(NodeFailure, JobCompletesDespiteMidMapFailure) {
  RuntimeConfig config = failing_config(1, 30.0);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(shuffle_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(runtime.node_alive(1));
  EXPECT_GT(runtime.tasks_lost_to_failures(), 0);
  const Job& job = runtime.jobs()[0];
  for (const auto& m : job.maps) {
    EXPECT_EQ(m.phase, MapPhase::kDone);
    // No finished task may be parked on the dead node unless it finished
    // after re-execution elsewhere — i.e. no *needed* output is there.
    if (m.node == 1) {
      EXPECT_GE(m.finish_time, 30.0);  // would have been re-run if needed
    }
  }
  for (const auto& r : job.reduces) EXPECT_EQ(r.phase, ReducePhase::kDone);
}

TEST(NodeFailure, SlowerThanFailureFreeRun) {
  const JobSpec spec = shuffle_job();
  RuntimeConfig clean = failing_config(1, 30.0);
  clean.failures.clear();
  Runtime clean_rt(clean, std::make_unique<StaticSlotPolicy>());
  clean_rt.submit(spec, 0.0);
  const auto clean_result = clean_rt.run();

  Runtime failed_rt(failing_config(1, 30.0), std::make_unique<StaticSlotPolicy>());
  failed_rt.submit(spec, 0.0);
  const auto failed_result = failed_rt.run();

  ASSERT_TRUE(clean_result.completed && failed_result.completed);
  // Lost work + a quarter of the cluster gone: strictly slower.
  EXPECT_GT(failed_result.jobs[0].total_time(), clean_result.jobs[0].total_time());
}

TEST(NodeFailure, CompletedMapsReExecutedWhileShuffleOutstanding) {
  // Fail late in the map phase: some maps on the dead node had completed
  // and their outputs are needed by the (large) outstanding shuffle.
  RuntimeConfig config = failing_config(2, 60.0);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(1.0), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  // Some kills must be re-executions of *completed* maps: total map
  // launches exceed the map count by the number of lost tasks.
  int map_launches = 0;
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kTaskLaunched)) {
    if (e.is_map) ++map_launches;
  }
  const int total_maps = static_cast<int>(runtime.jobs()[0].maps.size());
  EXPECT_GT(map_launches, total_maps);
}

TEST(NodeFailure, ReducersRefetchAndFinishExactPartitions) {
  RuntimeConfig config = failing_config(0, 45.0);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(shuffle_job(1.0), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  const Job& job = runtime.jobs()[0];
  for (const auto& r : job.reduces) {
    // Every surviving/restarted reducer ends with exactly its partition.
    EXPECT_NEAR(r.fetched, static_cast<double>(r.partition_size),
                1.0 + 1e-6 * static_cast<double>(r.partition_size));
    EXPECT_GE(r.shuffle_end_time, job.maps_done_time);
  }
}

TEST(NodeFailure, MapOnlyJobUnaffectedByOutputLossRule) {
  // With ~zero map output there is nothing to re-shuffle; a failure after
  // the barrier must not re-open the map phase.
  RuntimeConfig config = failing_config(1, 1.0);
  config.failures[0].at = 3000.0;  // long after this small job finishes
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  auto spec = workload::make_puma_job(workload::Puma::kGrep, 2 * kGiB);
  spec.reduce_tasks = 6;
  runtime.submit(spec, 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(runtime.tasks_lost_to_failures(), 0);
}

TEST(NodeFailure, TraceRecordsNodeFailedEvent) {
  RuntimeConfig config = failing_config(3, 30.0);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(), 0.0);
  runtime.run();
  const auto failures = trace.of_kind(metrics::TraceEventKind::kNodeFailed);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].node, 3);
  EXPECT_DOUBLE_EQ(failures[0].time, 30.0);
}

TEST(NodeFailure, MultipleFailuresSurvivable) {
  RuntimeConfig config = failing_config(0, 30.0, 8);
  config.failures.push_back({5, 90.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(shuffle_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(runtime.node_alive(0));
  EXPECT_FALSE(runtime.node_alive(5));
  EXPECT_TRUE(runtime.node_alive(1));
}

TEST(NodeFailure, SingleReplicaInputsStillReadable) {
  // Replication 1 and a failed node: splits whose only replica died are
  // read remotely from a live stand-in (re-replication assumed).
  RuntimeConfig config = failing_config(1, 20.0);
  config.cluster.dfs_replication = 1;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(shuffle_job(0.2), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
}

TEST(NodeFailure, UnderSlotManagerStillAdaptsAndCompletes) {
  RuntimeConfig config = failing_config(2, 40.0);
  Runtime runtime(config, std::make_unique<core::SmrSlotPolicy>());
  auto spec = workload::make_puma_job(workload::Puma::kHistogramRatings, 4 * kGiB);
  spec.reduce_tasks = 6;
  runtime.submit(spec, 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
}

TEST(NodeFailure, ValidationRejectsBadFailures) {
  RuntimeConfig config = failing_config(99, 30.0);
  EXPECT_THROW(config.validate(), SmrError);
  config = failing_config(1, -5.0);
  EXPECT_THROW(config.validate(), SmrError);
}

TEST(NodeFailure, BarrierReopensWhenCompletedMapsLost) {
  // Fail a node after the barrier (maps done ~70 s for this job) while the
  // shuffle is still outstanding: completed maps on it are re-executed,
  // which re-opens the barrier, so the trace must show it crossed (at
  // least) twice.
  RuntimeConfig config = failing_config(2, 100.0);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(1.0), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  ASSERT_GT(runtime.tasks_lost_to_failures(), 0);
  const auto barriers = trace.of_kind(metrics::TraceEventKind::kBarrierCrossed);
  EXPECT_GE(barriers.size(), 2u);
  // The first crossing precedes the failure; the last one follows it.
  EXPECT_LT(barriers.front().time, 100.0);
  EXPECT_GT(barriers.back().time, 100.0);
}

TEST(NodeFailure, TraceLaunchKillFinishBalance) {
  // Every launched attempt is retired exactly once: finishes + kills ==
  // launches, for maps and reduces separately, even with speculation and a
  // node failure racing shadows against primaries.
  RuntimeConfig config = failing_config(1, 45.0);
  config.speculative_execution = true;
  config.speculative_reduce_execution = true;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(1.0), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  // Walk the trace with a per-attempt ledger.  A retirement with no
  // outstanding launch is a completed-map invalidation (the map already
  // FINISHED, then its output died with the node and it was KILLED before
  // re-launch) — legal for maps, never for reduces.
  std::map<TaskId, int> outstanding;
  int map_invalidations = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == metrics::TraceEventKind::kTaskLaunched) {
      ++outstanding[e.task];
    } else if (e.kind == metrics::TraceEventKind::kTaskFinished ||
               e.kind == metrics::TraceEventKind::kTaskKilled) {
      auto it = outstanding.find(e.task);
      if (it != outstanding.end() && it->second > 0) {
        --it->second;
      } else {
        EXPECT_TRUE(e.is_map) << "reduce attempt retired twice";
        EXPECT_EQ(e.kind, metrics::TraceEventKind::kTaskKilled);
        ++map_invalidations;
      }
    }
  }
  // Every launched attempt was retired exactly once.
  for (const auto& [task, open] : outstanding) {
    EXPECT_EQ(open, 0) << "attempt " << task << " never retired";
  }
  // The node failure actually invalidated finished maps in this scenario.
  EXPECT_GT(map_invalidations, 0);
}

TEST(NodeFailure, CumulativeCountersMatchFailureFreeRun) {
  // After all the requeue/rollback churn the end-of-run map byte counters
  // must equal a failure-free replay's: every byte lost to the failure was
  // re-processed, none double-counted.  Shuffle volume may only grow (the
  // fluid model cannot attribute already-fetched bytes to individual lost
  // maps, so re-executed outputs are fetched again), never shrink.
  const JobSpec spec = shuffle_job(1.0);
  RuntimeConfig clean = failing_config(1, 45.0);
  clean.failures.clear();
  Runtime clean_rt(clean, std::make_unique<StaticSlotPolicy>());
  clean_rt.submit(spec, 0.0);
  ASSERT_TRUE(clean_rt.run().completed);
  const ClusterStats clean_stats = clean_rt.snapshot();

  Runtime failed_rt(failing_config(1, 45.0), std::make_unique<StaticSlotPolicy>());
  failed_rt.submit(spec, 0.0);
  ASSERT_TRUE(failed_rt.run().completed);
  const ClusterStats failed_stats = failed_rt.snapshot();

  const double tol = 1e-6 * clean_stats.cum_map_input + 1.0;
  EXPECT_NEAR(failed_stats.cum_map_input, clean_stats.cum_map_input, tol);
  EXPECT_NEAR(failed_stats.cum_map_output, clean_stats.cum_map_output, tol);
  EXPECT_GE(failed_stats.cum_shuffled, clean_stats.cum_shuffled - tol);
  // Job-level accounting agrees too.
  const Job& job = failed_rt.jobs()[0];
  EXPECT_NEAR(job.map_input_processed, static_cast<double>(spec.input_size), tol);
  // Nothing may remain attributed to the dead node's ingest ledger beyond
  // what it actually shuffled in before dying.
  double node_sum = 0.0;
  for (const auto& node : failed_stats.per_node) node_sum += node.cum_shuffled_in;
  EXPECT_NEAR(node_sum, failed_stats.cum_shuffled, tol);
}

TEST(NodeFailure, DeadTrackerLeavesSlotTargetTotals) {
  // Satellite fix: fail_node must cancel the tracker's heartbeat and drop
  // it from the cluster slot-target totals (previously the dead tracker
  // kept its targets and its heartbeat event alive).
  RuntimeConfig config = failing_config(1, 30.0);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(shuffle_job(), 0.0);
  ASSERT_TRUE(runtime.run().completed);

  // The failure zeroes the dead tracker's share: with 4 nodes at 3+2 slots
  // the map total drops 12 -> 9 and the reduce total 8 -> 6 at t = 30.
  bool saw_map_drop = false;
  bool saw_reduce_drop = false;
  for (const auto& e :
       trace.of_kind(metrics::TraceEventKind::kSlotTargetChanged)) {
    if (e.time != 30.0) continue;
    if (e.is_map && e.value == 9.0) saw_map_drop = true;
    if (!e.is_map && e.value == 6.0) saw_reduce_drop = true;
  }
  EXPECT_TRUE(saw_map_drop);
  EXPECT_TRUE(saw_reduce_drop);

  // No heartbeat-driven event (task launch, slot change) may involve the
  // dead node after the failure.
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kTaskLaunched)) {
    if (e.time > 30.0) EXPECT_NE(e.node, 1);
  }
}

// Sweep: a failure at any point of the job lifecycle (early map phase,
// barrier vicinity, deep reduce tail) must leave a completable job.
class FailureTimeSweep : public ::testing::TestWithParam<double> {};

TEST_P(FailureTimeSweep, JobAlwaysCompletes) {
  RuntimeConfig config = failing_config(1, GetParam());
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(shuffle_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  const Job& job = runtime.jobs()[0];
  EXPECT_EQ(job.reduces_finished, static_cast<int>(job.reduces.size()));
}

INSTANTIATE_TEST_SUITE_P(AcrossLifecycle, FailureTimeSweep,
                         ::testing::Values(5.0, 30.0, 60.0, 90.0, 120.0, 200.0,
                                           300.0));

}  // namespace
}  // namespace smr::mapreduce
