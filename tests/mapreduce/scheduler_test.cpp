#include "smr/mapreduce/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"

namespace smr::mapreduce {
namespace {

Job make_job(JobId id, SimTime submit, int running_maps, int running_reduces,
             bool finished = false) {
  Job job;
  job.id = id;
  job.submit_time = submit;
  job.maps.resize(20);
  job.reduces.resize(8);
  job.maps_assigned = running_maps;
  job.reduces_assigned = running_reduces;
  if (finished) job.finish_time = submit + 100.0;
  return job;
}

TEST(FifoScheduler, SubmissionOrderPreserved) {
  FifoScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 5, 0));
  jobs.push_back(make_job(1, 5.0, 0, 0));
  jobs.push_back(make_job(2, 10.0, 3, 0));
  const auto order = scheduler.job_order(jobs, 100.0, true);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FifoScheduler, SkipsUnsubmittedAndFinished) {
  FifoScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 0, 0, /*finished=*/true));
  jobs.push_back(make_job(1, 5.0, 0, 0));
  jobs.push_back(make_job(2, 50.0, 0, 0));  // not yet submitted at t=10
  const auto order = scheduler.job_order(jobs, 10.0, true);
  EXPECT_EQ(order, (std::vector<std::size_t>{1}));
}

TEST(FairScheduler, FewestRunningTasksFirst) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 6, 0));
  jobs.push_back(make_job(1, 1.0, 2, 0));
  jobs.push_back(make_job(2, 2.0, 4, 0));
  const auto order = scheduler.job_order(jobs, 10.0, true);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(FairScheduler, TiesBreakBySubmissionOrder) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 3, 0));
  jobs.push_back(make_job(1, 1.0, 3, 0));
  const auto order = scheduler.job_order(jobs, 10.0, true);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
}

TEST(FairScheduler, ReduceOrderingUsesReduceCounts) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 0, 5));
  jobs.push_back(make_job(1, 1.0, 9, 1));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, false),
            (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{0, 1}));
}

TEST(FairScheduler, WeightsScaleShares) {
  // Job 0 has weight 3: its 6 running tasks count as a deficit of 2,
  // ranking it ahead of job 1's 3 tasks at weight 1.
  FairScheduler scheduler({3.0, 1.0});
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 6, 0));
  jobs.push_back(make_job(1, 1.0, 3, 0));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{0, 1}));
}

TEST(FairScheduler, RejectsNonPositiveWeights) {
  EXPECT_THROW(FairScheduler({1.0, 0.0}), SmrError);
}

TEST(FairScheduler, CompletedTasksDoNotCountAsRunning) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 10, 0));
  jobs[0].maps_finished = 9;  // only 1 actually running
  jobs.push_back(make_job(1, 1.0, 3, 0));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{0, 1}));
}

// End-to-end: with one long job hogging the cluster and a short job
// arriving later, fair sharing finishes the short job earlier than FIFO.
TEST(FairSchedulerEndToEnd, ShortJobNotStarvedBehindLongJob) {
  auto run_with = [](std::unique_ptr<JobScheduler> scheduler) {
    RuntimeConfig config;
    config.cluster = cluster::ClusterSpec::paper_testbed(4);
    config.seed = 5;
    Runtime runtime(config, std::make_unique<StaticSlotPolicy>(),
                    std::move(scheduler));
    JobSpec long_job;
    long_job.name = "long";
    long_job.input_size = 8 * kGiB;
    long_job.reduce_tasks = 4;
    long_job.map_cpu_per_mib = 0.3;
    long_job.map_selectivity = 0.05;
    JobSpec short_job = long_job;
    short_job.name = "short";
    short_job.input_size = 1 * kGiB;
    runtime.submit(long_job, 0.0);
    runtime.submit(short_job, 30.0);
    return runtime.run();
  };
  const auto fifo = run_with(std::make_unique<FifoScheduler>());
  const auto fair = run_with(std::make_unique<FairScheduler>());
  ASSERT_TRUE(fifo.completed && fair.completed);
  // The short job turns around much faster under fair sharing...
  EXPECT_LT(fair.jobs[1].execution_time(), fifo.jobs[1].execution_time() * 0.8);
  // ...at modest cost to the long job.
  EXPECT_LT(fair.jobs[0].execution_time(), fifo.jobs[0].execution_time() * 1.5);
}

}  // namespace
}  // namespace smr::mapreduce
