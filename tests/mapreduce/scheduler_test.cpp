#include "smr/mapreduce/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"

namespace smr::mapreduce {
namespace {

Job make_job(JobId id, SimTime submit, int running_maps, int running_reduces,
             bool finished = false) {
  Job job;
  job.id = id;
  job.submit_time = submit;
  job.maps.resize(20);
  job.reduces.resize(8);
  job.maps_assigned = running_maps;
  job.reduces_assigned = running_reduces;
  if (finished) job.finish_time = submit + 100.0;
  return job;
}

TEST(FifoScheduler, SubmissionOrderPreserved) {
  FifoScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 5, 0));
  jobs.push_back(make_job(1, 5.0, 0, 0));
  jobs.push_back(make_job(2, 10.0, 3, 0));
  const auto order = scheduler.job_order(jobs, 100.0, true);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FifoScheduler, SkipsUnsubmittedAndFinished) {
  FifoScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 0, 0, /*finished=*/true));
  jobs.push_back(make_job(1, 5.0, 0, 0));
  jobs.push_back(make_job(2, 50.0, 0, 0));  // not yet submitted at t=10
  const auto order = scheduler.job_order(jobs, 10.0, true);
  EXPECT_EQ(order, (std::vector<std::size_t>{1}));
}

TEST(FairScheduler, FewestRunningTasksFirst) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 6, 0));
  jobs.push_back(make_job(1, 1.0, 2, 0));
  jobs.push_back(make_job(2, 2.0, 4, 0));
  const auto order = scheduler.job_order(jobs, 10.0, true);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(FairScheduler, TiesBreakBySubmissionOrder) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 3, 0));
  jobs.push_back(make_job(1, 1.0, 3, 0));
  const auto order = scheduler.job_order(jobs, 10.0, true);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
}

TEST(FairScheduler, ReduceOrderingUsesReduceCounts) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 0, 5));
  jobs.push_back(make_job(1, 1.0, 9, 1));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, false),
            (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{0, 1}));
}

TEST(FairScheduler, WeightsScaleShares) {
  // Job 0 has weight 3: its 6 running tasks count as a deficit of 2,
  // ranking it ahead of job 1's 3 tasks at weight 1.
  FairScheduler scheduler({3.0, 1.0});
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 6, 0));
  jobs.push_back(make_job(1, 1.0, 3, 0));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{0, 1}));
}

TEST(FairScheduler, RejectsNonPositiveWeights) {
  EXPECT_THROW(FairScheduler({1.0, 0.0}), SmrError);
}

TEST(FairScheduler, CompletedTasksDoNotCountAsRunning) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 10, 0));
  jobs[0].maps_finished = 9;  // only 1 actually running
  jobs.push_back(make_job(1, 1.0, 3, 0));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{0, 1}));
}

// End-to-end: with one long job hogging the cluster and a short job
// arriving later, fair sharing finishes the short job earlier than FIFO.
TEST(FairSchedulerEndToEnd, ShortJobNotStarvedBehindLongJob) {
  auto run_with = [](std::unique_ptr<JobScheduler> scheduler) {
    RuntimeConfig config;
    config.cluster = cluster::ClusterSpec::paper_testbed(4);
    config.seed = 5;
    Runtime runtime(config, std::make_unique<StaticSlotPolicy>(),
                    std::move(scheduler));
    JobSpec long_job;
    long_job.name = "long";
    long_job.input_size = 8 * kGiB;
    long_job.reduce_tasks = 4;
    long_job.map_cpu_per_mib = 0.3;
    long_job.map_selectivity = 0.05;
    JobSpec short_job = long_job;
    short_job.name = "short";
    short_job.input_size = 1 * kGiB;
    runtime.submit(long_job, 0.0);
    runtime.submit(short_job, 30.0);
    return runtime.run();
  };
  const auto fifo = run_with(std::make_unique<FifoScheduler>());
  const auto fair = run_with(std::make_unique<FairScheduler>());
  ASSERT_TRUE(fifo.completed && fair.completed);
  // The short job turns around much faster under fair sharing...
  EXPECT_LT(fair.jobs[1].execution_time(), fifo.jobs[1].execution_time() * 0.8);
  // ...at modest cost to the long job.
  EXPECT_LT(fair.jobs[0].execution_time(), fifo.jobs[0].execution_time() * 1.5);
}

// Staggered arrivals: jobs not yet submitted must stay out of the order
// until their submit time passes, then join with a zero running-task count
// (i.e. at the front of the fair order).
TEST(FairScheduler, StaggeredArrivalsJoinWhenSubmitted) {
  FairScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 4, 0));
  jobs.push_back(make_job(1, 60.0, 0, 0));
  jobs.push_back(make_job(2, 120.0, 0, 0));
  EXPECT_EQ(scheduler.job_order(jobs, 30.0, true),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(scheduler.job_order(jobs, 90.0, true),
            (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(scheduler.job_order(jobs, 150.0, true),
            (std::vector<std::size_t>{1, 2, 0}));
}

// End-to-end with several staggered mid-run arrivals: each short job that
// lands while the long job occupies the cluster still turns around quickly
// under fair sharing, and arrivals keep FIFO order among themselves.
TEST(FairSchedulerEndToEnd, StaggeredMidRunArrivalsShareSlots) {
  auto run_with = [](std::unique_ptr<JobScheduler> scheduler) {
    RuntimeConfig config;
    config.cluster = cluster::ClusterSpec::paper_testbed(4);
    config.seed = 5;
    Runtime runtime(config, std::make_unique<StaticSlotPolicy>(),
                    std::move(scheduler));
    JobSpec long_job;
    long_job.name = "long";
    long_job.input_size = 8 * kGiB;
    long_job.reduce_tasks = 4;
    long_job.map_cpu_per_mib = 0.3;
    long_job.map_selectivity = 0.05;
    JobSpec short_job = long_job;
    short_job.input_size = 1 * kGiB;
    short_job.name = "short-a";
    runtime.submit(long_job, 0.0);
    runtime.submit(short_job, 40.0);
    short_job.name = "short-b";
    runtime.submit(short_job, 80.0);
    return runtime.run();
  };
  const auto fifo = run_with(std::make_unique<FifoScheduler>());
  const auto fair = run_with(std::make_unique<FairScheduler>());
  ASSERT_TRUE(fifo.completed && fair.completed);
  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    EXPECT_LT(fair.jobs[i].execution_time(),
              fifo.jobs[i].execution_time() * 0.8)
        << "short job " << i;
  }
  // The earlier short arrival is not reordered behind the later one.
  EXPECT_LT(fair.jobs[1].finish_time, fair.jobs[2].finish_time);
  // The long job pays a bounded fairness tax.
  EXPECT_LT(fair.jobs[0].execution_time(), fifo.jobs[0].execution_time() * 1.6);
}

}  // namespace
}  // namespace smr::mapreduce
