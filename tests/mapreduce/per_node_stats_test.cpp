// Per-tracker heartbeat statistics (paper §III-C): each node's cumulative
// input/output/shuffle counters, exposed to policies through the snapshot.
#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig four_nodes() {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.seed = 61;
  return config;
}

JobSpec spec_for_stats() {
  auto spec = workload::make_puma_job(workload::Puma::kInvertedIndex, 2 * kGiB);
  spec.reduce_tasks = 8;
  return spec;
}

TEST(PerNodeStats, SnapshotCarriesOneEntryPerNode) {
  Runtime runtime(four_nodes(), std::make_unique<StaticSlotPolicy>());
  runtime.submit(spec_for_stats(), 0.0);
  bool checked = false;
  runtime.engine().schedule_at(40.0, [&] {
    const auto stats = runtime.snapshot();
    ASSERT_EQ(stats.per_node.size(), 4u);
    for (std::size_t n = 0; n < 4; ++n) {
      EXPECT_EQ(stats.per_node[n].node, static_cast<NodeId>(n));
      EXPECT_TRUE(stats.per_node[n].alive);
      EXPECT_GE(stats.per_node[n].running_maps, 0);
    }
    checked = true;
  });
  runtime.run();
  EXPECT_TRUE(checked);
}

TEST(PerNodeStats, NodeCountersSumToClusterCounters) {
  Runtime runtime(four_nodes(), std::make_unique<StaticSlotPolicy>());
  runtime.submit(spec_for_stats(), 0.0);
  auto check_sums = [&] {
    const auto stats = runtime.snapshot();
    double input = 0.0, output = 0.0, shuffled = 0.0;
    for (const auto& node : stats.per_node) {
      input += node.cum_map_input;
      output += node.cum_map_output;
      shuffled += node.cum_shuffled_in;
    }
    EXPECT_NEAR(input, stats.cum_map_input, 1.0 + 1e-9 * stats.cum_map_input);
    EXPECT_NEAR(output, stats.cum_map_output, 1.0 + 1e-9 * stats.cum_map_output);
    EXPECT_NEAR(shuffled, stats.cum_shuffled, 1.0 + 1e-9 * stats.cum_shuffled);
  };
  runtime.engine().schedule_at(30.0, check_sums);
  runtime.engine().schedule_at(90.0, check_sums);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  check_sums();
}

TEST(PerNodeStats, WorkSpreadsAcrossAllNodes) {
  Runtime runtime(four_nodes(), std::make_unique<StaticSlotPolicy>());
  runtime.submit(spec_for_stats(), 0.0);
  runtime.run();
  const auto stats = runtime.snapshot();
  for (const auto& node : stats.per_node) {
    EXPECT_GT(node.cum_map_input, 0.0) << "node " << node.node << " idle";
    EXPECT_GT(node.cum_shuffled_in, 0.0) << "node " << node.node;
  }
}

TEST(PerNodeStats, SlowNodeProcessesLess) {
  RuntimeConfig config = four_nodes();
  config.cluster = cluster::ClusterSpec::heterogeneous(2, 2, 0.4);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  auto spec = workload::make_puma_job(workload::Puma::kHistogramRatings, 4 * kGiB);
  spec.reduce_tasks = 8;
  runtime.submit(spec, 0.0);
  ASSERT_TRUE(runtime.run().completed);
  const auto stats = runtime.snapshot();
  const double fast = stats.per_node[0].cum_map_input + stats.per_node[1].cum_map_input;
  const double slow = stats.per_node[2].cum_map_input + stats.per_node[3].cum_map_input;
  EXPECT_GT(fast, slow * 1.3);  // CPU-bound maps: ~2.5x per-slot gap
}

TEST(PerNodeStats, DeadNodeMarkedAndFrozen) {
  RuntimeConfig config = four_nodes();
  config.failures.push_back({2, 30.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(spec_for_stats(), 0.0);
  double frozen_input = -1.0;
  runtime.engine().schedule_at(31.0, [&] {
    const auto stats = runtime.snapshot();
    EXPECT_FALSE(stats.per_node[2].alive);
    EXPECT_EQ(stats.per_node[2].running_maps, 0);
    frozen_input = stats.per_node[2].cum_map_input;
  });
  ASSERT_TRUE(runtime.run().completed);
  const auto stats = runtime.snapshot();
  // No further processing accrued on the dead node after the failure.
  EXPECT_DOUBLE_EQ(stats.per_node[2].cum_map_input, frozen_input);
}

}  // namespace
}  // namespace smr::mapreduce
