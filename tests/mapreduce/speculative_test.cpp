// Speculative execution (Hadoop's backup tasks for stragglers).
#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig spec_config(bool speculation, int nodes = 4) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(nodes);
  config.speculative_execution = speculation;
  config.speculative_min_age = 20.0;
  config.seed = 41;
  return config;
}

/// A straggler-heavy job: large per-task cost variance.
JobSpec straggly_job() {
  auto spec = workload::make_puma_job(workload::Puma::kGrep, 3 * kGiB);
  spec.reduce_tasks = 6;
  spec.duration_cv = 0.6;
  return spec;
}

TEST(Speculation, LaunchesBackupsAndCompletes) {
  Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
  runtime.submit(straggly_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_GT(runtime.speculative_launches(), 0);
  const Job& job = runtime.jobs()[0];
  for (const auto& m : job.maps) EXPECT_EQ(m.phase, MapPhase::kDone);
}

TEST(Speculation, DisabledMeansNoBackups) {
  Runtime runtime(spec_config(false), std::make_unique<StaticSlotPolicy>());
  runtime.submit(straggly_job(), 0.0);
  runtime.run();
  EXPECT_EQ(runtime.speculative_launches(), 0);
  EXPECT_EQ(runtime.speculative_wins(), 0);
}

TEST(Speculation, ShortensStragglerTailOnAverage) {
  // Over several seeds, the straggler-dominated map tail shrinks.
  double with_total = 0.0, without_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto config_with = spec_config(true);
    config_with.seed = seed;
    Runtime with_rt(config_with, std::make_unique<StaticSlotPolicy>());
    with_rt.submit(straggly_job(), 0.0);
    with_total += with_rt.run().jobs[0].map_time();

    auto config_without = spec_config(false);
    config_without.seed = seed;
    Runtime without_rt(config_without, std::make_unique<StaticSlotPolicy>());
    without_rt.submit(straggly_job(), 0.0);
    without_total += without_rt.run().jobs[0].map_time();
  }
  EXPECT_LT(with_total, without_total);
}

TEST(Speculation, ConservationHoldsWithRaces) {
  Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
  const JobSpec spec = straggly_job();
  runtime.submit(spec, 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  ASSERT_GT(runtime.speculative_launches(), 0);
  const Job& job = runtime.jobs()[0];
  // Losing attempts were rolled back: processed input equals input exactly.
  EXPECT_NEAR(job.map_input_processed, static_cast<double>(spec.input_size),
              1e-6 * static_cast<double>(spec.input_size) + 1.0);
  // And every reducer fetched exactly its partition.
  for (const auto& r : job.reduces) {
    EXPECT_NEAR(r.fetched, static_cast<double>(r.partition_size), 1.0);
  }
}

TEST(Speculation, WinsAndLossesBalanceLaunches) {
  Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(straggly_job(), 0.0);
  runtime.run();
  // Every speculative launch ends in exactly one kill: either the shadow
  // (lost) or the primary (detail "lost-race").
  int speculative_kills = 0, lost_races = 0;
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kTaskKilled)) {
    if (e.detail == "speculative") ++speculative_kills;
    if (e.detail == "lost-race") ++lost_races;
  }
  EXPECT_EQ(lost_races, runtime.speculative_wins());
  EXPECT_EQ(speculative_kills + lost_races, runtime.speculative_launches());
}

TEST(Speculation, NoBackupsWhilePendingMapsExist) {
  // Hadoop only speculates once every map is assigned; with a huge map
  // backlog and the default slots, speculation never fires early.
  auto config = spec_config(true);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  auto spec = straggly_job();
  runtime.submit(spec, 0.0);
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  bool checked = false;
  runtime.engine().schedule_at(15.0, [&] {
    // Early in the run, the job still has pending maps: no shadows yet.
    EXPECT_EQ(runtime.speculative_launches(), 0);
    checked = true;
  });
  runtime.run();
  EXPECT_TRUE(checked);
}

TEST(Speculation, SurvivesNodeFailure) {
  auto config = spec_config(true);
  config.failures.push_back({1, 50.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(straggly_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
}

TEST(Speculation, WorksUnderEagerShrink) {
  auto config = spec_config(true);
  config.eager_slot_shrink = true;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(straggly_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
}

// Determinism must hold with speculation enabled (races resolve on the
// deterministic tick).
TEST(Speculation, Deterministic) {
  auto run_once = [] {
    Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
    runtime.submit(straggly_job(), 0.0);
    return runtime.run().jobs[0].finish_time;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace smr::mapreduce
