// The optional combine sub-phase (paper §II-A1: map = map phase, sort and
// spill phase, "plus optionally the combine phase").
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig two_nodes() {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(2);
  config.seed = 81;
  return config;
}

JobSpec combiner_job(bool with_combiner) {
  JobSpec spec;
  spec.name = with_combiner ? "with-combiner" : "without-combiner";
  spec.input_size = 1 * kGiB;
  spec.reduce_tasks = 4;
  spec.map_cpu_per_mib = 0.2;
  spec.map_selectivity = 0.05;  // final output either way
  spec.has_combiner = with_combiner;
  spec.combiner_reduction = 0.1;
  spec.combine_cpu_per_mib = 0.05;
  return spec;
}

TEST(Combiner, CombinePhaseAppearsInTrace) {
  Runtime runtime(two_nodes(), std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(combiner_job(true), 0.0);
  ASSERT_TRUE(runtime.run().completed);
  int combines = 0, spills = 0;
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kPhaseStarted)) {
    if (e.detail == "COMBINE") ++combines;
    if (e.detail == "SPILL") ++spills;
  }
  EXPECT_EQ(combines, 8);  // one per map task
  EXPECT_EQ(spills, 8);    // combine then spill
}

TEST(Combiner, NoCombinerNoCombinePhase) {
  Runtime runtime(two_nodes(), std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(combiner_job(false), 0.0);
  ASSERT_TRUE(runtime.run().completed);
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kPhaseStarted)) {
    EXPECT_NE(e.detail, "COMBINE");
  }
}

TEST(Combiner, CombineOrderIsMapCombineSpill) {
  Runtime runtime(two_nodes(), std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(combiner_job(true), 0.0);
  runtime.run();
  // Per task: MAP < COMBINE < SPILL in time.
  std::map<TaskId, std::vector<std::string>> phases;
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kPhaseStarted)) {
    if (e.is_map) phases[e.task].push_back(e.detail);
  }
  for (const auto& [task, sequence] : phases) {
    ASSERT_EQ(sequence.size(), 3u) << "task " << task;
    EXPECT_EQ(sequence[0], "MAP");
    EXPECT_EQ(sequence[1], "COMBINE");
    EXPECT_EQ(sequence[2], "SPILL");
  }
}

TEST(Combiner, ShuffleVolumeUnchangedByCombinerFlag) {
  // map_selectivity is the post-combine ratio, so the partition sizes (and
  // every downstream conservation property) are identical either way.
  for (bool with : {false, true}) {
    Runtime runtime(two_nodes(), std::make_unique<StaticSlotPolicy>());
    const JobSpec spec = combiner_job(with);
    runtime.submit(spec, 0.0);
    ASSERT_TRUE(runtime.run().completed);
    const Job& job = runtime.jobs()[0];
    Bytes partitions = 0;
    for (const auto& r : job.reduces) partitions += r.partition_size;
    Bytes outputs = 0;
    for (const auto& m : job.maps) outputs += m.output_size;
    EXPECT_EQ(partitions, outputs);
    // Spec-level estimate matches up to per-task rounding.
    EXPECT_NEAR(static_cast<double>(partitions),
                static_cast<double>(spec.map_output_total()),
                static_cast<double>(job.maps.size()));
    EXPECT_NEAR(job.bytes_shuffled, static_cast<double>(partitions), 1.0);
  }
}

TEST(Combiner, CombinerCostsMapTime) {
  auto run_map_time = [&](bool with) {
    Runtime runtime(two_nodes(), std::make_unique<StaticSlotPolicy>());
    runtime.submit(combiner_job(with), 0.0);
    return runtime.run().jobs[0].map_time();
  };
  // Same final output, but the combine pass over 10x the bytes costs CPU.
  EXPECT_GT(run_map_time(true), run_map_time(false) * 1.05);
}

TEST(Combiner, ProgressMonotoneThroughThreePhases) {
  Runtime runtime(two_nodes(), std::make_unique<StaticSlotPolicy>());
  runtime.submit(combiner_job(true), 0.0);
  const auto result = runtime.run();
  const auto& series = result.progress[0];
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].map_pct, series[i - 1].map_pct - 1e-9);
  }
}

TEST(Combiner, ValidationRejectsBadReduction) {
  JobSpec spec = combiner_job(true);
  spec.combiner_reduction = 0.0;
  EXPECT_THROW(spec.validate(), SmrError);
  spec.combiner_reduction = 1.5;
  EXPECT_THROW(spec.validate(), SmrError);
}

TEST(Combiner, WordCountUsesTheCombiner) {
  const auto spec = workload::make_puma_job(workload::Puma::kWordCount);
  EXPECT_TRUE(spec.has_combiner);
  EXPECT_LT(spec.combiner_reduction, 1.0);
}

TEST(Combiner, SurvivesSpeculationAndFailure) {
  RuntimeConfig config = two_nodes();
  config.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.speculative_execution = true;
  config.failures.push_back({1, 20.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  auto spec = combiner_job(true);
  spec.duration_cv = 0.5;
  runtime.submit(spec, 0.0);
  EXPECT_TRUE(runtime.run().completed);
}

}  // namespace
}  // namespace smr::mapreduce
