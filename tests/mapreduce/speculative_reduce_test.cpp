// Reduce-side speculative execution: backup attempts for straggling reduce
// tasks, launched only past the barrier (the partition is fully available,
// so a backup can re-fetch independently).
#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig spec_config(bool reduce_speculation) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.speculative_execution = true;
  config.speculative_reduce_execution = reduce_speculation;
  config.speculative_min_age = 20.0;
  config.seed = 101;
  return config;
}

/// Reduce-dominated job with heavy per-task variance: the reduce tail is
/// where backups pay.
JobSpec straggly_reduce_job() {
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, 3 * kGiB);
  spec.reduce_tasks = 8;  // exactly one wave on 4 nodes x 2 slots
  spec.duration_cv = 0.6;
  return spec;
}

TEST(ReduceSpeculation, LaunchesBackupsAndCompletes) {
  Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
  runtime.submit(straggly_reduce_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_GT(runtime.speculative_reduce_launches(), 0);
  const Job& job = runtime.jobs()[0];
  for (const auto& r : job.reduces) EXPECT_EQ(r.phase, ReducePhase::kDone);
}

TEST(ReduceSpeculation, OffByDefaultEvenWithMapSpeculation) {
  Runtime runtime(spec_config(false), std::make_unique<StaticSlotPolicy>());
  runtime.submit(straggly_reduce_job(), 0.0);
  runtime.run();
  EXPECT_EQ(runtime.speculative_reduce_launches(), 0);
}

TEST(ReduceSpeculation, BackupsOnlyAfterBarrier) {
  Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(straggly_reduce_job(), 0.0);
  runtime.run();
  const auto barrier = trace.of_kind(metrics::TraceEventKind::kBarrierCrossed);
  ASSERT_EQ(barrier.size(), 1u);
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kTaskLaunched)) {
    if (!e.is_map && e.detail == "speculative") {
      EXPECT_GE(e.time, barrier[0].time);
    }
  }
}

TEST(ReduceSpeculation, ConservationHoldsDespiteDuplicateFetches) {
  Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
  const JobSpec spec = straggly_reduce_job();
  runtime.submit(spec, 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  ASSERT_GT(runtime.speculative_reduce_launches(), 0);
  const Job& job = runtime.jobs()[0];
  // Losing attempts' fetches were rolled back: net shuffled == produced.
  Bytes outputs = 0;
  for (const auto& m : job.maps) outputs += m.output_size;
  EXPECT_NEAR(job.bytes_shuffled, static_cast<double>(outputs),
              1.0 + 1e-6 * static_cast<double>(outputs));
}

TEST(ReduceSpeculation, EveryLaunchEndsInExactlyOneKill) {
  Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(straggly_reduce_job(), 0.0);
  runtime.run();
  int shadow_kills = 0, lost_races = 0;
  for (const auto& e : trace.of_kind(metrics::TraceEventKind::kTaskKilled)) {
    if (e.is_map) continue;
    if (e.detail == "speculative") ++shadow_kills;
    if (e.detail == "lost-race") ++lost_races;
  }
  EXPECT_EQ(lost_races, runtime.speculative_reduce_wins());
  EXPECT_EQ(shadow_kills + lost_races, runtime.speculative_reduce_launches());
}

TEST(ReduceSpeculation, ShortensReduceTailOnAverage) {
  double with_total = 0.0, without_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto config_with = spec_config(true);
    config_with.seed = seed;
    Runtime with_rt(config_with, std::make_unique<StaticSlotPolicy>());
    with_rt.submit(straggly_reduce_job(), 0.0);
    with_total += with_rt.run().jobs[0].reduce_time();

    auto config_without = spec_config(false);
    config_without.seed = seed;
    Runtime without_rt(config_without, std::make_unique<StaticSlotPolicy>());
    without_rt.submit(straggly_reduce_job(), 0.0);
    without_total += without_rt.run().jobs[0].reduce_time();
  }
  EXPECT_LT(with_total, without_total);
}

TEST(ReduceSpeculation, SurvivesNodeFailure) {
  auto config = spec_config(true);
  config.failures.push_back({2, 100.0});
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(straggly_reduce_job(), 0.0);
  EXPECT_TRUE(runtime.run().completed);
}

TEST(ReduceSpeculation, Deterministic) {
  auto run_once = [] {
    Runtime runtime(spec_config(true), std::make_unique<StaticSlotPolicy>());
    runtime.submit(straggly_reduce_job(), 0.0);
    return runtime.run().jobs[0].finish_time;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace smr::mapreduce
