#include "smr/mapreduce/task.hpp"

#include <gtest/gtest.h>

namespace smr::mapreduce {
namespace {

TEST(MapTask, ProgressHalvesAcrossPhases) {
  MapTask task;
  task.input_size = 100;
  task.output_size = 50;
  task.phase = MapPhase::kMapping;
  task.phase_done = 0.0;
  EXPECT_DOUBLE_EQ(task.progress(), 0.0);
  task.phase_done = 50.0;
  EXPECT_DOUBLE_EQ(task.progress(), 0.25);
  task.phase_done = 100.0;
  EXPECT_DOUBLE_EQ(task.progress(), 0.5);
  task.phase = MapPhase::kSpilling;
  task.phase_done = 25.0;
  EXPECT_DOUBLE_EQ(task.progress(), 0.75);
  task.phase = MapPhase::kDone;
  EXPECT_DOUBLE_EQ(task.progress(), 1.0);
}

TEST(MapTask, PhaseTotalsTrackPhase) {
  MapTask task;
  task.input_size = 100;
  task.output_size = 40;
  task.phase = MapPhase::kMapping;
  EXPECT_DOUBLE_EQ(task.phase_total(), 100.0);
  task.phase = MapPhase::kSpilling;
  EXPECT_DOUBLE_EQ(task.phase_total(), 40.0);
  task.phase_done = 10.0;
  EXPECT_DOUBLE_EQ(task.phase_remaining(), 30.0);
}

TEST(MapTask, RunningRequiresNodeAndUnfinishedPhase) {
  MapTask task;
  EXPECT_FALSE(task.running());  // unassigned
  task.node = 3;
  EXPECT_TRUE(task.running());
  task.phase = MapPhase::kDone;
  EXPECT_FALSE(task.running());
}

TEST(ReduceTask, ProgressInThirds) {
  ReduceTask task;
  task.partition_size = 300;
  task.phase = ReducePhase::kShuffling;
  task.fetched = 150.0;
  EXPECT_NEAR(task.progress(), 1.0 / 6.0, 1e-12);
  task.phase = ReducePhase::kSorting;
  task.phase_done = 150.0;
  EXPECT_NEAR(task.progress(), 0.5, 1e-12);
  task.phase = ReducePhase::kReducing;
  task.phase_done = 300.0;
  EXPECT_NEAR(task.progress(), 1.0, 1e-12);
  task.phase = ReducePhase::kDone;
  EXPECT_DOUBLE_EQ(task.progress(), 1.0);
}

TEST(ReduceTask, ZeroPartitionCountsPhaseAsComplete) {
  ReduceTask task;
  task.partition_size = 0;
  task.phase = ReducePhase::kShuffling;
  EXPECT_NEAR(task.progress(), 1.0 / 3.0, 1e-12);
}

TEST(ReduceTask, BacklogIsAvailableMinusFetched) {
  ReduceTask task;
  task.available = 100.0;
  task.fetched = 40.0;
  EXPECT_DOUBLE_EQ(task.backlog(), 60.0);
}

TEST(PhaseNames, Stringify) {
  EXPECT_STREQ(to_string(MapPhase::kMapping), "MAP");
  EXPECT_STREQ(to_string(MapPhase::kSpilling), "SPILL");
  EXPECT_STREQ(to_string(MapPhase::kDone), "DONE");
  EXPECT_STREQ(to_string(ReducePhase::kShuffling), "SHUFFLE");
  EXPECT_STREQ(to_string(ReducePhase::kSorting), "SORT");
  EXPECT_STREQ(to_string(ReducePhase::kReducing), "REDUCE");
  EXPECT_STREQ(to_string(ReducePhase::kDone), "DONE");
}

}  // namespace
}  // namespace smr::mapreduce
