#include "smr/mapreduce/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig small_config(int nodes = 4) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(nodes);
  config.initial_map_slots = 3;
  config.initial_reduce_slots = 2;
  config.seed = 7;
  return config;
}

JobSpec small_job(double selectivity = 0.5) {
  JobSpec spec;
  spec.name = "small";
  spec.input_size = 2 * kGiB;
  spec.split_size = 128 * kMiB;
  spec.reduce_tasks = 8;
  spec.map_cpu_per_mib = 0.2;
  spec.map_selectivity = selectivity;
  spec.reduce_cpu_per_mib = 0.1;
  spec.map_task_memory = 2 * kGiB;
  spec.reduce_task_memory = 2 * kGiB;
  return spec;
}

metrics::RunResult run_one(const RuntimeConfig& config, const JobSpec& spec) {
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(spec, 0.0);
  return runtime.run();
}

TEST(Runtime, SingleJobCompletesWithOrderedTimestamps) {
  const auto result = run_one(small_config(), small_job());
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.jobs.size(), 1u);
  const auto& job = result.jobs[0];
  EXPECT_DOUBLE_EQ(job.submit_time, 0.0);
  EXPECT_GT(job.start_time, 0.0);           // first heartbeat assigns
  EXPECT_GT(job.maps_done_time, job.start_time);
  EXPECT_GT(job.finish_time, job.maps_done_time);
  EXPECT_GT(job.map_time(), 0.0);
  EXPECT_GT(job.reduce_time(), 0.0);
  EXPECT_GT(job.throughput(), 0.0);
}

TEST(Runtime, BytesConservedThroughShuffle) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  const JobSpec spec = small_job(0.7);
  runtime.submit(spec, 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  const Job& job = runtime.jobs()[0];

  // Sum of per-map outputs equals the sum of partition sizes.
  Bytes outputs = 0;
  for (const auto& m : job.maps) outputs += m.output_size;
  Bytes partitions = 0;
  for (const auto& r : job.reduces) partitions += r.partition_size;
  EXPECT_EQ(outputs, partitions);

  // Every byte produced was shuffled exactly once (fluid accounting).
  EXPECT_NEAR(job.bytes_shuffled, static_cast<double>(outputs),
              1.0 + 1e-6 * static_cast<double>(outputs));
  // And every reduce fetched exactly its partition.
  for (const auto& r : job.reduces) {
    EXPECT_NEAR(r.fetched, static_cast<double>(r.partition_size), 1.0);
  }
  // Map input fully processed.
  EXPECT_NEAR(job.map_input_processed, static_cast<double>(spec.input_size),
              1e-6 * static_cast<double>(spec.input_size) + 1.0);
}

TEST(Runtime, BarrierHoldsSortAfterAllMapsFinish) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(1.0), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  const Job& job = runtime.jobs()[0];
  for (const auto& r : job.reduces) {
    // The shuffle may overlap maps but can only *end* at/after the barrier,
    // and SORT/REDUCE run strictly after it.
    EXPECT_GE(r.shuffle_end_time, job.maps_done_time);
    EXPECT_GE(r.finish_time, r.shuffle_end_time);
  }
}

TEST(Runtime, ShuffleOverlapsMapPhase) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(1.0), 0.0);
  runtime.run();
  const Job& job = runtime.jobs()[0];
  // With selectivity 1.0 and slow-start 5%, a substantial part of the
  // shuffle must have happened before the barrier: at the barrier the
  // reducers collectively fetched more than nothing.
  double fetched_at_end = 0.0;
  for (const auto& r : job.reduces) fetched_at_end += r.fetched;
  EXPECT_GT(fetched_at_end, 0.0);
  // Reduce tasks started (shuffling) before the barrier.
  for (const auto& r : job.reduces) {
    EXPECT_LT(r.start_time, job.maps_done_time);
  }
}

TEST(Runtime, ReduceSlowstartGatesReduceLaunch) {
  RuntimeConfig config = small_config();
  config.reduce_slowstart = 1.0;  // reduces only after every map finishes
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(0.5), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  const Job& job = runtime.jobs()[0];
  for (const auto& r : job.reduces) {
    EXPECT_GE(r.start_time, job.maps_done_time);
  }
}

TEST(Runtime, DeterministicAcrossRuns) {
  const RuntimeConfig config = small_config();
  const JobSpec spec = small_job();
  const auto a = run_one(config, spec);
  const auto b = run_one(config, spec);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_DOUBLE_EQ(a.jobs[0].finish_time, b.jobs[0].finish_time);
  EXPECT_DOUBLE_EQ(a.jobs[0].maps_done_time, b.jobs[0].maps_done_time);
}

TEST(Runtime, DifferentSeedsPerturbResults) {
  RuntimeConfig config = small_config();
  const JobSpec spec = small_job();
  const auto a = run_one(config, spec);
  config.seed = 8;
  const auto b = run_one(config, spec);
  EXPECT_NE(a.jobs[0].finish_time, b.jobs[0].finish_time);
  // ... but not by much (same workload, jittered tasks).
  EXPECT_NEAR(a.jobs[0].finish_time, b.jobs[0].finish_time,
              0.3 * a.jobs[0].finish_time);
}

TEST(Runtime, MostMapLaunchesAreLocalWithTripleReplication) {
  RuntimeConfig config = small_config(8);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  JobSpec spec = small_job();
  spec.input_size = 8 * kGiB;  // 64 maps over 8 nodes
  runtime.submit(spec, 0.0);
  runtime.run();
  const int local = runtime.local_map_launches();
  const int remote = runtime.remote_map_launches();
  EXPECT_EQ(local + remote, 64);
  EXPECT_GT(local, remote);  // replication 3 on 8 nodes: locality dominates
}

TEST(Runtime, RemoteReadsStillCompleteWithSingleReplica) {
  RuntimeConfig config = small_config(8);
  config.cluster.dfs_replication = 1;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
  EXPECT_GT(runtime.remote_map_launches(), 0);
}

TEST(Runtime, FifoOrdersJobCompletion) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  runtime.submit(small_job(), 5.0);
  runtime.submit(small_job(), 10.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_LE(result.jobs[0].finish_time, result.jobs[1].finish_time);
  EXPECT_LE(result.jobs[1].finish_time, result.jobs[2].finish_time);
  // FIFO also orders barriers.
  EXPECT_LE(result.jobs[0].maps_done_time, result.jobs[1].maps_done_time);
}

TEST(Runtime, LaterJobWaitsForSlots) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  runtime.submit(small_job(), 5.0);
  const auto result = runtime.run();
  // Job 2's maps cannot all start at submission: its start time is its
  // first task launch, which happens once job 1 stops hogging every slot.
  EXPECT_GE(result.jobs[1].start_time, 5.0);
}

TEST(Runtime, ZeroSelectivityJobCompletes) {
  const auto result = run_one(small_config(), small_job(0.0));
  ASSERT_TRUE(result.completed);
  // Reduce tail degenerates: nothing to shuffle/sort/reduce.
  EXPECT_LT(result.jobs[0].reduce_time(), 10.0);
}

TEST(Runtime, TimeLimitReportsIncomplete) {
  RuntimeConfig config = small_config();
  config.time_limit = 10.0;  // the job needs far longer
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.jobs[0].finished());
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Runtime, ProgressSamplesMonotone) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_EQ(result.progress.size(), 1u);
  const auto& series = result.progress[0];
  ASSERT_GT(series.size(), 3u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].time, series[i - 1].time);
    EXPECT_GE(series[i].map_pct, series[i - 1].map_pct - 1e-9);
    EXPECT_GE(series[i].reduce_pct, series[i - 1].reduce_pct - 1e-9);
  }
  EXPECT_LE(series.back().total_pct(), 200.0 + 1e-9);
  EXPECT_GT(series.back().total_pct(), 150.0);  // sampled close to the end
}

TEST(Runtime, StaticPolicyNeverMovesTargets) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  const auto result = runtime.run();
  for (const auto& sample : result.slots) {
    EXPECT_DOUBLE_EQ(sample.map_target, 3.0);
    EXPECT_DOUBLE_EQ(sample.reduce_target, 2.0);
    EXPECT_LE(sample.running_maps, 3.0 + 1e-9);
    EXPECT_LE(sample.running_reduces, 2.0 + 1e-9);
  }
}

TEST(Runtime, SingleNodeClusterWorks) {
  RuntimeConfig config = small_config(1);
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  JobSpec spec = small_job();
  spec.input_size = 512 * kMiB;
  spec.reduce_tasks = 2;
  runtime.submit(spec, 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, UsageErrorsThrow) {
  RuntimeConfig config = small_config();
  {
    Runtime empty(config, std::make_unique<StaticSlotPolicy>());
    EXPECT_THROW(empty.run(), SmrError);  // no jobs
  }
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  runtime.run();
  EXPECT_THROW(runtime.run(), SmrError);                      // run twice
  EXPECT_THROW(runtime.submit(small_job(), 0.0), SmrError);   // submit after run
}

TEST(Runtime, ConfigValidation) {
  RuntimeConfig config = small_config();
  config.tick = 0.0;
  EXPECT_THROW(config.validate(), SmrError);
  config = small_config();
  config.reduce_slowstart = 1.5;
  EXPECT_THROW(config.validate(), SmrError);
  config = small_config();
  config.initial_map_slots = 0;
  config.initial_reduce_slots = 0;
  EXPECT_THROW(config.validate(), SmrError);
}

TEST(Runtime, SnapshotCountsConsistent) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(), 0.0);
  // Probe mid-run via an engine event.
  bool checked = false;
  runtime.engine().schedule_at(30.0, [&] {
    const ClusterStats stats = runtime.snapshot();
    EXPECT_TRUE(stats.has_active_job);
    EXPECT_EQ(stats.total_maps, 16);
    EXPECT_EQ(stats.pending_maps + stats.running_maps + stats.finished_maps, 16);
    EXPECT_GE(stats.running_maps, 0);
    EXPECT_EQ(stats.nodes, 4);
    EXPECT_EQ(stats.active_jobs.size(), 1u);
    checked = true;
  });
  runtime.run();
  EXPECT_TRUE(checked);
}

// Sweep the barrier + conservation invariants across selectivities (the
// property that makes every other experiment trustworthy).
class ConservationSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConservationSweep, ShuffledEqualsProduced) {
  RuntimeConfig config = small_config();
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>());
  runtime.submit(small_job(GetParam()), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  const Job& job = runtime.jobs()[0];
  Bytes outputs = 0;
  for (const auto& m : job.maps) outputs += m.output_size;
  EXPECT_NEAR(job.bytes_shuffled, static_cast<double>(outputs),
              1.0 + 1e-6 * static_cast<double>(outputs));
  for (const auto& r : job.reduces) {
    EXPECT_GE(r.shuffle_end_time, job.maps_done_time);
  }
}

INSTANTIATE_TEST_SUITE_P(Selectivities, ConservationSweep,
                         ::testing::Values(0.0, 0.05, 0.3, 0.7, 1.0, 1.3));

}  // namespace
}  // namespace smr::mapreduce
