// The lazy slot changer invariants (paper §III-D): raising a target opens
// capacity immediately; lowering never terminates a running task; actual
// slots always equal max(target, running).
#include "smr/mapreduce/tracker.hpp"

#include <gtest/gtest.h>

namespace smr::mapreduce {
namespace {

TEST(Tracker, InitialTargetsAreFreeSlots) {
  TaskTracker tracker(0, 3, 2);
  EXPECT_EQ(tracker.map_slots(), 3);
  EXPECT_EQ(tracker.reduce_slots(), 2);
  EXPECT_EQ(tracker.free_map_slots(), 3);
  EXPECT_EQ(tracker.free_reduce_slots(), 2);
}

TEST(Tracker, LaunchConsumesFreeSlot) {
  TaskTracker tracker(0, 2, 1);
  tracker.launch_map(10);
  EXPECT_EQ(tracker.running_maps(), 1);
  EXPECT_EQ(tracker.free_map_slots(), 1);
  tracker.launch_map(11);
  EXPECT_EQ(tracker.free_map_slots(), 0);
  EXPECT_THROW(tracker.launch_map(12), SmrError);
}

TEST(Tracker, RaisingTargetOpensSlotsImmediately) {
  TaskTracker tracker(0, 1, 1);
  tracker.launch_map(1);
  EXPECT_EQ(tracker.free_map_slots(), 0);
  tracker.set_map_target(4);
  EXPECT_EQ(tracker.free_map_slots(), 3);
  EXPECT_EQ(tracker.map_slots(), 4);
}

TEST(Tracker, LoweringTargetNeverKillsRunningTasks) {
  TaskTracker tracker(0, 4, 1);
  for (TaskId id : {1, 2, 3, 4}) tracker.launch_map(id);
  tracker.set_map_target(1);
  // All four tasks keep running; the excess slots retire lazily.
  EXPECT_EQ(tracker.running_maps(), 4);
  EXPECT_EQ(tracker.map_slots(), 4);  // actual = max(target, running)
  EXPECT_EQ(tracker.free_map_slots(), 0);
}

TEST(Tracker, ExcessSlotsRetireAsTasksFinish) {
  TaskTracker tracker(0, 4, 1);
  for (TaskId id : {1, 2, 3, 4}) tracker.launch_map(id);
  tracker.set_map_target(2);
  tracker.finish_map(1);
  EXPECT_EQ(tracker.map_slots(), 3);  // still above target, still no free slot
  EXPECT_EQ(tracker.free_map_slots(), 0);
  tracker.finish_map(2);
  EXPECT_EQ(tracker.map_slots(), 2);
  EXPECT_EQ(tracker.free_map_slots(), 0);
  tracker.finish_map(3);
  // Now below target: the freed slot is usable again.
  EXPECT_EQ(tracker.map_slots(), 2);
  EXPECT_EQ(tracker.free_map_slots(), 1);
}

TEST(Tracker, LazyInvariantHoldsThroughArbitrarySequence) {
  TaskTracker tracker(0, 3, 2);
  TaskId next = 0;
  std::vector<TaskId> running;
  const int targets[] = {3, 1, 5, 0, 2, 7, 1};
  for (int target : targets) {
    tracker.set_map_target(target);
    ASSERT_EQ(tracker.map_slots(), std::max(target, tracker.running_maps()));
    while (tracker.free_map_slots() > 0) {
      tracker.launch_map(next);
      running.push_back(next++);
    }
    // Finish half of the running tasks.
    const std::size_t keep = running.size() / 2;
    while (running.size() > keep) {
      tracker.finish_map(running.back());
      running.pop_back();
      ASSERT_EQ(tracker.map_slots(),
                std::max(tracker.map_target(), tracker.running_maps()));
    }
  }
}

TEST(Tracker, ReduceSlotsIndependentOfMapSlots) {
  TaskTracker tracker(0, 2, 2);
  tracker.launch_reduce(100);
  tracker.set_reduce_target(0);
  EXPECT_EQ(tracker.running_reduces(), 1);
  EXPECT_EQ(tracker.reduce_slots(), 1);
  EXPECT_EQ(tracker.free_reduce_slots(), 0);
  EXPECT_EQ(tracker.free_map_slots(), 2);  // untouched
  tracker.finish_reduce(100);
  EXPECT_EQ(tracker.reduce_slots(), 0);
}

TEST(Tracker, FinishUnknownTaskThrows) {
  TaskTracker tracker(0, 1, 1);
  tracker.launch_map(5);
  EXPECT_THROW(tracker.finish_map(6), SmrError);
  EXPECT_THROW(tracker.finish_reduce(5), SmrError);
}

TEST(Tracker, RejectsNegativeTargets) {
  TaskTracker tracker(0, 1, 1);
  EXPECT_THROW(tracker.set_map_target(-1), SmrError);
  EXPECT_THROW(tracker.set_reduce_target(-2), SmrError);
  EXPECT_THROW(TaskTracker(-1, 1, 1), SmrError);
}

}  // namespace
}  // namespace smr::mapreduce
