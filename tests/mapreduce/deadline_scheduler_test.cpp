#include <gtest/gtest.h>

#include <memory>

#include "smr/mapreduce/runtime.hpp"
#include "smr/mapreduce/scheduler.hpp"

namespace smr::mapreduce {
namespace {

Job make_job(JobId id, SimTime submit, SimTime deadline = kTimeNever,
             bool finished = false) {
  Job job;
  job.id = id;
  job.submit_time = submit;
  job.deadline = deadline;
  job.maps.resize(20);
  job.reduces.resize(8);
  if (finished) job.finish_time = submit + 100.0;
  return job;
}

TEST(DeadlineScheduler, EarliestDeadlineFirst) {
  DeadlineScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, /*deadline=*/900.0));
  jobs.push_back(make_job(1, 1.0, /*deadline=*/300.0));
  jobs.push_back(make_job(2, 2.0, /*deadline=*/600.0));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, false),
            (std::vector<std::size_t>{1, 2, 0}));
}

TEST(DeadlineScheduler, UndatedJobsSortAfterDatedOnes) {
  DeadlineScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0));  // no deadline
  jobs.push_back(make_job(1, 1.0, /*deadline=*/5000.0));
  jobs.push_back(make_job(2, 2.0));  // no deadline
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{1, 0, 2}));
}

TEST(DeadlineScheduler, TiesFallBackToSubmissionOrder) {
  DeadlineScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, /*deadline=*/600.0));
  jobs.push_back(make_job(1, 1.0, /*deadline=*/600.0));
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{0, 1}));
}

TEST(DeadlineScheduler, AllUndatedDegradesToFifo) {
  DeadlineScheduler deadline;
  FifoScheduler fifo;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0));
  jobs.push_back(make_job(1, 5.0));
  jobs.push_back(make_job(2, 10.0));
  EXPECT_EQ(deadline.job_order(jobs, 100.0, true),
            fifo.job_order(jobs, 100.0, true));
}

TEST(DeadlineScheduler, SkipsUnsubmittedAndFinished) {
  DeadlineScheduler scheduler;
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 0.0, 200.0, /*finished=*/true));
  jobs.push_back(make_job(1, 5.0, 400.0));
  jobs.push_back(make_job(2, 50.0, 100.0));  // not yet submitted at t=10
  EXPECT_EQ(scheduler.job_order(jobs, 10.0, true),
            (std::vector<std::size_t>{1}));
}

TEST(DeadlineScheduler, Name) {
  EXPECT_EQ(DeadlineScheduler().name(), "deadline");
}

// The runtime stamps Job::deadline = submit time + the spec's relative
// deadline, so a tight-SLO job submitted later can still preempt the
// slot-offer order.
TEST(DeadlineSchedulerEndToEnd, TightDeadlineJobOvertakesEarlierJob) {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.seed = 5;
  Runtime runtime(config, std::make_unique<StaticSlotPolicy>(),
                  std::make_unique<DeadlineScheduler>());
  JobSpec relaxed;
  relaxed.name = "relaxed";
  relaxed.input_size = 4 * kGiB;
  relaxed.reduce_tasks = 4;
  relaxed.map_cpu_per_mib = 0.3;
  relaxed.map_selectivity = 0.05;
  relaxed.relative_deadline = 100000.0;
  JobSpec urgent = relaxed;
  urgent.name = "urgent";
  urgent.input_size = 1 * kGiB;
  urgent.relative_deadline = 300.0;
  runtime.submit(relaxed, 0.0);
  runtime.submit(urgent, 30.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.jobs[0].deadline, 100000.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].deadline, 330.0);
  // The urgent job finishes first despite arriving second.
  EXPECT_LT(result.jobs[1].finish_time, result.jobs[0].finish_time);
  EXPECT_LE(result.jobs[1].finish_time, result.jobs[1].deadline);
}

}  // namespace
}  // namespace smr::mapreduce
