// The eager (kill-and-reschedule) slot-shrink mode: the counterfactual to
// the paper's lazy slot changer (§III-D).  Killed tasks must be fully
// requeued — progress rolled back, accounting conserved — and the job must
// still complete correctly.
#include <gtest/gtest.h>

#include <memory>

#include "smr/core/slot_policy.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/metrics/trace.hpp"
#include "smr/workload/puma.hpp"

namespace smr::mapreduce {
namespace {

RuntimeConfig shrink_config() {
  RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.eager_slot_shrink = true;
  config.seed = 21;
  return config;
}

/// A policy that repeatedly oscillates the map target, forcing shrinks.
class OscillatingPolicy final : public AllocationPolicy {
 public:
  std::string name() const override { return "oscillating"; }
  void on_period(std::span<TaskTracker> trackers, const ClusterStats& stats) override {
    if (!stats.has_active_job) return;
    ++periods_;
    const int target = (periods_ % 2 == 0) ? 4 : 1;
    for (auto& tracker : trackers) tracker.set_map_target(target);
  }

 private:
  int periods_ = 0;
};

JobSpec reduceheavy_job() {
  auto spec = workload::make_puma_job(workload::Puma::kTerasort, 2 * kGiB);
  spec.reduce_tasks = 8;
  return spec;
}

TEST(EagerShrink, KillsHappenAndJobStillCompletes) {
  RuntimeConfig config = shrink_config();
  Runtime runtime(config, std::make_unique<OscillatingPolicy>());
  runtime.submit(reduceheavy_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_GT(runtime.killed_map_tasks(), 0);
  // Every map eventually finished exactly once despite the kills.
  const Job& job = runtime.jobs()[0];
  for (const auto& m : job.maps) {
    EXPECT_EQ(m.phase, MapPhase::kDone);
  }
}

TEST(EagerShrink, ConservationHoldsAfterKills) {
  RuntimeConfig config = shrink_config();
  Runtime runtime(config, std::make_unique<OscillatingPolicy>());
  const JobSpec spec = reduceheavy_job();
  runtime.submit(spec, 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  ASSERT_GT(runtime.killed_map_tasks(), 0);
  const Job& job = runtime.jobs()[0];
  // Killed work was rolled back, so the final processed-input counter must
  // equal the input exactly once (not input + killed partials).
  EXPECT_NEAR(job.map_input_processed, static_cast<double>(spec.input_size),
              1e-6 * static_cast<double>(spec.input_size) + 1.0);
  Bytes outputs = 0;
  for (const auto& m : job.maps) outputs += m.output_size;
  EXPECT_NEAR(job.bytes_shuffled, static_cast<double>(outputs),
              1.0 + 1e-6 * static_cast<double>(outputs));
}

TEST(EagerShrink, LazyModeNeverKills) {
  RuntimeConfig config = shrink_config();
  config.eager_slot_shrink = false;
  Runtime runtime(config, std::make_unique<OscillatingPolicy>());
  runtime.submit(reduceheavy_job(), 0.0);
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(runtime.killed_map_tasks(), 0);
}

TEST(EagerShrink, KillEventsAppearInTrace) {
  RuntimeConfig config = shrink_config();
  Runtime runtime(config, std::make_unique<OscillatingPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(reduceheavy_job(), 0.0);
  runtime.run();
  const auto kills = trace.of_kind(metrics::TraceEventKind::kTaskKilled);
  EXPECT_EQ(static_cast<int>(kills.size()), runtime.killed_map_tasks());
  for (const auto& kill : kills) {
    EXPECT_TRUE(kill.is_map);
    EXPECT_NE(kill.node, kInvalidNode);
  }
}

TEST(EagerShrink, KilledTasksRelaunchFresh) {
  RuntimeConfig config = shrink_config();
  Runtime runtime(config, std::make_unique<OscillatingPolicy>());
  metrics::TraceLog trace;
  runtime.set_trace(&trace);
  runtime.submit(reduceheavy_job(), 0.0);
  runtime.run();
  // Launches = maps + kills (each kill triggers exactly one relaunch).
  const auto launches = trace.of_kind(metrics::TraceEventKind::kTaskLaunched);
  int map_launches = 0;
  for (const auto& launch : launches) {
    if (launch.is_map) ++map_launches;
  }
  const int total_maps = static_cast<int>(runtime.jobs()[0].maps.size());
  EXPECT_EQ(map_launches, total_maps + runtime.killed_map_tasks());
}

TEST(EagerShrink, UnderSlotManagerStillCompletes) {
  // The real pairing from the ablation bench: SMapReduce policy + eager
  // shrink on a reduce-heavy job.
  RuntimeConfig config = shrink_config();
  Runtime runtime(config, std::make_unique<core::SmrSlotPolicy>());
  runtime.submit(reduceheavy_job(), 0.0);
  const auto result = runtime.run();
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace smr::mapreduce
