#include "smr/metrics/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "smr/mapreduce/runtime.hpp"

namespace smr::metrics {
namespace {

TraceEvent event_at(SimTime t, TraceEventKind kind, TaskId task = 1,
                    NodeId node = 0, const char* detail = "") {
  TraceEvent e;
  e.time = t;
  e.kind = kind;
  e.job = 0;
  e.task = task;
  e.node = node;
  e.detail = detail;
  return e;
}

TEST(TraceLog, RecordsAndFiltersByKind) {
  TraceLog log;
  EXPECT_TRUE(log.empty());
  log.record(event_at(1.0, TraceEventKind::kTaskLaunched));
  log.record(event_at(2.0, TraceEventKind::kTaskFinished));
  log.record(event_at(3.0, TraceEventKind::kTaskLaunched, 2));
  EXPECT_EQ(log.size(), 3u);
  const auto launches = log.of_kind(TraceEventKind::kTaskLaunched);
  ASSERT_EQ(launches.size(), 2u);
  EXPECT_EQ(launches[1].task, 2);
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(TraceLog, EveryKindHasAName) {
  for (auto kind : {TraceEventKind::kJobSubmitted, TraceEventKind::kTaskLaunched,
                    TraceEventKind::kPhaseStarted, TraceEventKind::kTaskFinished,
                    TraceEventKind::kTaskKilled, TraceEventKind::kBarrierCrossed,
                    TraceEventKind::kJobFinished, TraceEventKind::kNodeFailed,
                    TraceEventKind::kSlotTargetChanged,
                    TraceEventKind::kPolicyDecision}) {
    EXPECT_STRNE(to_string(kind), "UNKNOWN");
  }
}

TEST(TraceLog, CsvHasHeaderAndOneRowPerEvent) {
  TraceLog log;
  log.record(event_at(1.5, TraceEventKind::kTaskLaunched, 7, 3));
  log.record(event_at(2.5, TraceEventKind::kPhaseStarted, 7, 3, "MAP"));
  std::ostringstream out;
  log.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time,kind,job,task,node,is_map,detail,value"), std::string::npos);
  EXPECT_NE(csv.find("1.5,TASK_LAUNCHED,0,7,3,1,,0"), std::string::npos);
  EXPECT_NE(csv.find("2.5,PHASE_STARTED,0,7,3,1,MAP,0"), std::string::npos);
}

TEST(TraceLog, CsvQuotesDetailsWithSeparators) {
  // Details are free text (policy reasons carry commas and quotes); the
  // CSV writer must quote them per RFC 4180 or the columns shift.
  TraceLog log;
  log.record(event_at(6.0, TraceEventKind::kPolicyDecision, kInvalidTask,
                      kInvalidNode, "GROW_MAPS: f=1.02, above [0.85,0.95]"));
  log.record(event_at(12.0, TraceEventKind::kPolicyDecision, kInvalidTask,
                      kInvalidNode, "held \"climb\"\nnext line"));
  std::ostringstream out;
  log.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"GROW_MAPS: f=1.02, above [0.85,0.95]\""),
            std::string::npos);
  EXPECT_NE(csv.find("\"held \"\"climb\"\"\nnext line\""), std::string::npos);
  // The plain columns stay unquoted.
  EXPECT_NE(csv.find("6,POLICY_DECISION,"), std::string::npos);
}

TEST(TraceLog, ChromeTracePairsPhasesIntoSlices) {
  TraceLog log;
  log.record(event_at(1.0, TraceEventKind::kPhaseStarted, 7, 3, "MAP"));
  log.record(event_at(5.0, TraceEventKind::kPhaseStarted, 7, 3, "SPILL"));
  log.record(event_at(6.0, TraceEventKind::kTaskFinished, 7, 3));
  std::ostringstream out;
  log.write_chrome_trace(out);
  const std::string json = out.str();
  // MAP slice: ts=1e6, dur=4e6; SPILL slice: ts=5e6, dur=1e6.
  EXPECT_NE(json.find("\"name\":\"MAP\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1e+06,\"dur\":4e+06"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"SPILL\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("]"), std::string::npos);
}

TEST(TraceLog, ChromeTraceEmitsInstantForBarrier) {
  TraceLog log;
  log.record(event_at(10.0, TraceEventKind::kBarrierCrossed, kInvalidTask,
                      kInvalidNode));
  std::ostringstream out;
  log.write_chrome_trace(out);
  EXPECT_NE(out.str().find("\"name\":\"barrier\""), std::string::npos);
}

// End-to-end: attach a trace to a real run and verify its structure.
class RuntimeTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    mapreduce::RuntimeConfig config;
    config.cluster = cluster::ClusterSpec::paper_testbed(2);
    config.seed = 17;
    runtime_ = std::make_unique<mapreduce::Runtime>(
        config, std::make_unique<mapreduce::StaticSlotPolicy>());
    runtime_->set_trace(&trace_);
    mapreduce::JobSpec spec;
    spec.input_size = 1 * kGiB;
    spec.reduce_tasks = 4;
    spec.map_cpu_per_mib = 0.2;
    spec.map_selectivity = 0.5;
    runtime_->submit(spec, 0.0);
    result_ = runtime_->run();
  }

  TraceLog trace_;
  std::unique_ptr<mapreduce::Runtime> runtime_;
  metrics::RunResult result_;
};

TEST_F(RuntimeTrace, LifecycleEventCountsConsistent) {
  ASSERT_TRUE(result_.completed);
  EXPECT_EQ(trace_.of_kind(TraceEventKind::kJobSubmitted).size(), 1u);
  EXPECT_EQ(trace_.of_kind(TraceEventKind::kJobFinished).size(), 1u);
  EXPECT_EQ(trace_.of_kind(TraceEventKind::kBarrierCrossed).size(), 1u);
  // 8 maps + 4 reduces, one launch and one finish each.
  EXPECT_EQ(trace_.of_kind(TraceEventKind::kTaskLaunched).size(), 12u);
  EXPECT_EQ(trace_.of_kind(TraceEventKind::kTaskFinished).size(), 12u);
  EXPECT_TRUE(trace_.of_kind(TraceEventKind::kTaskKilled).empty());
}

TEST_F(RuntimeTrace, EventsAreTimeOrdered) {
  SimTime prev = 0.0;
  for (const auto& event : trace_.events()) {
    EXPECT_GE(event.time, prev);
    prev = event.time;
  }
}

TEST_F(RuntimeTrace, EveryReducePassesThroughAllPhases) {
  int shuffles = 0, sorts = 0, reduces = 0;
  for (const auto& event : trace_.of_kind(TraceEventKind::kPhaseStarted)) {
    if (event.detail == "SHUFFLE") ++shuffles;
    if (event.detail == "SORT") ++sorts;
    if (event.detail == "REDUCE") ++reduces;
  }
  EXPECT_EQ(shuffles, 4);
  EXPECT_EQ(sorts, 4);
  EXPECT_EQ(reduces, 4);
}

TEST_F(RuntimeTrace, BarrierPrecedesEverySort) {
  const auto barrier = trace_.of_kind(TraceEventKind::kBarrierCrossed)[0].time;
  for (const auto& event : trace_.of_kind(TraceEventKind::kPhaseStarted)) {
    if (event.detail == "SORT") EXPECT_GE(event.time, barrier);
  }
}

TEST_F(RuntimeTrace, ChromeTraceParsesStructurally) {
  std::ostringstream out;
  trace_.write_chrome_trace(out);
  const std::string json = out.str();
  // Every opened slice is closed: count of '{' equals count of '}'.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.front(), '[');
}

}  // namespace
}  // namespace smr::metrics
