#include "smr/metrics/job_metrics.hpp"

#include <gtest/gtest.h>

namespace smr::metrics {
namespace {

JobResult finished_job(SimTime submit, SimTime start, SimTime barrier,
                       SimTime finish, Bytes input = 1 * kGiB) {
  JobResult job;
  job.id = 0;
  job.name = "job";
  job.input_size = input;
  job.submit_time = submit;
  job.start_time = start;
  job.maps_done_time = barrier;
  job.finish_time = finish;
  return job;
}

TEST(JobResult, TimingDecomposition) {
  const auto job = finished_job(0.0, 2.0, 102.0, 152.0);
  EXPECT_TRUE(job.finished());
  EXPECT_DOUBLE_EQ(job.map_time(), 100.0);
  EXPECT_DOUBLE_EQ(job.reduce_time(), 50.0);
  EXPECT_DOUBLE_EQ(job.total_time(), 150.0);
  EXPECT_DOUBLE_EQ(job.execution_time(), 152.0);
}

TEST(JobResult, ThroughputIsInputOverTotalTime) {
  const auto job = finished_job(0.0, 0.0, 50.0, 100.0, 100 * kMiB);
  EXPECT_DOUBLE_EQ(job.throughput(), static_cast<double>(kMiB));
  EXPECT_DOUBLE_EQ(job.map_throughput(), 2.0 * static_cast<double>(kMiB));
}

TEST(JobResult, ThroughputOnUnfinishedJobThrows) {
  JobResult job;
  job.input_size = 1 * kGiB;
  EXPECT_FALSE(job.finished());
  EXPECT_THROW(job.throughput(), SmrError);
}

TEST(ProgressSample, TotalIsMapPlusReduce) {
  ProgressSample sample{10.0, 80.0, 30.0};
  EXPECT_DOUBLE_EQ(sample.total_pct(), 110.0);
}

TEST(RunResult, MeanExecutionTime) {
  RunResult result;
  result.jobs.push_back(finished_job(0.0, 1.0, 50.0, 100.0));
  result.jobs.push_back(finished_job(5.0, 6.0, 60.0, 205.0));
  EXPECT_DOUBLE_EQ(result.mean_execution_time(), (100.0 + 200.0) / 2.0);
}

TEST(RunResult, LastFinishRelativeToFirstSubmit) {
  RunResult result;
  result.jobs.push_back(finished_job(10.0, 11.0, 50.0, 100.0));
  result.jobs.push_back(finished_job(15.0, 16.0, 60.0, 300.0));
  EXPECT_DOUBLE_EQ(result.last_finish_time(), 290.0);
}

TEST(RunResult, MeanOnUnfinishedThrows) {
  RunResult result;
  result.jobs.push_back(JobResult{});
  EXPECT_THROW(result.mean_execution_time(), SmrError);
}

TEST(AverageTrials, MeansTimestamps) {
  RunResult a, b;
  a.jobs.push_back(finished_job(0.0, 2.0, 100.0, 150.0));
  b.jobs.push_back(finished_job(0.0, 4.0, 120.0, 170.0));
  a.makespan = 150.0;
  b.makespan = 170.0;
  a.completed = b.completed = true;
  const auto avg = average_trials({a, b});
  EXPECT_DOUBLE_EQ(avg.jobs[0].start_time, 3.0);
  EXPECT_DOUBLE_EQ(avg.jobs[0].maps_done_time, 110.0);
  EXPECT_DOUBLE_EQ(avg.jobs[0].finish_time, 160.0);
  EXPECT_DOUBLE_EQ(avg.makespan, 160.0);
  EXPECT_TRUE(avg.completed);
}

TEST(AverageTrials, SingleTrialIsIdentity) {
  RunResult a;
  a.jobs.push_back(finished_job(0.0, 2.0, 100.0, 150.0));
  a.completed = true;
  const auto avg = average_trials({a});
  EXPECT_DOUBLE_EQ(avg.jobs[0].finish_time, 150.0);
}

TEST(AverageTrials, IncompleteTrialPoisonsCompleted) {
  RunResult a, b;
  a.jobs.push_back(finished_job(0.0, 2.0, 100.0, 150.0));
  b.jobs.push_back(finished_job(0.0, 2.0, 100.0, 160.0));
  a.completed = true;
  b.completed = false;
  EXPECT_FALSE(average_trials({a, b}).completed);
}

TEST(AverageTrials, MismatchedJobsThrow) {
  RunResult a, b;
  a.jobs.push_back(finished_job(0.0, 2.0, 100.0, 150.0));
  EXPECT_THROW(average_trials({a, b}), SmrError);
  b.jobs.push_back(finished_job(0.0, 2.0, 100.0, 150.0));
  b.jobs[0].name = "other";
  EXPECT_THROW(average_trials({a, b}), SmrError);
  EXPECT_THROW(average_trials({}), SmrError);
}

}  // namespace
}  // namespace smr::metrics
