#include "smr/metrics/reporter.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace smr::metrics {
namespace {

RunResult sample_result() {
  RunResult result;
  JobResult job;
  job.id = 0;
  job.name = "grep";
  job.input_size = 4 * kGiB;
  job.shuffle_volume = 4 * kMiB;
  job.submit_time = 0.0;
  job.start_time = 1.0;
  job.maps_done_time = 101.0;
  job.finish_time = 111.0;
  result.jobs.push_back(job);
  job.id = 1;
  job.name = "terasort";
  job.submit_time = 5.0;
  job.start_time = 6.0;
  job.maps_done_time = 106.0;
  job.finish_time = 206.0;
  result.jobs.push_back(job);
  result.progress.push_back({{10.0, 50.0, 10.0}, {20.0, 100.0, 40.0}});
  result.progress.push_back({{10.0, 30.0, 0.0}});
  result.slots.push_back({10.0, 3.0, 2.0, 2.5, 1.5});
  result.completed = true;
  result.makespan = 206.0;
  return result;
}

TEST(TextTable, AlignsColumnsToWidestCell) {
  TextTable table({"a", "long-header"});
  table.add_row({"wide-cell-content", "x"});
  const std::string text = table.to_string();
  // Header line, separator, one row.
  EXPECT_NE(text.find("a                  long-header"), std::string::npos);
  EXPECT_NE(text.find("wide-cell-content  x"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), SmrError);
  EXPECT_THROW(TextTable({}), SmrError);
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0), "3.0");
  EXPECT_EQ(format_fixed(-1.25, 1), "-1.2");
}

TEST(JobSummary, OneRowPerJob) {
  const auto table = job_summary_table(sample_result());
  EXPECT_EQ(table.row_count(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("grep"), std::string::npos);
  EXPECT_NE(text.find("terasort"), std::string::npos);
  EXPECT_NE(text.find("110.0"), std::string::npos);  // grep total time
}

TEST(JobSummary, UnfinishedJobMarked) {
  RunResult result = sample_result();
  result.jobs[1].finish_time = kTimeNever;
  const std::string text = job_summary_table(result).to_string();
  EXPECT_NE(text.find("(unfinished)"), std::string::npos);
}

TEST(JobsCsv, HeaderAndValues) {
  std::ostringstream out;
  write_jobs_csv(sample_result(), out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("job,name,input_bytes"), std::string::npos);
  EXPECT_NE(csv.find("0,grep,"), std::string::npos);
  EXPECT_NE(csv.find("1,terasort,"), std::string::npos);
  // grep: map 100 s, reduce 10 s, total 110 s.
  EXPECT_NE(csv.find(",100,10,110,"), std::string::npos);
}

TEST(JobsCsv, UnfinishedJobHasEmptyDerivedColumns) {
  RunResult result = sample_result();
  result.jobs[1].finish_time = kTimeNever;
  std::ostringstream out;
  write_jobs_csv(result, out);
  // The unfinished row ends with the three empty derived columns.
  EXPECT_NE(out.str().find(",,,\n"), std::string::npos);
}

TEST(ProgressCsv, OneRowPerSampleWithJobIndex) {
  std::ostringstream out;
  write_progress_csv(sample_result(), out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("job,time_s,map_pct,reduce_pct,total_pct"), std::string::npos);
  EXPECT_NE(csv.find("0,10,50,10,60"), std::string::npos);
  EXPECT_NE(csv.find("0,20,100,40,140"), std::string::npos);
  EXPECT_NE(csv.find("1,10,30,0,30"), std::string::npos);
}

TEST(SlotsCsv, TimelineRows) {
  std::ostringstream out;
  write_slots_csv(sample_result(), out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_s,map_target,reduce_target"), std::string::npos);
  EXPECT_NE(csv.find("10,3,2,2.5,1.5"), std::string::npos);
}

}  // namespace
}  // namespace smr::metrics
