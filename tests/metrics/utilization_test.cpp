#include "smr/metrics/utilization.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "smr/core/slot_policy.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/workload/puma.hpp"

namespace smr::metrics {
namespace {

TraceEvent task_event(SimTime t, TraceEventKind kind, TaskId task, NodeId node) {
  TraceEvent e;
  e.time = t;
  e.kind = kind;
  e.task = task;
  e.node = node;
  e.job = 0;
  return e;
}

TEST(Utilization, SingleTaskInterval) {
  TraceLog trace;
  trace.record(task_event(2.0, TraceEventKind::kTaskLaunched, 1, 0));
  trace.record(task_event(7.0, TraceEventKind::kTaskFinished, 1, 0));
  const auto util = utilization_from_trace(trace, 2, 10.0);
  EXPECT_DOUBLE_EQ(util.nodes[0].average_concurrency, 0.5);  // 5 of 10 s
  EXPECT_DOUBLE_EQ(util.nodes[0].busy_fraction, 0.5);
  EXPECT_EQ(util.nodes[0].peak_concurrency, 1);
  EXPECT_DOUBLE_EQ(util.nodes[1].average_concurrency, 0.0);
  EXPECT_DOUBLE_EQ(util.mean_busy_fraction, 0.25);
}

TEST(Utilization, OverlappingTasksStackConcurrency) {
  TraceLog trace;
  trace.record(task_event(0.0, TraceEventKind::kTaskLaunched, 1, 0));
  trace.record(task_event(0.0, TraceEventKind::kTaskLaunched, 2, 0));
  trace.record(task_event(5.0, TraceEventKind::kTaskFinished, 1, 0));
  trace.record(task_event(10.0, TraceEventKind::kTaskFinished, 2, 0));
  const auto util = utilization_from_trace(trace, 1, 10.0);
  EXPECT_DOUBLE_EQ(util.nodes[0].average_concurrency, 1.5);
  EXPECT_DOUBLE_EQ(util.nodes[0].busy_fraction, 1.0);
  EXPECT_EQ(util.nodes[0].peak_concurrency, 2);
}

TEST(Utilization, KilledAttemptsCloseIntervals) {
  TraceLog trace;
  trace.record(task_event(0.0, TraceEventKind::kTaskLaunched, 1, 0));
  trace.record(task_event(4.0, TraceEventKind::kTaskKilled, 1, 0));
  const auto util = utilization_from_trace(trace, 1, 8.0);
  EXPECT_DOUBLE_EQ(util.nodes[0].busy_fraction, 0.5);
}

TEST(Utilization, OpenAttemptsRunToHorizon) {
  TraceLog trace;
  trace.record(task_event(6.0, TraceEventKind::kTaskLaunched, 1, 0));
  const auto util = utilization_from_trace(trace, 1, 10.0);
  EXPECT_DOUBLE_EQ(util.nodes[0].busy_fraction, 0.4);
}

TEST(Utilization, EventsBeyondHorizonClamped) {
  TraceLog trace;
  trace.record(task_event(5.0, TraceEventKind::kTaskLaunched, 1, 0));
  trace.record(task_event(50.0, TraceEventKind::kTaskFinished, 1, 0));
  const auto util = utilization_from_trace(trace, 1, 10.0);
  EXPECT_DOUBLE_EQ(util.nodes[0].busy_fraction, 0.5);
}

TEST(Utilization, RejectsNonsense) {
  TraceLog trace;
  EXPECT_THROW(utilization_from_trace(trace, 0, 10.0), SmrError);
  EXPECT_THROW(utilization_from_trace(trace, 1, 0.0), SmrError);
}

// End-to-end: SMapReduce raises map-phase concurrency over the static
// configuration on a map-heavy job — the paper's utilisation claim made
// quantitative.
TEST(UtilizationEndToEnd, SlotManagerRaisesConcurrency) {
  auto run_util = [](bool smr) {
    mapreduce::RuntimeConfig config;
    config.cluster = cluster::ClusterSpec::paper_testbed(4);
    config.seed = 111;
    std::unique_ptr<mapreduce::AllocationPolicy> policy;
    if (smr) {
      policy = std::make_unique<core::SmrSlotPolicy>();
    } else {
      policy = std::make_unique<mapreduce::StaticSlotPolicy>();
    }
    mapreduce::Runtime runtime(config, std::move(policy));
    TraceLog trace;
    runtime.set_trace(&trace);
    auto spec = workload::make_puma_job(workload::Puma::kHistogramRatings, 8 * kGiB);
    spec.reduce_tasks = 8;
    runtime.submit(spec, 0.0);
    const auto result = runtime.run();
    EXPECT_TRUE(result.completed);
    return utilization_from_trace(trace, 4, result.jobs[0].finish_time);
  };
  const auto static_util = run_util(false);
  const auto smr_util = run_util(true);
  EXPECT_GT(smr_util.mean_concurrency, static_util.mean_concurrency);
  // Static never exceeds its configured 3 + 2 slots.
  for (const auto& node : static_util.nodes) {
    EXPECT_LE(node.peak_concurrency, 5);
  }
}

}  // namespace
}  // namespace smr::metrics
