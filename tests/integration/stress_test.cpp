// Randomised stress properties: synthetic job mixes across engines, seeds
// and feature combinations.  Every run must complete, conserve bytes and
// stay deterministic — these are the safety nets under all calibration
// work.
#include <gtest/gtest.h>

#include <memory>

#include "smr/core/slot_policy.hpp"
#include "smr/driver/experiment.hpp"
#include "smr/mapreduce/runtime.hpp"
#include "smr/common/thread_pool.hpp"
#include "smr/workload/synthetic.hpp"
#include "smr/yarn/capacity_policy.hpp"

namespace smr::driver {
namespace {

workload::SyntheticMixConfig small_mix(std::uint64_t seed) {
  workload::SyntheticMixConfig mix;
  mix.jobs = 5;
  mix.mean_interarrival = 40.0;
  mix.min_input = 1 * kGiB;
  mix.max_input = 6 * kGiB;
  mix.reduce_tasks = 8;
  mix.seed = seed;
  return mix;
}

class MixSweep
    : public ::testing::TestWithParam<std::tuple<EngineKind, std::uint64_t>> {};

TEST_P(MixSweep, SyntheticMixCompletesAndConserves) {
  const auto [engine, seed] = GetParam();
  ExperimentConfig config = ExperimentConfig::paper_default(engine);
  config.runtime.cluster = cluster::ClusterSpec::paper_testbed(8);
  config.runtime.seed = seed;
  config.trials = 1;

  mapreduce::RuntimeConfig runtime_config = config.runtime;
  mapreduce::Runtime runtime(runtime_config, make_policy(config));
  for (const auto& job : workload::make_synthetic_mix(small_mix(seed))) {
    runtime.submit(job.spec, job.submit_at);
  }
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed) << engine_name(engine) << " seed " << seed;

  for (const auto& job : runtime.jobs()) {
    Bytes outputs = 0;
    for (const auto& m : job.maps) outputs += m.output_size;
    EXPECT_NEAR(job.bytes_shuffled, static_cast<double>(outputs),
                1.0 + 1e-6 * static_cast<double>(outputs))
        << job.spec.name;
    EXPECT_NEAR(job.map_input_processed, static_cast<double>(job.spec.input_size),
                1.0 + 1e-6 * static_cast<double>(job.spec.input_size))
        << job.spec.name;
    // Barrier semantics per job.
    for (const auto& r : job.reduces) {
      EXPECT_GE(r.shuffle_end_time, job.maps_done_time);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, MixSweep,
    ::testing::Combine(::testing::Values(EngineKind::kHadoopV1, EngineKind::kYarn,
                                         EngineKind::kSMapReduce),
                       ::testing::Values(1u, 7u, 23u, 99u)),
    [](const auto& info) {
      return std::string(engine_name(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Everything on at once: speculation + a node failure + fair scheduling +
// delay scheduling + eager shrink, under the slot manager.
class KitchenSinkSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KitchenSinkSweep, AllFeaturesComposeWithoutDeadlock) {
  const std::uint64_t seed = GetParam();
  mapreduce::RuntimeConfig config;
  config.cluster = cluster::ClusterSpec::paper_testbed(8);
  config.seed = seed;
  config.speculative_execution = true;
  config.eager_slot_shrink = true;
  config.locality_wait_offers = 4;
  config.failures.push_back({static_cast<NodeId>(seed % 8), 45.0});

  mapreduce::Runtime runtime(config, std::make_unique<core::SmrSlotPolicy>(),
                             std::make_unique<mapreduce::FairScheduler>());
  for (const auto& job : workload::make_synthetic_mix(small_mix(seed))) {
    runtime.submit(job.spec, job.submit_at);
  }
  const auto result = runtime.run();
  ASSERT_TRUE(result.completed) << "seed " << seed;
  for (const auto& job : runtime.jobs()) {
    EXPECT_EQ(job.reduces_finished, static_cast<int>(job.reduces.size()));
    // Whatever was killed, requeued or speculated, every reducer ends with
    // exactly its partition.
    for (const auto& r : job.reduces) {
      EXPECT_NEAR(r.fetched, static_cast<double>(r.partition_size), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KitchenSinkSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// Determinism must survive every feature: identical reruns bit-match.
class DeterminismSweep : public ::testing::TestWithParam<EngineKind> {};

TEST_P(DeterminismSweep, FeatureRichRunsBitMatch) {
  auto run_once = [&] {
    mapreduce::RuntimeConfig config;
    config.cluster = cluster::ClusterSpec::paper_testbed(6);
    config.seed = 77;
    config.speculative_execution = true;
    config.locality_wait_offers = 2;
    config.failures.push_back({2, 40.0});
    ExperimentConfig experiment = ExperimentConfig::paper_default(GetParam());
    experiment.runtime = config;
    mapreduce::Runtime runtime(config, make_policy(experiment));
    for (const auto& job : workload::make_synthetic_mix(small_mix(42))) {
      runtime.submit(job.spec, job.submit_at);
    }
    return runtime.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(a.jobs[j].finish_time, b.jobs[j].finish_time);
    EXPECT_DOUBLE_EQ(a.jobs[j].maps_done_time, b.jobs[j].maps_done_time);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(Engines, DeterminismSweep,
                         ::testing::Values(EngineKind::kHadoopV1, EngineKind::kYarn,
                                           EngineKind::kSMapReduce),
                         [](const auto& info) {
                           return std::string(engine_name(info.param));
                         });

// The thread pool must not perturb results: the same sweep computed
// sequentially and in parallel yields identical numbers.
TEST(ParallelSweeps, MatchSequentialResults) {
  const auto spec = workload::make_puma_job(workload::Puma::kWordCount, 4 * kGiB);
  auto run_at = [&spec](int slots) {
    ExperimentConfig config = ExperimentConfig::paper_default(EngineKind::kHadoopV1);
    config.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);
    config.runtime.initial_map_slots = slots;
    config.trials = 1;
    return run_single_job(config, spec).jobs[0].finish_time;
  };
  std::vector<double> sequential(7), parallel_results(7);
  for (int s = 1; s <= 6; ++s) sequential[static_cast<std::size_t>(s)] = run_at(s);
  parallel_for(1, 7, [&](std::size_t s) {
    parallel_results[s] = run_at(static_cast<int>(s));
  });
  for (int s = 1; s <= 6; ++s) {
    EXPECT_DOUBLE_EQ(sequential[static_cast<std::size_t>(s)],
                     parallel_results[static_cast<std::size_t>(s)]);
  }
}

}  // namespace
}  // namespace smr::driver
