// Determinism harness: the parallel trial/sweep runners must produce
// bit-for-bit identical results for any thread-pool size, and repeated
// runs of the same configuration must agree exactly — the invariant the
// fast-path work (incremental solver, lazy-deletion heap, parallel
// runners) is locked down by.
#include <gtest/gtest.h>

#include <vector>

#include "smr/common/thread_pool.hpp"
#include "smr/driver/experiment.hpp"
#include "smr/driver/sweep.hpp"
#include "smr/workload/puma.hpp"
#include "smr/workload/synthetic.hpp"

namespace smr::driver {
namespace {

ExperimentConfig small_config(EngineKind engine, int trials) {
  ExperimentConfig config = ExperimentConfig::paper_default(engine);
  config.runtime.cluster = cluster::ClusterSpec::paper_testbed(4);
  config.trials = trials;
  return config;
}

std::vector<JobSubmission> small_jobs() {
  mapreduce::JobSpec spec = workload::make_puma_job(workload::Puma::kGrep, 2 * kGiB);
  spec.reduce_tasks = 8;
  return {JobSubmission{spec, 0.0}};
}

// Bitwise equality over everything a run reports.  EXPECT_EQ on doubles is
// exact (no tolerance), which is the point: identical arithmetic order
// must produce identical bits.
void expect_bitwise_equal(const metrics::RunResult& a, const metrics::RunResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].submit_time, b.jobs[j].submit_time);
    EXPECT_EQ(a.jobs[j].start_time, b.jobs[j].start_time);
    EXPECT_EQ(a.jobs[j].maps_done_time, b.jobs[j].maps_done_time);
    EXPECT_EQ(a.jobs[j].finish_time, b.jobs[j].finish_time);
    EXPECT_EQ(a.jobs[j].failed, b.jobs[j].failed);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.engine_events, b.engine_events);
  ASSERT_EQ(a.progress.size(), b.progress.size());
  for (std::size_t j = 0; j < a.progress.size(); ++j) {
    ASSERT_EQ(a.progress[j].size(), b.progress[j].size());
    for (std::size_t s = 0; s < a.progress[j].size(); ++s) {
      EXPECT_EQ(a.progress[j][s].time, b.progress[j][s].time);
      EXPECT_EQ(a.progress[j][s].map_pct, b.progress[j][s].map_pct);
      EXPECT_EQ(a.progress[j][s].reduce_pct, b.progress[j][s].reduce_pct);
    }
  }
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t s = 0; s < a.slots.size(); ++s) {
    EXPECT_EQ(a.slots[s].time, b.slots[s].time);
    EXPECT_EQ(a.slots[s].map_target, b.slots[s].map_target);
    EXPECT_EQ(a.slots[s].reduce_target, b.slots[s].reduce_target);
    EXPECT_EQ(a.slots[s].running_maps, b.slots[s].running_maps);
    EXPECT_EQ(a.slots[s].running_reduces, b.slots[s].running_reduces);
  }
}

TEST(Determinism, TrialsBitIdenticalAcrossPoolSizes) {
  for (EngineKind engine : all_engines()) {
    const ExperimentConfig config = small_config(engine, 4);
    ThreadPool one(1);
    ThreadPool many(16);
    const metrics::RunResult serial = run_experiment(config, small_jobs(), one);
    const metrics::RunResult parallel = run_experiment(config, small_jobs(), many);
    SCOPED_TRACE(engine_name(engine));
    expect_bitwise_equal(serial, parallel);
  }
}

TEST(Determinism, RepeatedRunsBitIdentical) {
  const ExperimentConfig config = small_config(EngineKind::kSMapReduce, 2);
  const metrics::RunResult first = run_experiment(config, small_jobs());
  const metrics::RunResult second = run_experiment(config, small_jobs());
  expect_bitwise_equal(first, second);
}

TEST(Determinism, MultiJobFairSchedulerBitIdenticalAcrossPoolSizes) {
  // The synthetic multi-job path exercises scheduler interleavings and the
  // speculative/failure machinery more aggressively than one PUMA job.
  workload::SyntheticMixConfig mix;
  mix.jobs = 4;
  mix.min_input = kGiB;
  mix.max_input = 4 * kGiB;
  mix.reduce_tasks = 8;
  mix.seed = 11;
  ExperimentConfig config = small_config(EngineKind::kSMapReduce, 3);
  config.scheduler = SchedulerKind::kFair;
  std::vector<JobSubmission> jobs;
  for (auto& job : workload::make_synthetic_mix(mix)) {
    jobs.push_back({std::move(job.spec), job.submit_at});
  }
  ThreadPool one(1);
  ThreadPool many(16);
  const metrics::RunResult serial = run_experiment(config, jobs, one);
  const metrics::RunResult parallel = run_experiment(config, jobs, many);
  expect_bitwise_equal(serial, parallel);
}

TEST(Determinism, SweepBitIdenticalAcrossPoolSizes) {
  SweepConfig config;
  config.base = small_config(EngineKind::kHadoopV1, 2);
  config.spec = workload::make_puma_job(workload::Puma::kGrep, kGiB);
  config.spec.reduce_tasks = 8;
  config.dimension = SweepDimension::kMapSlots;
  config.values = {1, 2, 3};
  config.engines = {EngineKind::kHadoopV1, EngineKind::kSMapReduce};

  ThreadPool one(1);
  ThreadPool many(16);
  const SweepResult serial = run_sweep(config, one);
  const SweepResult parallel = run_sweep(config, many);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(serial.cells[i].value, parallel.cells[i].value);
    EXPECT_EQ(serial.cells[i].engine, parallel.cells[i].engine);
    EXPECT_EQ(serial.cells[i].job.start_time, parallel.cells[i].job.start_time);
    EXPECT_EQ(serial.cells[i].job.maps_done_time, parallel.cells[i].job.maps_done_time);
    EXPECT_EQ(serial.cells[i].job.finish_time, parallel.cells[i].job.finish_time);
    EXPECT_EQ(serial.cells[i].engine_events, parallel.cells[i].engine_events);
  }
}

TEST(Determinism, ShardedBitIdenticalToSerialAcrossShardAndPoolSizes) {
  // Tentpole invariant: for a fixed workload, --shards=N must produce the
  // same bytes as the serial engine for every N and every thread count
  // (shard_count above the node count clamps; a 1-thread pool runs the
  // shard windows inline in shard order).
  for (EngineKind engine : all_engines()) {
    ExperimentConfig config = small_config(engine, 1);
    ThreadPool one(1);
    ThreadPool many(16);
    const metrics::RunResult serial = run_experiment(config, small_jobs(), one);
    for (int shards : {2, 4, 8}) {
      config.runtime.shard_count = shards;
      for (ThreadPool* pool : {&one, &many}) {
        SCOPED_TRACE(std::string(engine_name(engine)) + " shards=" +
                     std::to_string(shards) +
                     " threads=" + std::to_string(pool->thread_count()));
        const metrics::RunResult sharded =
            run_experiment(config, small_jobs(), *pool);
        expect_bitwise_equal(serial, sharded);
        EXPECT_EQ(serial.solver_calls, sharded.solver_calls);
        EXPECT_EQ(serial.solver_full_solves, sharded.solver_full_solves);
      }
    }
  }
}

TEST(Determinism, ShardedMultiJobFairSchedulerBitIdentical) {
  // Scheduler interleavings + speculation under shards: the control plane
  // stays serial, so job ordering decisions cannot depend on the shard
  // layout.
  workload::SyntheticMixConfig mix;
  mix.jobs = 4;
  mix.min_input = kGiB;
  mix.max_input = 4 * kGiB;
  mix.reduce_tasks = 8;
  mix.seed = 11;
  ExperimentConfig config = small_config(EngineKind::kSMapReduce, 1);
  config.scheduler = SchedulerKind::kFair;
  std::vector<JobSubmission> jobs;
  for (auto& job : workload::make_synthetic_mix(mix)) {
    jobs.push_back({std::move(job.spec), job.submit_at});
  }
  ThreadPool one(1);
  ThreadPool many(16);
  const metrics::RunResult serial = run_experiment(config, jobs, one);
  for (int shards : {2, 4}) {
    config.runtime.shard_count = shards;
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_bitwise_equal(serial, run_experiment(config, jobs, many));
  }
}

TEST(Determinism, ShardedFaultInjectionCrossShardBitIdentical) {
  // The hard case: node 3 (last shard when shards > 1) dies mid-run while
  // reduce tasks of the same jobs run on nodes 0-1 (first shard), so the
  // tracker teardown, completed-map requeues and reduce backlog clawback
  // all cross shard boundaries.  Attempt-level fault injection keeps the
  // doom-detection census loop hot at the same time.
  ExperimentConfig config = small_config(EngineKind::kSMapReduce, 1);
  config.runtime.failures.push_back({/*node=*/3, /*at=*/120.0,
                                     /*recover_at=*/600.0});
  config.runtime.task_fail_rate = 0.08;
  std::vector<JobSubmission> jobs = small_jobs();
  ThreadPool one(1);
  ThreadPool many(16);
  const metrics::RunResult serial = run_experiment(config, jobs, one);
  for (int shards : {2, 4}) {
    config.runtime.shard_count = shards;
    for (ThreadPool* pool : {&one, &many}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(pool->thread_count()));
      const metrics::RunResult sharded = run_experiment(config, jobs, *pool);
      expect_bitwise_equal(serial, sharded);
      EXPECT_EQ(serial.solver_calls, sharded.solver_calls);
      EXPECT_EQ(serial.solver_full_solves, sharded.solver_full_solves);
    }
  }
}

TEST(Determinism, SolverCountersAreDeterministic) {
  // The solver's cache-hit pattern is part of the deterministic state: the
  // same run must take exactly the same fast paths every time.
  const ExperimentConfig config = small_config(EngineKind::kSMapReduce, 1);
  const metrics::RunResult first = run_experiment(config, small_jobs());
  const metrics::RunResult second = run_experiment(config, small_jobs());
  EXPECT_GT(first.solver_calls, 0u);
  EXPECT_LT(first.solver_full_solves, first.solver_calls);  // cache does work
  EXPECT_EQ(first.solver_calls, second.solver_calls);
  EXPECT_EQ(first.solver_full_solves, second.solver_full_solves);
}

}  // namespace
}  // namespace smr::driver
